"""Ablation benchmarks for the design choices DESIGN.md calls out:

* 0-1 optimal selection vs greedy / DP / best-static baselines;
* HiGHS backend vs the from-scratch implicit-enumeration solver;
* the compiler-model knobs (message vectorization, coarse-grain
  pipelining — the paper's future-work transformation);
* prototype 1-D BLOCK distribution spaces vs the extended generators.
"""

import pytest

from repro.distribution import DistributionOptions
from repro.machine import IPSC860
from repro.perf import CompilerOptions, estimate_search_spaces
from repro.programs import PROGRAMS
from repro.selection import (
    best_static_selection,
    dp_selection,
    greedy_selection,
    select_layouts,
)
from repro.tool import AssistantConfig, run_assistant

from .conftest import emit

CASES = {
    "adi": dict(n=256, maxiter=3),
    "erlebacher": dict(n=64),
    "tomcatv": dict(n=128, maxiter=3),
    "shallow": dict(n=384, maxiter=3),
}


@pytest.fixture(scope="module")
def assistants():
    return {
        name: run_assistant(
            PROGRAMS[name].source(**kwargs), AssistantConfig(nprocs=16)
        )
        for name, kwargs in CASES.items()
    }


def test_selector_ablation_table(assistants):
    lines = [
        "Selection ablation: estimated total cost (s) per selector",
        f"{'program':<12} {'0-1 optimal':>12} {'DP':>12} {'greedy':>12} "
        f"{'best static':>12}",
    ]
    for name, result in assistants.items():
        graph = result.graph
        optimal = result.selection.objective
        _dp_sel, dp_cost = dp_selection(graph)
        _g_sel, greedy_cost = greedy_selection(graph)
        _s_sel, static_cost = best_static_selection(graph)
        lines.append(
            f"{name:<12} {optimal/1e6:>12.4f} {dp_cost/1e6:>12.4f} "
            f"{greedy_cost/1e6:>12.4f} {static_cost/1e6:>12.4f}"
        )
        assert optimal <= dp_cost + 1e-6
        assert optimal <= greedy_cost + 1e-6
        assert optimal <= static_cost + 1e-6
    emit("ablation_selectors.txt", "\n".join(lines))


def test_greedy_pays_for_remap_blindness(assistants):
    """On stencil codes the remap-blind greedy selector thrashes."""
    shallow = assistants["shallow"].graph
    _sel, greedy_cost = greedy_selection(shallow)
    optimal = assistants["shallow"].selection.objective
    assert greedy_cost > 2 * optimal


def test_dp_matches_ilp_on_true_chains(assistants):
    """The DP is provably optimal when every remap edge connects
    consecutive phases.  Erlebacher's PCFG *is* a chain, but its per-array
    remap edges jump over phases that do not reference the array, so the
    DP is only a heuristic there — verify both facts."""
    # A straight-line program where every phase touches every array:
    # all remap edges are consecutive, DP == ILP.
    source = (
        "program chain\n"
        "      integer n\n      parameter (n = 32)\n"
        "      double precision a(n, n), b(n, n)\n"
        "      integer i, j\n"
        + "".join(
            "      do j = 1, n\n        do i = 2, n\n"
            f"          {w}(i, j) = {r}(i - {d}, j) + {w}(i, j)\n"
            "        enddo\n      enddo\n"
            for w, r, d in (("a", "b", 1), ("b", "a", 2), ("a", "b", 1))
        )
        + "      end\n"
    )
    result = run_assistant(source, AssistantConfig(nprocs=8))
    _sel, dp_cost = dp_selection(result.graph)
    assert dp_cost == pytest.approx(result.selection.objective)

    # Erlebacher: DP is an upper bound but not necessarily tight.
    erlebacher = assistants["erlebacher"].graph
    _sel, dp_cost = dp_selection(erlebacher)
    assert dp_cost >= assistants["erlebacher"].selection.objective - 1e-6


def test_solver_backend_ablation(assistants, benchmark):
    graph = assistants["shallow"].graph
    highs = select_layouts(graph, backend="scipy")
    bb = benchmark.pedantic(
        select_layouts, args=(graph,),
        kwargs={"backend": "branch-bound"}, rounds=1, iterations=1,
    )
    assert bb.objective == pytest.approx(highs.objective)


def test_compiler_model_ablation(assistants):
    """Turning off message vectorization must inflate the estimates of
    shift-communicating layouts; enabling coarse-grain pipelining (the
    paper's future-work compiler feature) must deflate fine-grain
    pipelines."""
    result = assistants["adi"]
    base = result.estimates

    novect = estimate_search_spaces(
        result.partition.phases, result.layout_spaces, result.symbols,
        IPSC860, result.db,
        options=CompilerOptions(message_vectorization=False),
    )
    cgp = estimate_search_spaces(
        result.partition.phases, result.layout_spaces, result.symbols,
        IPSC860, result.db,
        options=CompilerOptions(coarse_grain_pipelining=True),
    )

    lines = ["Compiler-model ablation (Adi 256^2, 16 procs, row layout)"]
    # phase 2 candidate 0 = row layout: pipelined with a shifted read
    base_e = base.per_phase[2][0].estimate
    novect_e = novect.per_phase[2][0].estimate
    cgp_e = cgp.per_phase[2][0].estimate
    lines.append(f"baseline:            comm={base_e.communication:10.0f}us "
                 f"pipeline={base_e.pipeline:10.0f}us")
    lines.append(f"no vectorization:    comm={novect_e.communication:10.0f}us")
    lines.append(f"coarse-grain pipes:  pipeline={cgp_e.pipeline:10.0f}us")
    emit("ablation_compiler_model.txt", "\n".join(lines))

    assert novect_e.communication > base_e.communication
    assert cgp_e.pipeline < base_e.pipeline


def test_extended_distribution_spaces():
    """The future-work distribution generators enlarge the search spaces
    and never worsen the optimum."""
    source = PROGRAMS["adi"].source(n=128, maxiter=2)
    proto = run_assistant(source, AssistantConfig(nprocs=16))
    extended = run_assistant(
        source,
        AssistantConfig(
            nprocs=16, distributions=DistributionOptions.extended()
        ),
    )
    assert extended.layout_spaces.total_candidates() > \
        proto.layout_spaces.total_candidates()
    assert extended.selection.objective <= proto.selection.objective + 1e-6

    lines = [
        "Distribution-space ablation (Adi 128^2, 16 procs)",
        f"prototype spaces: {proto.layout_spaces.total_candidates()} "
        f"candidates, predicted {proto.predicted_total_us/1e6:.4f} s",
        f"extended spaces:  {extended.layout_spaces.total_candidates()} "
        f"candidates, predicted {extended.predicted_total_us/1e6:.4f} s",
    ]
    emit("ablation_distributions.txt", "\n".join(lines))


def test_block_cyclic_ring_pipeline_discovery():
    """Extension result worth recording: on Adi the extended search space
    finds a *static block-cyclic column* layout whose ring software
    pipelining of the sequentialized j sweeps beats every layout the
    prototype spaces contain — confirmed by the simulator."""
    from repro.tool.measurement import measure_layouts

    # Small problem, few processors: here the remapped scheme's
    # all-to-alls are latency-bound and the static block-cyclic column
    # strictly wins (at larger n/P the prototype's dynamic scheme
    # catches up and the two tie).
    src = PROGRAMS["adi"].source(n=64, maxiter=3)
    proto = run_assistant(src, AssistantConfig(nprocs=4))
    ext = run_assistant(
        src,
        AssistantConfig(
            nprocs=4,
            distributions=DistributionOptions(
                block_cyclic_sizes=(4, 8, 16)
            ),
        ),
    )
    m_proto = measure_layouts(src, proto.selected_layouts, nprocs=4)
    m_ext = measure_layouts(src, ext.selected_layouts, nprocs=4)
    lines = [
        "Block-cyclic ring-pipeline discovery (Adi 64^2, 4 procs)",
        f"prototype optimum:   predicted {proto.predicted_total_us/1e6:.4f} s"
        f"  measured {m_proto.makespan_us/1e6:.4f} s"
        f"  ({m_proto.remap_count} remaps)",
        f"with block-cyclic:   predicted {ext.predicted_total_us/1e6:.4f} s"
        f"  measured {m_ext.makespan_us/1e6:.4f} s"
        f"  ({m_ext.remap_count} remaps)",
    ]
    emit("ablation_block_cyclic.txt", "\n".join(lines))
    assert ext.selection.objective < proto.selection.objective
    assert m_ext.makespan_us < m_proto.makespan_us
    assert m_ext.remap_count == 0  # the winner is fully static


def test_multidim_grids_on_alpha_heavy_machine():
    """2-D grids halve boundary volumes but double message counts; on the
    latency-heavy iPSC/860 model the 1-D layouts keep winning for the
    four programs — the quantitative reason the Fortran D prototype's
    1-D restriction was cheap."""
    src = PROGRAMS["shallow"].source(n=256, maxiter=2)
    proto = run_assistant(src, AssistantConfig(nprocs=16))
    ext = run_assistant(
        src,
        AssistantConfig(
            nprocs=16,
            distributions=DistributionOptions(multi_dim_grids=True),
        ),
    )
    grids = {
        tuple(
            ext.layout_spaces.per_phase[i][p]
            .layout.distribution.distributed_dims()
        )
        for i, p in ext.selection.selection.items()
    }
    lines = [
        "Multi-dimensional grids (Shallow 256^2, 16 procs)",
        f"1-D optimum predicted:  {proto.predicted_total_us/1e6:.4f} s",
        f"with 2-D grids offered: {ext.predicted_total_us/1e6:.4f} s",
        f"distributed dims chosen: {sorted(grids)}",
    ]
    emit("ablation_multidim.txt", "\n".join(lines))
    # the optimum never gets worse, and on this machine stays 1-D
    assert ext.selection.objective <= proto.selection.objective + 1e-6
    assert all(len(g) == 1 for g in grids)


def test_import_heuristic_value(assistants):
    """Without the import exchange, Tomcatv's solver phases would have no
    transposed-workspace candidates: verify the imported candidates are
    actually selected by the optimum."""
    result = assistants["tomcatv"]
    chosen_alignments = set()
    for idx, pos in result.selection.selection.items():
        cand = result.layout_spaces.per_phase[idx][pos]
        for name, alignment in cand.alignment.alignments:
            if name in ("aa", "dd"):
                chosen_alignments.add((name, alignment.axis_map))
    # both orientations of the workspace arrays are in use somewhere
    assert len(chosen_alignments) >= 2
