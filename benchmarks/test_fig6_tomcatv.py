"""Figure 6 — Tomcatv, measured and estimated execution times, and the
effect of guessed vs actual branch probabilities.

Paper: 128 x 128, double precision.  Tomcatv has control flow inside its
main iterative loop; the prototype guesses 50% branch probability, which
underestimates the actual timings — with the actual probabilities the
prediction is more precise.  Column-wise distribution is the best static
choice essentially always.
"""

import pytest

from repro.programs import PROGRAMS
from repro.programs.tomcatv import smoothing_if_line
from repro.tool import AssistantConfig, run_assistant
from repro.tool.schemes import TOOL, enumerate_schemes

from .conftest import cached_case, emit, scheme_row

N, DTYPE = 128, "double"
PROCS = (2, 4, 8, 16, 32)
ACTUAL_PROB = 1.0  # the residual stays above tolerance: always smoothed


@pytest.fixture(scope="module")
def sweep():
    return {
        p: cached_case(
            "tomcatv", N, DTYPE, p,
            actual_branch_probability=ACTUAL_PROB,
        )
        for p in PROCS
    }


@pytest.fixture(scope="module")
def actual_prob_estimates():
    """Assistant re-run with the *actual* branch probabilities supplied
    (the bottom-vs-top comparison of Figure 6)."""
    source = PROGRAMS["tomcatv"].source(n=N, dtype=DTYPE, maxiter=3)
    if_line = smoothing_if_line(source)
    out = {}
    for p in PROCS:
        result = run_assistant(
            source,
            AssistantConfig(
                nprocs=p, branch_prob_overrides={if_line: ACTUAL_PROB}
            ),
        )
        out[p] = enumerate_schemes(result)
    return out


def test_fig6_series(sweep, actual_prob_estimates):
    lines = [
        f"Figure 6: Tomcatv {N}x{N} {DTYPE} — estimated vs measured (s)",
        f"(estimates with guessed 50% and actual "
        f"{ACTUAL_PROB:.0%} branch probability)",
        f"{'procs':>5} {'row/meas':>10} {'col/meas':>10} "
        f"{'col/est50%':>11} {'col/estact':>11}",
    ]
    for p in PROCS:
        result = sweep[p]
        col = scheme_row(result, "column")
        actual_col = next(
            s for s in actual_prob_estimates[p] if s.name == "column"
        )
        lines.append(
            f"{p:>5} {scheme_row(result, 'row').measured_us/1e6:>10.4f} "
            f"{col.measured_us/1e6:>10.4f} {col.estimated_us/1e6:>11.4f} "
            f"{actual_col.estimated_us/1e6:>11.4f}"
        )
    emit("fig6_tomcatv.txt", "\n".join(lines))


def test_fig6_column_beats_row(sweep):
    for p in PROCS:
        result = sweep[p]
        assert scheme_row(result, "column").measured_us < \
            scheme_row(result, "row").measured_us, f"row won at P={p}"


def test_fig6_guessed_probability_underestimates(sweep,
                                                 actual_prob_estimates):
    """With the 50% guess the estimates undershoot the measured times;
    the actual-probability estimates come closer (paper's bottom vs top
    graphs)."""
    for p in PROCS:
        measured = scheme_row(sweep[p], "column").measured_us
        guessed = scheme_row(sweep[p], "column").estimated_us
        actual = next(
            s for s in actual_prob_estimates[p] if s.name == "column"
        ).estimated_us
        assert guessed < measured
        assert abs(actual - measured) < abs(guessed - measured)


def test_fig6_tool_never_loses(sweep):
    for p in PROCS:
        assert sweep[p].tool_optimal


def test_fig6_alignment_conflict_machinery_used(benchmark):
    """Tomcatv is the program whose analysis exercises the alignment 0-1
    formulation (two conflicted imports); time the full assistant."""
    source = PROGRAMS["tomcatv"].source(n=N, dtype=DTYPE, maxiter=3)
    result = benchmark(run_assistant, source, AssistantConfig(nprocs=16))
    assert len(result.alignment_spaces.resolutions) == 2
