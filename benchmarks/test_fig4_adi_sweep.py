"""Figure 4 — Adi, measured and estimated execution times.

Paper: problem size 256 x 256, double precision, across processor counts;
column always worst (two sequentialized phases), row best in most cases,
remapped best in the rest.
"""

import pytest

from repro.tool.schemes import TOOL

from .conftest import cached_case, emit, scheme_row

N, DTYPE = 256, "double"
PROCS = (2, 4, 8, 16, 32)
SCHEMES = ("row", "column", "remapped")


@pytest.fixture(scope="module")
def sweep():
    return {p: cached_case("adi", N, DTYPE, p) for p in PROCS}


def test_fig4_series(sweep):
    lines = [f"Figure 4: Adi {N}x{N} {DTYPE} — estimated vs measured (s)"]
    header = f"{'procs':>5}"
    for name in SCHEMES:
        header += f" {name + '/est':>12} {name + '/meas':>12}"
    lines.append(header)
    for p in PROCS:
        row = f"{p:>5}"
        for name in SCHEMES:
            s = scheme_row(sweep[p], name)
            row += f" {s.estimated_us/1e6:12.4f} {s.measured_us/1e6:12.4f}"
        lines.append(row)
    emit("fig4_adi_sweep.txt", "\n".join(lines))

    for p in PROCS:
        result = sweep[p]
        # Column (sequentialized j sweeps) is always worse than row, and
        # the outright worst from four processors up (at P=2 the remapped
        # scheme's all-to-alls are even costlier than losing half the
        # machine to sequentialization).
        column = scheme_row(result, "column").measured_us
        assert column > scheme_row(result, "row").measured_us
        if p >= 4:
            assert column > scheme_row(result, "remapped").measured_us, \
                f"column not worst at P={p}"


def test_fig4_estimates_track_measurements(sweep):
    for p in PROCS:
        for name in SCHEMES:
            s = scheme_row(sweep[p], name)
            assert s.estimated_us == pytest.approx(s.measured_us, rel=0.5)


def test_fig4_tool_always_optimal_here(sweep):
    for p in PROCS:
        assert sweep[p].tool_optimal, f"suboptimal at P={p}"


def test_fig4_scaling_improves_with_processors(sweep):
    rows = [scheme_row(sweep[p], "row").measured_us for p in PROCS]
    assert rows[-1] < rows[0]


def test_fig4_measurement_runtime(benchmark):
    """Time one measured (simulated) Adi execution."""
    from repro.programs import PROGRAMS
    from repro.tool import measure_layouts

    result = cached_case("adi", N, DTYPE, 16)
    source = PROGRAMS["adi"].source(n=N, dtype=DTYPE, maxiter=3)
    layouts = {
        idx: result.assistant.layout_spaces.per_phase[idx][pos].layout
        for idx, pos in scheme_row(result, "row").selection.items()
    } if result.assistant else None
    if layouts is None:
        result2 = cached_case("adi", N, DTYPE, 16, keep_assistant=True)
        layouts = {
            idx: result2.assistant.layout_spaces.per_phase[idx][pos].layout
            for idx, pos in scheme_row(result2, "row").selection.items()
        }
    benchmark(measure_layouts, source, layouts, 16)
