"""Summary statistics — the paper's in-text evaluation totals.

Paper (Section 6): 99 experiments over four programs; the tool selected
the optimal layout in 84 cases; suboptimal selections lost at most 9.3%;
per-program best-layout tallies in Section 4.

Our 99-case grid is documented in EXPERIMENTS.md (the paper does not list
its own grid).  The deterministic simulated machine gives the estimator a
cleaner target than real hardware gave the paper's tool, so our optimal
count is higher; the worst-loss bound and every per-program winner shape
are asserted below.
"""

import json

import pytest

from repro.programs import PROGRAMS
from repro.tool.report import format_summary
from repro.tool.testcases import grid_for, run_test_case, summarize

from .conftest import RESULTS_DIR, emit


@pytest.fixture(scope="module")
def all_results():
    results = []
    for name in ("adi", "erlebacher", "tomcatv", "shallow"):
        for case in grid_for(PROGRAMS[name]):
            results.append(run_test_case(case))
    return results


def test_summary_table(all_results):
    rows = summarize(all_results)
    emit("summary_table.txt", format_summary(rows))

    total = sum(r.cases for r in rows)
    assert total == 99  # 40 + 21 + 19 + 19, as in the paper

    optimal = sum(r.tool_optimal for r in rows)
    # Paper: 84/99.  The deterministic simulator is a cleaner target than
    # the real iPSC/860, so we require at least the paper's rate.
    assert optimal >= 84

    worst = max(r.worst_loss_percent for r in rows)
    assert worst <= 9.3  # paper's worst-case loss


def test_per_program_winner_shapes(all_results):
    rows = {r.program: r for r in summarize(all_results)}

    # Adi: static row and the remapped layout split the wins; column never
    # wins (paper: row 24, remapped 16, column 0).
    adi = rows["adi"].best_scheme_counts
    assert adi.get("column", 0) == 0
    assert adi.get("row", 0) >= 10
    assert adi.get("remapped", 0) + adi.get("dynamic", 0) >= 10

    # Erlebacher: dim-1 never wins (paper: dim2 9, dim3 2, dynamic 10,
    # dim1 0); dim2-statics and dynamics share the wins.
    erl = rows["erlebacher"].best_scheme_counts
    assert erl.get("dist1", 0) == 0

    # Tomcatv/Shallow: column-family layouts win everywhere.
    tom = rows["tomcatv"].best_scheme_counts
    assert tom.get("row", 0) == 0
    sha = rows["shallow"].best_scheme_counts
    assert sha.get("column", 0) == rows["shallow"].cases


def test_save_full_grid_json(all_results):
    payload = []
    for r in all_results:
        payload.append({
            "case": r.case.label,
            "tool_optimal": r.tool_optimal,
            "loss_percent": r.loss_percent,
            "best": r.best_overall_name,
            "schemes": {
                s.name: {"est_us": s.estimated_us, "meas_us": s.measured_us}
                for s in r.schemes
            },
        })
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "summary_grid.json").write_text(
        json.dumps(payload, indent=1), encoding="utf-8"
    )
    assert (RESULTS_DIR / "summary_grid.json").exists()


def test_single_case_runtime(benchmark):
    """Time one complete test case (assistant + all measurements)."""
    from repro.tool import TestCase

    benchmark(run_test_case,
              TestCase("adi", 200, "double", 8, maxiter=3))
