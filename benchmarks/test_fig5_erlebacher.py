"""Figure 5 — Erlebacher, measured and estimated execution times.

Paper: 64^3, double precision.  Distributing the first dimension
(fine-grain pipeline) is never profitable; the second dimension
(coarse-grain pipeline) and the dynamic layout that remaps the read-only
array are the contenders; the third dimension sequentializes one of the
three symmetric computations and its estimate overshoots the measurement.
"""

import pytest

from repro.tool.schemes import TOOL

from .conftest import cached_case, emit, scheme_row

N, DTYPE = 64, "double"
PROCS = (2, 4, 8, 16, 32)
SCHEMES = ("dist1", "dist2", "dist3")


@pytest.fixture(scope="module")
def sweep():
    return {p: cached_case("erlebacher", N, DTYPE, p) for p in PROCS}


def test_fig5_series(sweep):
    lines = [
        f"Figure 5: Erlebacher {N}^3 {DTYPE} — estimated vs measured (s)"
    ]
    header = f"{'procs':>5}"
    for name in SCHEMES + ("dynamic",):
        header += f" {name + '/est':>12} {name + '/meas':>12}"
    lines.append(header)
    for p in PROCS:
        result = sweep[p]
        row = f"{p:>5}"
        for name in SCHEMES:
            s = scheme_row(result, name)
            row += f" {s.estimated_us/1e6:12.4f} {s.measured_us/1e6:12.4f}"
        tool = scheme_row(result, TOOL)
        row += f" {tool.estimated_us/1e6:12.4f} {tool.measured_us/1e6:12.4f}"
        lines.append(row)
    emit("fig5_erlebacher.txt", "\n".join(lines))


def test_fig5_dist1_never_profitable(sweep):
    for p in PROCS:
        result = sweep[p]
        dist1 = scheme_row(result, "dist1").measured_us
        best_other = min(
            scheme_row(result, n).measured_us for n in ("dist2", "dist3")
        )
        assert dist1 > best_other, f"fine-grain pipeline won at P={p}"


def test_fig5_dynamic_close_to_dist2(sweep):
    """The dynamic layout and the dim-2 static layout are very close
    (the paper's tool sometimes misranked them for this reason)."""
    for p in PROCS[2:]:
        result = sweep[p]
        dist2 = scheme_row(result, "dist2").measured_us
        dynamic = scheme_row(result, TOOL).measured_us
        assert dynamic <= dist2
        assert dynamic > 0.4 * dist2


def test_fig5_dist3_overestimated(sweep):
    """The paper overestimates the sequentialized dim-3 layout by up to
    60%; our estimator prices phases in isolation and misses the overlap
    of adjacent sequential sweeps, reproducing an overestimate at small
    processor counts."""
    overs = []
    for p in PROCS:
        s = scheme_row(sweep[p], "dist3")
        overs.append(s.estimated_us / s.measured_us)
    assert max(overs) > 1.0
    assert max(overs) < 2.0  # bounded, like the paper's <= 60%


def test_fig5_tool_optimal(sweep):
    for p in PROCS:
        assert sweep[p].tool_optimal


def test_fig5_assistant_runtime(benchmark):
    from repro.programs import PROGRAMS
    from repro.tool import AssistantConfig, run_assistant

    source = PROGRAMS["erlebacher"].source(n=N, dtype=DTYPE)
    benchmark(run_assistant, source, AssistantConfig(nprocs=16))
