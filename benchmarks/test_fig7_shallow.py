"""Figure 7 — Shallow, measured and estimated execution times.

Paper: 384 x 384, real.  The stencils parallelize in either dimension,
but a row distribution requires buffered (strided) messages, so the
column distribution performs slightly better; the tool always picks
column.  Static estimates slightly overestimate the measured timings but
predict the relative performance with high accuracy.
"""

import pytest

from repro.tool.schemes import TOOL

from .conftest import cached_case, emit, scheme_row

N, DTYPE = 384, "real"
PROCS = (2, 4, 8, 16, 32)


@pytest.fixture(scope="module")
def sweep():
    return {p: cached_case("shallow", N, DTYPE, p) for p in PROCS}


def test_fig7_series(sweep):
    lines = [
        f"Figure 7: Shallow {N}x{N} {DTYPE} — estimated vs measured (s)",
        f"{'procs':>5} {'row/est':>10} {'row/meas':>10} "
        f"{'col/est':>10} {'col/meas':>10}",
    ]
    for p in PROCS:
        result = sweep[p]
        row = scheme_row(result, "row")
        col = scheme_row(result, "column")
        lines.append(
            f"{p:>5} {row.estimated_us/1e6:>10.4f} "
            f"{row.measured_us/1e6:>10.4f} {col.estimated_us/1e6:>10.4f} "
            f"{col.measured_us/1e6:>10.4f}"
        )
    emit("fig7_shallow.txt", "\n".join(lines))


def test_fig7_column_slightly_better(sweep):
    for p in PROCS:
        result = sweep[p]
        row = scheme_row(result, "row").measured_us
        col = scheme_row(result, "column").measured_us
        assert col < row, f"row won at P={p}"
        assert row < col * 1.5, f"not 'slightly' at P={p}"


def test_fig7_tool_picks_column(sweep):
    for p in PROCS:
        result = sweep[p]
        tool = scheme_row(result, TOOL)
        assert tool.selection == scheme_row(result, "column").selection


def test_fig7_relative_performance_predicted(sweep):
    """The estimated row/column ratio matches the measured ratio."""
    for p in PROCS:
        result = sweep[p]
        row = scheme_row(result, "row")
        col = scheme_row(result, "column")
        est_ratio = row.estimated_us / col.estimated_us
        meas_ratio = row.measured_us / col.measured_us
        assert est_ratio == pytest.approx(meas_ratio, rel=0.15)


def test_fig7_assistant_runtime(benchmark):
    from repro.programs import PROGRAMS
    from repro.tool import AssistantConfig, run_assistant

    source = PROGRAMS["shallow"].source(n=N, dtype=DTYPE, maxiter=3)
    benchmark(run_assistant, source, AssistantConfig(nprocs=16))
