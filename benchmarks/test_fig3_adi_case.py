"""Figure 3 — Adi example test case.

Paper: 512 x 512, double precision, 16 processors; three promising data
layouts (static row-wise, static column-wise, remapped).  The prototype
picked the static row-wise layout and ranked the alternatives correctly.
"""

import pytest

from repro.machine import IPSC860
from repro.tool import AssistantConfig, run_assistant
from repro.tool.schemes import TOOL

from .conftest import cached_case, emit, scheme_row

N, DTYPE, PROCS = 512, "double", 16


@pytest.fixture(scope="module")
def result():
    return cached_case("adi", N, DTYPE, PROCS)


def test_fig3_table(result):
    lines = [
        f"Figure 3: Adi test case — {N}x{N}, {DTYPE}, {PROCS} processors",
        f"{'layout':<12} {'estimated':>12} {'measured':>12}",
    ]
    for name in ("row", "column", "remapped"):
        s = scheme_row(result, name)
        lines.append(
            f"{name:<12} {s.estimated_us/1e6:10.4f} s "
            f"{s.measured_us/1e6:10.4f} s"
        )
    tool = scheme_row(result, TOOL)
    picked = "row" if tool.selection == scheme_row(result, "row").selection \
        else "dynamic"
    lines.append(f"tool picked: {picked}")
    emit("fig3_adi_case.txt", "\n".join(lines))

    # Paper shape: the tool picks the static row-wise layout...
    assert tool.selection == scheme_row(result, "row").selection
    # ...and the alternatives rank row < remapped < column.
    row = scheme_row(result, "row").measured_us
    remapped = scheme_row(result, "remapped").measured_us
    column = scheme_row(result, "column").measured_us
    assert row < remapped < column
    # The estimated ranking matches the measured ranking.
    assert result.ranking_correct()


def test_fig3_tool_is_measured_best(result):
    assert result.tool_optimal
    assert result.loss_percent == 0.0


def test_fig3_assistant_runtime(benchmark):
    """Time the full four-step assistant on the Figure 3 configuration."""
    from repro.programs import PROGRAMS

    source = PROGRAMS["adi"].source(n=N, dtype=DTYPE, maxiter=3)
    benchmark(run_assistant, source, AssistantConfig(nprocs=PROCS))
