"""0-1 problem sizes and solve times — the paper's in-text ILP table.

Paper (Section 4):

    program      problem              variables  constraints  time
    Adi          selection            61         53           ~60 ms
    Erlebacher   selection            327        190          ~120 ms
    Tomcatv      alignment (x2)       312        530          480/1030 ms
    Tomcatv      selection            336        203          ~160 ms
    Shallow      selection            228        200          ~150 ms

All instances solved in under 1.1 s.  Our instances differ in size (we do
not scalar-expand temporaries, and our remapping edges are per-array), but
land in the same order of magnitude and resolve far under the paper's
1.1 s bound on both solver backends.
"""

import pytest

from repro.programs import PROGRAMS
from repro.tool import AssistantConfig, run_assistant

from .conftest import emit

CONFIGS = {
    "adi": dict(n=256, maxiter=3),
    "erlebacher": dict(n=64),
    "tomcatv": dict(n=128, maxiter=3),
    "shallow": dict(n=384, maxiter=3),
}

PAPER_SELECTION = {
    "adi": (61, 53),
    "erlebacher": (327, 190),
    "tomcatv": (336, 203),
    "shallow": (228, 200),
}


@pytest.fixture(scope="module")
def assistants():
    out = {}
    for name, kwargs in CONFIGS.items():
        source = PROGRAMS[name].source(**kwargs)
        out[name] = run_assistant(source, AssistantConfig(nprocs=16))
    return out


def test_ilp_size_table(assistants):
    lines = [
        "0-1 problem sizes and CPLEX-substitute solve times "
        "(paper values in parentheses)",
        f"{'program':<12} {'problem':<12} {'vars':>6} {'cons':>6} "
        f"{'time':>9}  paper",
    ]
    for name, result in assistants.items():
        for i, res in enumerate(result.alignment_spaces.resolutions):
            lines.append(
                f"{name:<12} {'alignment':<12} {res.num_variables:>6} "
                f"{res.num_constraints:>6} "
                f"{res.solution.stats.wall_time*1000:>7.0f}ms  "
                f"(312/530, <=1030ms)"
            )
        sel = result.selection
        pv, pc = PAPER_SELECTION[name]
        lines.append(
            f"{name:<12} {'selection':<12} {sel.num_variables:>6} "
            f"{sel.num_constraints:>6} "
            f"{sel.solution.stats.wall_time*1000:>7.0f}ms  ({pv}/{pc})"
        )
    emit("ilp_sizes.txt", "\n".join(lines))


def test_all_instances_under_paper_bound(assistants):
    """Every 0-1 instance solves in less than 1.1 seconds."""
    for result in assistants.values():
        for res in result.alignment_spaces.resolutions:
            assert res.solution.stats.wall_time < 1.1
        assert result.selection.solution.stats.wall_time < 1.1


def test_sizes_same_order_of_magnitude(assistants):
    for name, result in assistants.items():
        pv, pc = PAPER_SELECTION[name]
        assert result.selection.num_variables == pytest.approx(pv, rel=1.0)
        assert result.selection.num_constraints == pytest.approx(pc, rel=1.0)


def test_tomcatv_two_alignment_problems_same_size(assistants):
    res = assistants["tomcatv"].alignment_spaces.resolutions
    assert len(res) == 2
    assert res[0].num_variables == res[1].num_variables
    assert res[0].num_constraints == res[1].num_constraints
    # identical structure, different objective (paper Section 4)
    assert res[0].solution.objective != res[1].solution.objective


@pytest.mark.parametrize("program", sorted(CONFIGS))
def test_selection_solve_benchmark(benchmark, assistants, program):
    """Benchmark the selection 0-1 solve itself (HiGHS backend)."""
    from repro.selection import select_layouts

    graph = assistants[program].graph
    benchmark(select_layouts, graph)


def test_branch_bound_backend_solves_selection(assistants, benchmark):
    """The from-scratch solver also proves optimality on a real selection
    instance (Adi) in reasonable time."""
    from repro.selection import select_layouts

    graph = assistants["adi"].graph
    result = benchmark.pedantic(
        select_layouts, args=(graph,),
        kwargs={"backend": "branch-bound"}, rounds=1, iterations=1,
    )
    assert result.objective == pytest.approx(
        assistants["adi"].selection.objective
    )
