"""Shared helpers for the figure/table benchmarks.

Each benchmark regenerates one table or figure of the paper's evaluation:
it prints the same rows/series the paper reports (and writes them under
``results/``), and uses the pytest-benchmark fixture to time the pipeline
stage the experiment exercises.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib
from typing import Dict, Tuple

import pytest

from repro.tool import TestCase, run_test_case
from repro.tool.testcases import TestCaseResult

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

_CASE_CACHE: Dict[Tuple, TestCaseResult] = {}


def cached_case(program: str, n: int, dtype: str, procs: int,
                maxiter: int = 3, **kwargs) -> TestCaseResult:
    key = (program, n, dtype, procs, maxiter, tuple(sorted(kwargs.items())))
    if key not in _CASE_CACHE:
        case = TestCase(program, n=n, dtype=dtype, nprocs=procs,
                        maxiter=maxiter)
        _CASE_CACHE[key] = run_test_case(case, **kwargs)
    return _CASE_CACHE[key]


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n", encoding="utf-8")
    print(f"\n===== {name} =====")
    print(text)


def scheme_row(result: TestCaseResult, name: str):
    return next(s for s in result.schemes if s.name == name)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(autouse=True)
def _always_a_benchmark(benchmark):
    """Make every test in this directory count as a benchmark, so the
    documented ``pytest benchmarks/ --benchmark-only`` invocation runs
    the table/figure regenerations too (pytest-benchmark skips tests
    whose fixture closure lacks ``benchmark``).  Tests that never measure
    anything themselves get a trivial timing afterwards so the fixture is
    legitimately used."""
    yield
    if not benchmark.stats:
        try:
            benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        except Exception:
            pass
