"""Subroutine parsing + inliner tests (the interprocedural answer the
paper's prototype lacked)."""

import pytest

from repro.frontend import ast, build_symbol_table
from repro.frontend.inline import InlineError, parse_and_inline
from repro.frontend.parser import ParseError, parse_source_file
from repro.frontend.printer import format_program
from repro.analysis import partition_phases


MULTI = """
program main
      implicit none
      integer n
      parameter (n = 16)
      double precision a(n, n), b(n, n)
      integer i, j
      do j = 1, n
        do i = 1, n
          a(i, j) = 1.0
          b(i, j) = 2.0
        enddo
      enddo
      call smooth(a, b, n)
      call smooth(b, a, n)
      end

subroutine smooth(u, v, m)
      implicit none
      integer m
      double precision u(m, m), v(m, m)
      double precision w
      integer i, j
      w = 0.25
      do j = 2, m - 1
        do i = 2, m - 1
          u(i, j) = w * (v(i + 1, j) + v(i - 1, j))
        enddo
      enddo
      end
"""


class TestParsing:
    def test_parse_file_units(self):
        sf = parse_source_file(MULTI)
        assert sf.program.name == "main"
        assert [s.name for s in sf.subroutines] == ["smooth"]
        assert sf.subroutines[0].params == ("u", "v", "m")

    def test_call_statement_parsed(self):
        sf = parse_source_file(MULTI)
        calls = [
            s for s in sf.program.body if isinstance(s, ast.CallStmt)
        ]
        assert len(calls) == 2
        assert calls[0].name == "smooth"
        assert len(calls[0].args) == 3

    def test_subroutine_without_args(self):
        src = (
            "program p\n      real a(4)\n      call init\n      end\n"
            "subroutine init\n      real a(4)\n      integer i\n"
            "      do i = 1, 4\n        a(i) = 0.0\n      enddo\n"
            "      end\n"
        )
        sf = parse_source_file(src)
        assert sf.subroutines[0].params == ()

    def test_file_without_program_rejected(self):
        with pytest.raises(ParseError):
            parse_source_file(
                "subroutine s\n      end\n"
            )


class TestInlining:
    def test_calls_replaced_by_bodies(self):
        prog = parse_and_inline(MULTI)
        assert not any(
            isinstance(s, ast.CallStmt) for s in ast.walk_stmts(prog.body)
        )
        # two call sites -> two inlined loop nests + the init nest
        loops = [s for s in prog.body if isinstance(s, ast.Do)]
        assert len(loops) == 3

    def test_array_dummies_renamed_to_actuals(self):
        prog = parse_and_inline(MULTI)
        text = format_program(prog)
        assert "u(" not in text and "v(" not in text
        # first call writes a from b; second writes b from a
        assert "a(i, j) = " in text or "a(smooth_1_i" in text

    def test_locals_renamed_per_site(self):
        prog = parse_and_inline(MULTI)
        table = build_symbol_table(prog)
        names = {s.name for s in table.scalars()}
        assert "smooth_1_w" in names
        assert "smooth_2_w" in names

    def test_scalar_actual_by_reference(self):
        # m is bound to the PARAMETER-backed variable n... here n is a
        # parameter constant, substituted as an expression into bounds.
        prog = parse_and_inline(MULTI)
        table = build_symbol_table(prog)
        part = partition_phases(prog, table)
        # init phase + 2 inlined smooth phases
        assert len(part) == 3

    def test_inlined_program_analyzes_end_to_end(self):
        from repro.frontend.printer import format_program
        from repro.tool import AssistantConfig, run_assistant

        prog = parse_and_inline(MULTI)
        result = run_assistant(
            format_program(prog), AssistantConfig(nprocs=4)
        )
        assert len(result.partition) == 3
        assert result.predicted_total_us > 0

    def test_assistant_accepts_multi_unit_source_directly(self):
        """run_assistant inlines multi-unit files itself, and measuring
        the selected layouts works on the same source."""
        from repro.tool import AssistantConfig, measure_layouts, \
            run_assistant

        result = run_assistant(MULTI, AssistantConfig(nprocs=4))
        assert len(result.partition) == 3
        m = measure_layouts(MULTI, result.selected_layouts, nprocs=4)
        assert m.makespan_us > 0

    def test_nested_calls(self):
        src = (
            "program p\n      real a(8)\n      call outer(a)\n      end\n"
            "subroutine outer(x)\n      real x(8)\n"
            "      call inner(x)\n      end\n"
            "subroutine inner(y)\n      real y(8)\n      integer i\n"
            "      do i = 1, 8\n        y(i) = 1.0\n      enddo\n"
            "      end\n"
        )
        prog = parse_and_inline(src)
        loops = [s for s in prog.body if isinstance(s, ast.Do)]
        assert len(loops) == 1
        assert loops[0].body[0].target.name == "a"

    def test_recursion_rejected(self):
        src = (
            "program p\n      real a(4)\n      call s(a)\n      end\n"
            "subroutine s(x)\n      real x(4)\n"
            "      call s(x)\n      end\n"
        )
        with pytest.raises(InlineError, match="recursive"):
            parse_and_inline(src)

    def test_unknown_subroutine_rejected(self):
        src = "program p\n      real a(4)\n      call nope(a)\n      end\n"
        with pytest.raises(InlineError, match="unknown"):
            parse_and_inline(src)

    def test_arity_mismatch_rejected(self):
        src = (
            "program p\n      real a(4)\n      call s(a, a)\n      end\n"
            "subroutine s(x)\n      real x(4)\n      end\n"
        )
        with pytest.raises(InlineError, match="args"):
            parse_and_inline(src)

    def test_expression_actual_for_written_dummy_rejected(self):
        src = (
            "program p\n      real a(4)\n      real s\n"
            "      call f(s + 1.0)\n      end\n"
            "subroutine f(x)\n      real x\n      x = 2.0\n      end\n"
        )
        with pytest.raises(InlineError, match="writes dummy"):
            parse_and_inline(src)

    def test_expression_actual_for_readonly_dummy_ok(self):
        src = (
            "program p\n      real a(8)\n      integer i\n"
            "      call scale(a, 3.0)\n      end\n"
            "subroutine scale(x, factor)\n"
            "      real x(8)\n      real factor\n      integer i\n"
            "      do i = 1, 8\n        x(i) = x(i) * factor\n      enddo\n"
            "      end\n"
        )
        prog = parse_and_inline(src)
        text = format_program(prog)
        assert "* 3.0" in text


class TestSubroutineErlebacher:
    """A subroutine-structured Erlebacher-like code inlines into the same
    phase structure as the hand-inlined version — the exact workflow the
    paper's authors performed by hand."""

    SRC = """
program solver
      implicit none
      integer n
      parameter (n = 8)
      double precision f(n, n, n), ux(n, n, n), uy(n, n, n)
      integer i, j, k
      do k = 1, n
        do j = 1, n
          do i = 1, n
            f(i, j, k) = 1.0
          enddo
        enddo
      enddo
      call sweepx(f, ux, n)
      call sweepx(f, uy, n)
      end

subroutine sweepx(field, deriv, m)
      implicit none
      integer m
      double precision field(m, m, m), deriv(m, m, m)
      integer i, j, k
      do k = 1, m
        do j = 1, m
          do i = 2, m - 1
            deriv(i, j, k) = field(i + 1, j, k) - field(i - 1, j, k)
          enddo
        enddo
      enddo
      do k = 1, m
        do j = 1, m
          do i = 2, m
            deriv(i, j, k) = deriv(i, j, k) - deriv(i - 1, j, k)
          enddo
        enddo
      enddo
      end
"""

    def test_phase_structure(self):
        from repro.analysis import phase_dependences

        prog = parse_and_inline(self.SRC)
        table = build_symbol_table(prog)
        part = partition_phases(prog, table)
        assert len(part) == 5  # init + 2 x (stencil + sweep)
        dep_phases = [
            ph.index for ph in part.phases
            if any(d.kind == "flow" for d in phase_dependences(ph))
        ]
        assert dep_phases == [2, 4]
