"""Alignment 0-1 formulation tests — including the paper's appendix
example (Figure 8) and backend cross-checks."""

import pytest

from repro.alignment.cag import CAG
from repro.alignment.ilp import build_alignment_model, resolve_conflicts


def figure8_cag():
    """The appendix example: two 2-D arrays x, y with a conflicting CAG.

    Edges (x0, y0), (x1, y0), (x1, y1): y0 reachable from both x0 and x1
    connects two dimensions of x — a conflict requiring a minimum-weight
    2-partitioning.
    """
    cag = CAG()
    cag.add_array("x", 2)
    cag.add_array("y", 2)
    cag.add_undirected_edge(("x", 0), ("y", 0), 10.0)
    cag.add_undirected_edge(("x", 1), ("y", 0), 4.0)
    cag.add_undirected_edge(("x", 1), ("y", 1), 10.0)
    return cag


class TestModelStructure:
    def test_variable_count(self):
        ilp = build_alignment_model(figure8_cag(), d=2)
        # 4 nodes x 2 partitions + 3 edges x 2 partitions = 14
        assert ilp.num_variables == 14

    def test_constraint_count(self):
        ilp = build_alignment_model(figure8_cag(), d=2)
        # type1: 4; type2: 2 arrays x 2 partitions = 4;
        # IN/OUT: number of nonempty SRC/SINK sets x d.
        # Normalized direction x->y: SINK sets: (x0,y)={x0y0}, (x1,y)=
        # {x1y0, x1y1}; SRC sets: (y0,x)={x0y0,x1y0}, (y1,x)={x1y1}
        # => 4 groups x 2 = 8 edge constraints. Total 16.
        assert ilp.num_constraints == 16

    def test_rank_check(self):
        cag = CAG()
        cag.add_array("a", 3)
        with pytest.raises(ValueError):
            build_alignment_model(cag, d=2)


@pytest.mark.parametrize("backend", ["scipy", "branch-bound"])
class TestResolution:
    def test_figure8_optimal_cut(self, backend):
        """The optimal 2-partitioning cuts only the weight-4 edge."""
        res = resolve_conflicts(figure8_cag(), d=2, backend=backend)
        assert res.cut_weight == pytest.approx(4.0)
        assert not res.resolved.has_conflict()
        assert res.partitioning.aligned(("x", 0), ("y", 0))
        assert res.partitioning.aligned(("x", 1), ("y", 1))
        assert not res.partitioning.aligned(("x", 1), ("y", 0))

    def test_conflict_free_cag_keeps_everything(self, backend):
        cag = CAG()
        cag.add_undirected_edge(("a", 0), ("b", 0), 3.0)
        cag.add_undirected_edge(("a", 1), ("b", 1), 5.0)
        res = resolve_conflicts(cag, d=2, backend=backend)
        assert res.cut_weight == 0.0
        assert res.resolved.num_edges == 2

    def test_triangle_conflict_cuts_cheapest(self, backend):
        # a0-b0 (8), b0-a1 (2): must cut one; cheapest is 2.
        cag = CAG()
        cag.add_array("a", 2)
        cag.add_undirected_edge(("a", 0), ("b", 0), 8.0)
        cag.add_undirected_edge(("b", 0), ("a", 1), 2.0)
        res = resolve_conflicts(cag, d=2, backend=backend)
        assert res.cut_weight == pytest.approx(2.0)

    def test_weights_flip_the_choice(self, backend):
        cag = CAG()
        cag.add_array("a", 2)
        cag.add_undirected_edge(("a", 0), ("b", 0), 2.0)
        cag.add_undirected_edge(("b", 0), ("a", 1), 8.0)
        res = resolve_conflicts(cag, d=2, backend=backend)
        assert res.cut_weight == pytest.approx(2.0)
        assert res.partitioning.aligned(("a", 1), ("b", 0))

    def test_three_dimensional_template(self, backend):
        # 1-D coefficient array pulled toward two dims of a 3-D array.
        cag = CAG()
        cag.add_array("u", 3)
        cag.add_undirected_edge(("v", 0), ("u", 0), 6.0)
        cag.add_undirected_edge(("v", 0), ("u", 2), 4.0)
        res = resolve_conflicts(cag, d=3, backend=backend)
        assert res.cut_weight == pytest.approx(4.0)

    def test_every_node_assigned(self, backend):
        res = resolve_conflicts(figure8_cag(), d=2, backend=backend)
        assert set(res.assignment) == set(figure8_cag().nodes)
        assert all(0 <= k < 2 for k in res.assignment.values())


def test_backends_agree_on_objective():
    cag = figure8_cag()
    cag.add_undirected_edge(("x", 0), ("z", 1), 7.0)
    cag.add_undirected_edge(("z", 0), ("y", 1), 3.0)
    a = resolve_conflicts(cag, d=2, backend="scipy")
    b = resolve_conflicts(cag, d=2, backend="branch-bound")
    assert a.cut_weight == pytest.approx(b.cut_weight)


def test_tomcatv_conflict_pair_sizes_match(tomcatv_assistant):
    """The two import resolutions have identical model sizes but
    different objectives (paper Section 4, Tomcatv)."""
    res = tomcatv_assistant.alignment_spaces.resolutions
    assert len(res) == 2
    assert res[0].num_variables == res[1].num_variables
    assert res[0].num_constraints == res[1].num_constraints
    assert res[0].cut_weight != res[1].cut_weight
