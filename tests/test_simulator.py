"""Discrete-event simulator tests, including hypothesis properties over
randomly generated deadlock-free node programs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import IPSC860, Collective, SimulationError, simulate
from repro.machine.patterns import (
    append_alltoall,
    append_broadcast,
    append_reduce_broadcast,
    append_reduction,
)


class TestBasics:
    def test_empty(self):
        result = simulate([[], []], IPSC860)
        assert result.makespan == 0.0

    def test_compute_only(self):
        result = simulate([[("compute", 10.0)], [("compute", 25.0)]],
                          IPSC860)
        assert result.makespan == 25.0
        assert result.proc_times == [10.0, 25.0]

    def test_send_recv_ordering(self):
        p0 = [("compute", 100.0), ("send", 1, 8, False)]
        p1 = [("recv", 0)]
        result = simulate([p0, p1], IPSC860)
        expected = 100.0 + IPSC860.message_time(8, hops=1) \
            + IPSC860.recv_overhead
        assert result.proc_times[1] == pytest.approx(expected)

    def test_sender_not_blocked(self):
        """Asynchronous send: sender resumes after the software overhead,
        not the full transit."""
        p0 = [("send", 1, 1 << 16, False), ("compute", 1.0)]
        p1 = [("recv", 0)]
        result = simulate([p0, p1], IPSC860)
        assert result.proc_times[0] == pytest.approx(
            IPSC860.send_overhead(1 << 16) + 1.0
        )

    def test_fifo_channels(self):
        p0 = [("send", 1, 8, False), ("compute", 500.0),
              ("send", 1, 8, False)]
        p1 = [("recv", 0), ("recv", 0)]
        result = simulate([p0, p1], IPSC860)
        # second recv completes only after the second (late) send
        assert result.proc_times[1] > 500.0

    def test_stats(self):
        p0 = [("send", 1, 100, False), ("compute", 5.0)]
        p1 = [("recv", 0)]
        stats = simulate([p0, p1], IPSC860).stats
        assert stats.messages == 1
        assert stats.bytes_sent == 100
        assert stats.compute_time == 5.0

    def test_deadlock_detected(self):
        with pytest.raises(SimulationError):
            simulate([[("recv", 1)], [("recv", 0)]], IPSC860)

    def test_invalid_destination(self):
        with pytest.raises(SimulationError):
            simulate([[("send", 7, 8, False)]], IPSC860)

    def test_unknown_op(self):
        with pytest.raises(SimulationError):
            simulate([[("warp", 1)]], IPSC860)

    def test_unregistered_collective(self):
        with pytest.raises(SimulationError):
            simulate([[("coll", 0)]], IPSC860)

    def test_determinism(self):
        progs = [
            [("compute", 3.0), ("send", 1, 64, True), ("recv", 1)],
            [("recv", 0), ("compute", 7.0), ("send", 0, 64, False)],
        ]
        a = simulate(progs, IPSC860).makespan
        b = simulate(progs, IPSC860).makespan
        assert a == b


class TestCollectiveOp:
    def test_barrier_semantics(self):
        coll = {7: Collective(participants=(0, 1, 2), duration=10.0)}
        progs = [
            [("compute", 5.0), ("coll", 7)],
            [("compute", 50.0), ("coll", 7)],
            [("coll", 7), ("compute", 1.0)],
        ]
        result = simulate(progs, IPSC860, coll)
        # all leave at max(entry) + duration = 60
        assert result.proc_times[0] == 60.0
        assert result.proc_times[2] == 61.0


class TestPatterns:
    def test_broadcast_reaches_everyone(self):
        progs = [[] for _ in range(8)]
        append_broadcast(progs, 1024)
        result = simulate(progs, IPSC860)
        # 3 tree stages
        assert result.stats.messages == 7
        assert result.makespan > 0

    def test_broadcast_two_procs(self):
        progs = [[], []]
        append_broadcast(progs, 100)
        assert simulate(progs, IPSC860).stats.messages == 1

    def test_reduction_message_count(self):
        progs = [[] for _ in range(8)]
        append_reduction(progs, 8, combine_cost=1.0)
        assert simulate(progs, IPSC860).stats.messages == 7

    def test_reduce_broadcast_roundtrip(self):
        progs = [[] for _ in range(4)]
        append_reduce_broadcast(progs, 8)
        result = simulate(progs, IPSC860)
        assert result.stats.messages == 6  # 3 up + 3 down

    def test_alltoall_messages(self):
        progs = [[] for _ in range(4)]
        append_alltoall(progs, 4096)
        result = simulate(progs, IPSC860)
        assert result.stats.messages == 4 * 3

    def test_alltoall_single_proc_noop(self):
        progs = [[]]
        append_alltoall(progs, 4096)
        assert progs == [[]]

    def test_broadcast_scales_with_stage_count(self):
        t = {}
        for procs in (4, 16):
            progs = [[] for _ in range(procs)]
            append_broadcast(progs, 256)
            t[procs] = simulate(progs, IPSC860).makespan
        assert t[16] == pytest.approx(t[4] * 2.0, rel=0.1)


@st.composite
def pipeline_programs(draw):
    """Random chain-structured programs: proc p receives from p-1,
    computes, sends to p+1 — always deadlock-free."""
    nprocs = draw(st.integers(min_value=1, max_value=6))
    stages = draw(st.integers(min_value=1, max_value=5))
    progs = [[] for _ in range(nprocs)]
    for _ in range(stages):
        for p in range(nprocs):
            if p > 0:
                progs[p].append(("recv", p - 1))
            duration = draw(
                st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False)
            )
            progs[p].append(("compute", duration))
            if p < nprocs - 1:
                nbytes = draw(st.integers(min_value=1, max_value=10000))
                progs[p].append(("send", p + 1, nbytes, False))
    return progs


@settings(max_examples=60, deadline=None)
@given(progs=pipeline_programs())
def test_random_pipelines_terminate(progs):
    result = simulate(progs, IPSC860)
    # makespan at least the largest per-proc pure compute
    per_proc_compute = [
        sum(op[1] for op in ops if op[0] == "compute") for ops in progs
    ]
    assert result.makespan >= max(per_proc_compute) - 1e-9
    # every clock is nonnegative and <= makespan
    assert all(0.0 <= t <= result.makespan + 1e-9
               for t in result.proc_times)


@settings(max_examples=40, deadline=None)
@given(progs=pipeline_programs())
def test_simulation_is_deterministic(progs):
    assert simulate(progs, IPSC860).makespan == \
        simulate(progs, IPSC860).makespan
