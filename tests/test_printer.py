"""Unparser tests: targeted cases + round-trip fixpoint properties."""

import pytest

from repro.frontend import ast, parse_source
from repro.frontend.lexer import tokenize
from repro.frontend.parser import Parser
from repro.frontend.printer import format_expr, format_program, format_stmt
from repro.programs import PROGRAMS


def expr_of(text):
    return Parser(tokenize(text))._parse_expr()


class TestExprPrinting:
    @pytest.mark.parametrize(
        "text",
        [
            "a + b * c",
            "(a + b) * c",
            "a - (b - c)",
            "a / b / c",
            "2 ** 3 ** 2",
            "-a + b",
            "a * (-b)",
            "max(a, b) + sqrt(c)",
            "x(i - 1, j + 2)",
        ],
    )
    def test_round_trip_preserves_structure(self, text):
        original = expr_of(text)
        reparsed = expr_of(format_expr(original))
        assert reparsed == original

    def test_relational_uses_dotted_form(self):
        out = format_expr(expr_of("a .lt. b"))
        assert ".lt." in out

    def test_logical_literals(self):
        assert format_expr(ast.LogicalLit(True)) == ".true."

    def test_double_literal_uses_d_exponent(self):
        out = format_expr(ast.RealLit(2.5, is_double=True))
        assert "d" in out

    def test_minimal_parens(self):
        out = format_expr(expr_of("a + b + c"))
        assert "(" not in out


class TestStatementPrinting:
    def test_logical_if_one_line(self):
        src = (
            "program t\n      integer i, j\n"
            "      if (i .gt. 0) j = 1\n      end\n"
        )
        prog = parse_source(src)
        lines = format_stmt(prog.body[0])
        assert len(lines) == 1
        assert lines[0].strip().startswith("if (")

    def test_labeled_do_normalized_to_enddo(self):
        src = (
            "program t\n      real a(4)\n      integer i\n"
            "      do 10 i = 1, 4\n        a(i) = 0.0\n 10   continue\n"
            "      end\n"
        )
        prog = parse_source(src)
        text = "\n".join(format_stmt(prog.body[0]))
        assert "enddo" in text
        assert "continue" not in text


class TestProgramRoundTrip:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_print_parse_fixpoint(self, name):
        """print(parse(x)) is a normal form: printing the reparsed
        program reproduces the same text."""
        spec = PROGRAMS[name]
        kwargs = {"n": 16}
        if spec.has_time_loop:
            kwargs["maxiter"] = 2
        first = format_program(parse_source(spec.source(**kwargs)))
        second = format_program(parse_source(first))
        assert first == second

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_reprint_preserves_phase_structure(self, name):
        """The normalized source analyzes identically."""
        from repro.analysis import partition_phases
        from repro.frontend import build_symbol_table

        spec = PROGRAMS[name]
        kwargs = {"n": 16}
        if spec.has_time_loop:
            kwargs["maxiter"] = 2
        original = parse_source(spec.source(**kwargs))
        reprinted = parse_source(format_program(original))
        part_a = partition_phases(
            original, build_symbol_table(original)
        )
        part_b = partition_phases(
            reprinted, build_symbol_table(reprinted)
        )
        assert len(part_a) == len(part_b)
        for pa, pb in zip(part_a.phases, part_b.phases):
            assert pa.loop_var == pb.loop_var
            assert pa.arrays == pb.arrays


class TestGeneratedRoundTrip:
    """Property satellite of the QA fuzzer: for every generated program,
    parse(print(ast)) equals the normalized ast and printing is a
    fixpoint."""

    @pytest.mark.parametrize("seed", range(40))
    def test_parse_print_inverts_generator(self, seed):
        from repro.qa import generate_program, normalize_program

        case = generate_program(seed)
        reparsed = parse_source(case.source)
        assert normalize_program(reparsed) == normalize_program(case.program)
        assert format_program(reparsed) == case.source

    def test_round_trip_with_wide_configs(self):
        from repro.qa import (
            GeneratorConfig,
            generate_program,
            normalize_program,
        )

        config = GeneratorConfig(
            max_arrays=6, max_rank=3, max_phases=6, size=12,
            p_control_loop=0.5, p_branch=0.4,
        )
        for seed in range(20):
            case = generate_program(seed, config)
            reparsed = parse_source(case.source)
            assert normalize_program(reparsed) == normalize_program(
                case.program
            ), f"seed {seed}"


class TestHPFWriter:
    @pytest.fixture(scope="class")
    def dynamic_result(self):
        from repro.tool import AssistantConfig, run_assistant

        source = PROGRAMS["adi"].source(n=200, maxiter=2)
        return run_assistant(source, AssistantConfig(nprocs=16))

    def test_header_directives(self, dynamic_result):
        from repro.tool.hpf_writer import write_hpf

        text = write_hpf(dynamic_result)
        assert "!HPF$ processors procs(16)" in text
        assert "!HPF$ template t(200, 200)" in text
        assert "!HPF$ align x(i, j) with t" in text
        assert "!HPF$ distribute t(" in text

    def test_dynamic_layout_gets_realign_directives(self, dynamic_result):
        from repro.tool.hpf_writer import write_hpf

        assert dynamic_result.is_dynamic
        text = write_hpf(dynamic_result)
        assert "!HPF$ dynamic" in text
        assert "!HPF$ realign" in text

    def test_static_layout_has_no_remaps(self):
        from repro.tool import AssistantConfig, run_assistant
        from repro.tool.hpf_writer import write_hpf

        source = PROGRAMS["shallow"].source(n=64, maxiter=2)
        result = run_assistant(source, AssistantConfig(nprocs=4))
        text = write_hpf(result)
        assert "realign" not in text
        assert "!HPF$ dynamic" not in text

    def test_replicated_coefficient_uses_star(self):
        from repro.tool import AssistantConfig, run_assistant
        from repro.tool.hpf_writer import write_hpf

        source = PROGRAMS["erlebacher"].source(n=16)
        result = run_assistant(source, AssistantConfig(nprocs=4))
        text = write_hpf(result)
        # 1-D coefficient arrays align with one template dim, '*' others
        assert "!HPF$ align ax(i) with t(" in text
        align_line = next(
            l for l in text.splitlines() if "align ax(" in l
        )
        assert "*" in align_line

    def test_body_still_parses(self, dynamic_result):
        from repro.tool.hpf_writer import write_hpf

        text = write_hpf(dynamic_result)
        # strip directives: the remainder is valid subset Fortran
        stripped = "\n".join(
            l for l in text.splitlines() if not l.startswith("!HPF$")
        )
        reparsed = parse_source(stripped)
        assert reparsed.name == "adi"

    def test_cli_hpf_command(self, tmp_path, capsys):
        from repro.tool.cli import main

        out = tmp_path / "out.f"
        rc = main(["hpf", "--program", "shallow", "--size", "48",
                   "--procs", "4", "--maxiter", "2", "-o", str(out)])
        assert rc == 0
        assert out.read_text().startswith("program shallow")
