"""Phase partitioning tests (paper Section 2.1)."""

import pytest

from repro.analysis.phases import (
    Branch,
    ControlLoop,
    PhaseItem,
    ScalarItem,
    partition_phases,
)
from repro.frontend import build_symbol_table, parse_source


def partition(src, **kwargs):
    prog = parse_source(src)
    table = build_symbol_table(prog)
    return partition_phases(prog, table, **kwargs), table


SIMPLE = """
program t
      integer n
      parameter (n = 8)
      real a(n)
      integer i, t
      do t = 1, 5
        do i = 1, n
          a(i) = a(i) + 1.0
        enddo
      enddo
      end
"""


class TestPhaseDetection:
    def test_time_loop_is_control_not_phase(self):
        part, _ = partition(SIMPLE)
        assert len(part) == 1
        assert part.phases[0].loop_var == "i"

    def test_structure_tree_shape(self):
        part, _ = partition(SIMPLE)
        items = part.structure.items
        assert len(items) == 1
        assert isinstance(items[0], ControlLoop)
        assert items[0].trips == 5
        inner = items[0].body.items
        assert isinstance(inner[0], PhaseItem)

    def test_loop_with_var_in_subscript_is_phase(self):
        src = """
program t
      real a(8)
      integer i
      do i = 1, 8
        a(i) = 0.0
      enddo
      end
"""
        part, _ = partition(src)
        assert len(part) == 1

    def test_loop_without_subscript_use_descends(self):
        # Outer loop variable k never appears in a subscript; inner i does.
        src = """
program t
      real a(8)
      real s
      integer i, k
      do k = 1, 3
        s = 0.0
        do i = 1, 8
          a(i) = s
        enddo
      enddo
      end
"""
        part, _ = partition(src)
        assert len(part) == 1
        loop = part.structure.items[0]
        assert isinstance(loop, ControlLoop) and loop.var == "k"

    def test_scalar_statements_collected(self):
        src = """
program t
      real a(8)
      real s
      integer i
      s = 1.0
      do i = 1, 8
        a(i) = s
      enddo
      s = 2.0
      end
"""
        part, _ = partition(src)
        kinds = [type(i).__name__ for i in part.structure.items]
        assert kinds == ["ScalarItem", "PhaseItem", "ScalarItem"]

    def test_phase_arrays_and_writes(self):
        src = """
program t
      real a(8), b(8)
      integer i
      do i = 2, 8
        a(i) = b(i - 1)
      enddo
      end
"""
        part, _ = partition(src)
        phase = part.phases[0]
        assert phase.arrays == ("a", "b")
        assert phase.written_arrays == ("a",)

    def test_loop_nest_deepest(self):
        src = """
program t
      real a(4, 4, 4)
      integer i, j, k
      do k = 1, 4
        do j = 1, 4
          do i = 1, 4
            a(i, j, k) = 1.0
          enddo
        enddo
      enddo
      end
"""
        part, _ = partition(src)
        nest = part.phases[0].loop_nest()
        assert [l.var for l in nest] == ["k", "j", "i"]


BRANCHY = """
program t
      integer n
      parameter (n = 8)
      real a(n), b(n)
      real s
      integer i, t
      do t = 1, 4
        do i = 1, n
          a(i) = a(i) + 1.0
        enddo
        if (s .gt. 0.0) then
          do i = 1, n
            b(i) = a(i)
          enddo
        endif
      enddo
      end
"""


class TestBranches:
    def test_branch_with_loop_becomes_branch_item(self):
        part, _ = partition(BRANCHY)
        loop = part.structure.items[0]
        kinds = [type(i).__name__ for i in loop.body.items]
        assert "Branch" in kinds

    def test_default_probability(self):
        part, _ = partition(BRANCHY)
        loop = part.structure.items[0]
        branch = next(
            i for i in loop.body.items if isinstance(i, Branch)
        )
        assert branch.prob == pytest.approx(0.5)

    def test_probability_override_by_line(self):
        if_line = next(
            i for i, line in enumerate(BRANCHY.splitlines(), start=1)
            if "if (s" in line
        )
        part, _ = partition(BRANCHY, branch_prob_overrides={if_line: 0.8})
        loop = part.structure.items[0]
        branch = next(
            i for i in loop.body.items if isinstance(i, Branch)
        )
        assert branch.prob == pytest.approx(0.8)

    def test_scalar_if_stays_scalar(self):
        src = """
program t
      real a(8)
      real s
      integer i
      do i = 1, 8
        a(i) = s
      enddo
      if (s .gt. 0.0) then
        s = 0.0
      endif
      end
"""
        part, _ = partition(src)
        kinds = [type(i).__name__ for i in part.structure.items]
        assert kinds == ["PhaseItem", "ScalarItem"]


class TestPaperPhaseCounts:
    @pytest.mark.parametrize(
        "fixture_name,expected",
        [
            ("adi_small", 9),
            ("erlebacher_small", 40),
            ("tomcatv_small", 17),
            ("shallow_small", 28),
        ],
    )
    def test_counts_match_paper(self, fixture_name, expected, request):
        _prog, _sym, part, _pcfg = request.getfixturevalue(fixture_name)
        assert len(part) == expected
