"""Differential property: the batched (vectorized) estimator is *bitwise*
equal to the legacy scalar estimator — same compute, communication and
pipeline components for every (phase, candidate) pair.

The equality is exact, not approximate: the batched path replays the
very same IEEE-754 operations the scalar path performs (``np.interp``
matches the two-point interpolation of ``TrainingSet.predict`` element
for element, and the collect/replay assembly preserves the scalar
accumulation order), so any drift is a bug, not noise.

Covers the committed QA corpus, 50 fresh generator programs, the four
paper programs, and the fan-out (job runner) variants.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.machine import IPSC860
from repro.perf.batch import (
    estimate_phase_batch,
    estimate_phase_candidates_batched,
    price_requests,
)
from repro.perf.estimator import (
    ESTIMATION_MODES,
    estimate_search_spaces,
)
from repro.perf.training import cached_training_database
from repro.programs import PROGRAMS
from repro.qa import load_corpus
from repro.qa.generator import GeneratorConfig, generate_program
from repro.qa.runner import run_fuzz
from repro.tool.assistant import AssistantConfig, run_assistant

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = load_corpus(CORPUS_DIR)

#: fresh generator seeds, disjoint from the committed corpus seeds
FRESH_SEEDS = list(range(2000, 2050))


def assert_estimates_identical(scalar, batched, label):
    __tracebackhint__ = True
    assert sorted(scalar.per_phase) == sorted(batched.per_phase), label
    for idx in sorted(scalar.per_phase):
        s_list = scalar.per_phase[idx]
        b_list = batched.per_phase[idx]
        assert len(s_list) == len(b_list), f"{label}: phase {idx}"
        for pos, (s, b) in enumerate(zip(s_list, b_list)):
            se, be = s.estimate, b.estimate
            where = f"{label}: phase {idx} candidate {pos}"
            assert se.exec_class == be.exec_class, where
            assert se.compute == be.compute, where
            assert se.communication == be.communication, where
            assert se.pipeline == be.pipeline, where
            assert s.total == b.total, where


def both_modes(result):
    """Price ``result``'s search spaces in both modes."""
    out = {}
    for mode in ESTIMATION_MODES:
        out[mode] = estimate_search_spaces(
            result.partition.phases, result.layout_spaces,
            result.symbols, result.config.machine, db=result.db,
            options=result.config.compiler, mode=mode,
        )
    return out["scalar"], out["batched"]


class TestCorpusEquivalence:
    @pytest.mark.parametrize(
        "case", CORPUS, ids=[case.name for case in CORPUS]
    )
    def test_batched_equals_scalar_on_corpus(self, case):
        result = run_assistant(
            case.source, AssistantConfig(nprocs=case.nprocs)
        )
        scalar, batched = both_modes(result)
        assert_estimates_identical(scalar, batched, case.name)


class TestGeneratedEquivalence:
    def test_batched_equals_scalar_on_fresh_programs(self):
        # Control loops only scale PCFG transition frequencies — they do
        # not change per-candidate pricing, which is what this property
        # tests — and some looped PCFGs make the (pre-existing)
        # absorbed-flow transition pass pathologically slow.  Keep the
        # corpus in the straight-line regime so 50 programs stay cheap.
        config = GeneratorConfig(p_control_loop=0.0)
        for seed in FRESH_SEEDS:
            case = generate_program(seed, config)
            result = run_assistant(case.source, AssistantConfig(nprocs=4))
            scalar, batched = both_modes(result)
            assert_estimates_identical(scalar, batched, f"seed {seed}")


class TestPaperProgramEquivalence:
    @pytest.mark.parametrize(
        "name", ["adi", "erlebacher", "tomcatv", "shallow"]
    )
    def test_batched_equals_scalar(self, name):
        result = run_assistant(
            PROGRAMS[name].source(), AssistantConfig(nprocs=8)
        )
        scalar, batched = both_modes(result)
        assert_estimates_identical(scalar, batched, name)

    @pytest.mark.parametrize(
        "name", ["adi", "erlebacher", "tomcatv", "shallow"]
    )
    def test_pipeline_results_identical_across_modes(self, name):
        source = PROGRAMS[name].source()
        results = {
            mode: run_assistant(source, AssistantConfig(
                nprocs=8, estimation_mode=mode
            ))
            for mode in ESTIMATION_MODES
        }
        ref = results["scalar"]
        for mode, res in results.items():
            assert res.selection.selection == ref.selection.selection, mode
            assert res.selection.objective == ref.selection.objective, mode


class TestFanOutEquivalence:
    def serial_runner(self, fn, argtuples):
        return [fn(*args) for args in argtuples]

    def test_chunked_jobs_equal_serial(self, adi_assistant):
        result = adi_assistant
        serial = estimate_search_spaces(
            result.partition.phases, result.layout_spaces,
            result.symbols, result.config.machine, db=result.db,
            options=result.config.compiler, mode="batched",
        )
        fanned = estimate_search_spaces(
            result.partition.phases, result.layout_spaces,
            result.symbols, result.config.machine, db=result.db,
            options=result.config.compiler, mode="batched",
            job_runner=self.serial_runner,
        )
        assert_estimates_identical(serial, fanned, "fan-out")

    def test_batch_job_is_pure_and_ordered(self, adi_assistant):
        result = adi_assistant
        phase_by_index = {p.index: p for p in result.partition.phases}
        chunk = [
            (phase_by_index[idx], cands)
            for idx, cands in sorted(result.layout_spaces.per_phase.items())
        ]
        once = estimate_phase_batch(
            chunk, result.symbols, result.config.machine, result.db,
            result.layout_spaces.nprocs, result.config.compiler,
        )
        twice = estimate_phase_batch(
            chunk, result.symbols, result.config.machine, result.db,
            result.layout_spaces.nprocs, result.config.compiler,
        )
        assert len(once) == len(chunk)
        for a_list, b_list in zip(once, twice):
            for a, b in zip(a_list, b_list):
                assert a.estimate == b.estimate

    def test_unknown_mode_rejected(self, adi_assistant):
        result = adi_assistant
        with pytest.raises(ValueError, match="unknown estimation mode"):
            estimate_search_spaces(
                result.partition.phases, result.layout_spaces,
                result.symbols, result.config.machine, db=result.db,
                options=result.config.compiler, mode="turbo",
            )


class TestCostTablePricing:
    def test_price_requests_matches_scalar_predicts(self):
        db = cached_training_database(IPSC860)
        requests = []
        for pattern in ("shift", "broadcast", "transpose", "reduction"):
            for procs in (1, 4, 8):
                for nbytes in (0, 7, 512, 65536, 10**8):
                    requests.append(
                        (pattern, procs, nbytes, "unit", "low")
                    )
                    requests.append(
                        (pattern, procs, nbytes, "nonunit", "high")
                    )
        table = price_requests(db, requests)
        for req, priced in zip(requests, table.values):
            pattern, procs, nbytes, stride, latency = req
            direct = db.predict(
                pattern, procs, nbytes, stride=stride, latency=latency
            )
            assert priced == direct, req

    def test_predict_many_matches_predict_elementwise(self):
        db = cached_training_database(IPSC860)
        rng = np.random.default_rng(42)
        sizes = np.concatenate([
            rng.integers(0, 2**26, size=200).astype(np.float64),
            np.array([0.0, 1.0, 3.5, 2.0**40]),
        ])
        for key, ts in sorted(
            db.sets.items(),
            key=lambda kv: (kv[0].pattern, kv[0].procs, kv[0].stride,
                            kv[0].latency),
        ):
            many = ts.predict_many(sizes)
            for x, y in zip(sizes.tolist(), many.tolist()):
                assert y == ts.predict(x), (key, x)


class TestFuzzWiring:
    def test_estimator_batch_check_is_registered(self):
        report = run_fuzz(seed=900, cases=5, checks=["estimator-batch"])
        assert report.ok, report.summary()
        assert report.checks_run.get("estimator-batch") == 5
