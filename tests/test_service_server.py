"""The TCP server end to end: protocol ops, cache-hit behavior over the
wire, parity with a direct ``analyze`` run, stats, and the CLI client."""

from __future__ import annotations

import json

import pytest

from repro.service import (
    LayoutServer,
    LayoutService,
    WorkerPool,
    send_request,
)
from repro.service.protocol import LayoutRequest, serialize_layout
from repro.tool.assistant import AssistantConfig, run_assistant
from repro.tool.cli import main

REQUEST = {
    "op": "analyze",
    "program": "adi",
    "size": 32,
    "maxiter": 2,
    "procs": 4,
}


@pytest.fixture(scope="module")
def endpoint(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("service-cache"))
    service = LayoutService(cache_dir=cache_dir,
                            pool=WorkerPool(kind="thread", max_workers=4))
    server = LayoutServer(("127.0.0.1", 0), service)
    server.serve_background()
    yield "127.0.0.1", server.port
    server.shutdown()
    server.server_close()
    service.close()


class TestProtocolOps:
    def test_ping(self, endpoint):
        host, port = endpoint
        assert send_request({"op": "ping"}, host, port) == \
            {"ok": True, "op": "ping"}

    def test_unknown_op(self, endpoint):
        host, port = endpoint
        resp = send_request({"op": "frobnicate"}, host, port)
        assert not resp["ok"]
        assert resp["error_kind"] == "bad-request"

    def test_validation_error(self, endpoint):
        host, port = endpoint
        resp = send_request(
            {"op": "analyze", "program": "no-such-program", "procs": 4},
            host, port,
        )
        assert not resp["ok"]
        assert resp["error_kind"] == "bad-request"
        assert "no-such-program" in resp["error"]

    def test_bad_json_line(self, endpoint):
        import socket

        host, port = endpoint
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(b"this is not json\n")
            line = sock.makefile("rb").readline()
        resp = json.loads(line)
        assert not resp["ok"]
        assert resp["error_kind"] == "bad-request"


class TestAnalyzeOverTcp:
    def test_second_request_hits_and_matches_direct_run(self, endpoint):
        host, port = endpoint
        first = send_request(dict(REQUEST), host, port)
        second = send_request(dict(REQUEST), host, port)
        assert first["ok"] and second["ok"]
        assert second["cache_hits"] == len(second["stage_timings"])
        assert second["layouts"] == first["layouts"]

        # parity with a cold, direct, serial analyze run
        request = LayoutRequest.from_dict(dict(REQUEST))
        direct = run_assistant(
            request.resolve_source(), AssistantConfig(nprocs=4)
        )
        expected = {
            str(idx): serialize_layout(layout)
            for idx, layout in sorted(direct.selected_layouts.items())
        }
        assert first["layouts"] == expected
        assert first["predicted_total_us"] == direct.predicted_total_us

    def test_stats_reports_hits_misses_and_timings(self, endpoint):
        host, port = endpoint
        send_request(dict(REQUEST), host, port)
        resp = send_request({"op": "stats"}, host, port)
        assert resp["ok"]
        stats = resp["stats"]
        assert stats["cache"]["hits"] >= 1
        assert stats["cache"]["misses"] >= 1
        assert stats["counters"]["requests_total"] >= 2
        for stage in ("frontend", "partition", "alignment",
                      "distribution", "estimation", "selection"):
            hist = stats["stage_seconds"][stage]
            assert hist["count"] >= 1
            assert hist["sum"] > 0.0
        assert stats["pool"]["active_kind"] == "thread"
        assert stats["cache"]["disk_entries"]

    def test_request_id_echoed(self, endpoint):
        host, port = endpoint
        resp = send_request(dict(REQUEST, request_id="req-42"), host, port)
        assert resp["ok"]
        assert resp["request_id"] == "req-42"


class TestCliClient:
    def test_request_command(self, endpoint, capsys):
        host, port = endpoint
        rc = main(["request", "--program", "adi", "--size", "32",
                   "--maxiter", "2", "--procs", "4",
                   "--host", host, "--port", str(port)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "predicted execution time" in out
        assert "TEMPLATE" in out

    def test_request_json_output(self, endpoint, capsys):
        host, port = endpoint
        rc = main(["request", "--program", "adi", "--size", "32",
                   "--maxiter", "2", "--procs", "4", "--json",
                   "--host", host, "--port", str(port)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"]
        assert payload["layouts"]

    def test_service_stats_command(self, endpoint, capsys):
        host, port = endpoint
        rc = main(["service", "stats",
                   "--host", host, "--port", str(port)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "requests:" in out
        assert "cache:" in out
        assert "stage timings" in out


class TestRequestDeadline:
    def test_request_timeout_returns_error_response(self, tmp_path):
        service = LayoutService(
            cache_dir=str(tmp_path / "cache"),
            pool=WorkerPool(kind="serial"),
            request_timeout=1e-6,
        )
        try:
            resp = service.analyze_dict(dict(REQUEST))
        finally:
            service.close()
        assert not resp["ok"]
        assert resp["error_kind"] == "timeout"

    def test_shutdown_op(self, tmp_path):
        service = LayoutService(pool=WorkerPool(kind="serial"))
        server = LayoutServer(("127.0.0.1", 0), service)
        thread = server.serve_background()
        resp = send_request({"op": "shutdown"}, "127.0.0.1", server.port)
        assert resp["ok"]
        assert resp["op"] == "shutdown"
        assert resp["draining"] is True
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.server_close()
        service.close()
