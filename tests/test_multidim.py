"""Multi-dimensional distribution support (the paper's primary
future-work item, implemented as an extension)."""

import pytest

from repro.analysis.phases import partition_phases
from repro.codegen.comm import ShiftComm
from repro.codegen.spmd import compile_phase, compile_program
from repro.distribution.layouts import (
    BLOCK,
    SERIAL,
    Alignment,
    DataLayout,
    DimDistribution,
    Distribution,
)
from repro.distribution.template import Template
from repro.frontend import build_symbol_table, parse_source
from repro.machine import IPSC860, simulate
from repro.perf import cached_training_database, price_phase

DECLS = (
    "      integer n\n      parameter (n = 16)\n"
    "      double precision a(n, n), b(n, n)\n"
    "      integer i, j\n"
)


def grid_layout(p0, p1):
    dims = (
        DimDistribution(kind=BLOCK, procs=p0) if p0 > 1
        else DimDistribution(kind=SERIAL),
        DimDistribution(kind=BLOCK, procs=p1) if p1 > 1
        else DimDistribution(kind=SERIAL),
    )
    return DataLayout.build(
        template=Template(rank=2, extents=(16, 16)),
        alignments={n: Alignment.canonical(2) for n in ("a", "b")},
        distribution=Distribution(dims=dims),
    )


def compiled_for(body, layout):
    src = f"program t\n{DECLS}{body}      end\n"
    prog = parse_source(src)
    table = build_symbol_table(prog)
    part = partition_phases(prog, table)
    return compile_phase(part.phases[0], layout, table, IPSC860), part, table


FULL = (
    "      do j = 1, n\n        do i = 1, n\n"
    "          a(i, j) = b(i, j) + 1.0\n        enddo\n      enddo\n"
)

STENCIL2D = (
    "      do j = 2, n\n        do i = 2, n\n"
    "          a(i, j) = b(i - 1, j) + b(i, j - 1)\n"
    "        enddo\n      enddo\n"
)

SWEEP = (
    "      do j = 1, n\n        do i = 2, n\n"
    "          a(i, j) = a(i, j) - a(i - 1, j)\n"
    "        enddo\n      enddo\n"
)


class TestPartitioning:
    def test_both_dims_partitioned(self):
        compiled, _p, _t = compiled_for(FULL, grid_layout(2, 2))
        plan = compiled.plans[0]
        assert len(plan.partitions) == 2
        assert plan.partition_divisor() == 4
        assert plan.grid == ((0, 2), (1, 2))

    def test_local_iterations_split_both_ways(self):
        compiled, _p, _t = compiled_for(FULL, grid_layout(2, 2))
        plan = compiled.plans[0]
        counts = [plan.local_iters_rank(r) for r in range(4)]
        assert counts == [64, 64, 64, 64]
        assert sum(counts) == plan.total_iterations()

    def test_uneven_grid_blocks(self):
        compiled, _p, _t = compiled_for(FULL, grid_layout(4, 2))
        plan = compiled.plans[0]
        counts = [plan.local_iters_rank(r) for r in range(8)]
        assert sum(counts) == 256
        assert all(c == 32 for c in counts)

    def test_grid_coords_round_trip(self):
        compiled, _p, _t = compiled_for(FULL, grid_layout(4, 2))
        plan = compiled.plans[0]
        for rank in range(8):
            coords = plan.grid_coords(rank)
            assert plan.grid_rank(coords) == rank


class TestCommunication:
    def test_shifts_along_both_axes(self):
        compiled, _p, _t = compiled_for(STENCIL2D, grid_layout(2, 2))
        shifts = [
            c for c in compiled.plans[0].comms if isinstance(c, ShiftComm)
        ]
        dims = {s.template_dim for s in shifts}
        assert dims == {0, 1}

    def test_slab_divided_by_orthogonal_axis(self):
        one_d, _p, _t = compiled_for(STENCIL2D, grid_layout(2, 1))
        two_d, _p, _t = compiled_for(STENCIL2D, grid_layout(2, 2))
        shift_1d = next(
            c for c in one_d.plans[0].comms
            if isinstance(c, ShiftComm) and c.template_dim == 0
        )
        shift_2d = next(
            c for c in two_d.plans[0].comms
            if isinstance(c, ShiftComm) and c.template_dim == 0
        )
        assert shift_2d.nbytes == shift_1d.nbytes // 2
        assert shift_2d.procs == 2

    def test_simulated_messages_route_along_axes(self):
        src = f"program t\n{DECLS}{STENCIL2D}      end\n"
        prog = parse_source(src)
        table = build_symbol_table(prog)
        part = partition_phases(prog, table)
        layout = grid_layout(2, 2)
        builder = compile_program(part, table, {0: layout}, IPSC860, 4)
        result = simulate(builder.programs, IPSC860, builder.collectives)
        # 2 boundary pairs per axis x 2 axes = 4 messages
        assert result.stats.messages == 4
        assert result.makespan > 0


class TestPipelinesOnGrids:
    def test_chain_procs_is_axis_length(self):
        compiled, _p, _t = compiled_for(SWEEP, grid_layout(4, 2))
        pipe = compiled.plans[0].pipeline
        assert pipe is not None
        assert pipe.chain_procs == 4
        # stages: j loop (16 trips) split over the orthogonal axis (2)
        assert pipe.stages == 8

    def test_parallel_chains_beat_single_chain(self):
        """A 4x2 grid runs two independent 4-processor pipelines, beating
        an 8-processor single chain of the same sweep."""
        src = f"program t\n{DECLS}{SWEEP}      end\n"
        prog = parse_source(src)
        table = build_symbol_table(prog)

        def measure(layout):
            part = partition_phases(prog, table)
            builder = compile_program(part, table, {0: layout}, IPSC860, 8)
            return simulate(
                builder.programs, IPSC860, builder.collectives
            ).makespan

        grid = measure(grid_layout(4, 2))
        chain = measure(grid_layout(8, 1))
        assert grid < chain

    def test_estimator_tracks_grid_pipelines(self):
        db = cached_training_database(IPSC860)
        for shape in ((4, 2), (8, 1), (2, 4)):
            compiled, _p, _t = compiled_for(SWEEP, grid_layout(*shape))
            estimate = price_phase(compiled, db, 8)
            assert estimate.pipeline > 0


class TestReductionsOnGrids:
    def test_reduction_partitioned_on_both_axes(self):
        body = (
            "      do j = 1, n\n        do i = 1, n\n"
            "          s = s + a(i, j)\n        enddo\n      enddo\n"
        )
        src = (
            f"program t\n{DECLS}      double precision s\n{body}      end\n"
        )
        prog = parse_source(src)
        table = build_symbol_table(prog)
        part = partition_phases(prog, table)
        layout = grid_layout(2, 2)
        compiled = compile_phase(part.phases[0], layout, table, IPSC860)
        plan = compiled.plans[0]
        assert plan.partition_divisor() == 4
        counts = [plan.local_iters_rank(r) for r in range(4)]
        assert sum(counts) == 256
