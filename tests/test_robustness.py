"""Robustness and failure-injection tests: malformed inputs, degenerate
configurations, and graceful-degradation paths."""

import pytest

from repro.frontend import parse_source
from repro.frontend.lexer import LexError
from repro.frontend.parser import ParseError
from repro.tool import AssistantConfig, measure_layouts, run_assistant

WRAP = (
    "program t\n"
    "      integer n\n      parameter (n = 12)\n"
    "      double precision a(n, n), b(n, n)\n"
    "      integer i, j\n"
    "{body}"
    "      end\n"
)


def assistant_for(body, nprocs=4):
    return run_assistant(
        WRAP.format(body=body), AssistantConfig(nprocs=nprocs)
    )


class TestDegenerateInputs:
    def test_no_arrays_is_an_error(self):
        src = "program t\n      real x\n      x = 1.0\n      end\n"
        with pytest.raises(ValueError):
            run_assistant(src, AssistantConfig(nprocs=4))

    def test_goto_rejected_cleanly(self):
        src = "program t\n      real a(4)\n      goto 10\n      end\n"
        with pytest.raises(ParseError):
            parse_source(src)

    def test_unbalanced_do_rejected(self):
        src = (
            "program t\n      real a(4)\n      integer i\n"
            "      do i = 1, 4\n        a(i) = 0.0\n      end\n"
        )
        with pytest.raises(ParseError):
            parse_source(src)

    def test_bad_character_rejected(self):
        with pytest.raises(LexError):
            parse_source("program t\n      x = $\n      end\n")

    def test_program_without_phases_degrades_gracefully(self):
        """Arrays declared but only scalar statements: no phases, an
        empty selection, zero predicted cost — not a crash."""
        src = (
            "program t\n      real a(4)\n      real s\n"
            "      s = 1.0\n      end\n"
        )
        result = run_assistant(src, AssistantConfig(nprocs=4))
        assert len(result.partition) == 0
        assert result.selection.selection == {}
        assert result.predicted_total_us == 0.0


class TestUnusualButLegal:
    def test_non_affine_subscripts_survive(self):
        """i*j subscripts cannot be analyzed; the phase still gets a
        layout (conservative: no alignment preference, no partitioning
        benefit assumed)."""
        result = assistant_for(
            "      do j = 1, n\n        do i = 1, n\n"
            "          a(i, j) = b(i * j / n + 1, j)\n"
            "        enddo\n      enddo\n"
        )
        assert len(result.partition) == 1
        assert result.predicted_total_us > 0

    def test_zero_trip_loop(self):
        result = assistant_for(
            "      do j = 1, n\n        do i = 5, 4\n"
            "          a(i, j) = 0.0\n        enddo\n      enddo\n"
        )
        assert result.predicted_total_us >= 0

    def test_single_processor(self):
        result = assistant_for(
            "      do j = 1, n\n        do i = 2, n\n"
            "          a(i, j) = a(i - 1, j)\n        enddo\n      enddo\n",
            nprocs=1,
        )
        m = measure_layouts(
            WRAP.format(
                body="      do j = 1, n\n        do i = 2, n\n"
                     "          a(i, j) = a(i - 1, j)\n"
                     "        enddo\n      enddo\n"
            ),
            result.selected_layouts,
            nprocs=1,
        )
        assert m.messages == 0  # nothing to communicate

    def test_non_power_of_two_processors(self):
        """The iPSC was a power-of-two hypercube, but the framework only
        needs it for hop counts; 6 processors work end to end."""
        body = (
            "      do j = 1, n\n        do i = 2, n\n"
            "          a(i, j) = b(i - 1, j)\n        enddo\n      enddo\n"
        )
        result = assistant_for(body, nprocs=6)
        m = measure_layouts(
            WRAP.format(body=body), result.selected_layouts, nprocs=6
        )
        assert m.makespan_us > 0

    def test_more_processors_than_extent(self):
        body = (
            "      do j = 1, n\n        do i = 1, n\n"
            "          a(i, j) = b(i, j)\n        enddo\n      enddo\n"
        )
        result = assistant_for(body, nprocs=32)  # n = 12 < 32
        m = measure_layouts(
            WRAP.format(body=body), result.selected_layouts, nprocs=32
        )
        assert m.makespan_us > 0

    def test_control_loop_over_localized_phase(self):
        # 2-D arrays inside a triply nested loop: outer loop is control.
        result = assistant_for(
            "      do i = 1, 3\n"
            "        do j = 1, n\n"
            "          a(1, j) = a(1, j) + 1.0\n"
            "        enddo\n      enddo\n"
        )
        assert result.predicted_total_us > 0

    def test_self_copy_statement(self):
        result = assistant_for(
            "      do j = 1, n\n        do i = 1, n\n"
            "          a(i, j) = a(i, j)\n        enddo\n      enddo\n"
        )
        assert result.predicted_total_us > 0

    def test_constant_only_phase(self):
        """A 1-D loop writing a fixed row: localized execution."""
        result = assistant_for(
            "      do j = 1, n\n"
            "        a(3, j) = b(3, j) * 2.0\n      enddo\n"
        )
        assert result.predicted_total_us > 0

    def test_empty_then_branch(self):
        result = assistant_for(
            "      do j = 1, n\n        do i = 1, n\n"
            "          if (a(i, j) .gt. 0.0) then\n"
            "            b(i, j) = 1.0\n"
            "          endif\n"
            "        enddo\n      enddo\n"
        )
        assert result.predicted_total_us > 0

    def test_negative_parameter(self):
        src = (
            "program t\n"
            "      integer off\n      parameter (off = -1)\n"
            "      double precision a(8)\n      integer i\n"
            "      do i = 2, 8\n        a(i) = a(i + off)\n      enddo\n"
            "      end\n"
        )
        result = run_assistant(src, AssistantConfig(nprocs=2))
        assert result.predicted_total_us > 0


class TestMeasurementRobustness:
    def test_wrong_phase_count_layouts_rejected(self, adi_assistant,
                                                adi_small_source):
        partial = dict(list(adi_assistant.selected_layouts.items())[:3])
        with pytest.raises(KeyError):
            measure_layouts(adi_small_source, partial, nprocs=4)

    def test_measurement_deterministic(self, adi_assistant,
                                       adi_small_source):
        a = measure_layouts(
            adi_small_source, adi_assistant.selected_layouts, nprocs=4
        )
        b = measure_layouts(
            adi_small_source, adi_assistant.selected_layouts, nprocs=4
        )
        assert a.makespan_us == b.makespan_us
        assert a.messages == b.messages
