"""Lexer unit tests."""

import pytest

from repro.frontend.lexer import (
    EOF,
    INT,
    LABEL,
    LexError,
    NAME,
    NEWLINE,
    OP,
    REAL,
    Token,
    tokenize,
)


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source) if t.kind not in (NEWLINE, EOF)]


class TestBasicTokens:
    def test_names_are_lowercased(self):
        assert values("FOO Bar baz") == ["foo", "bar", "baz"]

    def test_integer_literal(self):
        toks = tokenize("42")
        assert toks[0].kind == INT
        assert toks[0].value == "42"

    def test_real_literal_forms(self):
        for text in ("1.5", ".5", "2.", "1e3", "1.5e-3", "2.5E+2"):
            toks = tokenize(text)
            assert toks[0].kind == REAL, text

    def test_double_precision_literal(self):
        toks = tokenize("1.5d0")
        assert toks[0].kind == REAL
        assert toks[0].value == "1.5d0"

    def test_operators(self):
        assert values("a + b * c ** 2 / d - e") == [
            "a", "+", "b", "*", "c", "**", "2", "/", "d", "-", "e",
        ]

    def test_parens_and_commas(self):
        assert values("a(i, j)") == ["a", "(", "i", ",", "j", ")"]

    def test_ends_with_eof(self):
        assert tokenize("x")[-1].kind == EOF

    def test_empty_source(self):
        toks = tokenize("")
        assert [t.kind for t in toks] == [EOF]


class TestDottedOperators:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("a .lt. b", "<"),
            ("a .le. b", "<="),
            ("a .gt. b", ">"),
            ("a .ge. b", ">="),
            ("a .eq. b", "=="),
            ("a .ne. b", "/="),
        ],
    )
    def test_relational(self, src, expected):
        assert expected in values(src)

    def test_logical_ops(self):
        assert values("a .and. b .or. .not. c") == [
            "a", ".and.", "b", ".or.", ".not.", "c",
        ]

    def test_logical_literals(self):
        assert values(".true. .false.") == [".true.", ".false."]

    def test_case_insensitive(self):
        assert "<" in values("a .LT. b")


class TestCommentsAndLines:
    def test_full_line_comment_c(self):
        assert values("c this is a comment\nx = 1") == ["x", "=", "1"]

    def test_full_line_comment_star(self):
        assert values("* comment\nx = 1") == ["x", "=", "1"]

    def test_inline_comment(self):
        assert values("x = 1 ! trailing") == ["x", "=", "1"]

    def test_blank_lines_skipped(self):
        src = "a = 1\n\n\nb = 2"
        newline_count = kinds(src).count(NEWLINE)
        assert newline_count == 2

    def test_line_numbers(self):
        toks = tokenize("a = 1\nb = 2")
        b_tok = next(t for t in toks if t.value == "b")
        assert b_tok.line == 2


class TestContinuation:
    def test_ampersand_joins_lines(self):
        src = "x = a +&\n    b"
        assert values(src) == ["x", "=", "a", "+", "b"]
        assert kinds(src).count(NEWLINE) == 1

    def test_multiple_continuations(self):
        src = "x = a +&\n  b +&\n  c"
        assert values(src) == ["x", "=", "a", "+", "b", "+", "c"]

    def test_continued_line_number_is_first_line(self):
        toks = tokenize("junk\nx = a +&\n  b")
        b_tok = next(t for t in toks if t.value == "b")
        assert b_tok.line == 2


class TestLabels:
    def test_label_token(self):
        toks = tokenize(" 10   continue")
        assert toks[0].kind == LABEL
        assert toks[0].value == "10"
        assert toks[1].value == "continue"

    def test_lone_integer_is_not_label(self):
        toks = tokenize("42")
        assert toks[0].kind == INT

    def test_label_on_assignment(self):
        toks = tokenize(" 20 x = 1")
        assert toks[0].kind == LABEL
        assert toks[1].kind == NAME


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as err:
            tokenize("x = #")
        assert "line 1" in str(err.value)

    def test_error_reports_line(self):
        with pytest.raises(LexError) as err:
            tokenize("ok = 1\nbad ?")
        assert err.value.line == 2
