"""Tests for the DOT export and memory-footprint utilities."""

import pytest

from repro.tool.graphviz import export_dot, layout_graph_to_dot, pcfg_to_dot
from repro.tool.memory import (
    DEFAULT_NODE_BYTES,
    MemoryReport,
    memory_footprint,
)


class TestDotExport:
    def test_pcfg_dot_structure(self, adi_assistant):
        dot = pcfg_to_dot(adi_assistant.pcfg)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        # all phases present, entry/exit marked
        for idx in range(9):
            assert f"phase {idx}" in dot
        assert "entry" in dot and "exit" in dot

    def test_pcfg_dot_edge_frequencies(self, adi_assistant):
        dot = pcfg_to_dot(adi_assistant.pcfg)
        # the time loop runs twice: back-edge labelled 1
        assert 'label="1"' in dot

    def test_layout_graph_dot(self, adi_assistant):
        dot = layout_graph_to_dot(
            adi_assistant.graph, adi_assistant.selection.selection
        )
        assert "cluster_0" in dot and "cluster_8" in dot
        assert "palegreen" in dot  # selected candidates highlighted
        assert "ms" in dot

    def test_selected_remap_edges_highlighted(self):
        from repro.programs import PROGRAMS
        from repro.tool import AssistantConfig, run_assistant

        result = run_assistant(
            PROGRAMS["adi"].source(n=200, maxiter=2),
            AssistantConfig(nprocs=16),
        )
        assert result.is_dynamic
        dot = layout_graph_to_dot(result.graph, result.selection.selection)
        assert 'color="red"' in dot

    def test_export_dot_bundle(self, adi_assistant):
        bundle = export_dot(adi_assistant)
        assert set(bundle) == {"pcfg.dot", "layout_graph.dot"}
        for text in bundle.values():
            assert text.count("{") == text.count("}")


class TestMemoryFootprint:
    def test_distribution_divides_footprint(self, adi_assistant):
        report = memory_footprint(
            adi_assistant.symbols, adi_assistant.selected_layouts
        )
        # 6 arrays of 32x32 doubles over 4 procs, plus ghost overhead
        expected_local = 6 * (32 * 32 * 8 // 4)
        assert report.total_bytes == pytest.approx(
            expected_local * 1.05, rel=0.01
        )
        assert report.fits

    def test_per_array_entries(self, adi_assistant):
        report = memory_footprint(
            adi_assistant.symbols, adi_assistant.selected_layouts
        )
        assert set(report.per_array) == {"a", "b", "c", "d", "f", "x"}

    def test_replicated_array_charged_fully(self):
        from repro.programs import PROGRAMS
        from repro.tool import AssistantConfig, run_assistant

        result = run_assistant(
            PROGRAMS["erlebacher"].source(n=16), AssistantConfig(nprocs=4)
        )
        report = memory_footprint(result.symbols, result.selected_layouts)
        # 1-D coefficient arrays replicated along undistributed dims:
        # their local share is the full vector
        assert report.per_array["ax"] >= 16 * 8

    def test_does_not_fit_detection(self, adi_assistant):
        report = memory_footprint(
            adi_assistant.symbols, adi_assistant.selected_layouts,
            node_bytes=1024,
        )
        assert not report.fits
        assert report.utilization > 1.0
        assert "DOES NOT FIT" in str(report)

    def test_grid_skips_are_memory_motivated(self):
        """The largest two-processor cases excluded from the Tomcatv and
        Shallow grids genuinely exceed the simulated node memory (while
        the same problems fit from four processors up, and Adi's largest
        case fits even on two nodes)."""
        from repro.programs import PROGRAMS
        from repro.tool import AssistantConfig, run_assistant

        for name, dtype, n in (("tomcatv", "double", 544),
                               ("shallow", "real", 520)):
            source = PROGRAMS[name].source(n=n, dtype=dtype, maxiter=2)
            result = run_assistant(source, AssistantConfig(nprocs=2))
            report = memory_footprint(
                result.symbols, result.selected_layouts
            )
            assert not report.fits, name
            # ...while the four-processor runs fit.
            result4 = run_assistant(source, AssistantConfig(nprocs=4))
            report4 = memory_footprint(
                result4.symbols, result4.selected_layouts
            )
            assert report4.fits, name
