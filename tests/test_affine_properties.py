"""Property-based tests of affine subscript analysis: render a random
affine form to AST text, re-analyze, recover the same coefficients."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.references import analyze_subscript
from repro.frontend.lexer import tokenize
from repro.frontend.parser import Parser

VARS = ["i", "j", "k"]


def expr_of(text):
    return Parser(tokenize(text))._parse_expr()


@st.composite
def affine_form(draw):
    coeffs = {}
    for var in VARS:
        if draw(st.booleans()):
            c = draw(st.integers(min_value=-9, max_value=9))
            if c != 0:
                coeffs[var] = c
    const = draw(st.integers(min_value=-20, max_value=20))
    return coeffs, const


def render(coeffs, const):
    """Spell the affine form as Fortran expression text (several
    equivalent spellings chosen arbitrarily but deterministically)."""
    parts = []
    for var, c in sorted(coeffs.items()):
        if c == 1:
            parts.append(f"+ {var}")
        elif c == -1:
            parts.append(f"- {var}")
        elif c > 0:
            parts.append(f"+ {c} * {var}")
        else:
            parts.append(f"- {abs(c)} * {var}")
    parts.append(f"+ {const}" if const >= 0 else f"- {abs(const)}")
    text = " ".join(parts)
    if text.startswith("+ "):
        text = text[2:]
    elif text.startswith("- "):
        text = "-" + text[2:]
    return text


@settings(max_examples=120, deadline=None)
@given(form=affine_form())
def test_analysis_recovers_coefficients(form):
    coeffs, const = form
    aff = analyze_subscript(expr_of(render(coeffs, const)))
    assert aff.affine
    assert aff.coeff_map == coeffs
    assert aff.const == const


@settings(max_examples=80, deadline=None)
@given(form=affine_form(), other=affine_form())
def test_sum_of_affine_is_affine(form, other):
    (c1, k1), (c2, k2) = form, other
    text = f"({render(c1, k1)}) + ({render(c2, k2)})"
    aff = analyze_subscript(expr_of(text))
    assert aff.affine
    expected = dict(c1)
    for var, c in c2.items():
        expected[var] = expected.get(var, 0) + c
    expected = {v: c for v, c in expected.items() if c != 0}
    assert aff.coeff_map == expected
    assert aff.const == k1 + k2


@settings(max_examples=80, deadline=None)
@given(form=affine_form(), factor=st.integers(min_value=-5, max_value=5))
def test_constant_multiple_scales(form, factor):
    coeffs, const = form
    text = f"{factor} * ({render(coeffs, const)})"
    aff = analyze_subscript(expr_of(text))
    assert aff.affine
    expected = {
        v: c * factor for v, c in coeffs.items() if c * factor != 0
    }
    assert aff.coeff_map == expected
    assert aff.const == const * factor


@settings(max_examples=60, deadline=None)
@given(form=affine_form())
def test_negation_flips_everything(form):
    coeffs, const = form
    aff = analyze_subscript(expr_of(f"-({render(coeffs, const)})"))
    assert aff.affine
    assert aff.coeff_map == {v: -c for v, c in coeffs.items()}
    assert aff.const == -const


@settings(max_examples=60, deadline=None)
@given(form=affine_form(), constants=st.dictionaries(
    st.sampled_from(["n", "m"]), st.integers(min_value=1, max_value=64),
    max_size=2,
))
def test_parameter_substitution_folds(form, constants):
    coeffs, const = form
    text = render(coeffs, const)
    for name, value in constants.items():
        text = f"{text} + {name}"
    aff = analyze_subscript(expr_of(text), constants=constants)
    assert aff.affine
    assert aff.const == const + sum(constants.values())
    assert aff.coeff_map == coeffs
