"""Cross-module integration tests that close remaining coverage gaps."""

import pytest

from repro.machine import IPSC860, simulate
from repro.programs import PROGRAMS
from repro.tool import AssistantConfig, run_assistant


class TestEstimatorVsSimulatorConsistency:
    """The headline property: for every named scheme of every program at
    one mid-size configuration, the assistant's estimate is within 40% of
    the simulated measurement, and the measured-best scheme is never
    estimated worst."""

    @pytest.mark.parametrize("name,n,kwargs", [
        ("adi", 200, {"maxiter": 2}),
        ("erlebacher", 40, {}),
        ("tomcatv", 136, {"maxiter": 2}),
        ("shallow", 136, {"maxiter": 2}),
    ])
    def test_estimates_track(self, name, n, kwargs):
        from repro.tool import TestCase, run_test_case

        case = TestCase(name, n=n, dtype=PROGRAMS[name].default_dtype,
                        nprocs=8, maxiter=kwargs.get("maxiter", 3))
        result = run_test_case(case)
        measured = {
            s.name: s for s in result.measured_schemes
        }
        for scheme in measured.values():
            assert scheme.estimated_us == pytest.approx(
                scheme.measured_us, rel=0.40
            ), (name, scheme.name)
        named = [s for s in measured.values() if s.name != "tool"]
        best = min(named, key=lambda s: s.measured_us)
        worst_est = max(named, key=lambda s: s.estimated_us)
        assert best.name != worst_est.name


class TestDynamicLayoutRoundTrip:
    def test_remap_counts_match_selection_edges(self):
        """The number of remaps the simulator performs equals what the
        selection's chosen remap edges predict (per time step, on Adi's
        dynamic scheme)."""
        from repro.tool import measure_layouts

        src = PROGRAMS["adi"].source(n=200, maxiter=4)
        result = run_assistant(src, AssistantConfig(nprocs=16))
        assert result.is_dynamic
        m = measure_layouts(src, result.selected_layouts, nprocs=16)
        # x and f flip twice per iteration; first iteration establishes
        # layouts lazily, so a few boundary flips are saved.
        assert m.remap_count > 0
        assert m.remap_count <= 4 * 4  # <= flips-per-iter * iters

    def test_static_selection_measures_with_zero_remaps(self):
        from repro.tool import measure_layouts

        src = PROGRAMS["shallow"].source(n=136, maxiter=2)
        result = run_assistant(src, AssistantConfig(nprocs=8))
        assert not result.is_dynamic
        m = measure_layouts(src, result.selected_layouts, nprocs=8)
        assert m.remap_count == 0


class TestSimulatorScaling:
    def test_parallel_phase_scales_with_processors(self):
        """A pure stencil program speeds up with machine size until
        latency dominates."""
        from repro.tool import measure_layouts

        src = PROGRAMS["shallow"].source(n=264, maxiter=2)
        times = {}
        for procs in (2, 8, 32):
            result = run_assistant(src, AssistantConfig(nprocs=procs))
            times[procs] = measure_layouts(
                src, result.selected_layouts, nprocs=procs
            ).makespan_us
        assert times[8] < times[2]
        assert times[32] < times[8]
        # efficiency decays: 16x procs buys < 16x speedup
        assert times[2] / times[32] < 16

    def test_message_counts_grow_with_machine(self):
        from repro.tool import measure_layouts

        src = PROGRAMS["shallow"].source(n=136, maxiter=2)
        counts = {}
        for procs in (4, 16):
            result = run_assistant(src, AssistantConfig(nprocs=procs))
            counts[procs] = measure_layouts(
                src, result.selected_layouts, nprocs=procs
            ).messages
        assert counts[16] > counts[4]


class TestHPFWriterOnAllPrograms:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_emits_valid_directives(self, name):
        from repro.tool import write_hpf

        spec = PROGRAMS[name]
        kwargs = {"n": 24 if spec.template_rank == 3 else 64}
        if spec.has_time_loop:
            kwargs["maxiter"] = 2
        result = run_assistant(
            spec.source(**kwargs), AssistantConfig(nprocs=4)
        )
        text = write_hpf(result)
        assert text.startswith(f"program {name}")
        assert "!HPF$ template" in text
        assert "!HPF$ distribute" in text
        # every declared array has an ALIGN directive
        for symbol in result.symbols.arrays():
            assert f"align {symbol.name}(" in text

    def test_tomcatv_workspace_realigned(self):
        """Tomcatv's dynamic alignment flips show up as REALIGN
        directives on the workspace arrays."""
        from repro.tool import write_hpf

        result = run_assistant(
            PROGRAMS["tomcatv"].source(n=136, maxiter=2),
            AssistantConfig(nprocs=8),
        )
        if result.is_dynamic:
            text = write_hpf(result)
            assert "!HPF$ realign" in text


class TestTopLevelAPI:
    def test_package_exports(self):
        import repro

        assert callable(repro.run_assistant)
        assert callable(repro.measure_layouts)
        assert repro.__version__ == "1.0.0"

    def test_quickstart_snippet_shape(self, adi_small_source):
        """The README quickstart code path works verbatim."""
        from repro import AssistantConfig, measure_layouts, run_assistant

        result = run_assistant(
            adi_small_source, AssistantConfig(nprocs=4)
        )
        assert result.selected_layouts
        assert result.predicted_total_us > 0
        assert isinstance(result.is_dynamic, bool)
        m = measure_layouts(
            adi_small_source, result.selected_layouts, nprocs=4
        )
        assert m.seconds > 0
