"""The observability layer: tracing, exporters, Prometheus exposition,
decision provenance, histogram quantiles, and the explain/stats CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import tracing
from repro.obs.chrome import to_chrome_trace, validate_chrome_trace
from repro.obs.events import (
    TraceValidationError,
    iter_events,
    load_trace,
    spans_by_name,
    validate_trace,
    write_trace,
)
from repro.obs.log import configure_logging, get_logger
from repro.obs.prometheus import parse_prometheus_text, render_prometheus
from repro.obs.provenance import build_provenance, format_provenance
from repro.service import LayoutService, WorkerPool
from repro.service.metrics import Histogram, Metrics
from repro.service.protocol import LayoutRequest
from repro.tool.assistant import AssistantConfig, run_assistant
from repro.tool.cli import main as cli_main


def traced_square(x):
    """Module-level pool job (picklable) that records its own span."""
    with tracing.span("job.work", x=x):
        tracing.add_event("job.event", x=x)
        return x * x


# ---------------------------------------------------------------------------
# Histogram edge cases (satellite 1)


class TestHistogramEdgeCases:
    def test_empty_histogram(self):
        hist = Histogram()
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert snap["sum"] == 0.0
        assert snap["mean"] == 0.0
        assert snap["min"] is None and snap["max"] is None
        assert snap["quantiles"] == {"p50": None, "p95": None, "p99": None}

    def test_value_exactly_on_bucket_bound(self):
        hist = Histogram(buckets=(0.1, 1.0))
        hist.observe(0.1)  # `le` buckets: bound values land inside
        snap = hist.snapshot()
        assert snap["buckets"]["0.1"] == 1
        assert snap["buckets"]["1"] == 1
        assert snap["buckets"]["+Inf"] == 1

    def test_min_max_mean(self):
        hist = Histogram()
        for v in (0.002, 0.004, 0.09):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["min"] == 0.002
        assert snap["max"] == 0.09
        assert snap["mean"] == pytest.approx(0.096 / 3)

    def test_quantiles_single_observation(self):
        hist = Histogram()
        hist.observe(0.007)
        # interpolation clamps to the observed min/max
        assert hist.quantile(0.5) == 0.007
        assert hist.quantile(0.99) == 0.007

    def test_quantile_order_and_bounds(self):
        hist = Histogram()
        for i in range(1, 101):
            hist.observe(i / 100.0)  # 0.01 .. 1.00
        p50, p95, p99 = (hist.quantile(q) for q in (0.5, 0.95, 0.99))
        assert 0.01 <= p50 <= p95 <= p99 <= 1.0
        assert p50 == pytest.approx(0.5, abs=0.2)

    def test_quantile_above_largest_bucket(self):
        hist = Histogram(buckets=(0.1,))
        hist.observe(5.0)  # lands in +Inf: best answer is the max
        assert hist.quantile(0.5) == 5.0

    def test_quantile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_metrics_gauges_and_span_seconds(self):
        metrics = Metrics()
        metrics.set_gauge("pool_degradations", 2)
        metrics.observe_span("pipeline", 0.25)
        snap = metrics.snapshot()
        assert snap["gauges"]["pool_degradations"] == 2
        assert snap["span_seconds"]["pipeline"]["count"] == 1
        assert metrics.gauge("pool_degradations") == 2

    def test_cache_totals_matches_snapshot(self):
        metrics = Metrics()
        metrics.record_cache("frontend", True)
        metrics.record_cache("frontend", False)
        metrics.record_cache("selection", False)
        hits, misses = metrics.cache_totals()
        snap = metrics.snapshot()
        assert (hits, misses) == (1, 2)
        assert snap["cache"]["hits"] == hits
        assert snap["cache"]["misses"] == misses


# ---------------------------------------------------------------------------
# Span tracing core


class TestTracing:
    def test_disabled_tracing_is_a_noop(self):
        assert not tracing.active()
        with tracing.span("anything", k=1) as sp:
            sp.set_attr("x", 2)  # NULL_SPAN swallows everything
            tracing.add_event("ev")
        assert tracing.active_tracer() is None

    def test_span_nesting_parents(self):
        tracing.start_trace("t")
        try:
            with tracing.span("outer") as outer:
                with tracing.span("inner") as inner:
                    assert inner.parent_id == outer.span_id
                assert tracing.current_span_id() == outer.span_id
        finally:
            trace = tracing.finish_trace()
        by_name = {s["name"]: s for s in trace["spans"]}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        validate_trace(trace)

    def test_events_attach_to_open_span(self):
        tracing.start_trace("t")
        try:
            with tracing.span("holder"):
                tracing.add_event("marker", value=7)
        finally:
            trace = tracing.finish_trace()
        (pair,) = list(iter_events(trace, "marker"))
        span, event = pair
        assert span["name"] == "holder"
        assert event["attrs"]["value"] == 7

    def test_duration_is_measured(self):
        tracing.start_trace("t")
        try:
            with tracing.span("timed"):
                pass
        finally:
            trace = tracing.finish_trace()
        (span,) = spans_by_name(trace, "timed")
        assert span["duration_us"] >= 0

    def test_validate_rejects_bad_traces(self):
        with pytest.raises(TraceValidationError):
            validate_trace({"schema": "wrong"})
        tracing.start_trace("t")
        with tracing.span("a"):
            pass
        trace = tracing.finish_trace()
        broken = json.loads(json.dumps(trace))
        broken["spans"][0]["parent_id"] = "no-such-span"
        with pytest.raises(TraceValidationError):
            validate_trace(broken)

    def test_write_and_load_roundtrip(self, tmp_path):
        tracing.start_trace("t")
        with tracing.span("a", n=1):
            pass
        trace = tracing.finish_trace()
        path = str(tmp_path / "trace.json")
        write_trace(trace, path)
        assert load_trace(path) == trace

    def test_start_us_immune_to_wall_clock_steps(self, monkeypatch):
        """The wall clock is sampled once per trace: a clock step after
        tracer creation must not skew later spans' start_us (satellite:
        timestamp skew fix)."""
        import time as time_mod

        tracer = tracing.Tracer(name="t")
        anchor = tracer.created_us
        # A wall-clock step of -1000s mid-trace...
        monkeypatch.setattr(
            time_mod, "time", lambda: (anchor / 1e6) - 1000.0
        )
        record = tracer.begin("late", None, {})
        tracer.finish(record)
        # ...does not drag start_us back before the trace anchor.
        assert record.start_us >= anchor

    def test_span_starts_are_monotonic_within_a_trace(self):
        tracing.start_trace("t")
        try:
            with tracing.span("first"):
                pass
            with tracing.span("second"):
                pass
        finally:
            trace = tracing.finish_trace()
        (first,) = spans_by_name(trace, "first")
        (second,) = spans_by_name(trace, "second")
        assert second["start_us"] >= first["start_us"]
        # children can never start before their trace's anchor
        for span in trace["spans"]:
            assert span["start_us"] >= trace["created_us"]

    def test_metrics_uptime_uses_monotonic_clock(self):
        """Uptime must survive wall-clock adjustments (satellite:
        monotonic uptime fix)."""
        metrics = Metrics()
        # A wall-clock step would previously have poisoned uptime; the
        # wall-clock field is now display-only.
        metrics.started_at += 1e9
        uptime = metrics.snapshot()["uptime_seconds"]
        assert uptime >= 0.0
        assert uptime < 60.0


# ---------------------------------------------------------------------------
# Trace propagation through the worker pool (satellite 4)


class TestPoolTracePropagation:
    @pytest.mark.parametrize("kind", ["process", "thread", "serial"])
    def test_jobs_report_into_one_trace(self, kind):
        tracer = tracing.start_trace("pool-test")
        try:
            with WorkerPool(kind=kind, max_workers=2) as pool:
                values = pool.run_jobs(
                    traced_square, [(i,) for i in range(4)]
                )
        finally:
            trace = tracing.finish_trace()
        assert values == [0, 1, 4, 9]
        validate_trace(trace)
        job_spans = spans_by_name(trace, "job.work")
        assert len(job_spans) == 4
        (pool_span,) = spans_by_name(trace, "pool:traced_square")
        for span in job_spans:
            # worker spans hang off the pool span via prefixed IDs
            assert span["span_id"].startswith("w")
            parent = span["parent_id"]
            while parent is not None and parent != pool_span["span_id"]:
                parent = next(
                    s["parent_id"] for s in trace["spans"]
                    if s["span_id"] == parent
                )
            assert parent == pool_span["span_id"]
        assert {s["attrs"]["x"] for s in job_spans} == {0, 1, 2, 3}
        assert trace["trace_id"] == tracer.trace_id

    def test_untraced_pool_runs_identically(self):
        with WorkerPool(kind="serial") as pool:
            assert pool.run_jobs(traced_square, [(3,)]) == [9]

    def test_span_ids_unique_across_fanouts(self):
        tracing.start_trace("t")
        try:
            with WorkerPool(kind="serial") as pool:
                pool.run_jobs(traced_square, [(1,), (2,)])
                pool.run_jobs(traced_square, [(3,)])
        finally:
            trace = tracing.finish_trace()
        ids = [s["span_id"] for s in trace["spans"]]
        assert len(ids) == len(set(ids))
        validate_trace(trace)


# ---------------------------------------------------------------------------
# Pipeline instrumentation + determinism


@pytest.fixture(scope="module")
def traced_run():
    spec_source = __import__(
        "repro.programs.registry", fromlist=["PROGRAMS"]
    ).PROGRAMS["adi"].source_fn(n=32, dtype="real", maxiter=2)
    config = AssistantConfig.from_dict({"nprocs": 4})
    untraced = run_assistant(spec_source, config)
    tracing.start_trace("test")
    try:
        traced = run_assistant(spec_source, config)
    finally:
        trace = tracing.finish_trace()
    return untraced, traced, trace


class TestPipelineInstrumentation:
    def test_traced_results_identical(self, traced_run):
        untraced, traced, _ = traced_run
        assert traced.selection.selection == untraced.selection.selection
        assert traced.selection.objective == untraced.selection.objective

    def test_all_stages_have_spans(self, traced_run):
        _, _, trace = traced_run
        names = {s["name"] for s in trace["spans"]}
        for stage in ("frontend", "partition", "alignment",
                      "distribution", "estimation", "selection"):
            assert f"stage:{stage}" in names
        assert "pipeline" in names

    def test_ilp_solves_carry_model_sizes(self, traced_run):
        _, _, trace = traced_run
        solves = spans_by_name(trace, "ilp.solve")
        for span in solves:
            assert span["attrs"]["variables"] > 0
            assert span["attrs"]["constraints"] > 0
            assert span["attrs"]["status"] == "optimal"
        # With graph presolve on (the default) the selection model may
        # collapse entirely before any backend runs; the presolve span
        # then carries the reduction evidence instead of ilp.solve.
        presolves = spans_by_name(trace, "ilp.presolve")
        assert solves or presolves
        for span in presolves:
            assert span["attrs"]["variables"] > 0
            assert span["attrs"]["fixed"] + span["attrs"]["components"] > 0

    def test_selection_span_has_model_shape(self, traced_run):
        _, traced, trace = traced_run
        (span,) = spans_by_name(trace, "selection.solve")
        assert span["attrs"]["variables"] >= traced.graph.num_nodes()
        assert span["attrs"]["constraints"] > 0
        assert span["attrs"]["objective_us"] == pytest.approx(
            traced.selection.objective
        )

    def test_distribution_counts(self, traced_run):
        _, traced, trace = traced_run
        phases = spans_by_name(trace, "distribution.phase")
        kept = sum(s["attrs"]["kept"] for s in phases)
        assert kept == traced.layout_spaces.total_candidates()
        for span in phases:
            assert (span["attrs"]["generated"]
                    == span["attrs"]["pruned"] + span["attrs"]["kept"])

    def test_selection_choice_events(self, traced_run):
        _, traced, trace = traced_run
        choices = [e for _s, e in iter_events(trace, "selection.choice")]
        assert len(choices) == len(traced.selection.selection)
        for event in choices:
            attrs = event["attrs"]
            sel = traced.selection.selection[attrs["phase"]]
            assert attrs["position"] == sel
            assert attrs["costs_us"][attrs["position"]] == attrs[
                "node_cost_us"
            ]

    def test_chrome_export(self, traced_run):
        _, _, trace = traced_run
        chrome = to_chrome_trace(trace)
        validate_chrome_trace(chrome)
        complete = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(trace["spans"])

    def test_provenance_report(self, traced_run):
        _, traced, trace = traced_run
        report = build_provenance(trace)
        assert report["objective_us"] == pytest.approx(
            traced.selection.objective
        )
        assert len(report["phases"]) == len(traced.selection.selection)
        text = format_provenance(report)
        assert "decision provenance" in text
        assert "phase 0" in text


# ---------------------------------------------------------------------------
# Prometheus exposition


class TestPrometheus:
    def _stats(self):
        with LayoutService(
            pool=WorkerPool(kind="serial"), use_cache=False
        ) as service:
            request = LayoutRequest.from_dict(
                {"program": "adi", "size": 32, "procs": 4, "maxiter": 2}
            )
            response = service.analyze(request)
            assert response.ok
            return service.stats(), service.prometheus()

    def test_render_parses_back(self):
        stats, text = self._stats()
        samples = parse_prometheus_text(text)
        assert samples[("repro_counter_total",
                        (("name", "requests_ok"),))] == 1.0
        assert samples[("repro_pool_active_kind",
                        (("kind", "serial"),))] == 1.0
        assert ("repro_uptime_seconds", ()) in samples

    def test_stage_and_span_histograms_present(self):
        _stats, text = self._stats()
        samples = parse_prometheus_text(text)
        names = {name for name, _labels in samples}
        assert "repro_stage_seconds_bucket" in names
        assert "repro_stage_seconds_quantile" in names
        assert "repro_span_seconds_bucket" in names
        # every histogram ends with the +Inf bucket equal to _count
        count = samples[("repro_stage_seconds_count",
                         (("stage", "frontend"),))]
        inf = samples[("repro_stage_seconds_bucket",
                       (("le", "+Inf"), ("stage", "frontend")))]
        assert inf == count

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("not a metric line at all {")


# ---------------------------------------------------------------------------
# CLI: explain / stats / analyze --trace (satellite coverage)


class TestObservabilityCLI:
    def test_analyze_trace_flags(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        chrome_path = tmp_path / "c.json"
        rc = cli_main([
            "analyze", "--program", "adi", "--size", "32", "--procs", "4",
            "--trace", str(trace_path),
            "--trace-chrome", str(chrome_path),
        ])
        assert rc == 0
        trace = load_trace(str(trace_path))
        assert spans_by_name(trace, "pipeline")
        validate_chrome_trace(json.loads(chrome_path.read_text()))

    def test_explain_text(self, capsys):
        rc = cli_main([
            "explain", "--program", "adi", "--size", "32", "--procs", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "decision provenance" in out
        assert "phase 0" in out

    def test_explain_json(self, capsys):
        rc = cli_main([
            "explain", "--program", "adi", "--size", "32", "--procs", "4",
            "--json",
        ])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro.obs/provenance/v1"
        assert report["phases"]

    def test_stats_prometheus(self, capsys):
        rc = cli_main([
            "stats", "--program", "adi", "--size", "32", "--procs", "4",
            "--prometheus",
        ])
        assert rc == 0
        samples = parse_prometheus_text(capsys.readouterr().out)
        assert ("repro_counter_total",
                (("name", "requests_total"),)) in samples

    def test_log_level_flag_accepted(self, capsys):
        rc = cli_main([
            "--log-level", "error",
            "analyze", "--program", "adi", "--size", "32", "--procs", "4",
        ])
        assert rc == 0


# ---------------------------------------------------------------------------
# Logging plumbing (satellite 3)


class TestLogging:
    def test_get_logger_prefixes(self):
        assert get_logger("service").name == "repro.service"
        assert get_logger("repro.cli").name == "repro.cli"

    def test_configure_is_idempotent(self):
        first = configure_logging("info")
        second = configure_logging("debug")
        assert first is second
        assert len(second.handlers) == 1
