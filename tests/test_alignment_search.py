"""Alignment search-space heuristic tests (paper Section 3.2)."""

import pytest

from repro.alignment.cag import CAG
from repro.alignment.search_space import (
    AlignmentCandidate,
    build_alignment_search_spaces,
    dominance_factor,
)
from repro.analysis import build_pcfg, partition_phases
from repro.distribution import determine_template
from repro.frontend import build_symbol_table, parse_source


def spaces_for(src):
    prog = parse_source(src)
    table = build_symbol_table(prog)
    part = partition_phases(prog, table)
    pcfg = build_pcfg(part)
    template = determine_template(table)
    return (
        build_alignment_search_spaces(part.phases, pcfg, table, template),
        part,
        table,
        template,
    )


CANONICAL = """
program t
      integer n
      parameter (n = 8)
      real a(n, n), b(n, n)
      integer i, j
      do j = 1, n
        do i = 1, n
          a(i, j) = b(i, j)
        enddo
      enddo
      do j = 1, n
        do i = 1, n
          b(i, j) = a(i, j) * 2.0
        enddo
      enddo
      end
"""

CONFLICTING = """
program t
      integer n
      parameter (n = 8)
      real a(n, n), b(n, n)
      integer i, j
      do j = 1, n
        do i = 1, n
          a(i, j) = b(i, j)
        enddo
      enddo
      do j = 1, n
        do i = 1, n
          a(i, j) = b(j, i) + a(i, j)
        enddo
      enddo
      end
"""


class TestClassPartitioning:
    def test_conflict_free_program_single_class(self):
        spaces, part, _t, _tpl = spaces_for(CANONICAL)
        assert len(spaces.classes) == 1
        assert sorted(spaces.classes[0].phase_indices) == [0, 1]
        assert spaces.resolutions == []

    def test_conflicting_phases_split_classes(self):
        spaces, _p, _t, _tpl = spaces_for(CONFLICTING)
        assert len(spaces.classes) == 2

    def test_each_class_cag_conflict_free(self):
        spaces, _p, _t, _tpl = spaces_for(CONFLICTING)
        for cls in spaces.classes:
            assert not cls.cag.has_conflict()

    def test_tomcatv_two_classes(self, tomcatv_assistant):
        assert len(tomcatv_assistant.alignment_spaces.classes) == 2


class TestImports:
    def test_import_adds_candidates(self):
        spaces, _p, _t, _tpl = spaces_for(CONFLICTING)
        sizes = [len(c.candidates) for c in spaces.classes]
        # each class imports the other's information
        assert all(s == 2 for s in sizes)

    def test_import_resolutions_recorded(self):
        spaces, _p, _t, _tpl = spaces_for(CONFLICTING)
        assert len(spaces.resolutions) == 2

    def test_weaker_information_not_inserted(self):
        # identical-preference phases: import adds nothing new
        spaces, _p, _t, _tpl = spaces_for(CANONICAL)
        assert all(len(c.candidates) == 1 for c in spaces.classes)

    def test_candidate_count_bounded_by_class_count(self):
        spaces, _p, _t, _tpl = spaces_for(CONFLICTING)
        p = len(spaces.classes)
        for phase_idx, cands in spaces.per_phase.items():
            assert 1 <= len(cands) <= p

    def test_dominance_factor_exceeds_sink_weight(self):
        cag = CAG()
        cag.add_undirected_edge(("a", 0), ("b", 0), 123.0)
        assert dominance_factor(cag) > cag.total_weight()


class TestPerPhaseProjection:
    def test_every_phase_array_aligned(self):
        spaces, part, table, _tpl = spaces_for(CONFLICTING)
        for phase in part.phases:
            for cand in spaces.per_phase[phase.index]:
                for array in phase.arrays:
                    assert array in cand.alignment_map

    def test_alignment_maps_injective(self):
        spaces, part, _t, _tpl = spaces_for(CONFLICTING)
        for cands in spaces.per_phase.values():
            for cand in cands:
                for alignment in cand.alignment_map.values():
                    axis = alignment.axis_map
                    assert len(set(axis)) == len(axis)

    def test_duplicates_removed(self):
        spaces, _p, _t, _tpl = spaces_for(CONFLICTING)
        for cands in spaces.per_phase.values():
            sigs = [c.signature() for c in cands]
            assert len(sigs) == len(set(sigs))


class TestUserEditing:
    def test_insert_and_delete_candidate(self):
        spaces, part, table, tpl = spaces_for(CANONICAL)
        existing = spaces.per_phase[0][0]
        clone = AlignmentCandidate(
            partitioning=existing.partitioning,
            alignments=existing.alignments,
            provenance="user",
        )
        # identical signature: not duplicated
        spaces.insert_candidate(0, clone)
        assert len(spaces.per_phase[0]) == 1
        # different alignments: inserted, then deletable
        from repro.distribution.layouts import Alignment

        flipped = AlignmentCandidate(
            partitioning=existing.partitioning,
            alignments=tuple(
                (name, Alignment(axis_map=tuple(reversed(al.axis_map))))
                for name, al in existing.alignments
            ),
            provenance="user",
        )
        spaces.insert_candidate(0, flipped)
        assert len(spaces.per_phase[0]) == 2
        spaces.delete_candidate(0, 1)
        assert len(spaces.per_phase[0]) == 1


class TestPaperStructure:
    def test_adi_single_class_no_conflicts(self, adi_assistant):
        spaces = adi_assistant.alignment_spaces
        assert len(spaces.classes) == 1
        assert spaces.resolutions == []

    def test_tomcatv_search_spaces_have_two_entries(self, tomcatv_assistant):
        spaces = tomcatv_assistant.alignment_spaces
        sizes = {len(c) for c in spaces.per_phase.values()}
        assert sizes <= {1, 2}
        assert 2 in sizes
