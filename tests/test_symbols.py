"""Symbol table unit tests."""

import pytest

from repro.frontend import ast
from repro.frontend.parser import parse_source
from repro.frontend.symbols import (
    ArraySymbol,
    ScalarSymbol,
    SymbolError,
    build_symbol_table,
    eval_const_expr,
)


def table_for(decls):
    src = f"program t\n{decls}      end\n"
    prog = parse_source(src)
    return build_symbol_table(prog)


class TestParameters:
    def test_simple_parameter(self):
        table = table_for("      integer n\n      parameter (n = 64)\n")
        assert table.constants["n"] == 64

    def test_parameter_expression(self):
        table = table_for(
            "      integer n, m\n      parameter (n = 8, m = n * 2 + 1)\n"
        )
        assert table.constants["m"] == 17

    def test_parameter_chain_across_decls(self):
        table = table_for(
            "      integer n\n      parameter (n = 4)\n"
            "      integer m\n      parameter (m = n ** 2)\n"
        )
        assert table.constants["m"] == 16

    def test_parameter_name_is_not_a_variable(self):
        table = table_for("      integer n\n      parameter (n = 4)\n")
        assert table.get("n") is None

    def test_integer_division_truncates(self):
        table = table_for("      integer n\n      parameter (n = 7 / 2)\n")
        assert table.constants["n"] == 3

    def test_unknown_name_in_constant_raises(self):
        with pytest.raises(SymbolError):
            table_for("      integer n\n      parameter (n = m + 1)\n")


class TestArrays:
    def test_array_extents(self):
        table = table_for(
            "      integer n\n      parameter (n = 16)\n"
            "      real a(n, n)\n"
        )
        sym = table.array("a")
        assert sym.extents == (16, 16)
        assert sym.element_count == 256
        assert sym.element_bytes == 4
        assert sym.total_bytes == 1024

    def test_double_precision_bytes(self):
        table = table_for("      double precision a(4)\n")
        assert table.array("a").total_bytes == 32

    def test_explicit_bounds(self):
        table = table_for("      real a(0:7)\n")
        assert table.array("a").bounds == ((0, 7),)
        assert table.array("a").extents == (8,)

    def test_dimension_statement_merges_with_type(self):
        table = table_for(
            "      double precision a\n      dimension a(8, 8)\n"
        )
        sym = table.array("a")
        assert sym.dtype == "double"
        assert sym.rank == 2

    def test_dimension_only_defaults_integer(self):
        table = table_for("      dimension a(4)\n")
        assert table.array("a").dtype == "integer"

    def test_empty_dimension_raises(self):
        with pytest.raises(SymbolError):
            table_for("      real a(5:2)\n")

    def test_array_lookup_on_scalar_raises(self):
        table = table_for("      real x\n")
        with pytest.raises(SymbolError):
            table.array("x")


class TestScalarsAndLoops:
    def test_scalar_symbol(self):
        table = table_for("      real x\n")
        assert isinstance(table.get("x"), ScalarSymbol)
        assert table.get("x").dtype == "real"

    def test_undeclared_loop_var_becomes_integer(self):
        src = (
            "program t\n      real a(8)\n"
            "      do q = 1, 8\n        a(q) = 0.0\n      enddo\n"
            "      end\n"
        )
        table = build_symbol_table(parse_source(src))
        sym = table.get("q")
        assert isinstance(sym, ScalarSymbol) and sym.dtype == "integer"

    def test_arrays_listing(self):
        table = table_for("      real a(2), b(3)\n      integer x\n")
        assert [s.name for s in table.arrays()] == ["a", "b"]
        assert "x" in [s.name for s in table.scalars()]


class TestEvalConstExpr:
    def test_unary_minus(self):
        assert eval_const_expr(
            ast.UnaryOp("-", ast.IntLit(5)), {}
        ) == -5

    def test_non_constant_raises(self):
        with pytest.raises(SymbolError):
            eval_const_expr(ast.Call("max", (ast.IntLit(1),)), {})
