"""Compiler-model classification tests: where and what communication the
modelled compiler generates for a statement under a layout."""

import pytest

from repro.analysis.phases import partition_phases
from repro.codegen.comm import (
    BroadcastComm,
    GatherComm,
    PipelineSpec,
    ReductionComm,
    ShiftComm,
)
from repro.codegen.spmd import compile_phase
from repro.distribution.layouts import (
    Alignment,
    DataLayout,
    Distribution,
)
from repro.distribution.template import Template
from repro.frontend import build_symbol_table, parse_source
from repro.machine import IPSC860

DECLS = (
    "      integer n\n      parameter (n = 16)\n"
    "      double precision a(n, n), b(n, n), w(n, n)\n"
    "      double precision v(n)\n"
    "      double precision s\n"
    "      integer i, j\n"
)


def compiled_for(body, dist_dim, alignments=None, procs=4):
    src = f"program t\n{DECLS}{body}      end\n"
    prog = parse_source(src)
    table = build_symbol_table(prog)
    part = partition_phases(prog, table)
    assert len(part) == 1
    phase = part.phases[0]
    tpl = Template(rank=2, extents=(16, 16))
    align = alignments or {}
    for array in phase.arrays:
        sym = table.get(array)
        if array not in align and hasattr(sym, "rank"):
            align[array] = Alignment.canonical(sym.rank)
    layout = DataLayout.build(
        template=tpl,
        alignments=align,
        distribution=Distribution.one_dim_block(2, dist_dim, procs),
    )
    return compile_phase(phase, layout, table, IPSC860), phase


STENCIL = (
    "      do j = 1, n\n        do i = 2, n\n"
    "          a(i, j) = b(i - 1, j) + b(i, j)\n"
    "        enddo\n      enddo\n"
)


class TestShift:
    def test_offset_read_along_distributed_dim(self):
        compiled, _ = compiled_for(STENCIL, dist_dim=0)
        comms = compiled.plans[0].comms
        shifts = [c for c in comms if isinstance(c, ShiftComm)]
        assert len(shifts) == 1
        assert shifts[0].array == "b"
        assert shifts[0].offset == -1
        assert shifts[0].nbytes == 16 * 8  # one boundary column slab

    def test_offset_along_serial_dim_is_local(self):
        compiled, _ = compiled_for(STENCIL, dist_dim=1)
        assert compiled.plans[0].comms == []

    def test_buffering_by_storage_order(self):
        # fixing dim 0 (row slab) is strided in column-major -> buffered
        compiled, _ = compiled_for(STENCIL, dist_dim=0)
        shift = compiled.plans[0].comms[0]
        assert shift.buffered
        body = (
            "      do j = 2, n\n        do i = 1, n\n"
            "          a(i, j) = b(i, j - 1)\n        enddo\n      enddo\n"
        )
        compiled, _ = compiled_for(body, dist_dim=1)
        shift = compiled.plans[0].comms[0]
        assert not shift.buffered

    def test_coalescing_same_offset(self):
        body = (
            "      do j = 1, n\n        do i = 2, n\n"
            "          a(i, j) = b(i - 1, j) * b(i - 1, j)\n"
            "        enddo\n      enddo\n"
        )
        compiled, _ = compiled_for(body, dist_dim=0)
        shifts = [
            c for c in compiled.plans[0].comms if isinstance(c, ShiftComm)
        ]
        assert len(shifts) == 1

    def test_two_offsets_two_messages(self):
        body = (
            "      do j = 1, n\n        do i = 2, n - 1\n"
            "          a(i, j) = b(i - 1, j) + b(i + 1, j)\n"
            "        enddo\n      enddo\n"
        )
        compiled, _ = compiled_for(body, dist_dim=0)
        shifts = [
            c for c in compiled.plans[0].comms if isinstance(c, ShiftComm)
        ]
        assert {s.offset for s in shifts} == {-1, 1}


class TestGatherAndBroadcast:
    def test_transposed_read_is_gather(self):
        body = (
            "      do j = 1, n\n        do i = 1, n\n"
            "          a(i, j) = w(j, i)\n        enddo\n      enddo\n"
        )
        compiled, _ = compiled_for(body, dist_dim=0)
        gathers = [
            c for c in compiled.plans[0].comms if isinstance(c, GatherComm)
        ]
        assert len(gathers) == 1 and gathers[0].array == "w"

    def test_transposed_alignment_removes_gather(self):
        body = (
            "      do j = 1, n\n        do i = 1, n\n"
            "          a(i, j) = w(j, i)\n        enddo\n      enddo\n"
        )
        compiled, _ = compiled_for(
            body, dist_dim=0,
            alignments={"w": Alignment(axis_map=(1, 0))},
        )
        assert compiled.plans[0].comms == []

    def test_constant_subscript_broadcast(self):
        body = (
            "      do j = 1, n\n        do i = 1, n\n"
            "          a(i, j) = b(1, j)\n        enddo\n      enddo\n"
        )
        compiled, _ = compiled_for(body, dist_dim=0)
        bcasts = [
            c for c in compiled.plans[0].comms
            if isinstance(c, BroadcastComm)
        ]
        assert len(bcasts) == 1

    def test_replicated_coefficient_no_comm(self):
        # v aligned with t0 but t1 distributed: replicated, local reads.
        body = (
            "      do j = 1, n\n        do i = 1, n\n"
            "          a(i, j) = a(i, j) * v(i)\n        enddo\n      enddo\n"
        )
        compiled, _ = compiled_for(
            body, dist_dim=1, alignments={"v": Alignment(axis_map=(0,))}
        )
        assert compiled.plans[0].comms == []

    def test_aligned_coefficient_no_comm(self):
        body = (
            "      do j = 1, n\n        do i = 1, n\n"
            "          a(i, j) = a(i, j) * v(i)\n        enddo\n      enddo\n"
        )
        compiled, _ = compiled_for(
            body, dist_dim=0, alignments={"v": Alignment(axis_map=(0,))}
        )
        assert compiled.plans[0].comms == []


class TestPipelines:
    FWD = (
        "      do j = 1, n\n        do i = 2, n\n"
        "          a(i, j) = a(i, j) - a(i - 1, j)\n"
        "        enddo\n      enddo\n"
    )

    def test_fine_grain_pipeline(self):
        compiled, _ = compiled_for(self.FWD, dist_dim=0)
        pipe = compiled.plans[0].pipeline
        assert pipe is not None
        assert pipe.stages == 16  # j loop outside i
        assert pipe.inner_iters == 1
        assert pipe.msg_bytes == 8
        assert pipe.direction == 1

    def test_no_pipeline_on_other_dim(self):
        compiled, _ = compiled_for(self.FWD, dist_dim=1)
        assert compiled.plans[0].pipeline is None

    def test_backward_sweep_direction(self):
        body = (
            "      do j = 1, n\n        do i = n - 1, 1, -1\n"
            "          a(i, j) = a(i, j) - a(i + 1, j)\n"
            "        enddo\n      enddo\n"
        )
        compiled, _ = compiled_for(body, dist_dim=0)
        pipe = compiled.plans[0].pipeline
        assert pipe is not None and pipe.direction == -1

    def test_outermost_dependence_sequentializes(self):
        body = (
            "      do j = 2, n\n        do i = 1, n\n"
            "          a(i, j) = a(i, j) - a(i, j - 1)\n"
            "        enddo\n      enddo\n"
        )
        compiled, _ = compiled_for(body, dist_dim=1)
        pipe = compiled.plans[0].pipeline
        assert pipe is not None
        assert pipe.sequentialized
        assert pipe.msg_bytes == 16 * 8  # a whole column boundary

    def test_middle_loop_coarse_grain(self):
        src_decls = (
            "      integer n\n      parameter (n = 8)\n"
            "      double precision u(n, n, n)\n"
            "      integer i, j, k\n"
        )
        body = (
            "      do k = 1, n\n        do j = 2, n\n"
            "          do i = 1, n\n"
            "            u(i, j, k) = u(i, j, k) - u(i, j - 1, k)\n"
            "          enddo\n        enddo\n      enddo\n"
        )
        src = f"program t\n{src_decls}{body}      end\n"
        prog = parse_source(src)
        table = build_symbol_table(prog)
        part = partition_phases(prog, table)
        tpl = Template(rank=3, extents=(8, 8, 8))
        layout = DataLayout.build(
            template=tpl,
            alignments={"u": Alignment.canonical(3)},
            distribution=Distribution.one_dim_block(3, 1, 4),
        )
        compiled = compile_phase(part.phases[0], layout, table, IPSC860)
        pipe = compiled.plans[0].pipeline
        assert pipe.stages == 8  # k loop only
        assert pipe.inner_iters == 8  # i loop
        assert pipe.msg_bytes == 8 * 8


class TestReductionPlan:
    def test_scalar_reduction_event(self):
        body = (
            "      do j = 1, n\n        do i = 1, n\n"
            "          s = s + a(i, j)\n        enddo\n      enddo\n"
        )
        compiled, _ = compiled_for(body, dist_dim=0)
        reds = [
            c
            for plan in compiled.plans
            for c in plan.comms
            if isinstance(c, ReductionComm)
        ]
        assert len(reds) == 1

    def test_reduction_partitioned_by_read(self):
        body = (
            "      do j = 1, n\n        do i = 1, n\n"
            "          s = s + a(i, j)\n        enddo\n      enddo\n"
        )
        compiled, _ = compiled_for(body, dist_dim=0)
        plan = compiled.plans[0]
        assert plan.partition_var == "i"


class TestLocalIterations:
    def test_exact_boundary_counts(self):
        compiled, phase = compiled_for(STENCIL, dist_dim=0)
        plan = compiled.plans[0]
        # i runs 2..16 partitioned over 4 procs by blocks of 4
        counts = [plan.local_iterations(p, 16, 4) for p in range(4)]
        assert counts == [3 * 16, 4 * 16, 4 * 16, 4 * 16]
        assert sum(counts) == plan.total_iterations()

    def test_localized_write_single_owner(self):
        body = (
            "      do j = 1, n\n"
            "        a(1, j) = b(2, j)\n      enddo\n"
        )
        compiled, _ = compiled_for(body, dist_dim=0)
        plan = compiled.plans[0]
        counts = [plan.local_iterations(p, 16, 4) for p in range(4)]
        assert counts == [16, 0, 0, 0]

    def test_replicated_write_everywhere(self):
        body = (
            "      do i = 1, n\n"
            "        v(i) = 1.0\n      enddo\n"
        )
        compiled, _ = compiled_for(
            body, dist_dim=1, alignments={"v": Alignment(axis_map=(0,))}
        )
        plan = compiled.plans[0]
        counts = [plan.local_iterations(p, 16, 4) for p in range(4)]
        assert counts == [16, 16, 16, 16]
