"""Corpus regression tests: every committed repro case must parse, run
through the full pipeline, and keep passing the differential oracles.

``tests/corpus/`` holds minimized generated programs: curated coverage
cases (kind "seed") plus any divergence the fuzzer ever finds, so a bug
fixed once stays fixed."""

import os

import pytest

from repro.alignment.weights import build_phase_cag
from repro.frontend.parser import parse_source
from repro.frontend.printer import format_program
from repro.qa import check_alignment, check_selection, load_corpus
from repro.tool.assistant import AssistantConfig, run_assistant

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = load_corpus(CORPUS_DIR)


def corpus_ids():
    return [case.name for case in CORPUS]


class TestCorpusShape:
    def test_corpus_is_seeded(self):
        assert len(CORPUS) >= 10

    def test_every_case_has_metadata(self):
        for case in CORPUS:
            assert case.meta, case.name
            assert case.kind
            assert case.nprocs >= 1

    def test_seed_cases_are_minimized_reproducers(self):
        seeds = [case for case in CORPUS if case.kind == "seed"]
        assert len(seeds) >= 10
        for case in seeds:
            assert case.meta.get("minimized") is True, case.name
            assert case.seed is not None, case.name


@pytest.mark.parametrize("case", CORPUS, ids=corpus_ids())
class TestCorpusReplay:
    def test_parses_and_prints_as_fixpoint(self, case):
        program = parse_source(case.source)
        assert format_program(program) == case.source

    def test_full_pipeline_runs(self, case):
        result = run_assistant(case.source, AssistantConfig(
            nprocs=case.nprocs
        ))
        assert len(result.partition.phases) >= 1
        assert result.selection.selection
        assert result.selection.objective >= 0.0

    def test_oracles_still_agree(self, case):
        result = run_assistant(case.source, AssistantConfig(
            nprocs=case.nprocs
        ))
        d = result.template.rank
        for phase in result.partition.phases:
            cag = build_phase_cag(phase, result.symbols)
            divergence = check_alignment(cag, d)
            assert divergence is None, f"{case.name}: {divergence}"
        divergence = check_selection(result.graph)
        assert divergence is None, f"{case.name}: {divergence}"
