"""Training-set database tests."""

import pytest

from repro.machine import IPSC860, PARAGON
from repro.perf.training import (
    PATTERNS,
    TrainingKey,
    cached_training_database,
    generate_training_database,
)


@pytest.fixture(scope="module")
def db():
    return cached_training_database(IPSC860)


class TestGeneration:
    def test_over_one_hundred_sets(self, db):
        """Paper Section 3: 'over 100 training sets'."""
        assert len(db) > 100

    def test_all_patterns_present(self, db):
        patterns = {k.pattern for k in db.sets}
        assert patterns == set(PATTERNS)

    def test_stride_and_latency_classes(self, db):
        strides = {k.stride for k in db.sets}
        latencies = {k.latency for k in db.sets}
        assert strides == {"unit", "nonunit"}
        assert latencies == {"high", "low"}

    def test_op_costs_by_dtype(self, db):
        assert db.op_cost("add", "real") < db.op_cost("add", "double")
        assert db.op_cost("div", "double") > db.op_cost("mul", "double")

    def test_cached_identity(self):
        assert cached_training_database(IPSC860) is \
            cached_training_database(IPSC860)

    def test_different_machines_different_data(self):
        slow = cached_training_database(IPSC860)
        fast = cached_training_database(PARAGON)
        assert fast.predict("shift", 4, 4096) < slow.predict(
            "shift", 4, 4096
        )


class TestPrediction:
    def test_interpolation_exact_at_samples(self, db):
        ts = db.lookup("shift", 8, "unit", "high")
        for nbytes, measured in ts.samples:
            assert ts.predict(nbytes) == pytest.approx(measured)

    def test_monotone_in_bytes(self, db):
        ts = db.lookup("transpose", 16, "nonunit", "high")
        values = [ts.predict(b) for b in (64, 1024, 16384, 262144, 1 << 20)]
        assert values == sorted(values)

    def test_extrapolation_beyond_samples(self, db):
        ts = db.lookup("shift", 8, "unit", "high")
        biggest = ts.samples[-1][0]
        assert ts.predict(biggest * 4) > ts.predict(biggest)

    def test_single_proc_is_free(self, db):
        assert db.predict("broadcast", 1, 4096) == 0.0

    def test_nearest_proc_fallback(self, db):
        # 12 processors were never measured; nearest measured count is
        # used (the tool is parameterized for arbitrary P).
        assert db.predict("shift", 12, 4096) > 0.0

    def test_unknown_pattern_raises(self, db):
        with pytest.raises(KeyError):
            db.predict("teleport", 8, 4096)

    def test_nonunit_stride_costs_more(self, db):
        unit = db.predict("shift", 8, 16384, stride="unit")
        nonunit = db.predict("shift", 8, 16384, stride="nonunit")
        assert nonunit > unit

    def test_low_latency_below_high(self, db):
        low = db.predict("sendrecv", 8, 8, latency="low")
        high = db.predict("sendrecv", 8, 8, latency="high")
        assert low <= high

    def test_buffered_transpose_vs_training_measures(self, db):
        """Training sets come from event-level microbenchmarks, so they
        reflect chunk serialization."""
        t4 = db.predict("transpose", 4, 65536, stride="nonunit")
        t32 = db.predict("transpose", 32, 65536, stride="nonunit")
        # more partners, same local bytes: per-partner latency grows the
        # total even though the data volume is unchanged
        assert t32 > t4
