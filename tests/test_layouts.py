"""Layout types: template, alignment, distribution, ownership math."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution.layouts import (
    BLOCK,
    CYCLIC,
    SERIAL,
    Alignment,
    DataLayout,
    DimDistribution,
    Distribution,
    block_bounds,
    block_owner,
    cyclic_owner,
)
from repro.distribution.template import Template, determine_template
from repro.frontend import build_symbol_table, parse_source


@pytest.fixture(scope="module")
def symbols():
    src = (
        "program t\n"
        "      integer n\n      parameter (n = 16)\n"
        "      double precision a(n, n)\n"
        "      real v(n)\n"
        "      real cube(4, 8, 2)\n"
        "      end\n"
    )
    return build_symbol_table(parse_source(src))


class TestTemplate:
    def test_rank_is_max_array_rank(self, symbols):
        tpl = determine_template(symbols)
        assert tpl.rank == 3

    def test_extents_are_dimensionwise_maxima(self, symbols):
        tpl = determine_template(symbols)
        assert tpl.extents == (16, 16, 2)

    def test_no_arrays_raises(self):
        table = build_symbol_table(
            parse_source("program t\n      real x\n      end\n")
        )
        with pytest.raises(ValueError):
            determine_template(table)

    def test_invalid_template(self):
        with pytest.raises(ValueError):
            Template(rank=2, extents=(4,))
        with pytest.raises(ValueError):
            Template(rank=1, extents=(0,))


class TestAlignment:
    def test_canonical(self):
        al = Alignment.canonical(3)
        assert al.axis_map == (0, 1, 2)
        assert al.is_canonical()

    def test_array_dim_lookup(self):
        al = Alignment(axis_map=(1, 0))
        assert al.array_dim(0) == 1
        assert al.array_dim(1) == 0
        assert al.template_dim(0) == 1

    def test_replicated_dim_lookup(self):
        al = Alignment(axis_map=(2,))
        assert al.array_dim(0) is None
        assert al.array_dim(2) == 0

    def test_non_injective_rejected(self):
        with pytest.raises(ValueError):
            Alignment(axis_map=(0, 0))


class TestDistribution:
    def test_one_dim_block(self):
        d = Distribution.one_dim_block(3, 1, 8)
        assert d.distributed_dims() == (1,)
        assert d.total_procs == 8
        assert d.dims[0].kind == SERIAL

    def test_serial(self):
        d = Distribution.serial(2)
        assert d.total_procs == 1
        assert d.distributed_dims() == ()

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            DimDistribution(kind="weird")
        with pytest.raises(ValueError):
            DimDistribution(kind=SERIAL, procs=4)
        with pytest.raises(ValueError):
            DimDistribution(kind="block_cyclic", procs=4, block=0)

    def test_multi_dim_total_procs(self):
        d = Distribution(dims=(
            DimDistribution(kind=BLOCK, procs=4),
            DimDistribution(kind=BLOCK, procs=2),
        ))
        assert d.total_procs == 8


class TestBlockMath:
    def test_block_owner_basic(self):
        # 16 elements over 4 procs: blocks of 4.
        assert block_owner(1, 16, 4) == 0
        assert block_owner(4, 16, 4) == 0
        assert block_owner(5, 16, 4) == 1
        assert block_owner(16, 16, 4) == 3

    def test_block_bounds_cover(self):
        lo, hi = block_bounds(2, 16, 4)
        assert (lo, hi) == (9, 12)

    def test_uneven_blocks(self):
        # 10 over 4: ceil block 3 -> 3,3,3,1
        sizes = [
            max(block_bounds(p, 10, 4)[1] - block_bounds(p, 10, 4)[0] + 1, 0)
            for p in range(4)
        ]
        assert sizes == [3, 3, 3, 1]

    def test_cyclic_owner(self):
        assert cyclic_owner(1, 4) == 0
        assert cyclic_owner(5, 4) == 0
        assert cyclic_owner(6, 4) == 1

    @settings(max_examples=200, deadline=None)
    @given(
        extent=st.integers(min_value=1, max_value=400),
        procs=st.integers(min_value=1, max_value=64),
    )
    def test_blocks_partition_index_space(self, extent, procs):
        """block_bounds form a partition and agree with block_owner."""
        covered = []
        for p in range(procs):
            lo, hi = block_bounds(p, extent, procs)
            for idx in range(lo, hi + 1):
                covered.append(idx)
                assert block_owner(idx, extent, procs) == p
        assert covered == list(range(1, extent + 1))


class TestDataLayout:
    def make(self, symbols, axis_a=(0, 1), dist_dim=0, procs=4):
        tpl = Template(rank=2, extents=(16, 16))
        return DataLayout.build(
            template=tpl,
            alignments={
                "a": Alignment(axis_map=axis_a),
                "v": Alignment(axis_map=(0,)),
            },
            distribution=Distribution.one_dim_block(2, dist_dim, procs),
        )

    def test_distributed_array_dims(self, symbols):
        layout = self.make(symbols)
        assert layout.distributed_array_dims("a") == ((0, 0, 4),)
        assert layout.distributed_array_dims("v") == ((0, 0, 4),)

    def test_replication(self, symbols):
        layout = self.make(symbols, dist_dim=1)
        assert layout.distributed_array_dims("v") == ()
        assert layout.replicated_over("v") == ((1, 4),)
        assert layout.is_fully_replicated("v")

    def test_local_elements(self, symbols):
        layout = self.make(symbols)
        assert layout.local_elements(symbols.array("a")) == 64
        assert layout.local_elements(symbols.array("v")) == 4

    def test_local_elements_replicated(self, symbols):
        layout = self.make(symbols, dist_dim=1)
        assert layout.local_elements(symbols.array("v")) == 16

    def test_orientation_symmetry_signature(self, symbols):
        """Transposed alignment + row distribution == canonical + column
        distribution (the paper's dedup rule)."""
        transposed_row = self.make(symbols, axis_a=(1, 0), dist_dim=0)
        canonical_col = self.make(symbols, axis_a=(0, 1), dist_dim=1)
        # v differs (aligned t0 in both) so compare only a's entry.
        sig_t = dict(x[:2] for x in [e for e in transposed_row.signature()])
        sig_c = dict(x[:2] for x in [e for e in canonical_col.signature()])
        assert sig_t["a"] == sig_c["a"]

    def test_alignment_of_missing_array(self, symbols):
        layout = self.make(symbols)
        with pytest.raises(KeyError):
            layout.alignment_of("zzz")

    def test_rank_mismatch_rejected(self, symbols):
        tpl = Template(rank=2, extents=(16, 16))
        with pytest.raises(ValueError):
            DataLayout.build(
                template=tpl,
                alignments={},
                distribution=Distribution.serial(3),
            )

    def test_describe_mentions_arrays(self, symbols):
        layout = self.make(symbols)
        text = layout.describe()
        assert "ALIGN a" in text and "ALIGN v" in text
