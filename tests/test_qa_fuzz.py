"""Fuzz runner and metamorphic-invariant tests."""

import pytest

from repro.frontend.parser import parse_source
from repro.qa import (
    ALL_CHECKS,
    GeneratorConfig,
    add_unused_array,
    generate_program,
    rename_identifiers,
    run_fuzz,
    scale_size_parameter,
)
from repro.qa.metamorphic import METAMORPHIC_CHECKS, declared_arrays
from repro.tool.assistant import AssistantConfig


class TestTransforms:
    def test_rename_is_bijective_and_parseable(self):
        from repro.frontend.printer import format_program

        case = generate_program(0)
        arrays = declared_arrays(case.program)
        mapping = {name: f"z{name}" for name in arrays}
        renamed = rename_identifiers(case.program, mapping)
        assert declared_arrays(renamed) == [f"z{a}" for a in arrays]
        parse_source(format_program(renamed))
        # renaming back restores the original tree
        back = rename_identifiers(
            renamed, {v: k for k, v in mapping.items()}
        )
        assert back == case.program

    def test_scale_size_parameter(self):
        from repro.frontend.printer import format_program

        case = generate_program(0, GeneratorConfig(size=8))
        scaled = scale_size_parameter(case.program, 3)
        assert "parameter (n = 24)" in format_program(scaled)

    def test_add_unused_array_appends_rank1_decl(self):
        case = generate_program(0)
        extended = add_unused_array(case.program)
        assert "zunused" in declared_arrays(extended)
        assert case.program.body == extended.body

    def test_metamorphic_checks_pass_on_generated_programs(self):
        config = AssistantConfig(nprocs=4)
        for seed in (0, 5, 11):
            case = generate_program(seed)
            for name, check in METAMORPHIC_CHECKS.items():
                violation = check(case.program, config)
                assert violation is None, f"seed {seed} {name}: {violation}"


class TestRunner:
    def test_clean_campaign(self):
        report = run_fuzz(seed=0, cases=8)
        assert report.ok
        assert report.cases_run == 8
        assert report.checks_run["roundtrip"] == 8
        for check in ALL_CHECKS:
            assert check in report.checks_run

    def test_campaign_is_deterministic(self):
        a = run_fuzz(seed=3, cases=4, checks=["roundtrip", "pipeline"])
        b = run_fuzz(seed=3, cases=4, checks=["roundtrip", "pipeline"])
        assert a.checks_run == b.checks_run
        assert [f.describe() for f in a.failures] \
            == [f.describe() for f in b.failures]

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError):
            run_fuzz(seed=0, cases=1, checks=["nonsense"])

    def test_injected_failure_is_minimized_and_serialized(
        self, tmp_path, monkeypatch
    ):
        # Corrupt the selection ILP builder process-wide: every case now
        # diverges, exercising minimization and corpus serialization.
        from repro.qa import oracles
        from repro.selection.ilp import build_selection_model

        def corrupted(graph):
            ilp = build_selection_model(graph)
            for var in ilp.model.variables:
                if var.startswith("x:"):
                    break
            ilp.model.set_objective_coeff(var, 1e9)
            return ilp

        monkeypatch.setattr(
            oracles, "build_selection_model", corrupted
        )
        report = run_fuzz(
            seed=0, cases=3, checks=["selection-oracle"],
            out_dir=str(tmp_path),
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.check == "selection-oracle"
        written = sorted(p.name for p in tmp_path.iterdir())
        assert any(name.endswith(".f") for name in written)
        assert any(name.endswith(".json") for name in written)

    def test_budget_stops_campaign(self):
        report = run_fuzz(seed=0, budget_seconds=0.0)
        assert report.cases_run == 0
