"""Reference-interpreter tests: subset semantics, benchmark-program
sanity, and semantic validation of the inliner and unparser."""

import numpy as np
import pytest

from repro.frontend import parse_source_file
from repro.frontend.inline import inline_program
from repro.frontend.interp import (
    Environment,
    InterpError,
    Interpreter,
    run_program,
    run_source,
)
from repro.frontend.printer import format_program
from repro.programs import PROGRAMS


def env_arrays(env: Environment):
    return {name: arr.data for name, arr in env.arrays.items()}


class TestBasics:
    def test_scalar_assignment(self):
        env = run_source(
            "program t\n      real x\n      x = 1.5\n      end\n"
        )
        assert env.scalars["x"] == 1.5

    def test_integer_division_truncates(self):
        env = run_source(
            "program t\n      integer k\n      k = 7 / 2\n      end\n"
        )
        assert env.scalars["k"] == 3

    def test_do_loop_fills_array(self):
        env = run_source(
            "program t\n      real a(5)\n      integer i\n"
            "      do i = 1, 5\n        a(i) = i * 2.0\n      enddo\n"
            "      end\n"
        )
        assert list(env.arrays["a"].data) == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_backward_loop(self):
        env = run_source(
            "program t\n      real a(4)\n      integer i\n"
            "      do i = 4, 1, -1\n        a(i) = i * 1.0\n      enddo\n"
            "      end\n"
        )
        assert list(env.arrays["a"].data) == [1.0, 2.0, 3.0, 4.0]

    def test_if_branches(self):
        env = run_source(
            "program t\n      integer k\n      real x\n      x = -2.0\n"
            "      if (x .lt. 0.0) then\n        k = 1\n"
            "      else\n        k = 2\n      endif\n      end\n"
        )
        assert env.scalars["k"] == 1

    def test_logical_operators(self):
        env = run_source(
            "program t\n      integer k\n      real x\n      x = 5.0\n"
            "      k = 0\n"
            "      if (x .gt. 0.0 .and. .not. x .gt. 10.0) k = 7\n"
            "      end\n"
        )
        assert env.scalars["k"] == 7

    def test_intrinsics(self):
        env = run_source(
            "program t\n      real x, y, z\n"
            "      x = sqrt(16.0)\n      y = max(2.0, 3.0)\n"
            "      z = abs(-1.5)\n      end\n"
        )
        assert env.scalars["x"] == 4.0
        assert env.scalars["y"] == 3.0
        assert env.scalars["z"] == 1.5

    def test_two_dimensional_indexing(self):
        env = run_source(
            "program t\n      real a(3, 3)\n      integer i, j\n"
            "      do j = 1, 3\n        do i = 1, 3\n"
            "          a(i, j) = i * 10.0 + j\n        enddo\n      enddo\n"
            "      end\n"
        )
        assert env.arrays["a"].get((2, 3)) == 23.0

    def test_explicit_lower_bound(self):
        env = run_source(
            "program t\n      real a(0:3)\n      integer i\n"
            "      do i = 0, 3\n        a(i) = i * 1.0\n      enddo\n"
            "      end\n"
        )
        assert env.arrays["a"].get((0,)) == 0.0
        assert env.arrays["a"].get((3,)) == 3.0

    def test_out_of_bounds_raises(self):
        with pytest.raises(InterpError, match="outside"):
            run_source(
                "program t\n      real a(4)\n      a(5) = 1.0\n      end\n"
            )

    def test_statement_budget(self):
        with pytest.raises(InterpError, match="budget"):
            run_source(
                "program t\n      real a(2)\n      integer i, j\n"
                "      do j = 1, 10000\n        do i = 1, 10000\n"
                "          a(1) = 0.0\n        enddo\n      enddo\n"
                "      end\n",
                max_statements=1000,
            )

    def test_parameter_constants_available(self):
        env = run_source(
            "program t\n      integer n\n      parameter (n = 6)\n"
            "      real a(n)\n      integer i\n"
            "      do i = 1, n\n        a(i) = 1.0\n      enddo\n"
            "      end\n"
        )
        assert env.arrays["a"].data.shape == (6,)


class TestCalls:
    SRC = (
        "program p\n      real a(4)\n      real s\n      integer i\n"
        "      do i = 1, 4\n        a(i) = i * 1.0\n      enddo\n"
        "      s = 10.0\n"
        "      call bump(a, s)\n      end\n"
        "subroutine bump(x, amount)\n"
        "      real x(4)\n      real amount\n      integer i\n"
        "      do i = 1, 4\n        x(i) = x(i) + amount\n      enddo\n"
        "      amount = 0.0\n"
        "      end\n"
    )

    def test_array_passed_by_reference(self):
        env = run_source(self.SRC)
        assert list(env.arrays["a"].data) == [11.0, 12.0, 13.0, 14.0]

    def test_scalar_written_back(self):
        env = run_source(self.SRC)
        assert env.scalars["s"] == 0.0

    def test_expression_actual_not_written_back(self):
        src = (
            "program p\n      real a(2)\n"
            "      call setit(a, 2.0 + 1.0)\n      end\n"
            "subroutine setit(x, v)\n      real x(2)\n      real v\n"
            "      x(1) = v\n      end\n"
        )
        env = run_source(src)
        assert env.arrays["a"].get((1,)) == 3.0


class TestSemanticValidation:
    def test_inliner_preserves_semantics(self):
        """Running the multi-unit program directly (CALLs executed with
        reference semantics) equals running its inlined form."""
        src = (
            "program p\n"
            "      integer n\n      parameter (n = 12)\n"
            "      double precision a(n, n), b(n, n)\n"
            "      integer i, j, t\n"
            "      do j = 1, n\n        do i = 1, n\n"
            "          a(i, j) = 1.0 / (i + j)\n"
            "          b(i, j) = 0.0\n"
            "        enddo\n      enddo\n"
            "      do t = 1, 3\n"
            "        call relax(a, b, n)\n"
            "        call relax(b, a, n)\n"
            "      enddo\n      end\n"
            "subroutine relax(u, v, m)\n"
            "      integer m\n      double precision u(m, m), v(m, m)\n"
            "      integer i, j\n"
            "      do j = 2, m - 1\n        do i = 2, m - 1\n"
            "          v(i, j) = 0.25 * (u(i + 1, j) + u(i - 1, j) +"
            " u(i, j + 1) + u(i, j - 1))\n"
            "        enddo\n      enddo\n      end\n"
        )
        direct = run_source(src)
        inlined = inline_program(parse_source_file(src))
        via_inline = run_program(inlined)
        for name in ("a", "b"):
            np.testing.assert_allclose(
                direct.arrays[name].data, via_inline.arrays[name].data
            )

    def test_printer_round_trip_preserves_semantics(self):
        spec = PROGRAMS["adi"]
        src = spec.source(n=8, maxiter=2)
        original = run_source(src)
        printed = format_program(
            parse_source_file(src).program
        )
        reprinted = run_source(printed)
        for name in original.arrays:
            np.testing.assert_allclose(
                original.arrays[name].data,
                reprinted.arrays[name].data,
            )


class TestBenchmarkProgramSanity:
    """The re-created evaluation programs compute finite, non-degenerate
    values — they are real numerical kernels, not shaped stand-ins."""

    @pytest.mark.parametrize("name,n", [
        ("adi", 8), ("tomcatv", 8), ("shallow", 8), ("erlebacher", 6),
    ])
    def test_finite_values(self, name, n):
        spec = PROGRAMS[name]
        kwargs = {"n": n}
        if spec.has_time_loop:
            kwargs["maxiter"] = 2
        env = run_source(spec.source(**kwargs))
        for array_name, array in env.arrays.items():
            assert np.all(np.isfinite(array.data)), (name, array_name)

    def test_adi_sweeps_change_the_solution(self):
        env = run_source(PROGRAMS["adi"].source(n=8, maxiter=2))
        x = env.arrays["x"].data
        assert np.ptp(x) > 0  # not constant

    def test_shallow_wraps_are_periodic(self):
        env = run_source(PROGRAMS["shallow"].source(n=8, maxiter=1))
        cu = env.arrays["cu"].data
        np.testing.assert_allclose(cu[0, :], cu[7, :])

    def test_tomcatv_residual_reduces_mesh_motion(self):
        env = run_source(PROGRAMS["tomcatv"].source(n=8, maxiter=3))
        assert env.scalars["rmax"] >= 0.0
