"""Dependence analysis tests."""

import pytest

from repro.analysis.dependence import (
    carried_flow_vars,
    flow_dependences_on_var,
    is_uniform_pair,
    phase_dependences,
    reduction_vars,
    scalar_reductions,
)
from repro.analysis.phases import partition_phases
from repro.frontend import build_symbol_table, parse_source


def phase_of(body, decls="      real a(8, 8), b(8, 8)\n      real s\n"
                         "      integer i, j\n"):
    src = f"program t\n{decls}{body}      end\n"
    prog = parse_source(src)
    table = build_symbol_table(prog)
    part = partition_phases(prog, table)
    assert len(part) == 1
    return part.phases[0]


class TestFlowDependences:
    def test_forward_sweep_distance_one(self):
        phase = phase_of(
            "      do j = 1, 8\n        do i = 2, 8\n"
            "          a(i, j) = a(i - 1, j)\n        enddo\n      enddo\n"
        )
        deps = phase_dependences(phase)
        flow = [d for d in deps if d.kind == "flow"]
        assert len(flow) == 1
        assert flow[0].carrier_var == "i"
        assert flow[0].distance == 1
        assert flow[0].dim == 0

    def test_backward_sweep_normalizes_positive(self):
        phase = phase_of(
            "      do j = 1, 8\n        do i = 7, 1, -1\n"
            "          a(i, j) = a(i + 1, j)\n        enddo\n      enddo\n"
        )
        flow = [d for d in phase_dependences(phase) if d.kind == "flow"]
        assert len(flow) == 1
        assert flow[0].carrier_var == "i"
        assert flow[0].distance == 1

    def test_anti_dependence(self):
        phase = phase_of(
            "      do j = 1, 8\n        do i = 1, 7\n"
            "          a(i, j) = a(i + 1, j)\n        enddo\n      enddo\n"
        )
        deps = phase_dependences(phase)
        assert [d.kind for d in deps] == ["anti"]

    def test_distance_two(self):
        phase = phase_of(
            "      do j = 1, 8\n        do i = 3, 8\n"
            "          a(i, j) = a(i - 2, j)\n        enddo\n      enddo\n"
        )
        flow = [d for d in phase_dependences(phase) if d.kind == "flow"]
        assert flow[0].distance == 2

    def test_no_dependence_between_arrays(self):
        phase = phase_of(
            "      do j = 1, 8\n        do i = 2, 8\n"
            "          a(i, j) = b(i - 1, j)\n        enddo\n      enddo\n"
        )
        assert phase_dependences(phase) == []

    def test_ziv_distinct_constants_independent(self):
        phase = phase_of(
            "      do i = 1, 8\n"
            "        a(i, 1) = a(i, 2)\n      enddo\n"
        )
        assert phase_dependences(phase) == []

    def test_ziv_same_constant_no_carried_dep(self):
        phase = phase_of(
            "      do i = 1, 8\n"
            "        a(i, 1) = a(i, 1) * 2.0\n      enddo\n"
        )
        # Same element every iteration in dim 1, same i in dim 0:
        # no *loop-carried* dependence.
        assert phase_dependences(phase) == []

    def test_coeff_two_with_odd_offset_independent(self):
        # write a(2i), read a(2i-1): lattices never meet.
        phase = phase_of(
            "      do i = 1, 4\n"
            "        a(2 * i, 1) = a(2 * i - 1, 1)\n      enddo\n"
        )
        assert phase_dependences(phase) == []

    def test_carried_flow_vars(self):
        phase = phase_of(
            "      do j = 2, 8\n        do i = 2, 8\n"
            "          a(i, j) = a(i - 1, j) + a(i, j - 1)\n"
            "        enddo\n      enddo\n"
        )
        assert set(carried_flow_vars(phase)) == {"i", "j"}

    def test_flow_dependences_on_var_filter(self):
        phase = phase_of(
            "      do j = 2, 8\n        do i = 2, 8\n"
            "          a(i, j) = a(i, j - 1)\n        enddo\n      enddo\n"
        )
        assert flow_dependences_on_var(phase, "j")
        assert not flow_dependences_on_var(phase, "i")


class TestUniformPair:
    def test_uniform(self):
        phase = phase_of(
            "      do j = 1, 8\n        do i = 2, 8\n"
            "          a(i, j) = a(i - 1, j)\n        enddo\n      enddo\n"
        )
        w = next(a for a in phase.accesses if a.is_write)
        r = next(a for a in phase.accesses if not a.is_write)
        assert is_uniform_pair(w, r)

    def test_transposed_not_uniform(self):
        phase = phase_of(
            "      do j = 1, 8\n        do i = 1, 8\n"
            "          a(i, j) = b(j, i)\n        enddo\n      enddo\n"
        )
        w = next(a for a in phase.accesses if a.is_write)
        r = next(a for a in phase.accesses if a.array == "b")
        assert not is_uniform_pair(w, r)


class TestReductions:
    def test_scalar_reduction_detected(self):
        phase = phase_of(
            "      do j = 1, 8\n        do i = 1, 8\n"
            "          s = s + a(i, j)\n        enddo\n      enddo\n"
        )
        assert len(scalar_reductions(phase)) == 1

    def test_max_reduction_detected(self):
        phase = phase_of(
            "      do j = 1, 8\n        do i = 1, 8\n"
            "          s = max(s, a(i, j))\n        enddo\n      enddo\n"
        )
        assert len(scalar_reductions(phase)) == 1

    def test_plain_assignment_not_reduction(self):
        phase = phase_of(
            "      do j = 1, 8\n        do i = 1, 8\n"
            "          s = a(i, j)\n        enddo\n      enddo\n"
        )
        assert scalar_reductions(phase) == []

    def test_array_reduction_vars(self):
        # x(i) accumulates over j.
        phase = phase_of(
            "      do j = 1, 8\n        do i = 1, 8\n"
            "          b(i, 1) = b(i, 1) + a(i, j)\n"
            "        enddo\n      enddo\n"
        )
        assert "j" in reduction_vars(phase)
