"""Shared fixtures: parsed programs, training data, assistant runs.

Session-scoped where construction is deterministic and read-only, so the
suite stays fast despite exercising the full pipeline many times.
"""

from __future__ import annotations

import pytest

from repro.analysis import build_pcfg, partition_phases
from repro.frontend import build_symbol_table, parse_source
from repro.machine import IPSC860
from repro.perf import cached_training_database
from repro.programs import PROGRAMS
from repro.tool import AssistantConfig, run_assistant


def analyze(source: str, branch_probability: float = 0.5,
            branch_prob_overrides=None):
    """Parse + symbols + phases + PCFG in one call (test helper)."""
    program = parse_source(source)
    symbols = build_symbol_table(program)
    partition = partition_phases(
        program, symbols,
        branch_probability=branch_probability,
        branch_prob_overrides=branch_prob_overrides,
    )
    pcfg = build_pcfg(partition)
    return program, symbols, partition, pcfg


@pytest.fixture(scope="session")
def training_db():
    return cached_training_database(IPSC860)


@pytest.fixture(scope="session")
def adi_small_source():
    return PROGRAMS["adi"].source(n=32, maxiter=2)


@pytest.fixture(scope="session")
def adi_small(adi_small_source):
    return analyze(adi_small_source)


@pytest.fixture(scope="session")
def tomcatv_small_source():
    return PROGRAMS["tomcatv"].source(n=32, maxiter=2)


@pytest.fixture(scope="session")
def tomcatv_small(tomcatv_small_source):
    return analyze(tomcatv_small_source)


@pytest.fixture(scope="session")
def erlebacher_small_source():
    return PROGRAMS["erlebacher"].source(n=16)


@pytest.fixture(scope="session")
def erlebacher_small(erlebacher_small_source):
    return analyze(erlebacher_small_source)


@pytest.fixture(scope="session")
def shallow_small_source():
    return PROGRAMS["shallow"].source(n=48, maxiter=2)


@pytest.fixture(scope="session")
def shallow_small(shallow_small_source):
    return analyze(shallow_small_source)


@pytest.fixture(scope="session")
def adi_assistant(adi_small_source):
    return run_assistant(adi_small_source, AssistantConfig(nprocs=4))


@pytest.fixture(scope="session")
def tomcatv_assistant(tomcatv_small_source):
    return run_assistant(tomcatv_small_source, AssistantConfig(nprocs=4))
