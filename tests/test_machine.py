"""Machine substrate tests: params, network, collectives, node costs."""

import pytest

from repro.frontend import build_symbol_table, parse_source
from repro.machine import (
    IPSC860,
    PARAGON,
    MachineParams,
    broadcast_time,
    expr_cost,
    hops,
    hypercube_dimension,
    is_power_of_two,
    neighbors,
    point_to_point_time,
    redistribute_time,
    reduction_time,
    shift_time,
    statement_cost,
    stmt_dtype,
    transpose_time,
)


class TestParams:
    def test_short_vs_long_protocol(self):
        short = IPSC860.message_time(50)
        long_ = IPSC860.message_time(200)
        assert long_ > short
        assert short == pytest.approx(
            IPSC860.alpha_short + 50 * IPSC860.beta_per_byte
            + IPSC860.hop_latency
        )

    def test_buffered_costs_more(self):
        plain = IPSC860.message_time(4096)
        buffered = IPSC860.message_time(4096, buffered=True)
        assert buffered == pytest.approx(
            plain + 2 * 4096 * IPSC860.buffer_copy_per_byte
        )

    def test_send_overhead_below_message_time(self):
        assert IPSC860.send_overhead(1024) < IPSC860.message_time(
            1024, hops=3
        )

    def test_dtype_factor(self):
        assert IPSC860.dtype_factor("real") < 1.0
        assert IPSC860.dtype_factor("double") == 1.0

    def test_with_overrides(self):
        fast = IPSC860.with_overrides(alpha_short=1.0)
        assert fast.alpha_short == 1.0
        assert IPSC860.alpha_short == 75.0  # frozen original

    def test_paragon_is_faster(self):
        assert PARAGON.message_time(4096) < IPSC860.message_time(4096)


class TestHypercube:
    def test_power_of_two(self):
        assert is_power_of_two(1) and is_power_of_two(32)
        assert not is_power_of_two(0) and not is_power_of_two(12)

    def test_dimension(self):
        assert hypercube_dimension(16) == 4
        with pytest.raises(ValueError):
            hypercube_dimension(12)

    def test_hops_is_hamming_distance(self):
        assert hops(0, 0) == 0
        assert hops(0b0101, 0b0110) == 2

    def test_neighbors(self):
        assert sorted(neighbors(0, 8)) == [1, 2, 4]

    def test_point_to_point_self_is_free(self):
        assert point_to_point_time(IPSC860, 3, 3, 4096) == 0.0

    def test_distance_dependence_is_small(self):
        near = point_to_point_time(IPSC860, 0, 1, 4096)
        far = point_to_point_time(IPSC860, 0, 31, 4096)
        assert far > near
        assert (far - near) / near < 0.1  # circuit switched


class TestCollectiveFormulas:
    def test_single_proc_collectives_free(self):
        assert broadcast_time(IPSC860, 1, 4096) == 0.0
        assert reduction_time(IPSC860, 1, 4096) == 0.0
        assert transpose_time(IPSC860, 1, 4096) == 0.0

    def test_broadcast_log_stages(self):
        t8 = broadcast_time(IPSC860, 8, 512)
        t16 = broadcast_time(IPSC860, 16, 512)
        assert t16 / t8 == pytest.approx(4.0 / 3.0)

    def test_transpose_data_crosses_once(self):
        # doubling procs with fixed local bytes: more chunks, smaller each
        t4 = transpose_time(IPSC860, 4, 65536)
        t16 = transpose_time(IPSC860, 16, 65536)
        # latency term grows, bandwidth term roughly constant
        assert t16 > 0 and t4 > 0

    def test_redistribute_scales_down_with_procs(self):
        t4 = redistribute_time(IPSC860, 4, 1 << 20)
        t16 = redistribute_time(IPSC860, 16, 1 << 20)
        assert t16 < t4

    def test_shift_is_one_message(self):
        assert shift_time(IPSC860, 1024) == pytest.approx(
            IPSC860.message_time(1024, hops=1)
        )


@pytest.fixture(scope="module")
def stmt_env():
    src = (
        "program t\n"
        "      integer n\n      parameter (n = 8)\n"
        "      double precision a(n, n), b(n, n)\n"
        "      real r(n)\n"
        "      integer i, j\n"
        "      do j = 1, n\n"
        "        do i = 1, n\n"
        "          a(i, j) = b(i, j) * 2.0 + 1.0\n"
        "          a(i, j) = sqrt(b(i, j))\n"
        "          a(i, j) = b(i, j) / 3.0\n"
        "          r(i) = 1.0\n"
        "        enddo\n"
        "      enddo\n"
        "      end\n"
    )
    prog = parse_source(src)
    table = build_symbol_table(prog)
    stmts = list(prog.body[0].body[0].body)
    return stmts, table


class TestNodeCosts:
    def test_mul_add_statement(self, stmt_env):
        stmts, table = stmt_env
        cost = statement_cost(stmts[0], IPSC860, table, dtype="double")
        assert cost > 0

    def test_intrinsic_costs_more_than_mul(self, stmt_env):
        stmts, table = stmt_env
        mul = statement_cost(stmts[0], IPSC860, table)
        sqrt = statement_cost(stmts[1], IPSC860, table)
        assert sqrt > mul - IPSC860.op_add  # sqrt dominates the extra add

    def test_div_costs_more_than_mul(self, stmt_env):
        stmts, table = stmt_env
        mul_expr = stmts[0].expr
        div_expr = stmts[2].expr
        assert expr_cost(div_expr, IPSC860) > expr_cost(mul_expr, IPSC860) \
            - IPSC860.op_add

    def test_real_cheaper_than_double(self, stmt_env):
        stmts, table = stmt_env
        d = statement_cost(stmts[0], IPSC860, table, dtype="double")
        r = statement_cost(stmts[0], IPSC860, table, dtype="real")
        assert r < d

    def test_stmt_dtype(self, stmt_env):
        stmts, table = stmt_env
        assert stmt_dtype(stmts[0], table) == "double"
        assert stmt_dtype(stmts[3], table) == "real"
