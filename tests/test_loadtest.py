"""The open-loop load generator: config/profile handling, percentile
math, outcome classification, report gating, and full runs against both
a canned sender and a real in-process overloaded service."""

from __future__ import annotations

import json
import threading
from pathlib import Path

import pytest

from repro.resilience import AdaptiveConcurrencyLimiter, AdmissionController
from repro.service import (
    LayoutService,
    LoadtestConfig,
    LoadtestReport,
    WorkerPool,
    run_loadtest,
)
from repro.service.loadtest import _percentile

PROFILE_PATH = Path(__file__).resolve().parent.parent / "examples" \
    / "loadtest.json"

OK_RESPONSE = {
    "ok": True,
    "predicted_total_us": 1000.0,
    "layouts": {"0": "(block, *)"},
}


def _sender(reply_fn):
    """Adapt ``reply_fn(payload) -> dict`` to the send signature."""

    def send(payload, host=None, port=None, timeout=None):
        return reply_fn(payload)

    return send


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadtestConfig(rate=0.0, duration_s=1.0)
        with pytest.raises(ValueError):
            LoadtestConfig(rate=1.0, duration_s=0.0)
        with pytest.raises(ValueError):
            LoadtestConfig(rate=1.0, duration_s=1.0, workers=0)

    def test_total_requests_rounds_up(self):
        assert LoadtestConfig(rate=3.0, duration_s=1.5).total_requests == 5

    def test_from_profile_with_overrides(self):
        config = LoadtestConfig.from_profile(
            {"rate": 5.0, "duration_s": 10.0, "timeout_s": 7.0},
            rate=20.0, duration_s=None,
        )
        assert config.rate == 20.0        # override wins
        assert config.duration_s == 10.0  # None override is ignored
        assert config.timeout_s == 7.0

    def test_from_profile_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            LoadtestConfig.from_profile(
                {"rate": 1.0, "duration_s": 1.0, "qps": 5}
            )

    def test_from_profile_requires_rate_and_duration(self):
        with pytest.raises(ValueError, match="rate"):
            LoadtestConfig.from_profile({"duration_s": 1.0})

    def test_example_profile_parses(self):
        data = json.loads(PROFILE_PATH.read_text())
        config = LoadtestConfig.from_profile(data)
        assert config.rate == 10.0
        assert config.request["op"] == "analyze"
        assert config.request["use_cache"] is False


class TestPercentile:
    def test_order_statistic_ranks(self):
        values = [float(i) for i in range(1, 101)]
        assert _percentile(values, 0.50) == 50.0
        assert _percentile(values, 0.99) == 99.0
        assert _percentile(values, 1.00) == 100.0

    def test_single_and_empty(self):
        assert _percentile([], 0.99) == 0.0
        assert _percentile([7.0], 0.50) == 7.0


class TestRunClassification:
    def _run(self, reply_fn, rate=200.0, duration_s=0.05, warmup=True):
        config = LoadtestConfig(
            rate=rate, duration_s=duration_s, timeout_s=5.0,
            workers=16, warmup=warmup,
        )
        return run_loadtest(config, send=_sender(reply_fn))

    def test_all_served_clean_run(self):
        report = self._run(lambda payload: dict(OK_RESPONSE))
        assert report.counts == {"served": report.total}
        assert report.violations == []
        assert report.shed_rate == 0.0
        assert report.goodput_rps > 0
        assert report.gate() == []

    def test_typed_sheds_are_clean_not_violations(self):
        def reply(payload):
            if payload["request_id"] == "loadtest-warmup":
                return dict(OK_RESPONSE)
            index = int(payload["request_id"].rsplit("-", 1)[1])
            if index % 2 == 0:
                return {"ok": False, "error": "busy",
                        "error_kind": "overloaded", "retry_after_s": 0.1}
            return dict(OK_RESPONSE)

        report = self._run(reply)
        assert report.counts["shed"] > 0
        assert report.violations == []
        assert report.error_kinds["overloaded"] == report.counts["shed"]
        assert report.gate(require_shed=True) == []

    def test_wrong_answer_is_a_violation(self):
        def reply(payload):
            if payload["request_id"] == "loadtest-warmup":
                return dict(OK_RESPONSE)
            return dict(OK_RESPONSE, predicted_total_us=999.0)

        report = self._run(reply)
        assert report.counts["wrong"] == report.total
        assert report.violations
        assert report.gate() != []

    def test_degraded_answers_may_differ_from_reference(self):
        def reply(payload):
            if payload["request_id"] == "loadtest-warmup":
                return dict(OK_RESPONSE)
            return dict(OK_RESPONSE, degraded=True,
                        predicted_total_us=2000.0)

        report = self._run(reply)
        assert report.counts["served-degraded"] == report.total
        assert report.violations == []

    def test_untyped_error_and_crash_are_violations(self):
        def reply(payload):
            if payload["request_id"] == "loadtest-warmup":
                return dict(OK_RESPONSE)
            index = int(payload["request_id"].rsplit("-", 1)[1])
            if index % 2 == 0:
                return {"ok": False, "error": "boom"}
            raise ConnectionResetError("peer vanished")

        report = self._run(reply)
        assert report.counts["untyped-error"] > 0
        assert report.counts["no-reply"] > 0
        assert len(report.violations) == 2

    def test_unreachable_warmup_raises(self):
        def reply(payload):
            raise ConnectionRefusedError("nobody listening")

        with pytest.raises(RuntimeError, match="warmup"):
            self._run(reply)


class TestReportGate:
    def _report(self, **overrides):
        base = dict(
            config={}, duration_s=1.0, counts={"served": 10}, total=10,
            offered_rate=10.0, goodput_rps=10.0, shed_rate=0.0,
            latency={"p50": 0.1, "p90": 0.2, "p99": 0.5, "max": 0.6},
            error_kinds={}, max_dispatch_lag_s=0.0, violations=[],
        )
        base.update(overrides)
        return LoadtestReport(**base)

    def test_p99_budget(self):
        report = self._report()
        assert report.gate(p99_budget_s=1.0) == []
        problems = report.gate(p99_budget_s=0.3)
        assert problems and "p99" in problems[0]

    def test_goodput_floor_against_baseline(self):
        baseline = self._report(goodput_rps=10.0)
        good = self._report(goodput_rps=9.0)
        bad = self._report(goodput_rps=5.0)
        assert good.gate(baseline=baseline) == []
        problems = bad.gate(baseline=baseline, min_goodput_ratio=0.8)
        assert problems and "goodput" in problems[0]

    def test_require_shed(self):
        quiet = self._report()
        problems = quiet.gate(require_shed=True)
        assert problems and "shed nothing" in problems[0]

    def test_round_trips_through_json(self):
        report = self._report()
        clone = LoadtestReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert clone.goodput_rps == report.goodput_rps
        assert clone.counts == report.counts

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            LoadtestReport.from_dict({"schema": "something/else"})

    def test_summary_mentions_the_essentials(self):
        text = self._report(violations=["1 wrong response(s)"]).summary()
        assert "goodput" in text
        assert "VIOLATIONS" in text


class TestOverloadedServiceEndToEnd:
    def test_overload_sheds_cleanly_in_process(self, tmp_path):
        """2x-style overload against a real service with a tiny
        admission envelope: nothing hangs, nothing is untyped, every
        non-served request is a typed shed."""
        service = LayoutService(
            pool=WorkerPool(kind="thread", max_workers=2),
            use_cache=False,
            admission=AdmissionController(
                limiter=AdaptiveConcurrencyLimiter(
                    initial_limit=1, min_limit=1, max_limit=2
                ),
                max_queue=1,
                max_queue_wait_s=0.05,
            ),
        )
        lock = threading.Lock()

        def send(payload, host=None, port=None, timeout=None):
            if payload["request_id"] == "loadtest-warmup":
                # serialize the warmup so the burst starts from idle
                with lock:
                    return service.handle(payload)
            return service.handle(payload)

        config = LoadtestConfig(
            rate=300.0, duration_s=0.3, timeout_s=30.0, workers=64,
            request={"op": "analyze", "program": "adi", "size": 8,
                     "maxiter": 2, "procs": 4, "use_cache": False,
                     "deadline_s": 0.3},
        )
        try:
            report = run_loadtest(config, send=send)
        finally:
            service.close()
        assert report.violations == [], report.summary()
        assert report.counts.get("shed", 0) > 0, report.summary()
        good = (report.counts.get("served", 0)
                + report.counts.get("served-degraded", 0))
        assert good > 0, report.summary()
        accounted = good + report.counts.get("shed", 0) \
            + report.counts.get("timed-out", 0) \
            + report.counts.get("typed-error", 0)
        assert accounted == report.total, report.summary()
