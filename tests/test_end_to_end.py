"""End-to-end shape tests: the paper's headline qualitative results,
verified at reduced problem scale so the suite stays fast.

These are the invariants EXPERIMENTS.md reports at full scale.
"""

import pytest

from repro.tool import TestCase, run_test_case
from repro.tool.schemes import TOOL


def schemes_by_name(result):
    return {s.name: s for s in result.schemes}


@pytest.fixture(scope="module")
def adi_result():
    return run_test_case(TestCase("adi", 200, "double", 8, maxiter=2))


@pytest.fixture(scope="module")
def erlebacher_result():
    return run_test_case(TestCase("erlebacher", 32, "double", 8))


@pytest.fixture(scope="module")
def tomcatv_result():
    return run_test_case(TestCase("tomcatv", 72, "double", 8, maxiter=2))


@pytest.fixture(scope="module")
def shallow_result():
    return run_test_case(TestCase("shallow", 136, "real", 8, maxiter=2))


class TestAdiShape:
    def test_column_is_worst(self, adi_result):
        by = schemes_by_name(adi_result)
        others = [s.measured_us for n, s in by.items()
                  if n not in ("column", TOOL)]
        assert by["column"].measured_us > max(others)

    def test_tool_optimal(self, adi_result):
        assert adi_result.tool_optimal

    def test_estimates_track_measurements(self, adi_result):
        for s in adi_result.schemes:
            assert s.estimated_us == pytest.approx(
                s.measured_us, rel=0.35
            )

    def test_remapped_crossover_exists(self):
        """Fine-grain pipelining wins at large n, remapping at high P."""
        large_n = run_test_case(
            TestCase("adi", 392, "double", 4, maxiter=2)
        )
        high_p = run_test_case(
            TestCase("adi", 200, "double", 32, maxiter=2)
        )
        by_large = schemes_by_name(large_n)
        by_high = schemes_by_name(high_p)
        assert by_large["row"].measured_us < \
            by_large["remapped"].measured_us
        assert by_high["remapped"].measured_us < \
            by_high["row"].measured_us


class TestErlebacherShape:
    def test_dist1_fine_pipeline_never_profitable(self, erlebacher_result):
        by = schemes_by_name(erlebacher_result)
        others = [s.measured_us for n, s in by.items()
                  if n not in ("dist1", TOOL)]
        assert by["dist1"].measured_us > min(others)

    def test_dist2_beats_dist3(self, erlebacher_result):
        by = schemes_by_name(erlebacher_result)
        assert by["dist2"].measured_us < by["dist3"].measured_us

    def test_dynamic_close_to_dist2(self, erlebacher_result):
        by = schemes_by_name(erlebacher_result)
        tool = by[TOOL]
        dist2 = by["dist2"]
        assert tool.measured_us <= dist2.measured_us
        assert tool.measured_us > 0.5 * dist2.measured_us

    def test_all_three_statics_enumerated(self, erlebacher_result):
        names = set(schemes_by_name(erlebacher_result))
        assert {"dist1", "dist2", "dist3"} <= names


class TestTomcatvShape:
    def test_column_beats_row(self, tomcatv_result):
        by = schemes_by_name(tomcatv_result)
        assert by["column"].measured_us < by["row"].measured_us

    def test_tool_at_least_as_good_as_column(self, tomcatv_result):
        by = schemes_by_name(tomcatv_result)
        assert by[TOOL].measured_us <= by["column"].measured_us * 1.001

    def test_guessed_branch_probability_underestimates(self):
        """Fig 6: with the 50% guess the estimates undershoot a run whose
        actual branch probability is higher."""
        result = run_test_case(
            TestCase("tomcatv", 136, "double", 8, maxiter=2),
            actual_branch_probability=1.0,
        )
        column = schemes_by_name(result)["column"]
        assert column.estimated_us < column.measured_us


class TestShallowShape:
    def test_column_slightly_better_than_row(self, shallow_result):
        by = schemes_by_name(shallow_result)
        col = by["column"].measured_us
        row = by["row"].measured_us
        assert col < row
        assert row < col * 1.3  # "slightly better", not a blowout

    def test_tool_picks_column(self, shallow_result):
        by = schemes_by_name(shallow_result)
        assert by[TOOL].selection == by["column"].selection

    def test_remapping_terrible_for_stencils(self, shallow_result):
        by = schemes_by_name(shallow_result)
        assert by["remapped"].measured_us > 2 * by["column"].measured_us


class TestILPPerformance:
    def test_all_ilp_instances_fast(self, adi_result, tomcatv_result):
        """Paper: every 0-1 instance solved in under 1.1 seconds."""
        for result in (adi_result, tomcatv_result):
            assistant = result.assistant
            if assistant is None:
                continue
            assert assistant.selection.solution.stats.wall_time < 1.1

    def test_selection_sizes_reported(self):
        result = run_test_case(
            TestCase("adi", 200, "double", 8, maxiter=2),
            keep_assistant=True,
        )
        sel = result.assistant.selection
        assert sel.num_variables > 0
        assert sel.num_constraints > 0
