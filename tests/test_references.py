"""Affine subscript + access collection tests."""

import pytest

from repro.frontend import build_symbol_table, parse_source
from repro.frontend.parser import Parser
from repro.frontend.lexer import tokenize
from repro.analysis.references import analyze_subscript, collect_accesses


def expr_of(text):
    """Parse a standalone expression."""
    parser = Parser(tokenize(text))
    return parser._parse_expr()


class TestAffineAnalysis:
    def test_constant(self):
        aff = analyze_subscript(expr_of("5"))
        assert aff.is_constant() and aff.const == 5

    def test_single_variable(self):
        aff = analyze_subscript(expr_of("i"))
        assert aff.coeffs == (("i", 1),) and aff.const == 0
        assert aff.single_index_var() == "i"

    def test_offset(self):
        aff = analyze_subscript(expr_of("i - 1"))
        assert aff.coeff("i") == 1 and aff.const == -1

    def test_scaled(self):
        aff = analyze_subscript(expr_of("2 * i + 3"))
        assert aff.coeff("i") == 2 and aff.const == 3

    def test_negated(self):
        aff = analyze_subscript(expr_of("-i + 4"))
        assert aff.coeff("i") == -1 and aff.const == 4

    def test_two_variables(self):
        aff = analyze_subscript(expr_of("i + j"))
        assert aff.coeff("i") == 1 and aff.coeff("j") == 1
        assert aff.single_index_var() is None

    def test_cancellation(self):
        aff = analyze_subscript(expr_of("i - i + 2"))
        assert aff.is_constant() and aff.const == 2

    def test_parameter_substitution(self):
        aff = analyze_subscript(expr_of("n - 1"), constants={"n": 64})
        assert aff.is_constant() and aff.const == 63

    def test_symbolic_scalar_kept(self):
        aff = analyze_subscript(expr_of("n - i"))
        assert aff.coeff("n") == 1 and aff.coeff("i") == -1

    def test_product_of_variables_not_affine(self):
        aff = analyze_subscript(expr_of("i * j"))
        assert not aff.affine

    def test_division_not_affine(self):
        aff = analyze_subscript(expr_of("i / 2"))
        assert not aff.affine

    def test_constant_times_linear(self):
        aff = analyze_subscript(expr_of("3 * (i + 1)"))
        assert aff.coeff("i") == 3 and aff.const == 3


SRC = """
program t
      integer n
      parameter (n = 8)
      real a(n, n), b(n, n), v(n)
      real s
      integer i, j
      do j = 1, n
        do i = 2, n
          a(i, j) = b(i - 1, j) + v(i)
        enddo
      enddo
      do i = 1, n
        if (v(i) .gt. 0.0) then
          v(i) = v(i) * 2.0
        endif
      enddo
      end
"""


@pytest.fixture(scope="module")
def accesses():
    prog = parse_source(SRC)
    table = build_symbol_table(prog)
    return collect_accesses(prog.body, table)


class TestCollectAccesses:
    def test_counts(self, accesses):
        names = [(a.array, a.is_write) for a in accesses]
        assert ("a", True) in names
        assert ("b", False) in names
        assert ("v", False) in names

    def test_write_flag(self, accesses):
        writes = [a.array for a in accesses if a.is_write]
        assert set(writes) == {"a", "v"}

    def test_loop_nest_recorded(self, accesses):
        a_write = next(a for a in accesses if a.array == "a" and a.is_write)
        assert [l.var for l in a_write.loops] == ["j", "i"]
        assert a_write.loops[0].trip_count == 8
        assert a_write.loops[1].trip_count == 7

    def test_execution_count(self, accesses):
        a_write = next(a for a in accesses if a.array == "a" and a.is_write)
        assert a_write.execution_count == 56

    def test_guard_probability(self, accesses):
        guarded = next(a for a in accesses if a.is_write and a.array == "v")
        assert guarded.guard_probability == pytest.approx(0.5)

    def test_guard_override(self):
        prog = parse_source(SRC)
        table = build_symbol_table(prog)
        if_line = next(
            i for i, line in enumerate(SRC.splitlines(), start=1)
            if ".gt. 0.0" in line
        )
        accs = collect_accesses(
            prog.body, table, branch_prob_overrides={if_line: 0.9}
        )
        guarded = next(a for a in accs if a.is_write and a.array == "v")
        assert guarded.guard_probability == pytest.approx(0.9)

    def test_dimension_for_loop(self, accesses):
        b_read = next(a for a in accesses if a.array == "b")
        assert b_read.dimension_for_loop("i") == 0
        assert b_read.dimension_for_loop("j") == 1
        assert b_read.dimension_for_loop("k") is None

    def test_loop_for_dimension(self, accesses):
        b_read = next(a for a in accesses if a.array == "b")
        assert b_read.loop_for_dimension(0) == "i"
        assert b_read.loop_for_dimension(1) == "j"
