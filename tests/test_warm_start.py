"""Warm-start determinism: seeding any solver with a previous incumbent
must never change the canonical answer — only (possibly) the work needed
to prove it.

Covers the branch-bound backend's incumbent seeding, the warm-start
projection through the model presolve, remap-chain re-solves via
``AssistantResult.reselect``, and a seeded chaos case where graph
presolve and deadline degradation interact.
"""

from __future__ import annotations

import pytest

from repro.ilp import MINIMIZE, ZeroOneModel, solve as ilp_solve
from repro.ilp.branch_bound import solve as bb_solve
from repro.programs import PROGRAMS
from repro.qa.runner import run_fuzz
from repro.resilience.chaos import run_chaos
from repro.resilience.deadline import Deadline, deadline_scope
from repro.resilience.degrade import collecting
from repro.selection.ilp import select_layouts
from repro.tool.assistant import AssistantConfig, run_assistant


def knapsack_model():
    """Small model with a unique optimum and several feasible points."""
    model = ZeroOneModel(name="t", sense=MINIMIZE)
    costs = {"a": 5.0, "b": 3.0, "c": 4.0, "d": 1.0}
    for v in costs:
        model.add_var(v)
    model.add_constraint({"a": 1.0, "b": 1.0}, ">=", 1.0)
    model.add_constraint({"c": 1.0, "d": 1.0}, ">=", 1.0)
    model.set_objective(costs)
    return model


class TestBranchBoundSeeding:
    def test_optimal_seed_returns_same_solution(self):
        model = knapsack_model()
        cold = bb_solve(model)
        warm = bb_solve(model, warm_start=dict(cold.values))
        assert warm.status == cold.status == "optimal"
        assert warm.objective == cold.objective
        assert warm.values == cold.values

    def test_suboptimal_feasible_seed_is_only_a_bound(self):
        model = knapsack_model()
        cold = bb_solve(model)
        # a=1, b=1, c=1, d=1 is feasible but costs 13.
        warm = bb_solve(
            model, warm_start={"a": 1, "b": 1, "c": 1, "d": 1}
        )
        assert warm.values == cold.values
        assert warm.objective == cold.objective == 4.0

    def test_infeasible_seed_is_ignored(self):
        model = knapsack_model()
        cold = bb_solve(model)
        warm = bb_solve(
            model, warm_start={"a": 0, "b": 0, "c": 0, "d": 0}
        )
        assert warm.values == cold.values

    def test_partial_seed_is_ignored(self):
        model = knapsack_model()
        cold = bb_solve(model)
        warm = bb_solve(model, warm_start={"a": 1})
        assert warm.values == cold.values

    def test_seed_pruning_reduces_explored_nodes(self):
        model = knapsack_model()
        cold = bb_solve(model)
        warm = bb_solve(model, warm_start=dict(cold.values))
        assert warm.stats.nodes <= cold.stats.nodes


class TestWarmStartThroughPresolve:
    def test_seed_contradicting_a_fixing_is_discarded(self):
        model = ZeroOneModel(name="t", sense=MINIMIZE)
        model.add_var("x")
        model.add_var("y")
        model.add_var("z")
        model.add_constraint({"x": 1.0}, "==", 1.0)  # presolve fixes x=1
        model.add_constraint({"y": 1.0, "z": 1.0}, ">=", 1.0)
        model.set_objective({"x": 1.0, "y": 2.0, "z": 3.0})
        cold = ilp_solve(model, backend="branch-bound", presolve=True)
        warm = ilp_solve(
            model, backend="branch-bound", presolve=True,
            warm_start={"x": 0, "y": 1, "z": 0},  # contradicts x=1
        )
        assert warm.values == cold.values
        assert warm.objective == cold.objective == 3.0

    def test_seed_projects_onto_free_variables(self):
        model = ZeroOneModel(name="t", sense=MINIMIZE)
        model.add_var("x")
        model.add_var("y")
        model.add_var("z")
        model.add_constraint({"x": 1.0}, "==", 1.0)
        model.add_constraint({"y": 1.0, "z": 1.0}, ">=", 1.0)
        model.set_objective({"x": 1.0, "y": 2.0, "z": 3.0})
        cold = ilp_solve(model, backend="branch-bound", presolve=True)
        warm = ilp_solve(
            model, backend="branch-bound", presolve=True,
            warm_start={"x": 1, "y": 0, "z": 1},  # consistent, suboptimal
        )
        assert warm.values == cold.values


class TestSelectionWarmStarts:
    @pytest.mark.parametrize("presolve", [True, False])
    def test_seeded_selection_is_identical(self, adi_assistant, presolve):
        graph = adi_assistant.graph
        cold = select_layouts(graph, presolve=presolve)
        for backend in ("scipy", "branch-bound"):
            warm = select_layouts(
                graph, backend=backend, presolve=presolve,
                warm_start=cold.selection,
            )
            assert warm.selection == cold.selection, backend
            assert warm.objective == cold.objective, backend

    def test_shifted_seed_is_repaired_not_trusted(self, adi_assistant):
        graph = adi_assistant.graph
        cold = select_layouts(graph, presolve=True)
        shifted = {
            p: (c + 1) % len(graph.node_costs[p])
            for p, c in cold.selection.items()
        }
        warm = select_layouts(
            graph, backend="branch-bound", presolve=True,
            warm_start=shifted,
        )
        assert warm.selection == cold.selection
        assert warm.objective == cold.objective


class TestRemapChainReselect:
    def chain(self, result):
        """A remap chain: progressively forbid the incumbent's choice in
        the first restrictable phase."""
        allowed = {
            p: set(range(len(result.graph.node_costs[p])))
            for p in result.graph.node_costs
        }
        steps = []
        current = result.selection
        for _ in range(3):
            target = next(
                (p for p in sorted(allowed)
                 if len(allowed[p] - {current.selection[p]}) >= 1),
                None,
            )
            if target is None:
                break
            allowed[target] = allowed[target] - {
                current.selection[target]
            }
            steps.append({p: set(v) for p, v in allowed.items()})
        return steps

    def test_warm_chain_equals_cold_chain(self):
        result = run_assistant(
            PROGRAMS["erlebacher"].source(n=16),
            AssistantConfig(nprocs=4),
        )
        for allowed in self.chain(result):
            warm = result.reselect(allowed=allowed)
            cold = result.reselect(allowed=allowed, warm_start=False)
            assert warm.selection == cold.selection
            assert warm.objective == cold.objective
            # the forbidden candidates really are avoided
            for p, positions in allowed.items():
                assert warm.selection[p] in positions

    def test_reselect_repairs_seed_onto_allowed(self, adi_assistant):
        result = adi_assistant
        phase = sorted(result.graph.node_costs)[0]
        ncands = len(result.graph.node_costs[phase])
        if ncands < 2:
            pytest.skip("phase has a single candidate")
        # Restrict to everything but the incumbent: the repaired seed
        # must still produce the restricted optimum.
        allowed = {
            phase: set(range(ncands)) - {result.selection.selection[phase]}
        }
        warm = result.reselect(allowed=allowed)
        cold = result.reselect(allowed=allowed, warm_start=False)
        assert warm.selection == cold.selection
        assert warm.selection[phase] in allowed[phase]


class TestDeadlineDegradation:
    def test_expired_deadline_degrades_with_label(self, adi_assistant):
        graph = adi_assistant.graph
        reference = select_layouts(graph, presolve=True)
        deadline = Deadline(1e-9)
        while not deadline.expired():
            pass
        with collecting() as events:
            with deadline_scope(deadline):
                result = select_layouts(graph, presolve=True)
        # The invariant: either the canonical optimum, or a labeled
        # degradation — never a silent wrong answer.
        if result.optimal:
            assert result.selection == reference.selection
            assert not events
        else:
            assert events, "non-optimal result must be labeled"
            assert events[0].stage == "selection"
            assert sorted(result.selection) == sorted(reference.selection)

    def test_warm_start_does_not_mask_degradation(self, adi_assistant):
        graph = adi_assistant.graph
        reference = select_layouts(graph, presolve=True)
        deadline = Deadline(1e-9)
        while not deadline.expired():
            pass
        with collecting() as events:
            with deadline_scope(deadline):
                result = select_layouts(
                    graph, presolve=True,
                    warm_start=reference.selection,
                )
        if not result.optimal:
            assert events
            assert sorted(result.selection) == sorted(reference.selection)


class TestSeededChaos:
    def test_chaos_campaign_with_presolve_holds_the_invariant(self):
        # The assistant now runs graph presolve by default, so every
        # chaos case exercises the fast path against injected faults and
        # deadline pressure; the invariant must hold unchanged.
        report = run_chaos(
            cases=6, seed=321, programs=("erlebacher",),
            case_timeout_s=120.0, procs=4,
        )
        assert len(report.cases) == 6
        assert report.ok, report.summary()


class TestFuzzWiring:
    def test_warm_start_check_is_registered(self):
        report = run_fuzz(seed=920, cases=5, checks=["warm-start"])
        assert report.ok, report.summary()
        assert report.checks_run.get("warm-start") == 5
