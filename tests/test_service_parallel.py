"""Parallel-vs-serial equivalence of the estimation stage, and the worker
pool's robustness contract (timeouts, rebuild-after-shutdown, serial
fallback)."""

from __future__ import annotations

import time

import pytest

from repro.machine.params import IPSC860
from repro.perf.estimator import estimate_search_spaces
from repro.perf.training import cached_training_database
from repro.programs.registry import PROGRAMS
from repro.service import JobTimeoutError, WorkerPool
from repro.tool.assistant import (
    AssistantConfig,
    stage_alignment,
    stage_distribution,
    stage_frontend,
    stage_partition,
)

BENCHMARKS = ("adi", "erlebacher", "tomcatv", "shallow")


def _estimation_inputs(name: str):
    spec = PROGRAMS[name]
    kwargs = {"n": 32}
    if spec.has_time_loop:
        kwargs["maxiter"] = 2
    source = spec.source(**kwargs)
    config = AssistantConfig(nprocs=4)
    program, symbols = stage_frontend(source)
    partition, pcfg, template = stage_partition(program, symbols, config)
    alignment = stage_alignment(partition, pcfg, symbols, template, config)
    spaces = stage_distribution(
        partition, alignment, template, symbols, config
    )
    return partition, spaces, symbols, config


def _costs(result):
    return {
        idx: [est.total for est in estimates]
        for idx, estimates in result.per_phase.items()
    }


@pytest.fixture(scope="module")
def process_pool():
    with WorkerPool(kind="process", max_workers=2) as pool:
        yield pool


@pytest.fixture(scope="module")
def thread_pool():
    with WorkerPool(kind="thread", max_workers=4) as pool:
        yield pool


class TestParallelSerialEquivalence:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_process_pool_costs_bitwise_equal(self, name, process_pool):
        partition, spaces, symbols, config = _estimation_inputs(name)
        db = cached_training_database(IPSC860)
        serial = estimate_search_spaces(
            partition.phases, spaces, symbols, IPSC860, db=db
        )
        pooled = estimate_search_spaces(
            partition.phases, spaces, symbols, IPSC860, db=db,
            job_runner=process_pool.run_jobs,
        )
        assert _costs(pooled) == _costs(serial)

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_thread_pool_costs_bitwise_equal(self, name, thread_pool):
        partition, spaces, symbols, config = _estimation_inputs(name)
        db = cached_training_database(IPSC860)
        serial = estimate_search_spaces(
            partition.phases, spaces, symbols, IPSC860, db=db
        )
        pooled = estimate_search_spaces(
            partition.phases, spaces, symbols, IPSC860, db=db,
            job_runner=thread_pool.run_jobs,
        )
        assert _costs(pooled) == _costs(serial)

    def test_full_run_identical_selection(self, process_pool):
        from repro.tool.assistant import run_assistant

        source = PROGRAMS["adi"].source(n=32, maxiter=2)
        config = AssistantConfig(nprocs=4)
        serial = run_assistant(source, config)
        pooled = run_assistant(
            source, config, job_runner=process_pool.run_jobs
        )
        assert pooled.selection.selection == serial.selection.selection
        assert pooled.selection.objective == serial.selection.objective


def _double(x):
    return x * 2


def _sleepy(seconds):
    time.sleep(seconds)
    return seconds


class TestWorkerPoolRobustness:
    def test_serial_kind_runs_in_process(self):
        pool = WorkerPool(kind="serial")
        assert pool.run_jobs(_double, [(1,), (2,), (3,)]) == [2, 4, 6]

    def test_results_keep_submission_order(self, thread_pool):
        args = [(i,) for i in range(50)]
        assert thread_pool.run_jobs(_double, args) == \
            [i * 2 for i in range(50)]

    def test_empty_batch(self, thread_pool):
        assert thread_pool.run_jobs(_double, []) == []

    def test_application_errors_propagate(self, thread_pool):
        with pytest.raises(ZeroDivisionError):
            thread_pool.run_jobs(lambda x: 1 // x, [(0,)])

    def test_job_timeout_raises(self):
        with WorkerPool(kind="thread", max_workers=1,
                        job_timeout=0.05) as pool:
            with pytest.raises(JobTimeoutError):
                pool.run_jobs(_sleepy, [(5.0,)])

    def test_pool_rebuilds_after_shutdown(self):
        pool = WorkerPool(kind="thread", max_workers=2)
        assert pool.run_jobs(_double, [(4,)]) == [8]
        pool.shutdown()
        # a fresh executor is built transparently on next use
        assert pool.run_jobs(_double, [(5,)]) == [10]
        pool.shutdown()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(kind="fiber")

    def test_degrades_to_serial_when_executor_unbuildable(self, monkeypatch):
        import repro.service.pool as pool_mod

        def boom(*args, **kwargs):
            raise OSError("no pools in this sandbox")

        monkeypatch.setattr(pool_mod, "ProcessPoolExecutor", boom)
        monkeypatch.setattr(pool_mod, "ThreadPoolExecutor", boom)
        pool = WorkerPool(kind="process")
        assert pool.run_jobs(_double, [(7,)]) == [14]
        assert pool.active_kind == "serial"
        assert pool.degradations >= 1
