"""Admission control: the AIMD concurrency limiter, the controller's
shed / queue / brownout / drain behavior, and the client-side retry
budget, policy, and retrying sender."""

from __future__ import annotations

import threading
import time

import pytest

from repro.resilience import (
    AdaptiveConcurrencyLimiter,
    AdmissionController,
    OverloadedError,
    ShuttingDownError,
)
from repro.resilience.admission import MIN_RETRY_AFTER_S
from repro.service.protocol import RetryBudget, RetryPolicy
from repro.service.server import send_request_with_retries


class _Breaker:
    """Duck-typed stand-in for a CircuitBreaker: only ``state`` is read."""

    def __init__(self, state: str = "closed"):
        self.state = state


class TestLimiterValidation:
    def test_rejects_bad_limit_ordering(self):
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimiter(initial_limit=4, max_limit=2)
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimiter(initial_limit=1, min_limit=2)

    def test_rejects_bad_tolerance_and_factor(self):
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimiter(tolerance=1.0)
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimiter(decrease_factor=1.0)


class TestLimiterAimd:
    def test_good_samples_grow_the_limit_additively(self):
        limiter = AdaptiveConcurrencyLimiter(
            initial_limit=2, max_limit=8
        )
        for _ in range(40):
            limiter.on_sample(0.01)
        assert limiter.limit > 2
        assert limiter.increases_total > 0

    def test_limit_never_exceeds_max(self):
        limiter = AdaptiveConcurrencyLimiter(
            initial_limit=3, max_limit=4
        )
        for _ in range(200):
            limiter.on_sample(0.01)
        assert limiter.limit == 4

    def test_congested_latency_decreases_multiplicatively(self):
        limiter = AdaptiveConcurrencyLimiter(initial_limit=10)
        limiter.on_sample(0.01)  # establishes the baseline
        limiter.on_sample(1.0)   # 100x the floor: congestion
        assert limiter.limit == 7  # 10 * 0.7
        assert limiter.decreases_total == 1

    def test_timeout_is_a_decrease(self):
        limiter = AdaptiveConcurrencyLimiter(initial_limit=10)
        limiter.on_timeout()
        assert limiter.limit == 7

    def test_decreases_floor_at_min_limit(self):
        limiter = AdaptiveConcurrencyLimiter(
            initial_limit=4, min_limit=2
        )
        for _ in range(50):
            limiter.on_timeout()
        assert limiter.limit == 2

    def test_congestion_cannot_retrain_the_baseline(self):
        limiter = AdaptiveConcurrencyLimiter(initial_limit=8)
        limiter.on_sample(0.01)
        for _ in range(5):
            limiter.on_sample(1.0)  # sustained congestion
        # the slow upward drift keeps the floor anchored near 0.01, so
        # every congested sample registers and the limit collapses
        assert limiter.limit == limiter.min_limit
        assert limiter.describe()["baseline_s"] < 0.3

    def test_failed_sample_decreases(self):
        limiter = AdaptiveConcurrencyLimiter(initial_limit=10)
        limiter.on_sample(0.01, ok=False)
        assert limiter.limit == 7


class TestLimiterZombies:
    def test_zombies_shrink_usable_capacity(self):
        limiter = AdaptiveConcurrencyLimiter(initial_limit=4)
        assert limiter.usable() == 4
        limiter.note_zombie()
        assert limiter.usable() == 3
        assert limiter.zombies == 1
        limiter.zombie_done()
        assert limiter.usable() == 4

    def test_usable_never_drops_below_one(self):
        limiter = AdaptiveConcurrencyLimiter(initial_limit=2)
        for _ in range(5):
            limiter.note_zombie()
        assert limiter.usable() == 1

    def test_zombie_done_never_goes_negative(self):
        limiter = AdaptiveConcurrencyLimiter()
        assert limiter.zombie_done() == 0

    def test_describe_reports_the_full_state(self):
        limiter = AdaptiveConcurrencyLimiter(initial_limit=4)
        limiter.note_zombie()
        state = limiter.describe()
        assert state["limit"] == 4
        assert state["usable"] == 3
        assert state["zombies"] == 1
        assert state["baseline_s"] is None


class TestAdmission:
    def test_free_slot_admits_immediately(self):
        ctrl = AdmissionController(
            limiter=AdaptiveConcurrencyLimiter(initial_limit=4)
        )
        ticket = ctrl.try_acquire(budget_s=1.0)
        assert not ticket.brownout
        state = ctrl.describe()
        assert state["in_flight"] == 1
        assert state["counters"]["admitted"] == 1
        ctrl.release(ticket, 0.01)
        assert ctrl.describe()["in_flight"] == 0

    def test_deadline_aware_shed_when_wait_exceeds_budget(self):
        ctrl = AdmissionController(
            limiter=AdaptiveConcurrencyLimiter(
                initial_limit=1, max_limit=1
            )
        )
        held = ctrl.try_acquire()
        # predicted wait with the slot busy is the default 0.1s service
        # estimate; a 0.05s budget cannot cover it -> shed before work
        with pytest.raises(OverloadedError) as err:
            ctrl.try_acquire(budget_s=0.05)
        assert err.value.kind == "overloaded"
        assert err.value.retry_after_s >= MIN_RETRY_AFTER_S
        assert ctrl.describe()["counters"]["shed_deadline"] == 1
        ctrl.release(held, 0.01)

    def test_queue_full_sheds_with_retry_hint(self):
        ctrl = AdmissionController(
            limiter=AdaptiveConcurrencyLimiter(
                initial_limit=1, max_limit=1
            ),
            max_queue=0,
        )
        held = ctrl.try_acquire()
        with pytest.raises(OverloadedError) as err:
            ctrl.try_acquire()  # no budget: hits the queue bound instead
        assert "queue full" in str(err.value)
        assert err.value.retry_after_s >= MIN_RETRY_AFTER_S
        assert ctrl.describe()["counters"]["shed_queue_full"] == 1
        ctrl.release(held, 0.01)

    def test_bounded_wait_times_out_with_typed_rejection(self):
        ctrl = AdmissionController(
            limiter=AdaptiveConcurrencyLimiter(
                initial_limit=1, max_limit=1
            ),
            max_queue_wait_s=0.05,
        )
        held = ctrl.try_acquire()
        start = time.monotonic()
        with pytest.raises(OverloadedError):
            ctrl.try_acquire()
        assert time.monotonic() - start < 2.0
        assert ctrl.describe()["counters"]["shed_wait_timeout"] == 1
        ctrl.release(held, 0.01)

    def test_release_unblocks_a_queued_waiter(self):
        ctrl = AdmissionController(
            limiter=AdaptiveConcurrencyLimiter(
                initial_limit=1, max_limit=1
            ),
            max_queue_wait_s=5.0,
        )
        held = ctrl.try_acquire()
        results = {}

        def waiter():
            results["ticket"] = ctrl.try_acquire(budget_s=10.0)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        ctrl.release(held, 0.01)
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results["ticket"].waited_s > 0
        state = ctrl.describe()
        assert state["counters"]["admitted_after_wait"] == 1
        ctrl.release(results["ticket"], 0.01)

    def test_full_utilization_flips_brownout(self):
        ctrl = AdmissionController(
            limiter=AdaptiveConcurrencyLimiter(
                initial_limit=1, max_limit=1
            )
        )
        # with a single slot, admitting one request is 100% utilization
        ticket = ctrl.try_acquire()
        assert ticket.brownout
        assert ctrl.describe()["counters"]["brownout_admitted"] == 1
        ctrl.release(ticket, 0.01)

    def test_low_utilization_is_not_brownout(self):
        ctrl = AdmissionController(
            limiter=AdaptiveConcurrencyLimiter(initial_limit=8)
        )
        ticket = ctrl.try_acquire()
        assert not ticket.brownout
        ctrl.release(ticket, 0.01)

    def test_open_breaker_forces_brownout(self):
        ctrl = AdmissionController(
            limiter=AdaptiveConcurrencyLimiter(initial_limit=8),
            breakers=[_Breaker("open")],
        )
        ticket = ctrl.try_acquire()
        assert ticket.brownout
        ctrl.release(ticket, 0.01)

    def test_service_time_ewma_learns_from_releases(self):
        ctrl = AdmissionController()
        ticket = ctrl.try_acquire()
        ctrl.release(ticket, 0.5)
        assert ctrl.describe()["service_time_ewma_s"] == 0.5
        # timed-out samples must not pollute the estimate
        ticket = ctrl.try_acquire()
        ctrl.release(ticket, 99.0, ok=False, timed_out=True)
        assert ctrl.describe()["service_time_ewma_s"] == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)
        with pytest.raises(ValueError):
            AdmissionController(max_queue_wait_s=0.0)
        with pytest.raises(ValueError):
            AdmissionController(brownout_utilization=0.0)


class TestDrain:
    def test_draining_rejects_with_shutting_down(self):
        ctrl = AdmissionController()
        ctrl.begin_drain()
        assert ctrl.draining
        with pytest.raises(ShuttingDownError) as err:
            ctrl.try_acquire()
        assert err.value.kind == "shutting-down"
        assert ctrl.describe()["counters"]["rejected_draining"] == 1

    def test_begin_drain_is_idempotent(self):
        ctrl = AdmissionController()
        ctrl.begin_drain()
        ctrl.begin_drain()
        assert ctrl.draining

    def test_drain_wakes_and_rejects_queued_waiters(self):
        ctrl = AdmissionController(
            limiter=AdaptiveConcurrencyLimiter(
                initial_limit=1, max_limit=1
            ),
            max_queue_wait_s=30.0,
        )
        held = ctrl.try_acquire()
        errors = []

        def waiter():
            try:
                ctrl.try_acquire(budget_s=60.0)
            except ShuttingDownError as exc:
                errors.append(exc)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        ctrl.begin_drain()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert len(errors) == 1
        ctrl.release(held, 0.01)

    def test_wait_idle_blocks_until_in_flight_completes(self):
        ctrl = AdmissionController()
        ticket = ctrl.try_acquire()
        assert not ctrl.wait_idle(0.05)
        timer = threading.Timer(0.1, ctrl.release, args=(ticket, 0.01))
        timer.start()
        assert ctrl.wait_idle(10.0)
        timer.join()


class TestRetryBudget:
    def test_starts_with_min_tokens_then_denies(self):
        budget = RetryBudget(min_tokens=2.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.denied_total == 1

    def test_requests_deposit_fractional_allowance(self):
        budget = RetryBudget(ratio=0.5, min_tokens=0.0)
        assert not budget.try_spend()
        budget.note_request()
        budget.note_request()
        assert budget.try_spend()  # 2 requests * 0.5 = 1 token

    def test_tokens_cap_at_max(self):
        budget = RetryBudget(ratio=1.0, min_tokens=0.0, max_tokens=2.0)
        for _ in range(10):
            budget.note_request()
        assert budget.tokens == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(ratio=2.0)
        with pytest.raises(ValueError):
            RetryBudget(min_tokens=5.0, max_tokens=1.0)


class TestRetryPolicy:
    def test_only_overloaded_is_retryable(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(0, "overloaded")
        assert not policy.should_retry(0, "shutting-down")
        assert not policy.should_retry(0, "timeout")
        assert not policy.should_retry(0, None)

    def test_attempt_cap(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.should_retry(0, "overloaded")
        assert not policy.should_retry(1, "overloaded")

    def test_exhausted_budget_stops_retries(self):
        policy = RetryPolicy(
            max_attempts=10, budget=RetryBudget(min_tokens=1.0)
        )
        assert policy.should_retry(0, "overloaded")
        assert not policy.should_retry(1, "overloaded")

    def test_server_hint_floors_the_delay(self):
        policy = RetryPolicy()
        # jittered exponential backoff at attempt 0 is at most 0.1s;
        # the server hint must win
        assert policy.delay_s(0, retry_after_s=1.5) >= 1.5
        assert policy.delay_s(0) <= 0.1


class TestSendWithRetries:
    @staticmethod
    def _overloaded(retry_after=0.2):
        return {"ok": False, "error": "busy",
                "error_kind": "overloaded", "retry_after_s": retry_after}

    def test_retries_until_success_honoring_retry_after(self):
        replies = [self._overloaded(), self._overloaded(),
                   {"ok": True, "op": "analyze"}]
        calls = []
        sleeps = []

        def send(payload, host=None, port=None, timeout=None):
            calls.append(payload)
            return replies[len(calls) - 1]

        resp = send_request_with_retries(
            {"op": "analyze"}, policy=RetryPolicy(max_attempts=3),
            send=send, sleep=sleeps.append,
        )
        assert resp["ok"]
        assert len(calls) == 3
        assert len(sleeps) == 2
        assert all(delay >= 0.2 for delay in sleeps)

    def test_gives_up_after_max_attempts(self):
        calls = []

        def send(payload, host=None, port=None, timeout=None):
            calls.append(payload)
            return self._overloaded()

        resp = send_request_with_retries(
            {"op": "analyze"}, policy=RetryPolicy(max_attempts=2),
            send=send, sleep=lambda _s: None,
        )
        assert resp["error_kind"] == "overloaded"
        assert len(calls) == 2

    def test_shutting_down_is_returned_without_retry(self):
        calls = []

        def send(payload, host=None, port=None, timeout=None):
            calls.append(payload)
            return {"ok": False, "error": "draining",
                    "error_kind": "shutting-down"}

        resp = send_request_with_retries(
            {"op": "analyze"}, send=send, sleep=lambda _s: None,
        )
        assert resp["error_kind"] == "shutting-down"
        assert len(calls) == 1
