"""Report formatting tests."""

import pytest

from repro.tool.report import (
    format_schemes,
    format_search_spaces,
    format_selection,
    format_summary,
    format_test_case,
)
from repro.tool.schemes import Scheme, enumerate_schemes
from repro.tool.testcases import SummaryRow


class TestSearchSpaceReport:
    def test_contains_all_phases(self, adi_assistant):
        text = format_search_spaces(adi_assistant)
        for idx in range(9):
            assert f"phase {idx} " in text

    def test_marks_selection(self, adi_assistant):
        text = format_search_spaces(adi_assistant)
        marked = [
            line for line in text.splitlines()
            if line.lstrip().startswith("* c")
        ]
        assert len(marked) == 9  # one selected candidate per phase

    def test_limit_parameter(self, adi_assistant):
        text = format_search_spaces(adi_assistant, limit=2)
        assert "phase 1 " in text
        assert "phase 5 " not in text

    def test_shows_exec_classes_and_times(self, adi_assistant):
        text = format_search_spaces(adi_assistant)
        assert "pipelined" in text
        assert "ms" in text


class TestSelectionReport:
    def test_mentions_prediction_and_ilp(self, adi_assistant):
        text = format_selection(adi_assistant)
        assert "predicted execution time" in text
        assert "variables" in text and "constraints" in text

    def test_static_vs_dynamic_label(self, adi_assistant):
        text = format_selection(adi_assistant)
        assert "static" in text or "DYNAMIC" in text

    def test_hpf_style_directives(self, adi_assistant):
        text = format_selection(adi_assistant)
        assert "!HPF$ TEMPLATE" in text
        assert "!HPF$ ALIGN x" in text


class TestSchemeTable:
    def test_unmeasured_scheme_shows_dash(self, adi_assistant):
        schemes = enumerate_schemes(adi_assistant)
        text = format_schemes(schemes)
        assert "-" in text
        assert "estimated" in text and "measured" in text

    def test_summary_totals(self):
        rows = [
            SummaryRow(program="adi", cases=40, tool_optimal=36,
                       worst_loss_percent=9.3,
                       best_scheme_counts={"row": 24, "remapped": 16},
                       rankings_correct=40),
            SummaryRow(program="shallow", cases=19, tool_optimal=19,
                       worst_loss_percent=0.0,
                       best_scheme_counts={"column": 19},
                       rankings_correct=19),
        ]
        text = format_summary(rows)
        assert "TOTAL" in text
        assert "59" in text  # total cases
        assert "55" in text  # total optimal
        assert "9.3%" in text

    def test_test_case_report(self):
        from repro.tool import TestCase, run_test_case
        from repro.tool.report import format_test_case

        result = run_test_case(
            TestCase("adi", 32, "double", 4, maxiter=2)
        )
        text = format_test_case(result)
        assert "tool picked" in text
        assert "OPTIMAL" in text or "suboptimal" in text
