"""Semi-lattice of alignment information: refinement, meet, join.

Includes hypothesis property tests of the lattice laws over random
partitionings of a fixed node universe.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment.cag import CAG
from repro.alignment.lattice import Partitioning

NODES = [("a", 0), ("a", 1), ("b", 0), ("b", 1), ("c", 0)]


def parts(*blocks):
    return Partitioning.of([set(b) for b in blocks])


@st.composite
def random_partitioning(draw):
    """Random partitioning of NODES via random block tags."""
    tags = [draw(st.integers(min_value=0, max_value=4)) for _ in NODES]
    blocks = {}
    for node, tag in zip(NODES, tags):
        blocks.setdefault(tag, set()).add(node)
    return Partitioning.of(blocks.values())


class TestBasics:
    def test_bottom_is_singletons(self):
        bottom = Partitioning.bottom(NODES)
        assert all(len(b) == 1 for b in bottom.blocks)
        assert bottom.nodes == frozenset(NODES)

    def test_of_normalizes_order(self):
        p1 = parts([("a", 0), ("b", 0)], [("a", 1)])
        p2 = parts([("a", 1)], [("b", 0), ("a", 0)])
        assert p1 == p2

    def test_overlapping_blocks_rejected(self):
        with pytest.raises(ValueError):
            Partitioning(blocks=(
                frozenset({("a", 0)}), frozenset({("a", 0), ("b", 0)}),
            ))

    def test_from_cag(self):
        cag = CAG()
        cag.add_array("a", 2)
        cag.add_array("b", 2)
        cag.add_undirected_edge(("a", 0), ("b", 0), 1.0)
        p = Partitioning.from_cag(cag)
        assert p.aligned(("a", 0), ("b", 0))
        assert not p.aligned(("a", 1), ("b", 1))

    def test_has_conflict(self):
        assert parts([("a", 0), ("a", 1)], [("b", 0)], [("b", 1)],
                     [("c", 0)]).has_conflict()
        assert not parts([("a", 0), ("b", 0)], [("a", 1), ("b", 1)],
                         [("c", 0)]).has_conflict()

    def test_block_of(self):
        p = parts([("a", 0), ("b", 0)], [("a", 1)], [("b", 1)], [("c", 0)])
        assert p.block_of(("a", 0)) == frozenset({("a", 0), ("b", 0)})
        with pytest.raises(KeyError):
            p.block_of(("z", 9))


class TestRefinement:
    def test_bottom_refines_everything(self):
        bottom = Partitioning.bottom(NODES)
        p = parts([("a", 0), ("b", 0)], [("a", 1), ("b", 1)], [("c", 0)])
        assert bottom.refines(p)
        assert not p.refines(bottom)

    def test_refines_is_reflexive(self):
        p = parts([("a", 0), ("b", 0)], [("a", 1), ("b", 1)], [("c", 0)])
        assert p.refines(p)

    def test_different_node_sets_not_comparable(self):
        p = Partitioning.bottom(NODES[:3])
        q = Partitioning.bottom(NODES)
        assert not p.refines(q)

    def test_restricted_projection(self):
        p = parts([("a", 0), ("b", 0), ("c", 0)], [("a", 1), ("b", 1)])
        r = p.restricted(["a", "c"])
        assert r.nodes == frozenset({("a", 0), ("a", 1), ("c", 0)})
        assert r.aligned(("a", 0), ("c", 0))

    def test_extended_adds_singletons(self):
        p = parts([("a", 0), ("b", 0)])
        e = p.extended(NODES)
        assert e.nodes == frozenset(NODES)
        assert e.block_of(("c", 0)) == frozenset({("c", 0)})


class TestMeetJoin:
    def test_meet_example(self):
        p = parts([("a", 0), ("b", 0), ("c", 0)], [("a", 1), ("b", 1)])
        q = parts([("a", 0), ("b", 0)], [("a", 1), ("b", 1), ("c", 0)])
        meet = p.meet(q)
        assert meet.aligned(("a", 0), ("b", 0))
        assert not meet.aligned(("a", 0), ("c", 0))

    def test_join_example(self):
        p = parts([("a", 0), ("b", 0)], [("a", 1)], [("b", 1)], [("c", 0)])
        q = parts([("b", 0), ("c", 0)], [("a", 0)], [("a", 1)], [("b", 1)])
        join = p.join(q)
        assert join.aligned(("a", 0), ("c", 0))

    def test_join_can_conflict(self):
        p = parts([("a", 0), ("b", 0)], [("a", 1)], [("b", 1)], [("c", 0)])
        q = parts([("b", 0), ("a", 1)], [("a", 0)], [("b", 1)], [("c", 0)])
        join = p.join(q)
        assert join.has_conflict()

    def test_mismatched_nodes_raise(self):
        p = Partitioning.bottom(NODES[:3])
        q = Partitioning.bottom(NODES)
        with pytest.raises(ValueError):
            p.meet(q)
        with pytest.raises(ValueError):
            p.join(q)


@settings(max_examples=80, deadline=None)
@given(p=random_partitioning(), q=random_partitioning())
def test_meet_is_lower_bound(p, q):
    meet = p.meet(q)
    assert meet.refines(p)
    assert meet.refines(q)


@settings(max_examples=80, deadline=None)
@given(p=random_partitioning(), q=random_partitioning())
def test_join_is_upper_bound(p, q):
    join = p.join(q)
    assert p.refines(join)
    assert q.refines(join)


@settings(max_examples=80, deadline=None)
@given(p=random_partitioning(), q=random_partitioning())
def test_meet_join_commute(p, q):
    assert p.meet(q) == q.meet(p)
    assert p.join(q) == q.join(p)


@settings(max_examples=50, deadline=None)
@given(p=random_partitioning(), q=random_partitioning(),
       r=random_partitioning())
def test_meet_associative(p, q, r):
    assert p.meet(q).meet(r) == p.meet(q.meet(r))


@settings(max_examples=50, deadline=None)
@given(p=random_partitioning())
def test_meet_idempotent(p):
    assert p.meet(p) == p
    assert p.join(p) == p


@settings(max_examples=50, deadline=None)
@given(p=random_partitioning(), q=random_partitioning())
def test_refines_iff_meet_equals_self(p, q):
    # X ⊑ Y  <=>  X ⊓ Y = X  (standard lattice law)
    assert p.refines(q) == (p.meet(q) == p)
