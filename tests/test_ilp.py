"""0-1 model and solver tests, including a hypothesis-driven cross-check
of both backends against brute force."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import (
    BACKENDS,
    MAXIMIZE,
    MINIMIZE,
    ModelError,
    ZeroOneModel,
    solve,
)


class TestModel:
    def test_add_var_idempotent(self):
        m = ZeroOneModel()
        m.add_var("x")
        m.add_var("x")
        assert m.num_variables == 1

    def test_unknown_variable_in_constraint(self):
        m = ZeroOneModel()
        with pytest.raises(ModelError):
            m.add_constraint({"nope": 1.0}, "<=", 1)

    def test_bad_sense(self):
        m = ZeroOneModel()
        m.add_var("x")
        with pytest.raises(ModelError):
            m.add_constraint({"x": 1.0}, "<", 1)

    def test_bad_objective_sense(self):
        with pytest.raises(ModelError):
            ZeroOneModel(sense="upsidedown")

    def test_objective_accumulates(self):
        m = ZeroOneModel()
        m.add_var("x")
        m.set_objective_coeff("x", 2.0)
        m.set_objective_coeff("x", 3.0)
        assert m.objective["x"] == 5.0

    def test_feasibility_check(self):
        m = ZeroOneModel()
        m.add_var("x")
        m.add_var("y")
        m.add_constraint({"x": 1, "y": 1}, "<=", 1)
        assert m.is_feasible({"x": 1, "y": 0})
        assert not m.is_feasible({"x": 1, "y": 1})

    def test_equality_feasibility(self):
        m = ZeroOneModel()
        m.add_var("x")
        m.add_constraint({"x": 1}, "==", 1)
        assert m.is_feasible({"x": 1})
        assert not m.is_feasible({"x": 0})

    def test_summary(self):
        m = ZeroOneModel(name="demo")
        m.add_var("x")
        assert "demo" in m.summary()
        assert "1 variables" in m.summary()


def brute_force(model):
    """Exhaustive optimum for small models."""
    best = None
    names = model.variables
    for bits in itertools.product((0, 1), repeat=len(names)):
        values = dict(zip(names, bits))
        if not model.is_feasible(values):
            continue
        obj = model.objective_value(values)
        if best is None:
            best = obj
        elif model.sense == MAXIMIZE:
            best = max(best, obj)
        else:
            best = min(best, obj)
    return best


@pytest.mark.parametrize("backend", sorted(BACKENDS))
class TestBackends:
    def test_simple_max(self, backend):
        m = ZeroOneModel(sense=MAXIMIZE)
        for v in "abc":
            m.add_var(v)
        m.add_constraint({"a": 1, "b": 1}, "<=", 1)
        m.set_objective({"a": 3, "b": 5, "c": 1})
        sol = solve(m, backend=backend)
        assert sol.is_optimal
        assert sol.objective == 6.0
        assert sol.values == {"a": 0, "b": 1, "c": 1}

    def test_simple_min(self, backend):
        m = ZeroOneModel(sense=MINIMIZE)
        for v in "ab":
            m.add_var(v)
        m.add_constraint({"a": 1, "b": 1}, ">=", 1)
        m.set_objective({"a": 2, "b": 5})
        sol = solve(m, backend=backend)
        assert sol.objective == 2.0

    def test_infeasible(self, backend):
        m = ZeroOneModel()
        m.add_var("x")
        m.add_constraint({"x": 1}, ">=", 2)
        m.set_objective({"x": 1})
        assert solve(m, backend=backend).status == "infeasible"

    def test_empty_model(self, backend):
        m = ZeroOneModel()
        sol = solve(m, backend=backend)
        assert sol.is_optimal and sol.objective == 0.0

    def test_equality_chain(self, backend):
        # x1 + x2 == 1 three times over a ring forces consistency.
        m = ZeroOneModel(sense=MAXIMIZE)
        for i in range(4):
            m.add_var(f"x{i}")
        for i in range(3):
            m.add_constraint({f"x{i}": 1, f"x{i+1}": 1}, "==", 1)
        m.set_objective({f"x{i}": float(i) for i in range(4)})
        sol = solve(m, backend=backend)
        # Alternating pattern; best picks x1 and x3 (0 + 1 + 0 + 1 form).
        assert sol.values["x1"] == sol.values["x3"]
        assert sol.objective == 4.0

    def test_solution_on_vars(self, backend):
        m = ZeroOneModel(sense=MAXIMIZE)
        m.add_var("x")
        m.set_objective({"x": 1})
        sol = solve(m, backend=backend)
        assert sol.on_vars() == ["x"]


def test_unknown_backend():
    m = ZeroOneModel()
    with pytest.raises(ModelError):
        solve(m, backend="cplex")


class TestCanonicalTieBreaking:
    """Among equal-objective optima, branch-bound must return the
    lexicographically greatest assignment in variable insertion order —
    for selection-shaped models that is the earliest candidate of every
    exactly-one group (regression for fuzzer-surfaced nondeterminism)."""

    @staticmethod
    def _selection_model(costs, reverse_constraints=False):
        m = ZeroOneModel(sense=MINIMIZE)
        constraints = []
        objective = {}
        for p, row in enumerate(costs):
            for c, cost in enumerate(row):
                objective[m.add_var(f"x:{p}:{c}")] = cost
            constraints.append(
                {f"x:{p}:{c}": 1.0 for c in range(len(row))}
            )
        if reverse_constraints:
            constraints.reverse()
        for coeffs in constraints:
            m.add_constraint(coeffs, "==", 1.0)
        m.set_objective(objective)
        return m

    def test_equal_cost_candidates_resolve_to_earliest(self):
        m = self._selection_model([[5.0, 5.0], [3.0, 3.0]])
        sol = solve(m, backend="branch-bound")
        assert sol.objective == 8.0
        assert sol.values == {"x:0:0": 1, "x:0:1": 0,
                              "x:1:0": 1, "x:1:1": 0}

    def test_branch_order_magnitude_does_not_leak(self):
        # Branching visits the |7| variables first, so the first optimum
        # found selects them — the canonical rule must still upgrade to
        # the lexicographically greatest tie (candidate 0 everywhere).
        m = self._selection_model([[5.0, 5.0], [7.0, 7.0]])
        sol = solve(m, backend="branch-bound")
        assert sol.objective == 12.0
        assert sol.values["x:0:0"] == 1
        assert sol.values["x:1:0"] == 1

    def test_stable_under_constraint_reordering(self):
        costs = [[4.0, 4.0, 6.0], [2.0, 2.0, 2.0]]
        a = solve(self._selection_model(costs), backend="branch-bound")
        b = solve(
            self._selection_model(costs, reverse_constraints=True),
            backend="branch-bound",
        )
        assert a.objective == b.objective == 6.0
        assert a.values == b.values

    def test_repeated_solves_identical(self):
        m = self._selection_model([[1.0, 1.0], [1.0, 1.0], [1.0, 1.0]])
        first = solve(m, backend="branch-bound")
        for _ in range(3):
            again = solve(m, backend="branch-bound")
            assert again.values == first.values

    def test_maximize_ties_also_canonical(self):
        m = ZeroOneModel(sense=MAXIMIZE)
        for name in ("a", "b"):
            m.add_var(name)
        m.add_constraint({"a": 1, "b": 1}, "==", 1)
        m.set_objective({"a": 4.0, "b": 4.0})
        sol = solve(m, backend="branch-bound")
        assert sol.objective == 4.0
        assert sol.values == {"a": 1, "b": 0}


@st.composite
def random_model(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    sense = draw(st.sampled_from([MINIMIZE, MAXIMIZE]))
    m = ZeroOneModel(sense=sense)
    names = [f"v{i}" for i in range(n)]
    for name in names:
        m.add_var(name)
    m.set_objective(
        {
            name: draw(st.integers(min_value=-5, max_value=5))
            for name in names
        }
    )
    n_cons = draw(st.integers(min_value=0, max_value=4))
    for _ in range(n_cons):
        vars_in = draw(
            st.lists(st.sampled_from(names), min_size=1, max_size=n,
                     unique=True)
        )
        coeffs = {
            v: draw(st.integers(min_value=-3, max_value=3)) for v in vars_in
        }
        sense_c = draw(st.sampled_from(["<=", ">=", "=="]))
        rhs = draw(st.integers(min_value=-3, max_value=4))
        m.add_constraint(coeffs, sense_c, rhs)
    return m


@settings(max_examples=60, deadline=None)
@given(model=random_model())
def test_backends_match_brute_force(model):
    expected = brute_force(model)
    for backend in sorted(BACKENDS):
        sol = solve(model, backend=backend)
        if expected is None:
            assert sol.status == "infeasible", backend
        else:
            assert sol.is_optimal, backend
            assert sol.objective == pytest.approx(expected), backend
            assert model.is_feasible(sol.values), backend
