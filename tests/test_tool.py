"""Assistant pipeline, schemes, measurement, and test-case runner tests."""

import pytest

from repro.machine import IPSC860, PARAGON
from repro.tool import (
    AssistantConfig,
    TestCase,
    measure_layouts,
    run_assistant,
    run_test_case,
)
from repro.tool.schemes import TOOL, enumerate_schemes, measure_scheme
from repro.tool.testcases import grid_for, source_for, summarize
from repro.programs import PROGRAMS


class TestAssistant:
    def test_result_structure(self, adi_assistant):
        res = adi_assistant
        assert len(res.partition) == 9
        assert res.template.rank == 2
        assert set(res.selected_layouts) == set(range(9))
        assert res.predicted_total_us > 0

    def test_every_phase_has_selection(self, tomcatv_assistant):
        sel = tomcatv_assistant.selection.selection
        for idx, cands in tomcatv_assistant.layout_spaces.per_phase.items():
            assert 0 <= sel[idx] < len(cands)

    def test_reselect_with_restriction(self, adi_assistant):
        full = adi_assistant.selection
        restricted = adi_assistant.reselect(
            allowed={idx: {0} for idx in full.selection}
        )
        assert all(pos == 0 for pos in restricted.selection.values())
        assert restricted.objective >= full.objective - 1e-9

    def test_machine_parameterization(self, adi_small_source):
        slow = run_assistant(
            adi_small_source, AssistantConfig(nprocs=4, machine=IPSC860)
        )
        fast = run_assistant(
            adi_small_source, AssistantConfig(nprocs=4, machine=PARAGON)
        )
        assert fast.predicted_total_us < slow.predicted_total_us

    def test_branch_probability_changes_estimates(
        self, tomcatv_small_source
    ):
        low = run_assistant(
            tomcatv_small_source,
            AssistantConfig(nprocs=4, branch_probability=0.1),
        )
        high = run_assistant(
            tomcatv_small_source,
            AssistantConfig(nprocs=4, branch_probability=0.9),
        )
        assert high.predicted_total_us > low.predicted_total_us

    def test_branch_bound_backend_agrees(self, adi_small_source):
        a = run_assistant(adi_small_source, AssistantConfig(nprocs=4))
        b = run_assistant(
            adi_small_source,
            AssistantConfig(nprocs=4, ilp_backend="branch-bound"),
        )
        assert a.selection.objective == pytest.approx(b.selection.objective)


class TestMeasurement:
    def test_measure_selected_layouts(self, adi_assistant,
                                      adi_small_source):
        m = measure_layouts(
            adi_small_source,
            adi_assistant.selected_layouts,
            nprocs=4,
        )
        assert m.makespan_us > 0
        assert m.messages > 0
        assert m.seconds == pytest.approx(m.makespan_us / 1e6)

    def test_more_processors_usually_faster(self, adi_small_source):
        times = {}
        for procs in (2, 8):
            res = run_assistant(
                adi_small_source, AssistantConfig(nprocs=procs)
            )
            times[procs] = measure_layouts(
                adi_small_source, res.selected_layouts, nprocs=procs
            ).makespan_us
        assert times[8] < times[2]


class TestSchemes:
    def test_enumerate_contains_statics_and_tool(self, adi_assistant):
        schemes = enumerate_schemes(adi_assistant)
        names = [s.name for s in schemes]
        assert "row" in names and "column" in names
        assert TOOL in names

    def test_static_scheme_has_no_remaps(self, adi_assistant):
        schemes = enumerate_schemes(adi_assistant)
        row = next(s for s in schemes if s.name == "row")
        graph = adi_assistant.graph
        for edge in graph.edges:
            pair = (row.selection[edge.src_phase],
                    row.selection[edge.dst_phase])
            assert edge.costs.get(pair, 0.0) == 0.0

    def test_tool_estimate_is_minimum(self, adi_assistant):
        schemes = enumerate_schemes(adi_assistant)
        tool = next(s for s in schemes if s.name == TOOL)
        assert tool.estimated_us == min(s.estimated_us for s in schemes)

    def test_measure_scheme_fills_measurement(self, adi_assistant,
                                              adi_small_source):
        schemes = enumerate_schemes(adi_assistant)
        measure_scheme(schemes[0], adi_assistant, adi_small_source)
        assert schemes[0].measured_us is not None


class TestTestCases:
    def test_run_test_case_small(self):
        case = TestCase("adi", n=32, dtype="double", nprocs=4, maxiter=2)
        result = run_test_case(case)
        assert result.tool_measured_us > 0
        assert result.best_measured.measured_us > 0
        assert 0.0 <= result.loss_percent
        assert isinstance(result.tool_optimal, bool)

    def test_grid_counts_match_paper(self):
        counts = {
            name: len(grid_for(spec)) for name, spec in PROGRAMS.items()
        }
        assert counts == {
            "adi": 40, "erlebacher": 21, "tomcatv": 19, "shallow": 19
        }
        assert sum(counts.values()) == 99

    def test_source_for_respects_dtype(self):
        case = TestCase("shallow", n=64, dtype="real", nprocs=2)
        assert "real u(" in source_for(case)

    def test_summarize(self):
        case = TestCase("adi", n=32, dtype="double", nprocs=4, maxiter=2)
        result = run_test_case(case)
        rows = summarize([result, result])
        assert rows[0].cases == 2
        assert rows[0].program == "adi"
