"""Structural tests of the four bundled benchmark programs against the
facts the paper states about them."""

import pytest

from repro.analysis import (
    build_pcfg,
    partition_phases,
    phase_dependences,
    scalar_reductions,
)
from repro.alignment import build_alignment_search_spaces, build_phase_cag
from repro.distribution import determine_template
from repro.frontend import build_symbol_table, parse_source
from repro.programs import PROGRAMS, get_program
from repro.programs.tomcatv import smoothing_if_line


class TestRegistry:
    def test_get_program(self):
        assert get_program("adi").name == "adi"
        with pytest.raises(KeyError):
            get_program("linpack")

    def test_source_parameterization(self):
        src = PROGRAMS["adi"].source(n=48, dtype="real", maxiter=7)
        assert "n = 48" in src and "maxiter = 7" in src
        assert "real x(" in src

    def test_default_source(self):
        src = PROGRAMS["erlebacher"].source()
        assert "n = 64" in src
        assert "double precision f(" in src

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_sources_parse_at_all_grid_sizes(self, name):
        spec = PROGRAMS[name]
        for n in spec.grid_sizes[:2]:
            kwargs = {"n": n}
            if spec.has_time_loop:
                kwargs["maxiter"] = 2
            prog = parse_source(spec.source(**kwargs))
            assert prog.name == name


class TestAdi:
    def test_flow_dep_phases(self, adi_small):
        _p, _s, part, _pcfg = adi_small
        carried = {}
        for phase in part.phases:
            deps = [d for d in phase_dependences(phase)
                    if d.kind == "flow"]
            if deps:
                carried[phase.index] = {d.carrier_var for d in deps}
        # two phases carry deps along i, two along j (paper Section 4)
        assert carried == {2: {"i"}, 3: {"i"}, 6: {"j"}, 7: {"j"}}

    def test_no_alignment_conflicts(self, adi_small, training_db):
        prog, table, part, pcfg = adi_small
        for phase in part.phases:
            assert not build_phase_cag(phase, table).has_conflict()

    def test_template(self, adi_small):
        _p, table, _part, _pcfg = adi_small
        tpl = determine_template(table)
        assert tpl.rank == 2
        assert tpl.extents == (32, 32)


class TestErlebacher:
    def test_symmetric_sweep_dependences(self, erlebacher_small):
        _p, _s, part, _pcfg = erlebacher_small
        carried = {}
        for phase in part.phases:
            deps = [d for d in phase_dependences(phase)
                    if d.kind == "flow"]
            if deps:
                carried[phase.index] = {d.carrier_var for d in deps}
        assert carried == {
            8: {"i"}, 10: {"i"},
            21: {"j"}, 23: {"j"},
            34: {"k"}, 36: {"k"},
        }

    def test_read_only_shared_array(self, erlebacher_small):
        _p, _s, part, _pcfg = erlebacher_small
        f_written = any(
            "f" in phase.written_arrays for phase in part.phases[1:]
        )
        assert not f_written  # written only by the init phase
        f_read_in = sum(
            1 for phase in part.phases[1:] if "f" in phase.arrays
        )
        assert f_read_in >= 15  # shared by all three computations

    def test_four_three_dimensional_arrays(self, erlebacher_small):
        _p, table, _part, _pcfg = erlebacher_small
        cubes = [a.name for a in table.arrays() if a.rank == 3]
        assert sorted(cubes) == ["f", "ux", "uy", "uz"]

    def test_straight_line_no_time_loop(self, erlebacher_small):
        _p, _s, part, _pcfg = erlebacher_small
        from repro.analysis.phases import ControlLoop

        assert not any(
            isinstance(item, ControlLoop) for item in part.structure.items
        )


class TestTomcatv:
    def test_alignment_conflict_exists(self, tomcatv_small):
        prog, table, part, pcfg = tomcatv_small
        from repro.alignment.cag import CAG

        merged = CAG.merge(
            *[build_phase_cag(p, table) for p in part.phases]
        )
        assert merged.has_conflict()
        conflicted_arrays = {a for (a, _), (b, _2) in merged.conflicts()
                             for a in (a, b)}
        # the conflicts involve the workspace arrays
        assert {"aa", "dd"} & conflicted_arrays or conflicted_arrays

    def test_reduction_phase_exists(self, tomcatv_small):
        _p, _s, part, _pcfg = tomcatv_small
        assert any(scalar_reductions(ph) for ph in part.phases)

    def test_smoothing_if_line_found(self):
        src = PROGRAMS["tomcatv"].source(n=32, maxiter=2)
        line = smoothing_if_line(src)
        assert "rmax" in src.splitlines()[line - 1]

    def test_solver_deps_along_i(self, tomcatv_small):
        _p, _s, part, _pcfg = tomcatv_small
        for idx in (7, 8, 9, 10):
            deps = [d for d in phase_dependences(part.phases[idx])
                    if d.kind == "flow"]
            assert deps and all(d.carrier_var == "i" for d in deps)


class TestShallow:
    def test_no_flow_dependences(self, shallow_small):
        _p, _s, part, _pcfg = shallow_small
        for phase in part.phases:
            assert not [
                d for d in phase_dependences(phase) if d.kind == "flow"
            ]

    def test_fourteen_arrays(self, shallow_small):
        _p, table, _part, _pcfg = shallow_small
        assert len(table.arrays()) == 14

    def test_no_conflicts_single_class(self, shallow_small):
        prog, table, part, pcfg = shallow_small
        tpl = determine_template(table)
        spaces = build_alignment_search_spaces(
            part.phases, pcfg, table, tpl
        )
        assert len(spaces.classes) == 1

    def test_wrap_phases_are_one_dimensional_loops(self, shallow_small):
        _p, _s, part, _pcfg = shallow_small
        one_d = [
            ph for ph in part.phases if len(ph.loop_nest()) == 1
        ]
        assert len(one_d) == 14  # 2 wraps x 7 wrapped fields
