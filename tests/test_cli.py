"""CLI tests (analyze / compare / summary)."""

import pytest

from repro.tool.cli import main


class TestAnalyze:
    def test_analyze_bundled_program(self, capsys):
        rc = main(["analyze", "--program", "adi", "--size", "32",
                   "--procs", "4", "--maxiter", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "predicted execution time" in out
        assert "TEMPLATE" in out

    def test_analyze_show_spaces(self, capsys):
        rc = main(["analyze", "--program", "shallow", "--size", "48",
                   "--procs", "4", "--maxiter", "2", "--show-spaces"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "phase 0" in out
        assert "loosely synchronous" in out

    def test_analyze_from_file(self, tmp_path, capsys):
        src = (
            "program mini\n"
            "      integer n\n      parameter (n = 16)\n"
            "      real a(n, n), b(n, n)\n"
            "      integer i, j\n"
            "      do j = 1, n\n        do i = 2, n\n"
            "          a(i, j) = b(i - 1, j)\n"
            "        enddo\n      enddo\n"
            "      end\n"
        )
        path = tmp_path / "mini.f"
        path.write_text(src)
        rc = main(["analyze", "--file", str(path), "--procs", "4"])
        assert rc == 0
        assert "predicted execution time" in capsys.readouterr().out

    def test_analyze_branch_bound_backend(self, capsys):
        rc = main(["analyze", "--program", "adi", "--size", "32",
                   "--procs", "4", "--maxiter", "2",
                   "--backend", "branch-bound"])
        assert rc == 0

    def test_analyze_paragon_machine(self, capsys):
        rc = main(["analyze", "--program", "adi", "--size", "32",
                   "--procs", "4", "--maxiter", "2",
                   "--machine", "paragon"])
        assert rc == 0


class TestCompare:
    def test_compare_prints_scheme_table(self, capsys):
        rc = main(["compare", "--program", "adi", "--size", "32",
                   "--procs", "4", "--maxiter", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "row" in out and "column" in out and "tool" in out
        assert "estimated" in out and "measured" in out


class TestSummary:
    def test_quick_summary(self, capsys):
        rc = main(["summary", "--programs", "shallow", "--quick"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "shallow" in out
        assert "TOTAL" in out


class TestArgErrors:
    def test_unknown_program_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--program", "linpack"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestFuzz:
    def test_fuzz_small_campaign_ok(self, capsys):
        rc = main(["fuzz", "--cases", "5", "--seed", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "5 cases" in out
        assert "OK" in out

    def test_fuzz_check_subset(self, capsys):
        rc = main(["fuzz", "--cases", "3", "--seed", "1",
                   "--checks", "roundtrip"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "roundtrip" in out
        assert "selection-oracle" not in out

    def test_fuzz_unknown_check_rejected(self):
        rc = main(["fuzz", "--cases", "1", "--checks", "nonsense"])
        assert rc == 2

    def test_fuzz_budget_parsing_rejects_garbage(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--budget", "soon"])

    def test_fuzz_trace_records_case_spans(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "fuzz.json"
        rc = main(["fuzz", "--cases", "2", "--seed", "0",
                   "--checks", "roundtrip", "pipeline",
                   "--trace", str(trace_path)])
        assert rc == 0
        trace = json.loads(trace_path.read_text())
        names = [span["name"] for span in trace["spans"]]
        assert names.count("fuzz.case") == 2
        assert "fuzz.campaign" in names
