"""PCFG construction and frequency tests."""

import pytest

from repro.analysis.pcfg import ENTRY, EXIT, build_pcfg
from repro.analysis.phases import partition_phases
from repro.frontend import build_symbol_table, parse_source


def pcfg_for(src, **kwargs):
    prog = parse_source(src)
    table = build_symbol_table(prog)
    part = partition_phases(prog, table, **kwargs)
    return build_pcfg(part)


def wrap(body):
    return (
        "program t\n"
        "      integer n\n      parameter (n = 8)\n"
        "      real a(n), b(n), c(n)\n      real s\n"
        "      integer i, t1, t2\n"
        f"{body}"
        "      end\n"
    )


PHASE_A = "      do i = 1, n\n        a(i) = 1.0\n      enddo\n"
PHASE_B = "      do i = 1, n\n        b(i) = a(i)\n      enddo\n"
PHASE_C = "      do i = 1, n\n        c(i) = b(i)\n      enddo\n"


class TestStraightLine:
    def test_chain_frequencies(self):
        pcfg = pcfg_for(wrap(PHASE_A + PHASE_B + PHASE_C))
        assert pcfg.phase_frequency(0) == pytest.approx(1.0)
        assert pcfg.phase_frequency(2) == pytest.approx(1.0)
        assert sorted(pcfg.transitions()) == [
            (0, 1, pytest.approx(1.0)),
            (1, 2, pytest.approx(1.0)),
        ]

    def test_entry_and_exit_edges(self):
        pcfg = pcfg_for(wrap(PHASE_A + PHASE_B))
        assert pcfg.entry_edges() == [(0, pytest.approx(1.0))]
        assert pcfg.graph.has_edge(1, EXIT)

    def test_reverse_postorder_is_program_order(self):
        pcfg = pcfg_for(wrap(PHASE_A + PHASE_B + PHASE_C))
        assert pcfg.reverse_postorder() == [0, 1, 2]


class TestLoops:
    def test_loop_multiplies_frequency(self):
        body = (
            "      do t1 = 1, 5\n"
            + PHASE_A + PHASE_B
            + "      enddo\n"
        )
        pcfg = pcfg_for(wrap(body))
        assert pcfg.phase_frequency(0) == pytest.approx(5.0)
        assert pcfg.phase_frequency(1) == pytest.approx(5.0)

    def test_back_edge_frequency(self):
        body = "      do t1 = 1, 5\n" + PHASE_A + PHASE_B + "      enddo\n"
        pcfg = pcfg_for(wrap(body))
        trans = {(u, v): f for u, v, f in pcfg.transitions()}
        assert trans[(0, 1)] == pytest.approx(5.0)
        assert trans[(1, 0)] == pytest.approx(4.0)  # trips - 1

    def test_nested_loops_multiply(self):
        body = (
            "      do t1 = 1, 3\n"
            "        do t2 = 1, 4\n"
            + PHASE_A
            + "        enddo\n"
            "      enddo\n"
        )
        pcfg = pcfg_for(wrap(body))
        assert pcfg.phase_frequency(0) == pytest.approx(12.0)
        trans = {(u, v): f for u, v, f in pcfg.transitions()}
        # Self back-edge: 11 of 12 executions are followed by another.
        assert trans[(0, 0)] == pytest.approx(11.0)

    def test_phases_before_and_after_loop(self):
        body = (
            PHASE_A
            + "      do t1 = 1, 3\n" + PHASE_B + "      enddo\n"
            + PHASE_C
        )
        pcfg = pcfg_for(wrap(body))
        trans = {(u, v): f for u, v, f in pcfg.transitions()}
        assert trans[(0, 1)] == pytest.approx(1.0)
        assert trans[(1, 1)] == pytest.approx(2.0)
        assert trans[(1, 2)] == pytest.approx(1.0)

    def test_empty_loop_is_transparent(self):
        body = (
            PHASE_A
            + "      do t1 = 1, 5\n        s = s + 1.0\n      enddo\n"
            + PHASE_B
        )
        pcfg = pcfg_for(wrap(body))
        trans = {(u, v): f for u, v, f in pcfg.transitions()}
        assert trans[(0, 1)] == pytest.approx(1.0)


class TestBranchesInPCFG:
    def test_branch_splits_frequency(self):
        body = (
            PHASE_A
            + "      if (s .gt. 0.0) then\n" + PHASE_B + "      endif\n"
            + PHASE_C
        )
        pcfg = pcfg_for(wrap(body))
        assert pcfg.phase_frequency(1) == pytest.approx(0.5)
        trans = {(u, v): f for u, v, f in pcfg.transitions()}
        assert trans[(0, 1)] == pytest.approx(0.5)
        assert trans[(0, 2)] == pytest.approx(0.5)  # fall-through
        assert trans[(1, 2)] == pytest.approx(0.5)

    def test_branch_else_side(self):
        body = (
            PHASE_A
            + "      if (s .gt. 0.0) then\n" + PHASE_B
            + "      else\n" + PHASE_C + "      endif\n"
        )
        pcfg = pcfg_for(wrap(body))
        assert pcfg.phase_frequency(1) == pytest.approx(0.5)
        assert pcfg.phase_frequency(2) == pytest.approx(0.5)

    def test_branch_inside_loop(self):
        body = (
            "      do t1 = 1, 4\n"
            + PHASE_A
            + "        if (s .gt. 0.0) then\n" + PHASE_B + "        endif\n"
            + "      enddo\n"
        )
        pcfg = pcfg_for(wrap(body), branch_probability=0.25)
        assert pcfg.phase_frequency(0) == pytest.approx(4.0)
        assert pcfg.phase_frequency(1) == pytest.approx(1.0)


class TestProgramPCFGs:
    def test_adi_back_edge_exists(self, adi_small):
        _p, _s, _part, pcfg = adi_small
        trans = {(u, v) for u, v, _ in pcfg.transitions()}
        # last phase of the time loop transfers back to the first in-loop
        # phase (phase 1; phase 0 is initialization outside the loop)
        assert (8, 1) in trans

    def test_erlebacher_is_straight_line(self, erlebacher_small):
        _p, _s, part, pcfg = erlebacher_small
        trans = pcfg.transitions()
        assert len(trans) == len(part) - 1
        assert all(v == u + 1 for u, v, _ in trans)

    def test_total_flow_conserved(self, shallow_small):
        _p, _s, _part, pcfg = shallow_small
        # Entry emits mass 1, exit absorbs mass 1.
        exit_mass = sum(
            d["freq"] for _u, _v, d in pcfg.graph.in_edges(EXIT, data=True)
        )
        assert exit_mass == pytest.approx(1.0)
