"""Graceful drain and its neighbors: in-flight work finishing under a
drain, typed ``shutting-down`` rejections, the durable drain record in
the event log, health/ready ops, the connection idle timeout (slowloris
guard), and zombie-worker accounting after request timeouts."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.service import (
    LayoutServer,
    LayoutService,
    WorkerPool,
    send_request,
)

REQUEST = {
    "op": "analyze",
    "program": "adi",
    "size": 8,
    "maxiter": 2,
    "procs": 4,
    "use_cache": False,
}


@pytest.fixture
def service():
    svc = LayoutService(
        pool=WorkerPool(kind="thread", max_workers=2), use_cache=False
    )
    yield svc
    svc.close()


class TestServiceDrain:
    def test_drain_waits_for_in_flight_then_reports(self, service):
        # hold an admission slot to stand in for an in-flight request
        ticket = service.admission.try_acquire()
        timer = threading.Timer(
            0.1, service.admission.release, args=(ticket, 0.01)
        )
        timer.start()
        report = service.drain(deadline_s=10.0)
        timer.join()
        assert report["drained"] is True
        assert report["in_flight"] == 0
        assert report["waited_s"] >= 0.05

    def test_drain_deadline_is_respected(self, service):
        ticket = service.admission.try_acquire()
        start = time.monotonic()
        report = service.drain(deadline_s=0.05)
        assert time.monotonic() - start < 5.0
        assert report["drained"] is False
        assert report["in_flight"] == 1
        service.admission.release(ticket, 0.01)

    def test_new_work_is_rejected_typed_during_drain(self, service):
        service.begin_drain()
        resp = service.analyze_dict(dict(REQUEST))
        assert not resp["ok"]
        assert resp["error_kind"] == "shutting-down"
        counters = service.metrics
        assert counters.counter("requests_shed") == 1
        assert counters.counter("requests_failed") == 1

    def test_drain_is_recorded_in_the_event_log(self, service):
        service.drain(deadline_s=1.0)
        events = service.telemetry.events.tail(type="service.drain")
        phases = [e.get("attrs", e).get("phase") for e in events]
        assert "begin" in phases
        assert "end" in phases

    def test_health_and_ready_reflect_draining(self, service):
        health = service.handle({"op": "health"})
        ready = service.handle({"op": "ready"})
        assert health["status"] == "ok"
        assert ready["ready"] is True
        service.begin_drain()
        health = service.handle({"op": "health"})
        ready = service.handle({"op": "ready"})
        assert health["status"] == "draining"
        assert ready["ready"] is False
        assert ready["draining"] is True

    def test_shutdown_op_reports_drain_state(self, service):
        resp = service.handle({"op": "shutdown"})
        assert resp["ok"]
        assert resp["draining"] is True
        assert "in_flight" in resp and "queue_depth" in resp


class TestTcpDrain:
    def test_graceful_shutdown_serves_in_flight_and_stops(self):
        service = LayoutService(
            pool=WorkerPool(kind="thread", max_workers=2),
            use_cache=False,
        )
        server = LayoutServer(("127.0.0.1", 0), service)
        thread = server.serve_background()
        host, port = "127.0.0.1", server.port
        try:
            ticket = service.admission.try_acquire()
            timer = threading.Timer(
                0.2, service.admission.release, args=(ticket, 0.01)
            )
            timer.start()
            # while draining, the listener still answers with typed
            # rejections rather than connection resets
            resp = send_request(
                {"op": "shutdown", "drain_deadline_s": 10.0}, host, port
            )
            assert resp["draining"] is True
            rejected = send_request(dict(REQUEST), host, port)
            assert rejected["error_kind"] == "shutting-down"
            timer.join()
            thread.join(timeout=10)
            assert not thread.is_alive()
        finally:
            server.server_close()
            service.close()


class TestConnectionIdleTimeout:
    def test_slowloris_connection_gets_typed_timeout(self):
        service = LayoutService(
            pool=WorkerPool(kind="serial"), use_cache=False
        )
        server = LayoutServer(
            ("127.0.0.1", 0), service, conn_timeout_s=0.2
        )
        server.serve_background()
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                # send no newline: the handler must not block forever
                sock.sendall(b'{"op": "ping"')
                line = sock.makefile("rb").readline()
            assert line, "server closed without the typed reply"
            import json
            resp = json.loads(line)
            assert not resp["ok"]
            assert resp["error_kind"] == "timeout"
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestZombieWorkers:
    def test_timed_out_request_is_tracked_and_reclaimed(self):
        service = LayoutService(
            pool=WorkerPool(kind="serial"),
            use_cache=False,
            request_timeout=1e-6,
        )
        try:
            resp = service.analyze_dict(dict(REQUEST, deadline_s=None))
            assert not resp["ok"]
            assert resp["error_kind"] == "timeout"
            assert service.metrics.counter("zombie_workers_total") == 1
            # the abandoned pipeline thread eventually finishes and the
            # done-callback reclaims the usable-concurrency slot
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if service.metrics.gauge("zombie_workers") == 0 \
                        and service.admission.limiter.zombies == 0:
                    break
                time.sleep(0.05)
            assert service.metrics.gauge("zombie_workers") == 0
            assert service.admission.limiter.zombies == 0
        finally:
            service.close()

    def test_timeout_shrinks_the_concurrency_limit(self):
        service = LayoutService(
            pool=WorkerPool(kind="serial"),
            use_cache=False,
            request_timeout=1e-6,
        )
        try:
            before = service.admission.limiter.limit
            service.analyze_dict(dict(REQUEST))
            # a hard timeout is the strongest congestion signal: the
            # AIMD limiter backs off multiplicatively
            assert service.admission.limiter.limit < before
        finally:
            service.close()
