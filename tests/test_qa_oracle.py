"""Differential-oracle tests: brute force vs ILP on both NP-complete
cores, plus the mutation tests proving the oracles catch injected bugs."""

import pytest

from repro.alignment.cag import CAG
from repro.alignment.ilp import build_alignment_model
from repro.alignment.weights import build_phase_cag
from repro.frontend.printer import format_program
from repro.qa import (
    Divergence,
    GeneratorConfig,
    alignment_assignment_count,
    best_alignment,
    best_selection,
    check_alignment,
    check_selection,
    enumerate_alignments,
    generate_program,
    minimize_program,
    satisfied_weight,
    selection_combination_count,
)
from repro.selection.ilp import build_selection_model
from repro.selection.layout_graph import DataLayoutGraph, LayoutEdge
from repro.tool.assistant import AssistantConfig, run_assistant


def make_graph(node_costs, edges):
    return DataLayoutGraph(
        phases=[],
        pcfg=None,
        estimates=None,
        node_costs=node_costs,
        edges=[
            LayoutEdge(src_phase=p, dst_phase=q, costs=costs)
            for (p, q), costs in edges.items()
        ],
        transitions={},
    )


def make_cag(ranks, edges):
    """ranks: {array: rank}; edges: {((a, da), (b, db)): weight}."""
    cag = CAG()
    for array, rank in ranks.items():
        cag.add_array(array, rank)
    for (a, b), weight in edges.items():
        cag.add_undirected_edge(a, b, weight)
    return cag


class TestAlignmentEnumeration:
    def test_assignment_count_matches_enumeration(self):
        cag = make_cag({"a": 2, "b": 1}, {})
        count = alignment_assignment_count(cag, 2)
        assert count == len(list(enumerate_alignments(cag, 2)))
        assert count == 2 * 2  # P(2,2) * P(2,1)

    def test_enumeration_is_injective_per_array(self):
        cag = make_cag({"a": 2}, {})
        for assignment in enumerate_alignments(cag, 2):
            assert assignment[("a", 0)] != assignment[("a", 1)]

    def test_best_alignment_prefers_heavy_edge(self):
        # a0-b0 weight 5 vs a1-b0 weight 1: the optimum satisfies the 5.
        cag = make_cag(
            {"a": 2, "b": 1},
            {(("a", 0), ("b", 0)): 5.0, (("a", 1), ("b", 0)): 1.0},
        )
        value, assignment = best_alignment(cag, 2)
        assert value == 5.0
        assert assignment[("a", 0)] == assignment[("b", 0)]

    def test_satisfied_weight_counts_colocated_edges_only(self):
        cag = make_cag(
            {"a": 1, "b": 1}, {(("a", 0), ("b", 0)): 3.0}
        )
        assert satisfied_weight(cag, {("a", 0): 0, ("b", 0): 0}) == 3.0
        assert satisfied_weight(cag, {("a", 0): 0, ("b", 0): 1}) == 0.0


@pytest.mark.parametrize("backend", ["scipy", "branch-bound"])
class TestOracleAgreement:
    def test_alignment_agrees_on_synthetic_cags(self, backend):
        cag = make_cag(
            {"a": 2, "b": 2, "c": 1},
            {
                (("a", 0), ("b", 0)): 4.0,
                (("a", 1), ("b", 1)): 2.0,
                (("a", 0), ("b", 1)): 3.0,
                (("b", 0), ("c", 0)): 1.0,
            },
        )
        assert check_alignment(cag, 2, backend=backend) is None

    def test_selection_agrees_on_synthetic_graphs(self, backend):
        graph = make_graph(
            {0: [3.0, 7.0], 1: [2.0, 1.0], 2: [5.0, 5.0]},
            {
                (0, 1): {(0, 1): 4.0, (1, 0): 4.0},
                (1, 2): {(0, 1): 2.0, (1, 0): 2.0},
            },
        )
        assert check_selection(graph, backend=backend) is None

    def test_agreement_on_generated_programs(self, backend):
        config = AssistantConfig(nprocs=4, ilp_backend=backend)
        for seed in range(6):
            case = generate_program(seed)
            result = run_assistant(case.source, config)
            d = result.template.rank
            for phase in result.partition.phases:
                cag = build_phase_cag(phase, result.symbols)
                divergence = check_alignment(cag, d, backend=backend)
                assert divergence is None, f"seed {seed}: {divergence}"
            divergence = check_selection(result.graph, backend=backend)
            assert divergence is None, f"seed {seed}: {divergence}"


class TestOracleScopeGuards:
    def test_oversized_selection_is_skipped(self):
        # 20 phases x 3 candidates >> the combination limit: the oracle
        # must decline rather than hang.
        graph = make_graph(
            {p: [1.0, 2.0, 3.0] for p in range(20)}, {}
        )
        assert selection_combination_count(graph) > 50_000
        assert check_selection(graph) is None

    def test_invalid_rank_instances_are_skipped(self):
        cag = make_cag({"a": 3}, {})
        assert check_alignment(cag, d=2) is None  # dim 2 >= d


class TestMutationKilling:
    """A deliberately injected objective-coefficient bug must be caught
    by the differential oracle (the PR's acceptance criterion)."""

    def test_selection_objective_bug_is_caught(self):
        graph = make_graph({0: [1.0, 10.0], 1: [2.0, 20.0]}, {})

        def corrupted(g):
            ilp = build_selection_model(g)
            # Make the genuinely-cheap candidate look expensive: the ILP
            # now returns a certificate the evaluator refutes.
            ilp.model.set_objective_coeff("x:0:0", 100.0)
            return ilp

        divergence = check_selection(graph, build=corrupted)
        assert isinstance(divergence, Divergence)
        assert divergence.kind == "selection"
        assert "suboptimal" in divergence.detail
        # and the pristine model still passes
        assert check_selection(graph) is None

    def test_selection_edge_cost_bug_is_caught(self):
        graph = make_graph(
            {0: [5.0, 5.5], 1: [5.0, 5.5]},
            {(0, 1): {(0, 1): 3.0, (1, 0): 3.0}},
        )

        def corrupted(g):
            ilp = build_selection_model(g)
            for var in ilp.model.variables:
                if var.startswith("y:"):
                    ilp.model.set_objective_coeff(var, -50.0)
            return ilp

        divergence = check_selection(graph, build=corrupted)
        assert isinstance(divergence, Divergence)

    def test_alignment_objective_bug_is_caught(self):
        cag = make_cag(
            {"a": 2, "b": 2},
            {(("a", 0), ("b", 0)): 5.0, (("a", 1), ("b", 0)): 1.0},
        )

        def corrupted(c, d):
            ilp = build_alignment_model(c, d)
            # Invert the weight ordering seen by the ILP only: brute
            # force still maximizes the true satisfied weight.
            for var, coeff in list(ilp.model.objective.items()):
                ilp.model.set_objective_coeff(var, -2.0 * coeff)
            return ilp

        divergence = check_alignment(cag, 2, build=corrupted)
        assert isinstance(divergence, Divergence)
        assert divergence.kind == "alignment"
        assert check_alignment(cag, 2) is None


class TestGeneratorDeterminism:
    def test_same_seed_same_program(self):
        a = generate_program(7)
        b = generate_program(7)
        assert a.source == b.source
        assert a.program == b.program

    def test_distinct_seeds_vary(self):
        sources = {generate_program(seed).source for seed in range(12)}
        assert len(sources) > 6

    def test_small_clamps_config(self):
        config = GeneratorConfig(max_arrays=8, max_rank=5, max_phases=9)
        small = config.small()
        assert (small.max_arrays, small.max_rank, small.max_phases) \
            == (3, 3, 4)


class TestMinimizer:
    def test_shrinks_to_the_failing_kernel(self):
        # Predicate: the program still references array 'b'.  Minimizing
        # under it must strip every other phase and the unused arrays.
        from repro.frontend import ast

        case = generate_program(9, GeneratorConfig(max_arrays=3))

        def references_b(program):
            for stmt in ast.walk_stmts(program.body):
                for expr in ast.stmt_exprs(stmt):
                    for node in ast.walk_expr(expr):
                        if isinstance(node, ast.ArrayRef) \
                                and node.name == "b":
                            return True
            return False

        assert references_b(case.program)
        minimized = minimize_program(case.program, references_b)
        assert references_b(minimized)
        body_stmts = list(ast.walk_stmts(minimized.body))
        assert len(body_stmts) <= len(list(ast.walk_stmts(case.program.body)))
        # exactly one assignment survives greedy single-deletion
        assigns = [s for s in body_stmts if isinstance(s, ast.Assign)]
        assert len(assigns) == 1

    def test_non_reproducing_input_returned_unchanged(self):
        case = generate_program(1)
        assert minimize_program(case.program, lambda p: False) \
            is case.program

    def test_minimized_program_still_prints_and_parses(self):
        from repro.frontend import ast
        from repro.frontend.parser import parse_source

        case = generate_program(9)
        minimized = minimize_program(
            case.program,
            lambda p: any(
                isinstance(s, ast.Do) for s in ast.walk_stmts(p.body)
            ),
        )
        reparsed = parse_source(format_program(minimized))
        assert reparsed.name == minimized.name
