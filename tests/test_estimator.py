"""Execution model + estimator tests: phase classification and pricing."""

import pytest

from repro.distribution import build_layout_search_spaces
from repro.machine import IPSC860
from repro.perf import (
    LOOSELY_SYNCHRONOUS,
    PIPELINED,
    REDUCTION,
    SEQUENTIALIZED,
    CompilerOptions,
    estimate_search_spaces,
)


@pytest.fixture(scope="module")
def adi_estimates(adi_assistant):
    return adi_assistant.estimates


def classes_of(estimates, phase_index):
    return {
        e.candidate.layout.distribution.distributed_dims()[0]:
        e.estimate.exec_class
        for e in estimates.per_phase[phase_index]
    }


class TestAdiClassification:
    def test_init_phase_parallel_everywhere(self, adi_estimates):
        assert set(classes_of(adi_estimates, 0).values()) == {
            LOOSELY_SYNCHRONOUS
        }

    def test_i_sweep_pipelines_under_row(self, adi_estimates):
        classes = classes_of(adi_estimates, 2)
        assert classes[0] == PIPELINED
        assert classes[1] == LOOSELY_SYNCHRONOUS

    def test_j_sweep_sequentializes_under_column(self, adi_estimates):
        classes = classes_of(adi_estimates, 6)
        assert classes[0] == LOOSELY_SYNCHRONOUS
        assert classes[1] == SEQUENTIALIZED

    def test_dependent_classes_cost_more_than_parallel(self, adi_estimates):
        """Pipelined and sequentialized executions both cost well above
        the loosely synchronous alternative of the same phase.  (Their
        mutual order depends on the problem size: at small n the
        fine-grain pipeline's per-stage latency dominates and
        sequentialization can be cheaper — the real trade-off the tool
        navigates.)"""
        for idx, bad_class in ((2, PIPELINED), (6, SEQUENTIALIZED)):
            bad = next(
                e.total for e in adi_estimates.per_phase[idx]
                if e.estimate.exec_class == bad_class
            )
            good = next(
                e.total for e in adi_estimates.per_phase[idx]
                if e.estimate.exec_class == LOOSELY_SYNCHRONOUS
            )
            assert bad > 2 * good

    def test_best_candidate_helper(self, adi_estimates):
        best = adi_estimates.best_candidate(2)
        assert best.estimate.exec_class == LOOSELY_SYNCHRONOUS


class TestErlebacherClassification:
    @pytest.fixture(scope="class")
    def est(self, erlebacher_small, training_db):
        prog, table, part, pcfg = erlebacher_small
        from repro.alignment import build_alignment_search_spaces
        from repro.distribution import determine_template

        tpl = determine_template(table)
        aspaces = build_alignment_search_spaces(
            part.phases, pcfg, table, tpl
        )
        lspaces = build_layout_search_spaces(
            part.phases, aspaces, tpl, table, nprocs=4
        )
        return estimate_search_spaces(
            part.phases, lspaces, table, IPSC860, training_db
        ), part

    def test_forward_elimination_classes(self, est):
        estimates, part = est
        # phase 8 is the x forward elimination (dep along i, innermost)
        classes = classes_of(estimates, 8)
        assert classes[0] == PIPELINED  # fine grain
        assert classes[1] == LOOSELY_SYNCHRONOUS
        assert classes[2] == LOOSELY_SYNCHRONOUS

    def test_z_sweep_sequentializes_under_dist3(self, est):
        estimates, part = est
        # phase 34 is the z forward elimination (dep along k, outermost)
        classes = classes_of(estimates, 34)
        assert classes[2] == SEQUENTIALIZED

    def test_y_sweep_coarse_pipeline_cheaper_than_x_fine(self, est):
        estimates, _ = est
        x_fine = next(
            e.total for e in estimates.per_phase[8]
            if e.estimate.exec_class == PIPELINED
        )
        y_coarse = next(
            e.total for e in estimates.per_phase[21]
            if e.estimate.exec_class == PIPELINED
        )
        assert y_coarse < x_fine


class TestTomcatvClassification:
    def test_reduction_phase(self, tomcatv_assistant):
        estimates = tomcatv_assistant.estimates
        # phase 6 is the rmax reduction
        classes = {
            e.estimate.exec_class for e in estimates.per_phase[6]
        }
        assert classes == {REDUCTION}


class TestCompilerOptions:
    def test_vectorization_matters(self, adi_assistant, training_db):
        """Without message vectorization shift costs explode."""
        from repro.perf import estimate_search_spaces

        novect = estimate_search_spaces(
            adi_assistant.partition.phases,
            adi_assistant.layout_spaces,
            adi_assistant.symbols,
            IPSC860,
            training_db,
            options=CompilerOptions(message_vectorization=False),
        )
        base = adi_assistant.estimates
        # phase 2 row layout carries a vectorized shift of array b
        row_base = base.per_phase[2][0]
        row_novect = novect.per_phase[2][0]
        assert row_novect.estimate.communication > \
            row_base.estimate.communication * 2

    def test_coarse_grain_pipelining_helps_fine_pipelines(
        self, adi_assistant, training_db
    ):
        from repro.perf import estimate_search_spaces

        cgp = estimate_search_spaces(
            adi_assistant.partition.phases,
            adi_assistant.layout_spaces,
            adi_assistant.symbols,
            IPSC860,
            training_db,
            options=CompilerOptions(coarse_grain_pipelining=True),
        )
        base = adi_assistant.estimates
        assert cgp.per_phase[2][0].estimate.pipeline < \
            base.per_phase[2][0].estimate.pipeline

    def test_options_name(self):
        assert CompilerOptions().name == "vect+coal"
        assert CompilerOptions(
            message_vectorization=False, message_coalescing=False
        ).name == "naive"


class TestEstimateStructure:
    def test_totals_are_component_sums(self, adi_estimates):
        for cands in adi_estimates.per_phase.values():
            for e in cands:
                est = e.estimate
                assert est.total == pytest.approx(
                    est.compute + est.communication + est.pipeline
                )

    def test_all_costs_nonnegative(self, adi_estimates):
        for cands in adi_estimates.per_phase.values():
            for e in cands:
                assert e.estimate.compute >= 0
                assert e.estimate.communication >= 0
                assert e.estimate.pipeline >= 0
