"""Distribution enumeration and layout search-space tests."""

import pytest

from repro.distribution.search_space import (
    DistributionOptions,
    enumerate_distributions,
)
from repro.distribution.template import Template


class TestEnumeration:
    def test_prototype_one_dim_block(self):
        tpl = Template(rank=2, extents=(16, 16))
        dists = enumerate_distributions(
            tpl, 8, DistributionOptions.prototype()
        )
        assert len(dists) == 2
        assert all(len(d.distributed_dims()) == 1 for d in dists)
        assert {d.distributed_dims()[0] for d in dists} == {0, 1}

    def test_three_dim_template(self):
        tpl = Template(rank=3, extents=(8, 8, 8))
        dists = enumerate_distributions(
            tpl, 4, DistributionOptions.prototype()
        )
        assert len(dists) == 3

    def test_cyclic_extension(self):
        tpl = Template(rank=2, extents=(16, 16))
        dists = enumerate_distributions(
            tpl, 4, DistributionOptions(one_dim_cyclic=True)
        )
        kinds = {d.dims[d.distributed_dims()[0]].kind for d in dists}
        assert kinds == {"block", "cyclic"}
        assert len(dists) == 4

    def test_block_cyclic_extension(self):
        tpl = Template(rank=2, extents=(16, 16))
        dists = enumerate_distributions(
            tpl, 4, DistributionOptions(block_cyclic_sizes=(2, 4))
        )
        bc = [
            d for d in dists
            if d.dims[d.distributed_dims()[0]].kind == "block_cyclic"
        ]
        assert len(bc) == 4  # 2 sizes x 2 dims

    def test_multi_dim_grids(self):
        tpl = Template(rank=2, extents=(16, 16))
        dists = enumerate_distributions(
            tpl, 8, DistributionOptions(multi_dim_grids=True)
        )
        grids = [d for d in dists if len(d.distributed_dims()) == 2]
        shapes = {
            tuple(d.dims[t].procs for t in d.distributed_dims())
            for d in grids
        }
        assert shapes == {(2, 4), (4, 2)}
        assert all(d.total_procs == 8 for d in grids)

    def test_extended_options(self):
        tpl = Template(rank=2, extents=(16, 16))
        dists = enumerate_distributions(
            tpl, 4, DistributionOptions.extended()
        )
        assert len(dists) > 6


class TestSearchSpaces:
    def test_adi_two_candidates_per_phase(self, adi_assistant):
        spaces = adi_assistant.layout_spaces
        assert all(len(c) == 2 for c in spaces.per_phase.values())

    def test_tomcatv_two_or_four(self, tomcatv_assistant):
        spaces = tomcatv_assistant.layout_spaces
        sizes = {len(c) for c in spaces.per_phase.values()}
        assert sizes == {2, 4}

    def test_positions_are_stable_indices(self, adi_assistant):
        spaces = adi_assistant.layout_spaces
        for cands in spaces.per_phase.values():
            assert [c.position for c in cands] == list(range(len(cands)))

    def test_signatures_unique_per_phase(self, tomcatv_assistant):
        spaces = tomcatv_assistant.layout_spaces
        for cands in spaces.per_phase.values():
            sigs = [c.layout.signature() for c in cands]
            assert len(set(sigs)) == len(sigs)

    def test_total_candidates(self, adi_assistant):
        assert adi_assistant.layout_spaces.total_candidates() == 18

    def test_labels_mention_distribution(self, adi_assistant):
        cand = adi_assistant.layout_spaces.per_phase[0][0]
        assert "block@4" in cand.label
