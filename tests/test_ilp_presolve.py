"""Presolve soundness: constraint propagation on 0-1 models, the
graph-level selection presolve, and their agreement with the brute-force
oracles.

The regression contract (the reason these are not approximate checks):

* every variable the presolve *fixes* carries the same value in the
  brute-force oracle's optimal certificate — presolve never cuts off the
  canonical optimum;
* the presolved solve's objective equals the unpresolved solve's
  objective exactly;
* the presolved selection path returns bitwise the selection the legacy
  full-model path returns.
"""

from __future__ import annotations

import os

import pytest

from repro.ilp import (
    MAXIMIZE,
    MINIMIZE,
    ZeroOneModel,
    presolve_model,
    solve as ilp_solve,
)
from repro.programs import PROGRAMS
from repro.qa import load_corpus
from repro.qa.oracles import (
    MAX_SELECTION_COMBINATIONS,
    exact_best_selection,
    selection_combination_count,
)
from repro.qa.runner import run_fuzz
from repro.selection import ilp as selection_ilp
from repro.selection.ilp import select_layouts
from repro.selection.presolve import (
    TABLE_CAP,
    build_component_model,
    eliminate_component,
    presolve_selection,
)
from repro.tool.assistant import AssistantConfig, run_assistant

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = load_corpus(CORPUS_DIR)


# ---------------------------------------------------------------------------
# Model-level presolve (repro.ilp.presolve)


class TestRowForcing:
    def test_equality_row_forces_all_ones(self):
        model = ZeroOneModel(name="t", sense=MINIMIZE)
        model.add_var("x")
        model.add_var("y")
        model.add_constraint({"x": 1.0, "y": 1.0}, "==", 2.0)
        model.set_objective({"x": 1.0, "y": 1.0})
        pre = presolve_model(model)
        assert pre.fixed == {"x": 1, "y": 1}
        assert pre.solved

    def test_upper_bound_zero_forces_all_zeros(self):
        model = ZeroOneModel(name="t", sense=MINIMIZE)
        model.add_var("x")
        model.add_var("y")
        model.add_constraint({"x": 1.0, "y": 1.0}, "<=", 0.0)
        model.set_objective({"x": -1.0, "y": -1.0})
        pre = presolve_model(model)
        assert pre.fixed == {"x": 0, "y": 0}

    def test_singleton_forbid_row(self):
        # The selection model's ``forbid`` rows are singleton == 0.
        model = ZeroOneModel(name="t", sense=MINIMIZE)
        model.add_var("x")
        model.add_var("y")
        model.add_constraint({"x": 1.0}, "==", 0.0, name="forbid")
        model.add_constraint({"x": 1.0, "y": 1.0}, "==", 1.0)
        model.set_objective({"x": 0.0, "y": 5.0})
        pre = presolve_model(model)
        assert pre.fixed == {"x": 0, "y": 1}
        assert pre.solved

    def test_forcing_chains_propagate_to_fixpoint(self):
        # x=1 forces y=0 (x+y<=1) which forces z=1 (y+z>=1).
        model = ZeroOneModel(name="t", sense=MINIMIZE)
        for v in ("x", "y", "z"):
            model.add_var(v)
        model.add_constraint({"x": 1.0}, ">=", 1.0)
        model.add_constraint({"x": 1.0, "y": 1.0}, "<=", 1.0)
        model.add_constraint({"y": 1.0, "z": 1.0}, ">=", 1.0)
        model.set_objective({"x": 1.0, "y": 1.0, "z": 1.0})
        pre = presolve_model(model)
        assert pre.fixed == {"x": 1, "y": 0, "z": 1}

    def test_infeasible_rows_detected(self):
        model = ZeroOneModel(name="t", sense=MINIMIZE)
        model.add_var("x")
        model.add_constraint({"x": 1.0}, ">=", 1.0)
        model.add_constraint({"x": 1.0}, "<=", 0.0)
        model.set_objective({"x": 1.0})
        pre = presolve_model(model)
        assert pre.infeasible
        solution = ilp_solve(model, presolve=True)
        assert solution.status == "infeasible"
        assert not solution.has_incumbent


class TestRowRemovalAndObjectiveFixing:
    def test_vacuous_rows_dropped(self):
        model = ZeroOneModel(name="t", sense=MINIMIZE)
        model.add_var("x")
        model.add_var("y")
        model.add_constraint({"x": 1.0, "y": 1.0}, "<=", 2.0)  # vacuous
        model.add_constraint({"x": 1.0, "y": -1.0}, "<=", 0.0)  # binding
        model.set_objective({"x": -1.0, "y": 1.0})
        pre = presolve_model(model)
        assert pre.rows_dropped == 1
        assert pre.model.num_constraints == 1

    def test_unconstrained_vars_fix_by_objective_sign(self):
        model = ZeroOneModel(name="t", sense=MINIMIZE)
        for v in ("a", "b", "c"):
            model.add_var(v)
        model.set_objective({"a": 3.0, "b": -2.0})  # c: no coefficient
        pre = presolve_model(model)
        # minimize: positive cost -> 0, negative cost -> 1,
        # zero cost (tie) -> 1, the canonical branch-bound value.
        assert pre.fixed == {"a": 0, "b": 1, "c": 1}
        assert pre.solved
        assert pre.trivial_solution().objective == -2.0

    def test_maximize_flips_the_favourable_value(self):
        model = ZeroOneModel(name="t", sense=MAXIMIZE)
        model.add_var("a")
        model.add_var("b")
        model.set_objective({"a": 3.0, "b": -2.0})
        pre = presolve_model(model)
        assert pre.fixed == {"a": 1, "b": 0}

    def test_expand_recomputes_objective_over_original(self):
        model = ZeroOneModel(name="t", sense=MINIMIZE)
        model.add_var("x")
        model.add_var("y")
        model.add_constraint({"x": 1.0}, "==", 1.0)
        model.add_constraint({"x": 1.0, "y": 1.0}, "<=", 2.0)
        model.set_objective({"x": 7.0, "y": 1.0})
        pre = presolve_model(model)
        assert pre.fixed.get("x") == 1
        sub = ilp_solve(pre.model)
        full = pre.expand(sub)
        assert full.values["x"] == 1
        assert full.objective == model.objective_value(full.values)


class TestPresolvedSolvesMatchUnpresolved:
    @pytest.mark.parametrize("backend", ["scipy", "branch-bound"])
    def test_on_the_selection_model(self, adi_assistant, backend):
        model = selection_ilp.build_selection_model(
            adi_assistant.graph
        ).model
        plain = ilp_solve(model, backend=backend, presolve=False)
        pres = ilp_solve(model, backend=backend, presolve=True)
        assert pres.status == plain.status == "optimal"
        assert pres.objective == plain.objective
        assert pres.values == plain.values

    @pytest.mark.parametrize("backend", ["scipy", "branch-bound"])
    def test_on_a_knapsack_like_model(self, backend):
        model = ZeroOneModel(name="t", sense=MAXIMIZE)
        items = [("a", 4.0), ("b", 3.0), ("c", 2.0), ("d", 1.0)]
        for v, _gain in items:
            model.add_var(v)
        model.add_constraint(
            {v: 1.0 for v, _ in items}, "<=", 2.0
        )
        model.add_constraint({"a": 1.0, "b": 1.0}, "<=", 1.0)
        model.set_objective(dict(items))
        plain = ilp_solve(model, backend=backend, presolve=False)
        pres = ilp_solve(model, backend=backend, presolve=True)
        assert pres.objective == plain.objective == 6.0
        assert pres.values == plain.values


# ---------------------------------------------------------------------------
# Graph-level selection presolve (repro.selection.presolve)


def small_graphs():
    """(name, graph) pairs within the exhaustive oracle's reach."""
    out = []
    for case in CORPUS:
        result = run_assistant(
            case.source, AssistantConfig(nprocs=case.nprocs)
        )
        if (selection_combination_count(result.graph)
                <= MAX_SELECTION_COMBINATIONS):
            out.append((case.name, result.graph))
    return out


class TestSelectionPresolveSoundness:
    def test_fixed_phases_match_the_oracle_certificate(self):
        checked = 0
        for name, graph in small_graphs():
            _cost, oracle_sel = exact_best_selection(graph)
            pre = presolve_selection(graph)
            for phase_index, cand in sorted(pre.fixed.items()):
                assert oracle_sel[phase_index] == cand, (
                    f"{name}: presolve fixed phase {phase_index} to "
                    f"{cand}, oracle certificate has "
                    f"{oracle_sel[phase_index]}"
                )
                checked += 1
        assert checked > 0  # the corpus must exercise the rule

    def test_presolved_objective_equals_unpresolved(self):
        for name, graph in small_graphs():
            fast = select_layouts(graph, presolve=True)
            slow = select_layouts(graph, presolve=False)
            assert fast.selection == slow.selection, name
            assert fast.objective == slow.objective, name

    def test_presolved_objective_equals_exhaustive_optimum(self):
        for name, graph in small_graphs():
            cost, oracle_sel = exact_best_selection(graph)
            fast = select_layouts(graph, presolve=True)
            assert fast.objective == cost, name
            assert fast.selection == oracle_sel, name

    def test_dee_pruning_survives_restriction(self):
        for name, graph in small_graphs():
            phases = sorted(graph.node_costs)
            allowed = {
                phases[0]: set(
                    range(len(graph.node_costs[phases[0]]))
                ),
            }
            fast = select_layouts(graph, presolve=True, allowed=allowed)
            slow = select_layouts(graph, presolve=False, allowed=allowed)
            assert fast.selection == slow.selection, name

    def test_infeasible_restriction_raises_like_the_ilp(self):
        _name, graph = small_graphs()[0]
        phase = sorted(graph.node_costs)[0]
        with pytest.raises(RuntimeError, match="infeasible"):
            select_layouts(graph, presolve=True, allowed={phase: set()})


class TestPaperProgramPaths:
    @pytest.mark.parametrize(
        "name", ["adi", "erlebacher", "tomcatv", "shallow"]
    )
    def test_fast_path_matches_legacy_bitwise(self, name):
        result = run_assistant(
            PROGRAMS[name].source(), AssistantConfig(nprocs=8)
        )
        graph = result.graph
        fast = select_layouts(graph, presolve=True)
        slow = select_layouts(graph, presolve=False)
        assert fast.selection == slow.selection
        assert fast.objective == slow.objective
        assert fast.optimal and slow.optimal


class TestEliminationFallback:
    def test_component_ilp_fallback_matches_elimination(
        self, adi_assistant, monkeypatch
    ):
        graph = adi_assistant.graph
        reference = select_layouts(graph, presolve=True)
        # Force every component onto the reduced-ILP fallback.
        monkeypatch.setattr(
            selection_ilp, "eliminate_component",
            lambda pre, comp: None,
        )
        fallback = select_layouts(graph, presolve=True)
        assert fallback.selection == reference.selection
        assert fallback.objective == reference.objective

    def test_tiny_table_cap_returns_none(self, adi_assistant):
        graph = adi_assistant.graph
        pre = presolve_selection(graph)
        for comp in pre.components:
            if len(comp) >= 1:
                assert eliminate_component(pre, comp, table_cap=0) is None
                break
        else:
            pytest.skip("presolve fixed every phase outright")

    def test_default_cap_is_generous(self):
        assert TABLE_CAP == 65536

    def test_component_model_matches_elimination(self, adi_assistant):
        graph = adi_assistant.graph
        pre = presolve_selection(graph)
        for comp in pre.components:
            exact = eliminate_component(pre, comp)
            if exact is None:
                continue
            model = build_component_model(pre, comp)
            solution = ilp_solve(model)
            assert solution.is_optimal
            for p in comp:
                for c in pre.active[p]:
                    if solution.values.get(f"x:{p}:{c}") == 1:
                        assert exact[p] == c, (p, c)
                        break


class TestFuzzWiring:
    def test_selection_presolve_check_is_registered(self):
        report = run_fuzz(
            seed=910, cases=5, checks=["selection-presolve"]
        )
        assert report.ok, report.summary()
        assert report.checks_run.get("selection-presolve") == 5
