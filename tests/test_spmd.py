"""SPMD lowering tests: remap insertion, branch determinism, pipeline
aggregation, end-to-end measurement sanity."""

import pytest

from repro.analysis.phases import partition_phases
from repro.codegen.spmd import (
    SPMDBuilder,
    array_layout_signature,
    compile_program,
)
from repro.distribution.layouts import (
    Alignment,
    DataLayout,
    Distribution,
)
from repro.distribution.template import Template
from repro.frontend import build_symbol_table, parse_source
from repro.machine import IPSC860, simulate

SRC = """
program t
      integer n, steps
      parameter (n = 16, steps = 4)
      double precision a(n, n), b(n, n)
      integer i, j, t1
      do t1 = 1, steps
        do j = 1, n
          do i = 1, n
            a(i, j) = a(i, j) + 1.0
          enddo
        enddo
        do j = 1, n
          do i = 1, n
            b(i, j) = a(i, j) * 0.5
          enddo
        enddo
      enddo
      end
"""


@pytest.fixture()
def env():
    prog = parse_source(SRC)
    table = build_symbol_table(prog)
    part = partition_phases(prog, table)
    tpl = Template(rank=2, extents=(16, 16))

    def layout(dist_dim):
        return DataLayout.build(
            template=tpl,
            alignments={
                "a": Alignment.canonical(2),
                "b": Alignment.canonical(2),
            },
            distribution=Distribution.one_dim_block(2, dist_dim, 4),
        )

    return prog, table, part, layout


class TestRemapInsertion:
    def test_static_layout_no_remaps(self, env):
        _p, table, part, layout = env
        builder = compile_program(
            part, table, {0: layout(0), 1: layout(0)}, IPSC860, 4
        )
        assert builder.remap_count == 0

    def test_alternating_layout_remaps_per_iteration(self, env):
        _p, table, part, layout = env
        builder = compile_program(
            part, table, {0: layout(0), 1: layout(1)}, IPSC860, 4
        )
        # 'a' flips twice per time step after the first use; 'b' is only
        # touched under layout 1, so it never flips.
        # steps=4: a changes at each phase boundary crossing: 2*4 - 1 = 7
        assert builder.remap_count == 7

    def test_remap_makes_run_slower(self, env):
        _p, table, part, layout = env
        static = compile_program(
            part, table, {0: layout(0), 1: layout(0)}, IPSC860, 4
        )
        dynamic = compile_program(
            part, table, {0: layout(0), 1: layout(1)}, IPSC860, 4
        )
        t_static = simulate(static.programs, IPSC860,
                            static.collectives).makespan
        t_dynamic = simulate(dynamic.programs, IPSC860,
                             dynamic.collectives).makespan
        assert t_dynamic > t_static

    def test_missing_layout_raises(self, env):
        _p, table, part, layout = env
        with pytest.raises(KeyError):
            compile_program(part, table, {0: layout(0)}, IPSC860, 4)


class TestLayoutSignature:
    def test_same_distribution_same_signature(self, env):
        _p, _t, _part, layout = env
        assert array_layout_signature(layout(0), "a") == \
            array_layout_signature(layout(0), "a")

    def test_different_dim_differs(self, env):
        _p, _t, _part, layout = env
        assert array_layout_signature(layout(0), "a") != \
            array_layout_signature(layout(1), "a")


BRANCH_SRC = """
program t
      integer n, steps
      parameter (n = 8, steps = 10)
      double precision a(n, n)
      double precision s
      integer i, j, t1
      do t1 = 1, steps
        if (s .gt. 0.0) then
          do j = 1, n
            do i = 1, n
              a(i, j) = a(i, j) + 1.0
            enddo
          enddo
        endif
      enddo
      end
"""


class TestBranchDeterminism:
    @pytest.mark.parametrize("prob,expected", [(0.5, 5), (0.3, 3),
                                               (1.0, 10), (0.0, 0)])
    def test_branch_fires_in_proportion(self, prob, expected):
        prog = parse_source(BRANCH_SRC)
        table = build_symbol_table(prog)
        if_line = next(
            i for i, l in enumerate(BRANCH_SRC.splitlines(), start=1)
            if "if (s" in l
        )
        part = partition_phases(
            prog, table, branch_prob_overrides={if_line: prob}
        )
        tpl = Template(rank=2, extents=(8, 8))
        layout = DataLayout.build(
            template=tpl,
            alignments={"a": Alignment.canonical(2)},
            distribution=Distribution.one_dim_block(2, 0, 2),
        )
        builder = compile_program(part, table, {0: layout}, IPSC860, 2)
        # phase compute blocks appear once per taken branch
        computes = sum(
            1 for op in builder.programs[0] if op[0] == "compute"
        )
        assert computes == expected


PIPELINE_SRC = """
program t
      integer n
      parameter (n = 64)
      double precision a(n, n)
      integer i, j
      do j = 1, n
        do i = 2, n
          a(i, j) = a(i, j) - a(i - 1, j)
        enddo
      enddo
      end
"""


class TestPipelineAggregation:
    def _measure(self, max_stages):
        prog = parse_source(PIPELINE_SRC)
        table = build_symbol_table(prog)
        part = partition_phases(prog, table)
        tpl = Template(rank=2, extents=(64, 64))
        layout = DataLayout.build(
            template=tpl,
            alignments={"a": Alignment.canonical(2)},
            distribution=Distribution.one_dim_block(2, 0, 4),
        )
        builder = compile_program(
            part, table, {0: layout}, IPSC860, 4,
            max_pipeline_stages=max_stages,
        )
        return simulate(builder.programs, IPSC860, builder.collectives)

    def test_aggregation_reduces_ops_preserves_work(self):
        full = self._measure(1024)
        coarse = self._measure(8)
        assert coarse.stats.messages < full.stats.messages
        # per-proc work is preserved, so makespans stay close (fill
        # granularity differs)
        assert coarse.makespan == pytest.approx(full.makespan, rel=0.25)

    def test_pipeline_faster_than_sequential_bound(self):
        result = self._measure(1024)
        # 4 procs pipelined must beat 4x the per-proc compute
        compute = result.stats.compute_time
        assert result.makespan < compute * 1.5 + 64 * 400
