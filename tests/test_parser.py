"""Parser unit tests."""

import pytest

from repro.frontend import ast
from repro.frontend.parser import ParseError, parse_source


def parse_body(stmts_text, decls="      integer i, j, k, n\n"):
    src = f"program t\n{decls}{stmts_text}      end\n"
    return parse_source(src).body


def parse_expr(expr_text):
    body = parse_body(f"      i = {expr_text}\n")
    assert isinstance(body[0], ast.Assign)
    return body[0].expr


class TestProgramStructure:
    def test_program_name(self):
        prog = parse_source("program hello\n      end\n")
        assert prog.name == "hello"
        assert prog.body == ()

    def test_missing_end_raises(self):
        with pytest.raises(ParseError):
            parse_source("program broken\n      x = 1\n")

    def test_declarations_collected(self):
        prog = parse_source(
            "program t\n"
            "      implicit none\n"
            "      integer n\n"
            "      parameter (n = 8)\n"
            "      real a(n), b\n"
            "      double precision c(n, n)\n"
            "      dimension d(3)\n"
            "      end\n"
        )
        # implicit none contributes no declaration node
        kinds = [type(d).__name__ for d in prog.declarations]
        assert kinds == ["TypeDecl", "ParameterDecl", "TypeDecl",
                         "TypeDecl", "DimensionDecl"]

    def test_double_precision_dtype(self):
        prog = parse_source(
            "program t\n      double precision x\n      end\n"
        )
        assert prog.declarations[0].dtype == "double"

    def test_dimension_bounds_pair(self):
        prog = parse_source(
            "program t\n      real a(0:7, 4)\n      end\n"
        )
        spec = prog.declarations[0].entities[0].dims[0]
        assert isinstance(spec.lo, ast.IntLit) and spec.lo.value == 0
        assert isinstance(spec.hi, ast.IntLit) and spec.hi.value == 7


class TestDoLoops:
    def test_enddo_form(self):
        body = parse_body(
            "      do i = 1, 10\n        j = i\n      enddo\n"
        )
        loop = body[0]
        assert isinstance(loop, ast.Do)
        assert loop.var == "i"
        assert loop.label is None
        assert len(loop.body) == 1

    def test_labeled_continue_form(self):
        body = parse_body(
            "      do 10 i = 1, 10\n        j = i\n 10   continue\n"
        )
        loop = body[0]
        assert loop.label == 10
        assert isinstance(loop.body[-1], ast.Continue)

    def test_nested_labeled_loops(self):
        body = parse_body(
            "      do 10 i = 1, 4\n"
            "        do 20 j = 1, 4\n"
            "          k = i + j\n"
            " 20     continue\n"
            " 10   continue\n"
        )
        outer = body[0]
        inner = outer.body[0]
        assert isinstance(inner, ast.Do)
        assert inner.label == 20

    def test_step_expression(self):
        body = parse_body("      do i = 10, 1, -1\n      enddo\n")
        loop = body[0]
        assert isinstance(loop.step, ast.UnaryOp)

    def test_missing_label_raises(self):
        with pytest.raises(ParseError):
            parse_body("      do 10 i = 1, 4\n        j = i\n")

    def test_symbolic_bounds(self):
        body = parse_body("      do i = 2, n - 1\n      enddo\n")
        assert isinstance(body[0].hi, ast.BinOp)


class TestIfStatements:
    def test_block_if(self):
        body = parse_body(
            "      if (i .gt. 0) then\n        j = 1\n      endif\n"
        )
        node = body[0]
        assert isinstance(node, ast.If)
        assert len(node.then_body) == 1
        assert node.else_body == ()

    def test_if_else(self):
        body = parse_body(
            "      if (i .gt. 0) then\n        j = 1\n"
            "      else\n        j = 2\n      endif\n"
        )
        node = body[0]
        assert len(node.then_body) == 1
        assert len(node.else_body) == 1

    def test_elseif_desugars_to_nested_if(self):
        body = parse_body(
            "      if (i .gt. 0) then\n        j = 1\n"
            "      elseif (i .lt. 0) then\n        j = 2\n"
            "      else\n        j = 3\n      endif\n"
        )
        node = body[0]
        assert len(node.else_body) == 1
        nested = node.else_body[0]
        assert isinstance(nested, ast.If)
        assert len(nested.else_body) == 1

    def test_logical_if(self):
        body = parse_body("      if (i .gt. 0) j = 1\n")
        node = body[0]
        assert isinstance(node, ast.If)
        assert isinstance(node.then_body[0], ast.Assign)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.BinOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinOp) and expr.right.op == "*"

    def test_power_right_associative(self):
        expr = parse_expr("2 ** 3 ** 2")
        assert expr.op == "**"
        assert isinstance(expr.right, ast.BinOp) and expr.right.op == "**"

    def test_unary_minus(self):
        expr = parse_expr("-i")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "-"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.BinOp) and expr.left.op == "+"

    def test_relational_binds_looser_than_arith(self):
        body = parse_body("      if (i + 1 .gt. j * 2) k = 1\n")
        cond = body[0].cond
        assert cond.op == ">"
        assert cond.left.op == "+"

    def test_logical_precedence(self):
        body = parse_body(
            "      if (i .gt. 0 .and. j .gt. 0 .or. k .gt. 0) k = 1\n"
        )
        cond = body[0].cond
        assert cond.op == ".or."
        assert cond.left.op == ".and."

    def test_intrinsic_call(self):
        expr = parse_expr("max(i, j)")
        assert isinstance(expr, ast.Call)
        assert expr.name == "max"
        assert len(expr.args) == 2

    def test_array_reference(self):
        body = parse_body(
            "      a(i, j) = a(i - 1, j) + 1.0\n",
            decls="      integer i, j\n      real a(8, 8)\n",
        )
        stmt = body[0]
        assert isinstance(stmt.target, ast.ArrayRef)
        assert stmt.target.rank == 2
        refs = list(ast.expr_array_refs(stmt.expr))
        assert len(refs) == 1 and refs[0].name == "a"

    def test_non_intrinsic_paren_is_array_ref(self):
        expr = parse_expr("foo(i)")
        assert isinstance(expr, ast.ArrayRef)

    def test_real_literal_double_flag(self):
        expr = parse_expr("1.5d0")
        assert isinstance(expr, ast.RealLit) and expr.is_double

    def test_assignment_to_expression_raises(self):
        with pytest.raises(ParseError):
            parse_body("      max(i, j) = 1\n")


class TestWalkHelpers:
    def test_walk_stmts_descends(self):
        body = parse_body(
            "      do i = 1, 4\n"
            "        if (i .gt. 2) then\n          j = i\n        endif\n"
            "      enddo\n"
        )
        stmts = list(ast.walk_stmts(body))
        assert any(isinstance(s, ast.Assign) for s in stmts)
        assert any(isinstance(s, ast.If) for s in stmts)

    def test_expr_array_refs_in_subscripts(self):
        body = parse_body(
            "      a(b(i)) = 1.0\n",
            decls="      integer i\n      real a(8)\n      integer b(8)\n",
        )
        stmt = body[0]
        subs_refs = [
            r for sub in stmt.target.subscripts
            for r in ast.expr_array_refs(sub)
        ]
        assert [r.name for r in subs_refs] == ["b"]
