"""Stage-cache correctness: identical answers, the specified hit/miss
pattern under config edits, and graceful recovery from corruption."""

from __future__ import annotations

import os
import threading

import pytest

from repro.machine.params import IPSC860, MACHINES, MachineParams
from repro.perf.training import cached_training_database, machine_cache_key
from repro.service import LayoutService, WorkerPool
from repro.tool.assistant import AssistantConfig

REQUEST = {
    "op": "analyze",
    "program": "adi",
    "size": 32,
    "maxiter": 2,
    "procs": 4,
}


@pytest.fixture()
def service(tmp_path):
    with LayoutService(cache_dir=str(tmp_path / "cache"),
                       pool=WorkerPool(kind="serial")) as svc:
        yield svc


def _stage_hits(resp: dict) -> dict:
    return {t["stage"]: t["cache_hit"] for t in resp["stage_timings"]}


class TestCacheCorrectness:
    def test_same_request_twice_identical_with_hit(self, service):
        first = service.analyze_dict(dict(REQUEST))
        second = service.analyze_dict(dict(REQUEST))
        assert first["ok"] and second["ok"]
        assert first["cache_hits"] == 0
        assert second["cache_hits"] == len(second["stage_timings"])
        assert second["cache_misses"] == 0
        # byte-identical selection
        assert second["layouts"] == first["layouts"]
        assert second["predicted_total_us"] == first["predicted_total_us"]
        assert second["is_dynamic"] == first["is_dynamic"]
        hits, misses = service.metrics.cache_totals()
        assert hits >= 1 and misses >= 1

    def test_cache_survives_service_restart(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with LayoutService(cache_dir=cache_dir,
                           pool=WorkerPool(kind="serial")) as svc:
            first = svc.analyze_dict(dict(REQUEST))
        with LayoutService(cache_dir=cache_dir,
                           pool=WorkerPool(kind="serial")) as svc:
            second = svc.analyze_dict(dict(REQUEST))
        assert second["cache_hits"] == len(second["stage_timings"])
        assert second["layouts"] == first["layouts"]

    def test_changed_nprocs_hits_upstream_stages(self, service):
        service.analyze_dict(dict(REQUEST))
        resp = service.analyze_dict(dict(REQUEST, procs=8))
        hits = _stage_hits(resp)
        assert hits["frontend"] and hits["partition"] and hits["alignment"]
        assert not hits["distribution"]
        assert not hits["estimation"]
        assert not hits["selection"]

    def test_changed_machine_misses_only_estimation_down(self, service):
        service.analyze_dict(dict(REQUEST))
        resp = service.analyze_dict(dict(REQUEST, machine="paragon"))
        hits = _stage_hits(resp)
        assert hits["frontend"] and hits["partition"]
        assert hits["alignment"] and hits["distribution"]
        assert not hits["estimation"]
        assert not hits["selection"]

    def test_whitespace_edit_hits_downstream_stages(self, service):
        from repro.programs.registry import PROGRAMS

        source = PROGRAMS["adi"].source(n=32, maxiter=2)
        base = {"op": "analyze", "source": source, "procs": 4}
        service.analyze_dict(dict(base))
        edited = source.replace("\n", "\n\n", 1)  # comment-free reformat
        resp = service.analyze_dict(dict(base, source=edited))
        hits = _stage_hits(resp)
        # the raw-text frontend key misses, but the normalized-AST chain
        # makes every later stage hit
        assert not hits["frontend"]
        assert all(hits[s] for s in
                   ("partition", "alignment", "distribution",
                    "estimation", "selection"))

    def test_corrupted_cache_file_recomputes(self, service, tmp_path):
        first = service.analyze_dict(dict(REQUEST))
        root = service.cache.root
        corrupted = 0
        for stage in os.listdir(root):
            stage_dir = os.path.join(root, stage)
            for name in os.listdir(stage_dir):
                with open(os.path.join(stage_dir, name), "wb") as handle:
                    handle.write(b"\x00garbage, not a pickle")
                corrupted += 1
        assert corrupted >= 6
        service.cache.clear_memory()
        resp = service.analyze_dict(dict(REQUEST))
        assert resp["ok"]
        assert resp["cache_hits"] == 0  # every entry was damaged
        assert resp["layouts"] == first["layouts"]

    def test_no_cache_request_never_hits(self, service):
        service.analyze_dict(dict(REQUEST))
        resp = service.analyze_dict(dict(REQUEST, use_cache=False))
        assert resp["ok"]
        assert resp["cache_hits"] == 0


class TestConfigRoundTrip:
    def test_to_dict_from_dict_round_trip(self):
        config = AssistantConfig(
            nprocs=16,
            machine=MACHINES["paragon"],
            ilp_backend="branch-bound",
            branch_probability=0.25,
            branch_prob_overrides={3: 0.75},
        )
        rebuilt = AssistantConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.to_key() == config.to_key()
        # overrides keys survive the str round-trip as ints
        assert rebuilt.branch_prob_overrides == {3: 0.75}

    def test_machine_by_registry_name(self):
        config = AssistantConfig.from_dict(
            {"nprocs": 8, "machine": "paragon"}
        )
        assert config.machine == MACHINES["paragon"]

    def test_key_is_sensitive_to_fields(self):
        base = AssistantConfig(nprocs=16)
        assert base.to_key() == AssistantConfig(nprocs=16).to_key()
        assert base.to_key() != AssistantConfig(nprocs=8).to_key()
        assert base.to_key() != AssistantConfig(
            nprocs=16, machine=MACHINES["paragon"]
        ).to_key()

    def test_to_dict_is_json_serializable(self):
        import json

        text = json.dumps(AssistantConfig(nprocs=4).to_dict(),
                          sort_keys=True)
        assert AssistantConfig.from_dict(json.loads(text)) == \
            AssistantConfig(nprocs=4)


class TestTrainingDatabaseCache:
    def test_key_derives_from_params_not_name(self):
        tweaked = MachineParams(name=IPSC860.name, alpha_short=999.0)
        assert machine_cache_key(tweaked) != machine_cache_key(IPSC860)
        db_a = cached_training_database(IPSC860, proc_counts=(2,))
        db_b = cached_training_database(tweaked, proc_counts=(2,))
        assert db_a is not db_b

    def test_concurrent_access_converges_on_one_instance(self):
        params = MachineParams(name="concurrency-probe", alpha_short=80.0)
        results = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            results.append(
                cached_training_database(params, proc_counts=(2, 4))
            )

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 4
        assert all(db is results[0] for db in results)
