"""CYCLIC / BLOCK-CYCLIC distribution semantics (the paper's future-work
distribution formats, implemented as extensions)."""

import pytest

from repro.analysis.phases import partition_phases
from repro.codegen.comm import ShiftComm
from repro.codegen.spmd import compile_phase, compile_program
from repro.distribution.layouts import (
    BLOCK_CYCLIC,
    CYCLIC,
    SERIAL,
    Alignment,
    DataLayout,
    DimDistribution,
    Distribution,
    block_cyclic_owner,
    cyclic_owner,
    owner_of_index,
)
from repro.distribution.template import Template
from repro.frontend import build_symbol_table, parse_source
from repro.machine import IPSC860, simulate

DECLS = (
    "      integer n\n      parameter (n = 16)\n"
    "      double precision a(n, n), b(n, n)\n"
    "      integer i, j\n"
)


def compiled_for(body, dist, procs=4):
    src = f"program t\n{DECLS}{body}      end\n"
    prog = parse_source(src)
    table = build_symbol_table(prog)
    part = partition_phases(prog, table)
    tpl = Template(rank=2, extents=(16, 16))
    layout = DataLayout.build(
        template=tpl,
        alignments={
            name: Alignment.canonical(2) for name in ("a", "b")
        },
        distribution=dist,
    )
    return compile_phase(part.phases[0], layout, table, IPSC860), \
        part, table, layout


def one_dim(kind, dim, procs, block=0):
    dims = tuple(
        DimDistribution(kind=kind, procs=procs, block=block)
        if d == dim else DimDistribution(kind=SERIAL)
        for d in range(2)
    )
    return Distribution(dims=dims)


class TestOwnership:
    def test_owner_of_index_dispatch(self):
        assert owner_of_index("block", 5, 16, 4) == 1
        assert owner_of_index("cyclic", 5, 16, 4) == cyclic_owner(5, 4)
        assert owner_of_index("block_cyclic", 5, 16, 4, 2) == \
            block_cyclic_owner(5, 2, 4)

    def test_block_cyclic_owner_pattern(self):
        # blocks of 2 over 3 procs: 1,2->0  3,4->1  5,6->2  7,8->0 ...
        owners = [block_cyclic_owner(i, 2, 3) for i in range(1, 9)]
        assert owners == [0, 0, 1, 1, 2, 2, 0, 0]

    def test_cyclic_balances_iterations(self):
        body = (
            "      do j = 1, n\n        do i = 1, n\n"
            "          a(i, j) = b(i, j)\n        enddo\n      enddo\n"
        )
        compiled, _p, _t, _l = compiled_for(
            body, one_dim(CYCLIC, 0, 4)
        )
        plan = compiled.plans[0]
        counts = [plan.local_iterations(p, 16, 4) for p in range(4)]
        assert counts == [64, 64, 64, 64]

    def test_cyclic_balances_boundary_loops(self):
        """The load-balance advantage of CYCLIC: a shrinking iteration
        space (do i = 2, n) stays even, while BLOCK piles the missing
        work on one processor."""
        body = (
            "      do j = 1, n\n        do i = 5, n\n"
            "          a(i, j) = b(i, j)\n        enddo\n      enddo\n"
        )
        cyc, _p, _t, _l = compiled_for(body, one_dim(CYCLIC, 0, 4))
        blk, _p, _t, _l = compiled_for(body, one_dim("block", 0, 4))
        cyc_counts = [
            cyc.plans[0].local_iterations(p, 16, 4) for p in range(4)
        ]
        blk_counts = [
            blk.plans[0].local_iterations(p, 16, 4) for p in range(4)
        ]
        assert max(cyc_counts) - min(cyc_counts) <= 16
        assert max(blk_counts) - min(blk_counts) == 64  # first block short
        assert sum(cyc_counts) == sum(blk_counts)


class TestShiftVolumes:
    STENCIL = (
        "      do j = 1, n\n        do i = 2, n\n"
        "          a(i, j) = b(i - 1, j)\n        enddo\n      enddo\n"
    )

    def shift_bytes(self, dist):
        compiled, _p, _t, _l = compiled_for(self.STENCIL, dist)
        shift = next(
            c for c in compiled.plans[0].comms if isinstance(c, ShiftComm)
        )
        return shift.nbytes

    def test_cyclic_shifts_every_element(self):
        block = self.shift_bytes(one_dim("block", 0, 4))
        cyclic = self.shift_bytes(one_dim(CYCLIC, 0, 4))
        # block: 1 boundary column; cyclic: every owned element remote
        assert cyclic == 4 * block

    def test_block_cyclic_interpolates(self):
        block = self.shift_bytes(one_dim("block", 0, 4))
        bc2 = self.shift_bytes(one_dim(BLOCK_CYCLIC, 0, 4, block=2))
        cyclic = self.shift_bytes(one_dim(CYCLIC, 0, 4))
        assert block < bc2 < cyclic


class TestCyclicPipelines:
    SWEEP = (
        "      do j = 1, n\n        do i = 2, n\n"
        "          a(i, j) = a(i, j) - a(i - 1, j)\n"
        "        enddo\n      enddo\n"
    )

    def test_rounds_recorded(self):
        compiled, _p, _t, _l = compiled_for(self.SWEEP, one_dim(CYCLIC, 0, 4))
        pipe = compiled.plans[0].pipeline
        assert pipe is not None
        assert pipe.rounds == 4  # 16 elements / (4 procs * block 1)
        blk, _p, _t, _l = compiled_for(self.SWEEP, one_dim("block", 0, 4))
        assert blk.plans[0].pipeline.rounds == 1

    def test_cyclic_sweep_slower_in_simulation(self):
        def measure(dist):
            src = f"program t\n{DECLS}{self.SWEEP}      end\n"
            prog = parse_source(src)
            table = build_symbol_table(prog)
            part = partition_phases(prog, table)
            tpl = Template(rank=2, extents=(16, 16))
            layout = DataLayout.build(
                template=tpl,
                alignments={n: Alignment.canonical(2) for n in ("a", "b")},
                distribution=dist,
            )
            builder = compile_program(part, table, {0: layout}, IPSC860, 4)
            return simulate(
                builder.programs, IPSC860, builder.collectives
            ).makespan

        assert measure(one_dim(CYCLIC, 0, 4)) > \
            measure(one_dim("block", 0, 4))

    def test_estimator_agrees_cyclic_is_worse(self):
        from repro.machine import IPSC860 as params
        from repro.perf import cached_training_database, price_phase

        db = cached_training_database(params)
        cyc, _p, _t, _l = compiled_for(self.SWEEP, one_dim(CYCLIC, 0, 4))
        blk, _p, _t, _l = compiled_for(self.SWEEP, one_dim("block", 0, 4))
        assert price_phase(cyc, db, 4).total > price_phase(blk, db, 4).total


class TestExtendedAssistant:
    def test_pure_cyclic_never_chosen_for_sweeps(self):
        """Pure CYCLIC loses badly on Adi (every dependence hand-off and
        every stencil element crosses processors) — it must not appear in
        the extended optimum."""
        from repro.distribution import DistributionOptions
        from repro.programs import PROGRAMS
        from repro.tool import AssistantConfig, run_assistant

        result = run_assistant(
            PROGRAMS["adi"].source(n=64, maxiter=2),
            AssistantConfig(
                nprocs=4, distributions=DistributionOptions.extended()
            ),
        )
        for idx, pos in result.selection.selection.items():
            layout = result.layout_spaces.per_phase[idx][pos].layout
            for tdim in layout.distribution.distributed_dims():
                assert layout.distribution.dims[tdim].kind != "cyclic"

    def test_block_cyclic_ring_pipelines_sequential_sweeps(self):
        """The genuinely interesting extension result: BLOCK-CYCLIC turns
        Adi's *sequentialized* j sweeps into a ring software-pipeline,
        beating both the static block layouts and the remapped scheme —
        and the simulator confirms the estimator's prediction."""
        from repro.distribution import DistributionOptions
        from repro.programs import PROGRAMS
        from repro.tool import AssistantConfig, run_assistant
        from repro.tool.measurement import measure_layouts

        src = PROGRAMS["adi"].source(n=64, maxiter=2)
        proto = run_assistant(src, AssistantConfig(nprocs=4))
        ext = run_assistant(
            src,
            AssistantConfig(
                nprocs=4, distributions=DistributionOptions.extended()
            ),
        )
        assert ext.selection.objective < proto.selection.objective
        m_proto = measure_layouts(src, proto.selected_layouts, nprocs=4)
        m_ext = measure_layouts(src, ext.selected_layouts, nprocs=4)
        assert m_ext.makespan_us < m_proto.makespan_us
        # the winning layout is a static block-cyclic column scheme
        assert m_ext.remap_count == 0
        kinds = {
            ext.layout_spaces.per_phase[idx][pos]
            .layout.distribution.dims[tdim].kind
            for idx, pos in ext.selection.selection.items()
            for tdim in ext.layout_spaces.per_phase[idx][pos]
            .layout.distribution.distributed_dims()
        }
        assert "block_cyclic" in kinds
