"""Orientation selection tests."""

import pytest

from repro.alignment.lattice import Partitioning
from repro.alignment.orientation import (
    OrientationError,
    canonical_alignments,
    orient,
)
from repro.frontend import build_symbol_table, parse_source


@pytest.fixture(scope="module")
def symbols():
    src = (
        "program t\n"
        "      integer n\n      parameter (n = 8)\n"
        "      real a(n, n), b(n, n), big(n, n)\n"
        "      real v(n)\n"
        "      integer i, j\n"
        "      end\n"
    )
    return build_symbol_table(parse_source(src))


def parts(*blocks):
    return Partitioning.of([set(b) for b in blocks])


class TestOrient:
    def test_canonical_partitioning_gets_identity(self, symbols):
        p = parts(
            [("a", 0), ("b", 0)],
            [("a", 1), ("b", 1)],
        )
        result = orient(p, 2, symbols)
        assert result["a"].axis_map == (0, 1)
        assert result["b"].axis_map == (0, 1)

    def test_transposed_partitioning(self, symbols):
        p = parts(
            [("a", 0), ("b", 1)],
            [("a", 1), ("b", 0)],
        )
        result = orient(p, 2, symbols)
        # One of the two is transposed relative to the other.
        assert result["a"].axis_map != result["b"].axis_map
        assert set(result["a"].axis_map) == {0, 1}

    def test_votes_weighted_by_array_size(self, symbols):
        # 'big' dominates: its dims keep natural positions even if the
        # smaller array ends up transposed.
        p = parts(
            [("big", 0), ("v", 0)],
            [("big", 1)],
        )
        result = orient(p, 2, symbols)
        assert result["big"].axis_map == (0, 1)
        assert result["v"].axis_map == (0,)

    def test_one_dim_array_embedding(self, symbols):
        # v aligned with a's second dimension -> v maps to template dim 1.
        p = parts(
            [("a", 0)],
            [("a", 1), ("v", 0)],
        )
        result = orient(p, 2, symbols)
        assert result["v"].axis_map == (result["a"].axis_map[1],)

    def test_blocks_sharing_array_get_distinct_dims(self, symbols):
        p = parts([("a", 0)], [("a", 1)])
        result = orient(p, 2, symbols)
        assert len(set(result["a"].axis_map)) == 2

    def test_conflicting_partitioning_raises(self, symbols):
        p = parts([("a", 0), ("a", 1)])
        with pytest.raises(OrientationError):
            orient(p, 2, symbols)

    def test_more_blocks_than_dims_ok_without_sharing(self, symbols):
        # three singleton blocks of distinct arrays fit in 2 template dims
        p = parts([("a", 0)], [("b", 0)], [("v", 0)])
        result = orient(p, 2, symbols)
        assert set(result) == {"a", "b", "v"}


class TestCanonical:
    def test_canonical_alignments(self, symbols):
        result = canonical_alignments(["a", "v"], symbols)
        assert result["a"].axis_map == (0, 1)
        assert result["v"].axis_map == (0,)

    def test_ignores_scalars(self, symbols):
        result = canonical_alignments(["a", "i"], symbols)
        assert "i" not in result
