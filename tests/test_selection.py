"""Layout selection tests: DLG, 0-1 optimum vs brute force, baselines,
per-array transitions."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import IPSC860
from repro.selection import (
    array_transitions,
    best_static_selection,
    build_layout_graph,
    build_selection_model,
    dp_selection,
    greedy_selection,
    select_layouts,
    static_selections,
)
from repro.selection.layout_graph import DataLayoutGraph, LayoutEdge


def make_graph(node_costs, edges):
    """Construct a DataLayoutGraph with synthetic costs (phases and
    estimates are not needed by the selection algorithms)."""
    graph = DataLayoutGraph(
        phases=[],
        pcfg=None,
        estimates=None,
        node_costs=node_costs,
        edges=[
            LayoutEdge(src_phase=p, dst_phase=q, costs=costs)
            for (p, q), costs in edges.items()
        ],
        transitions={},
    )
    return graph


def brute_force(graph):
    phases = sorted(graph.node_costs)
    options = [range(len(graph.node_costs[p])) for p in phases]
    best = None
    for combo in itertools.product(*options):
        selection = dict(zip(phases, combo))
        cost = graph.evaluate(selection)
        if best is None or cost < best[1]:
            best = (selection, cost)
    return best


class TestSelectionILP:
    def test_prefers_cheap_nodes_without_edges(self):
        graph = make_graph({0: [10.0, 1.0], 1: [5.0, 50.0]}, {})
        result = select_layouts(graph)
        assert result.selection == {0: 1, 1: 0}
        assert result.objective == 6.0

    def test_remap_cost_forces_consistency(self):
        # locally best would be (1, 0) but the remap penalty dominates
        graph = make_graph(
            {0: [10.0, 8.0], 1: [10.0, 12.0]},
            {(0, 1): {(1, 0): 100.0, (0, 1): 100.0}},
        )
        result = select_layouts(graph)
        assert result.selection in ({0: 0, 1: 0}, {0: 1, 1: 1})

    def test_remapping_chosen_when_cheap(self):
        graph = make_graph(
            {0: [10.0, 1.0], 1: [1.0, 10.0]},
            {(0, 1): {(1, 0): 2.0, (0, 1): 2.0}},
        )
        result = select_layouts(graph)
        assert result.selection == {0: 1, 1: 0}
        assert result.objective == 4.0

    def test_allowed_restriction(self):
        graph = make_graph({0: [10.0, 1.0]}, {})
        result = select_layouts(graph, allowed={0: {0}})
        assert result.selection == {0: 0}

    def test_model_size_reporting(self):
        graph = make_graph(
            {0: [1.0, 2.0], 1: [3.0, 4.0]},
            {(0, 1): {(0, 1): 5.0}},
        )
        ilp = build_selection_model(graph)
        assert ilp.num_variables == 5  # 4 x vars + 1 y var
        assert ilp.num_constraints == 3  # 2 one-of + 1 linking

    @pytest.mark.parametrize("backend", ["scipy", "branch-bound"])
    def test_backends_agree(self, backend):
        graph = make_graph(
            {0: [3.0, 7.0], 1: [2.0, 1.0], 2: [5.0, 5.0]},
            {
                (0, 1): {(0, 1): 4.0, (1, 0): 4.0},
                (1, 2): {(0, 1): 2.0, (1, 0): 2.0},
                (2, 0): {(1, 0): 3.0},
            },
        )
        result = select_layouts(graph, backend=backend)
        _sel, expected = brute_force(graph)
        assert result.objective == pytest.approx(expected)


@st.composite
def random_graph(draw):
    n_phases = draw(st.integers(min_value=1, max_value=4))
    node_costs = {}
    for p in range(n_phases):
        k = draw(st.integers(min_value=1, max_value=3))
        node_costs[p] = [
            float(draw(st.integers(min_value=0, max_value=20)))
            for _ in range(k)
        ]
    edges = {}
    n_edges = draw(st.integers(min_value=0, max_value=4))
    for _ in range(n_edges):
        p = draw(st.integers(min_value=0, max_value=n_phases - 1))
        q = draw(st.integers(min_value=0, max_value=n_phases - 1))
        if p == q:
            continue
        costs = {}
        for i in range(len(node_costs[p])):
            for j in range(len(node_costs[q])):
                if draw(st.booleans()):
                    costs[(i, j)] = float(
                        draw(st.integers(min_value=1, max_value=15))
                    )
        if costs:
            edges.setdefault((p, q), {}).update(costs)
    return make_graph(node_costs, edges)


@settings(max_examples=60, deadline=None)
@given(graph=random_graph())
def test_ilp_matches_brute_force(graph):
    result = select_layouts(graph)
    _sel, expected = brute_force(graph)
    assert result.objective == pytest.approx(expected)


@settings(max_examples=40, deadline=None)
@given(graph=random_graph())
def test_baselines_never_beat_optimum(graph):
    optimum = select_layouts(graph).objective
    for selector in (greedy_selection, dp_selection):
        _sel, cost = selector(graph)
        assert cost >= optimum - 1e-9


class TestBaselines:
    def test_greedy_ignores_edges(self):
        graph = make_graph(
            {0: [10.0, 8.0], 1: [10.0, 12.0]},
            {(0, 1): {(1, 0): 100.0}},
        )
        sel, cost = greedy_selection(graph)
        assert sel == {0: 1, 1: 0}
        assert cost == 118.0  # honest evaluation includes the remap

    def test_dp_matches_ilp_on_generated_chains(self):
        # Differential satellite of the QA fuzzer: on straight-line
        # (chain-remap) graphs — edges only between consecutive phases —
        # the DP baseline is provably optimal, so it must equal the 0-1
        # ILP optimum on every generated instance.
        import random

        for seed in range(50):
            rng = random.Random(seed)
            n_phases = rng.randint(1, 5)
            node_costs = {
                p: [float(rng.randint(0, 20))
                    for _ in range(rng.randint(1, 3))]
                for p in range(n_phases)
            }
            edges = {}
            for p in range(n_phases - 1):
                if rng.random() < 0.3:
                    continue  # chains may skip an edge entirely
                costs = {
                    (i, j): float(rng.randint(1, 15))
                    for i in range(len(node_costs[p]))
                    for j in range(len(node_costs[p + 1]))
                    if i != j or rng.random() < 0.2
                }
                if costs:
                    edges[(p, p + 1)] = costs
            graph = make_graph(node_costs, edges)
            dp_sel, dp_cost = dp_selection(graph)
            ilp = select_layouts(graph)
            assert dp_cost == pytest.approx(ilp.objective), f"seed {seed}"
            # the DP certificate must itself evaluate to its claimed cost
            assert graph.evaluate(dp_sel) == pytest.approx(dp_cost)

    def test_dp_optimal_on_chains(self):
        graph = make_graph(
            {0: [5.0, 1.0], 1: [1.0, 5.0], 2: [5.0, 1.0]},
            {
                (0, 1): {(1, 0): 3.0, (0, 1): 3.0},
                (1, 2): {(0, 1): 3.0, (1, 0): 3.0},
            },
        )
        _dp_sel, dp_cost = dp_selection(graph)
        ilp_cost = select_layouts(graph).objective
        assert dp_cost == pytest.approx(ilp_cost)


class TestStaticBaselines:
    def test_static_selection_on_real_program(self, adi_assistant):
        graph = adi_assistant.graph
        results = static_selections(graph)
        assert len(results) == 2  # row and column schemes
        best_sel, best_cost = best_static_selection(graph)
        assert best_cost == results[0][2]
        # A static scheme pays no remapping edges.
        for edge in graph.edges:
            pair = (best_sel[edge.src_phase], best_sel[edge.dst_phase])
            assert edge.costs.get(pair, 0.0) == 0.0

    def test_optimum_not_worse_than_static(self, adi_assistant):
        _sel, static_cost = best_static_selection(adi_assistant.graph)
        assert adi_assistant.selection.objective <= static_cost + 1e-6


class TestArrayTransitions:
    def test_transitions_skip_non_referencing_phases(self, adi_assistant):
        pcfg = adi_assistant.pcfg
        # Array 'a' is used in phases 0, 2, 3 only (init + i-sweeps);
        # its transition from phase 3 must jump directly back to 2 (via
        # the loop) and to phase 0's successors, never stopping at 4..8.
        referencing = {"a": {0, 2, 3}}
        trans = array_transitions(pcfg, referencing)["a"]
        for src, dst, freq in trans:
            assert dst in {0, 2, 3}
        pairs = {(s, d) for s, d, _ in trans}
        assert (3, 2) in pairs  # around the time loop

    def test_transition_mass_bounded_by_phase_freq(self, adi_assistant):
        pcfg = adi_assistant.pcfg
        referencing = {"x": {p.index for p in
                             adi_assistant.partition.phases}}
        trans = array_transitions(pcfg, referencing)["x"]
        out_mass = {}
        for src, _dst, freq in trans:
            out_mass[src] = out_mass.get(src, 0.0) + freq
        for src, mass in out_mass.items():
            assert mass <= pcfg.phase_frequency(src) + 1e-6
