"""The telemetry plane: NDJSON event log (rotation, crash recovery,
corrupt-line tolerance), the sink registry, tail-based trace sampling,
detail-gated always-on tracing, trace-stamped log lines, and the
Prometheus exposition of the new window/telemetry families."""

from __future__ import annotations

import json
import logging
import os

import pytest

from repro.obs import tracing
from repro.obs.log import TraceContextFilter
from repro.obs.prometheus import parse_prometheus_text, render_prometheus
from repro.obs.telemetry import (
    CURRENT_SEGMENT,
    EVENT_SCHEMA,
    EventLog,
    EventValidationError,
    emit,
    install_sink,
    make_event,
    read_event_log,
    remove_sink,
    validate_event,
    validate_event_log,
)
from repro.service.metrics import DEFAULT_BUCKETS, Metrics
from repro.service.telemetry import ServiceTelemetry, TailSampler


class TestEventSchema:
    def test_make_event_is_valid(self):
        event = make_event("service.request", {"op": "analyze"}, seq=1)
        validate_event(event)
        assert event["schema"] == EVENT_SCHEMA
        assert event["type"] == "service.request"
        assert "trace_id" not in event  # no trace active

    def test_make_event_stamps_active_trace(self):
        tracer = tracing.Tracer(name="t")
        with tracing.activate(tracer):
            with tracing.span("work"):
                event = make_event("x", seq=1)
        assert event["trace_id"] == tracer.trace_id
        assert event["span_id"]
        validate_event(event)

    @pytest.mark.parametrize("mutation", [
        {"schema": "nope"},
        {"type": ""},
        {"type": 7},
        {"seq": -1},
        {"seq": True},
        {"ts_us": "yesterday"},
        {"attrs": "not-a-dict"},
        {"trace_id": ""},
    ])
    def test_validate_rejects(self, mutation):
        event = make_event("ok", seq=1)
        event.update(mutation)
        with pytest.raises(EventValidationError):
            validate_event(event)

    def test_validate_rejects_unserializable_attrs(self):
        event = make_event("ok", seq=1)
        event["attrs"] = {"bad": object()}
        with pytest.raises(EventValidationError):
            validate_event(event)


class TestEventLog:
    def test_memory_only_tail(self):
        log = EventLog()  # no root: pure in-memory ring
        for i in range(5):
            log.record("tick", {"i": i})
        tail = log.tail()
        assert [e["attrs"]["i"] for e in tail] == list(range(5))
        assert [e["seq"] for e in tail] == [1, 2, 3, 4, 5]
        assert log.describe()["dir"] is None

    def test_tail_limit_and_type_filter(self):
        log = EventLog()
        for i in range(4):
            log.record("a", {"i": i})
            log.record("b", {"i": i})
        assert len(log.tail(limit=3)) == 3
        only_b = log.tail(type="b")
        assert {e["type"] for e in only_b} == {"b"}
        assert len(only_b) == 4

    def test_persists_ndjson(self, tmp_path):
        with EventLog(tmp_path, fsync=False) as log:
            log.record("one", {"k": 1})
            log.record("two", {"k": 2})
        lines = (tmp_path / CURRENT_SEGMENT).read_text().splitlines()
        assert len(lines) == 2
        events = [json.loads(line) for line in lines]
        for event in events:
            validate_event(event)
        assert [e["type"] for e in events] == ["one", "two"]

    def test_rotation_keeps_every_event_in_order(self, tmp_path):
        with EventLog(tmp_path, max_bytes=1024, max_files=100,
                      fsync=False) as log:
            for i in range(100):
                log.record("tick", {"i": i, "pad": "x" * 40})
            assert log.rotations_total > 0
        events, bad = read_event_log(tmp_path)
        assert bad == 0
        assert [e["seq"] for e in events] == list(range(1, 101))
        segments = [n for n in os.listdir(tmp_path)
                    if n.startswith("events-")]
        assert len(segments) == log.rotations_total

    def test_rotation_prunes_old_segments(self, tmp_path):
        with EventLog(tmp_path, max_bytes=1024, max_files=2,
                      fsync=False) as log:
            for i in range(200):
                log.record("tick", {"i": i, "pad": "x" * 40})
        segments = sorted(n for n in os.listdir(tmp_path)
                          if n.startswith("events-"))
        assert len(segments) == 2
        # the survivors are the newest segments, and the live tail
        # continues past them
        events, _ = read_event_log(tmp_path)
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 200

    def test_reopen_continues_sequence(self, tmp_path):
        with EventLog(tmp_path, fsync=False) as log:
            for i in range(3):
                log.record("tick", {"i": i})
        with EventLog(tmp_path, fsync=False) as log:
            assert log.bad_lines_total == 0
            event = log.record("tick", {"i": 3})
        assert event["seq"] == 4
        events, bad = read_event_log(tmp_path)
        assert bad == 0
        assert [e["seq"] for e in events] == [1, 2, 3, 4]

    def test_torn_tail_is_counted_never_raised(self, tmp_path):
        with EventLog(tmp_path, fsync=False) as log:
            log.record("tick", {"i": 0})
            log.record("tick", {"i": 1})
        # simulate a crash mid-write: a torn, unparseable final line
        with open(tmp_path / CURRENT_SEGMENT, "a") as handle:
            handle.write('{"schema": "repro.obs/eve')
        events, bad = read_event_log(tmp_path)
        assert bad == 1
        assert [e["seq"] for e in events] == [1, 2]
        # recovery resumes the sequence and keeps counting bad lines
        with EventLog(tmp_path, fsync=False) as log:
            assert log.bad_lines_total == 1
            assert log.record("tick", {"i": 2})["seq"] == 3

    def test_schema_invalid_line_is_skipped(self, tmp_path):
        with EventLog(tmp_path, fsync=False) as log:
            log.record("tick")
        with open(tmp_path / CURRENT_SEGMENT, "a") as handle:
            handle.write('{"schema": "wrong/schema", "seq": 2}\n')
            handle.write("\n")  # blank lines are not bad lines
        events, bad = read_event_log(tmp_path)
        assert bad == 1
        assert len(events) == 1

    def test_validate_event_log_summary(self, tmp_path):
        with EventLog(tmp_path, fsync=False) as log:
            log.record("a")
            log.record("a")
            log.record("b")
        summary = validate_event_log(tmp_path)
        assert summary == {
            "events_total": 3,
            "bad_lines_total": 0,
            "types": {"a": 2, "b": 1},
        }

    def test_single_file_read(self, tmp_path):
        with EventLog(tmp_path, fsync=False) as log:
            log.record("a")
        events, bad = read_event_log(tmp_path / CURRENT_SEGMENT)
        assert bad == 0 and len(events) == 1

    def test_rejects_tiny_max_bytes(self):
        with pytest.raises(ValueError):
            EventLog(max_bytes=10)


class TestSinkRegistry:
    def test_emit_reaches_installed_sink_only_while_installed(self):
        seen = []
        sink = lambda type_, attrs: seen.append((type_, attrs))
        emit("before.install", x=1)
        install_sink(sink)
        try:
            emit("during", x=2)
        finally:
            remove_sink(sink)
        emit("after.remove", x=3)
        assert seen == [("during", {"x": 2})]

    def test_sink_exceptions_never_escape(self):
        def broken(type_, attrs):
            raise RuntimeError("sink died")

        install_sink(broken)
        try:
            emit("anything")  # must not raise
        finally:
            remove_sink(broken)

    def test_double_install_is_idempotent(self):
        seen = []
        sink = lambda type_, attrs: seen.append(type_)
        install_sink(sink)
        install_sink(sink)
        try:
            emit("once")
        finally:
            remove_sink(sink)
        assert seen == ["once"]


class TestTailSampler:
    def test_error_degraded_slow_always_kept(self):
        sampler = TailSampler(slow_s=0.25, sample_every=1000)
        assert sampler.decide("1", 0.01, ok=False) == "error"
        assert sampler.decide("1", 0.01, degraded=True) == "degraded"
        assert sampler.decide("1", 0.30) == "slow"

    def test_healthy_sampling_is_deterministic_on_trace_id(self):
        sampler = TailSampler(sample_every=20)
        kept = {f"{i:x}" for i in range(200)
                if sampler.decide(f"{i:x}", 0.01) == "sampled"}
        assert kept == {f"{i:x}" for i in range(0, 200, 20)}
        # same ids, same verdicts — no RNG state involved
        again = {f"{i:x}" for i in range(200)
                 if sampler.decide(f"{i:x}", 0.01) == "sampled"}
        assert again == kept

    def test_decide_is_pure(self):
        sampler = TailSampler()
        sampler.decide("0", 9.9)
        assert sampler.describe()["kept_total"] == 0

    def test_offer_serializes_only_kept_traces(self):
        sampler = TailSampler(sample_every=2)

        class ExplodingTracer(tracing.Tracer):
            def to_dict(self):
                raise AssertionError("dropped trace was serialized")

        dropped = ExplodingTracer()
        # force a non-sampled id (odd hex) so the drop path runs
        dropped.trace_id = "1"
        reason, trace = sampler.offer(dropped, 0.01)
        assert reason is None and trace is None

        kept = tracing.Tracer()
        kept.trace_id = "2"
        reason, trace = sampler.offer(kept, 0.01)
        assert reason == "sampled"
        assert trace["trace_id"] == "2"
        stats = sampler.describe()
        assert stats["kept_total"] == 1
        assert stats["dropped_total"] == 1
        assert stats["kept_by_reason"] == {"sampled": 1}

    def test_kept_ring_is_bounded(self):
        sampler = TailSampler(kept_traces=2)
        for i in range(5):
            tracer = tracing.Tracer()
            sampler.offer(tracer, 0.01, ok=False)
        assert len(sampler.kept()) == 2
        assert sampler.describe()["kept_total"] == 5

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TailSampler(slow_s=0.0)
        with pytest.raises(ValueError):
            TailSampler(sample_every=0)


class TestServiceTelemetry:
    def test_record_request_writes_event_and_keeps_error_trace(self):
        with ServiceTelemetry() as telemetry:
            tracer = tracing.Tracer()
            with tracing.activate(tracer):
                with tracing.span("request"):
                    pass
            telemetry.record_request(
                "analyze", 0.05, ok=False, error_kind="timeout",
                request_id="r-1", tracer=tracer,
            )
        types = [e["type"] for e in telemetry.events.tail()]
        assert types == ["service.request", "trace.kept"]
        request = telemetry.events.tail(type="service.request")[0]
        assert request["attrs"]["op"] == "analyze"
        assert request["attrs"]["error_kind"] == "timeout"
        assert request["attrs"]["trace_id"] == tracer.trace_id
        kept = telemetry.events.tail(type="trace.kept")[0]
        assert kept["attrs"]["reason"] == "error"
        assert kept["attrs"]["trace"]["trace_id"] == tracer.trace_id

    def test_untraced_request_records_no_trace(self):
        with ServiceTelemetry() as telemetry:
            telemetry.record_request("stats", 0.001)
        assert [e["type"] for e in telemetry.events.tail()] == \
            ["service.request"]

    def test_installed_sink_receives_resilience_emissions(self):
        with ServiceTelemetry() as telemetry:
            emit("breaker.transition", name="disk", to="open")
        event = telemetry.events.tail(type="breaker.transition")[0]
        assert event["attrs"] == {"name": "disk", "to": "open"}

    def test_close_uninstalls_sink(self):
        telemetry = ServiceTelemetry().install()
        telemetry.close()
        emit("after.close", x=1)
        assert telemetry.events.tail(type="after.close") == []


class TestDetailGating:
    """Always-on production tracers (detail=False) keep span structure
    but skip the per-item detail events whose payloads are the
    expensive part of tracing; explicit --trace keeps everything."""

    def _pipeline_trace(self, detail):
        from repro.programs.registry import PROGRAMS
        from repro.tool.assistant import AssistantConfig, run_assistant

        source = PROGRAMS["adi"].source_fn(
            n=32, dtype="real", maxiter=2
        )
        tracer = tracing.Tracer(detail=detail)
        with tracing.activate(tracer):
            run_assistant(source, AssistantConfig(nprocs=4))
        return tracer.to_dict()

    def test_detail_false_skips_detail_events_keeps_spans(self):
        trace = self._pipeline_trace(detail=False)
        span_names = {s["name"] for s in trace["spans"]}
        assert "estimate" in " ".join(span_names) or len(span_names) > 3
        event_names = {
            e["name"] for s in trace["spans"] for e in s.get("events", [])
        }
        assert "estimate.candidate" not in event_names
        assert "selection.choice" not in event_names
        assert "cag.edge" not in event_names

    def test_detail_true_keeps_detail_events(self):
        trace = self._pipeline_trace(detail=True)
        event_names = {
            e["name"] for s in trace["spans"] for e in s.get("events", [])
        }
        assert "estimate.candidate" in event_names
        assert "selection.choice" in event_names

    def test_detail_active_reflects_tracer_flag(self):
        assert not tracing.detail_active()
        with tracing.activate(tracing.Tracer(detail=False)):
            assert tracing.active()
            assert not tracing.detail_active()
        with tracing.activate(tracing.Tracer(detail=True)):
            assert tracing.detail_active()

    def test_span_without_tracer_is_null(self):
        with tracing.span("nothing", k=1) as sp:
            sp.set_attr("ignored", True)  # must be a silent no-op
        assert not tracing.active()


class TestTraceContextFilter:
    def _record(self):
        return logging.LogRecord(
            "repro.service", logging.INFO, __file__, 1, "hello", (), None
        )

    def test_no_trace_renders_dash(self):
        record = self._record()
        assert TraceContextFilter().filter(record)
        assert record.trace == "-"
        assert record.trace_id == ""

    def test_active_trace_stamps_ids(self):
        tracer = tracing.Tracer()
        with tracing.activate(tracer):
            with tracing.span("work"):
                record = self._record()
                TraceContextFilter().filter(record)
        assert record.trace_id == tracer.trace_id
        assert record.trace == f"{tracer.trace_id}/{record.span_id}"

    def test_trace_outside_span_renders_bare_id(self):
        tracer = tracing.Tracer()
        with tracing.activate(tracer):
            record = self._record()
            TraceContextFilter().filter(record)
        assert record.trace == tracer.trace_id


class TestSubMillisecondHistograms:
    def test_sub_ms_bounds_present_and_sorted(self):
        assert DEFAULT_BUCKETS[0] < 1e-3
        assert sum(1 for b in DEFAULT_BUCKETS if b < 1e-3) >= 5
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_fast_stages_land_in_distinct_buckets(self):
        from repro.service.metrics import Histogram

        hist = Histogram()
        for value in (2e-5, 8e-5, 4e-4, 8e-4):
            hist.observe(value)
        buckets = hist.snapshot()["buckets"]
        # cumulative counts must differ across the sub-ms bounds —
        # without the sub-ms buckets all four fell into one
        sub_ms = [count for bound, count in buckets.items()
                  if bound != "+Inf" and float(bound) <= 1e-3]
        assert len(set(sub_ms)) > 2

    def test_prometheus_round_trip_with_telemetry_families(self):
        metrics = Metrics()
        metrics.inc("requests_total")
        metrics.observe_stage("parse", 4e-4)
        metrics.observe_op("analyze", 0.012)
        stats = metrics.snapshot()
        stats["telemetry"] = {
            "events": {"events_total": 7, "rotations_total": 1,
                       "bad_lines_total": 0},
            "sampler": {"kept_total": 2, "dropped_total": 9,
                        "kept_by_reason": {"slow": 1, "sampled": 1}},
        }
        text = render_prometheus(stats)
        samples = parse_prometheus_text(text)
        assert samples[("repro_eventlog_events_total", ())] == 7.0
        assert samples[("repro_trace_kept_total", ())] == 2.0
        assert samples[
            ("repro_trace_kept_by_reason_total", (("reason", "slow"),))
        ] == 1.0
        assert any(name == "repro_window_qps"
                   for name, _ in samples)
        assert any(name == "repro_window_seconds_quantile"
                   for name, _ in samples)
        # a sub-ms stage histogram bound survives the round trip
        sub_ms_bounds = {
            dict(labels).get("le")
            for name, labels in samples
            if name == "repro_stage_seconds_bucket"
        } - {None, "+Inf"}
        assert any(float(b) < 1e-3 for b in sub_ms_bounds)
