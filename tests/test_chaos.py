"""Chaos campaigns: plan generation, the invariant classifier, a small
seeded campaign over a paper program, and the ``repro chaos`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.resilience import FaultPlan
from repro.resilience.chaos import (
    DEFAULT_PROGRAMS,
    PLAN_SITES,
    TYPED_ERROR_KINDS,
    ChaosReport,
    CaseResult,
    _classify,
    build_plan,
    run_chaos,
)
from repro.tool.cli import main


class TestPlanGeneration:
    def test_same_seed_same_plan(self):
        assert build_plan(42) == build_plan(42)

    def test_different_seeds_diverge_somewhere(self):
        plans = [build_plan(s).to_dict() for s in range(20)]
        assert len({json.dumps(p, sort_keys=True) for p in plans}) > 1

    def test_plans_only_target_known_in_process_sites(self):
        for seed in range(50):
            for spec in build_plan(seed).specs:
                assert spec.site in PLAN_SITES
                if spec.mode == "corrupt":
                    assert spec.site in ("cache.load", "cache.store")

    def test_plans_replay_through_json(self):
        plan = build_plan(7)
        assert FaultPlan.from_json(plan.to_json()) == plan


REFERENCE = {
    "ok": True,
    "predicted_total_us": 1000.0,
    "layouts": {"0": "(block, *)"},
}


class TestClassifier:
    def test_matching_result_is_ok(self):
        response = dict(REFERENCE, degraded=False)
        assert _classify(response, REFERENCE) == ("ok", "")

    def test_labeled_degraded_with_layouts_is_degraded(self):
        response = dict(REFERENCE, degraded=True,
                        predicted_total_us=2000.0)
        outcome, _ = _classify(response, REFERENCE)
        assert outcome == "degraded"

    def test_degraded_without_layouts_is_violation(self):
        response = {"ok": True, "degraded": True, "layouts": {}}
        outcome, detail = _classify(response, REFERENCE)
        assert outcome == "violation"
        assert "layouts" in detail

    def test_unlabeled_wrong_cost_is_violation(self):
        response = dict(REFERENCE, degraded=False,
                        predicted_total_us=999.0)
        outcome, detail = _classify(response, REFERENCE)
        assert outcome == "violation"
        assert "wrong answer" in detail

    def test_unlabeled_wrong_layouts_is_violation(self):
        response = dict(REFERENCE, degraded=False,
                        layouts={"0": "(*, block)"})
        outcome, _ = _classify(response, REFERENCE)
        assert outcome == "violation"

    def test_every_typed_error_kind_is_clean(self):
        for kind in TYPED_ERROR_KINDS:
            response = {"ok": False, "error": "x", "error_kind": kind}
            assert _classify(response, REFERENCE) == ("typed-error", kind)

    def test_untyped_error_is_violation(self):
        response = {"ok": False, "error": "boom", "error_kind": "internal"}
        outcome, detail = _classify(response, REFERENCE)
        assert outcome == "violation"
        assert "untyped" in detail

    def test_missing_response_is_violation(self):
        outcome, _ = _classify(None, REFERENCE)
        assert outcome == "violation"


class TestCampaign:
    def test_small_seeded_campaign_holds_the_invariant(self, tmp_path):
        report = run_chaos(
            cases=8, seed=123, programs=("erlebacher",),
            case_timeout_s=120.0, procs=4,
            artifact_dir=str(tmp_path / "artifacts"),
        )
        assert len(report.cases) == 8
        assert report.ok, report.summary()
        # the classifier saw every case land in an allowed bucket
        assert (report.count("ok") + report.count("degraded")
                + report.count("typed-error")
                + report.count("overload-shed")) == 8
        # no violations => no artifacts written
        assert not (tmp_path / "artifacts").exists()
        summary = report.summary()
        assert "invariant held" in summary
        assert report.to_dict()["total"] == 8

    def test_campaign_respects_wall_clock_budget(self):
        report = run_chaos(
            cases=1000, seed=5, programs=("erlebacher",), budget_s=0.0,
        )
        assert report.cases == []

    def test_violating_case_writes_replayable_artifact(self, tmp_path):
        artifact_dir = tmp_path / "artifacts"
        report = ChaosReport(seed=1)
        # exercise the artifact path without needing a real violation
        case = CaseResult(
            index=3, seed=4, program="adi", plan=build_plan(4),
            outcome="violation", detail="synthetic",
        )
        assert case.violated
        report.cases.append(case)
        assert not report.ok
        assert "synthetic" in report.summary()
        payload = case.to_dict()
        assert FaultPlan.from_dict(payload["plan"]) == build_plan(4)

    def test_default_programs_are_the_papers_four(self):
        assert DEFAULT_PROGRAMS == ("adi", "erlebacher", "shallow",
                                    "tomcatv")


class TestChaosCli:
    def test_cli_runs_a_tiny_campaign(self, capsys):
        rc = main(["chaos", "--cases", "3", "--seed", "77",
                   "--programs", "erlebacher", "--case-timeout", "120"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "chaos campaign: 3 cases" in out
        assert "invariant held" in out

    def test_cli_json_output(self, capsys):
        rc = main(["chaos", "--cases", "2", "--seed", "78",
                   "--programs", "erlebacher", "--case-timeout", "120",
                   "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 2
        assert payload["violations"] == []

    def test_cli_rejects_unknown_program(self, capsys):
        rc = main(["chaos", "--cases", "1", "--programs", "nosuch"])
        assert rc == 2
