program fuzz26
      implicit none
      integer n
      parameter (n = 8)
      integer i, j, k, t, t2, t3
      real a(n), b(n, n, n), c(n)
      real s
      do k = 1, n
        a(k + 1) = a(k + 1) + c(k - 1) * 1.0
      enddo
      do i = 1, n
        a(n - i + 1) = b(5, i + 2, n - i + 1) + 8.0
      enddo
      do i = 1, n
        b(i + 2, i - 2, i) = a(i + 1) + 2.0
      enddo
      do j = 1, n
        c(j - 2) = c(n - j + 1) * (b(i + 1, j - 2, j - 1) + 3.0)
      enddo
      end
