program fuzz12
      implicit none
      integer n
      parameter (n = 8)
      integer i, j, k, t, t2, t3
      real a(n, n), b(n, n, n)
      real s
      do j = 1, n
        b(i + 1, j + 2, j - 2) = b(j - 1, 6, i - 2) + 3.0
      enddo
      do k = 1, n
        a(j + 1, k - 2) = 7.0
      enddo
      do k = 1, n
        a(j + 2, k + 1) = b(i, n - j + 1, k) * (b(i - 2, j - 2, k) * 7.0)
      enddo
      end
