program fuzz17
      implicit none
      integer n
      parameter (n = 8)
      integer i, j, k, t, t2, t3
      real a(n, n), b(n, n), c(n, n)
      real s
      do k = 1, n
        b(j - 2, k - 2) = c(n - j + 1, k + 2) * 9.0
      enddo
      do j = 1, n
        b(i, j) = b(i - 2, j) * (c(i - 2, j) + 2.0)
      enddo
      do k = 1, n
        a(j + 2, k + 1) = a(j, k - 2) + (c(n - j + 1, k - 1) + 8.0)
      enddo
      end
