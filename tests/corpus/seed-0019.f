program fuzz19
      implicit none
      integer n
      parameter (n = 8)
      integer i, j, k, t, t2, t3
      real b(n, n, n), c(n)
      real s
      do k = 1, n
        b(i, j, k - 2) = 4.0
      enddo
      do i = 1, n
        c(i - 1) = b(n - i + 1, i - 2, i + 1) + (c(n - i + 1) + 9.0)
      enddo
      end
