program fuzz5
      implicit none
      integer n
      parameter (n = 8)
      integer i, j, k, t, t2, t3
      real a(n, n)
      real s
      do k = 1, n
        a(n - j + 1, k - 1) = a(8, n - k + 1) + a(4, k - 1) * 7.0
      enddo
      end
