program fuzz16
      implicit none
      integer n
      parameter (n = 8)
      integer i, j, k, t, t2, t3
      real a(n, n), b(n, n)
      real s
      do j = 1, n
        a(i + 2, j - 2) = b(i, j - 2) * 8.0
      enddo
      do j = 1, n
        b(i, j - 2) = a(i, j - 2) + 9.0
      enddo
      do k = 1, n
        b(j + 1, 8) = a(3, k + 1) * 2.0
      enddo
      end
