program fuzz9
      implicit none
      integer n
      parameter (n = 8)
      integer i, j, k, t, t2, t3
      real a(n, n, n), b(n, n)
      real s
      do j = 1, n
        b(j + 2, 1) = 7.0
      enddo
      do k = 1, n
        b(7, k - 1) = 1.0
      enddo
      do k = 1, n
        a(n - i + 1, j - 1, k - 2) = a(3, i + 2, k - 2) * (a(i + 2, j + 1, 4) + 3.0)
      enddo
      end
