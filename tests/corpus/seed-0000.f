program fuzz0
      implicit none
      integer n
      parameter (n = 8)
      integer i, j, k, t, t2, t3
      real a(n, n), b(n)
      real s
      do j = 1, n
        b(n - j + 1) = b(2) * (b(j + 2) + 2.0)
      enddo
      do k = 1, n
        b(k + 2) = a(j - 2, 7) + b(k + 2) * 4.0
      enddo
      do j = 1, n
        b(j - 2) = a(i + 2, j + 2) + a(j + 1, 6) * 4.0
      enddo
      end
