program fuzz11
      implicit none
      integer n
      parameter (n = 8)
      integer i, j, k, t, t2, t3
      real a(n, n, n), b(n, n)
      real s
      do k = 1, n
        b(j + 2, k + 2) = b(k - 2, 2) * (b(j + 1, k + 1) + 4.0)
      enddo
      do k = 1, n
        a(i, j, k + 1) = 2.0
      enddo
      do k = 1, n
        a(8, n - j + 1, k + 1) = 9.0
      enddo
      do i = 1, n
        do j = 1, n
          do k = 1, n
            b(j + 2, k - 2) = 1.0
          enddo
        enddo
      enddo
      end
