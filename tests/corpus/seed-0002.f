program fuzz2
      implicit none
      integer n
      parameter (n = 8)
      integer i, j, k, t, t2, t3
      real a(n)
      real s
      do i = 1, n
        a(i) = a(i - 1) + 7.0
      enddo
      end
