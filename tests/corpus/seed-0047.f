program fuzz47
      implicit none
      integer n
      parameter (n = 8)
      integer i, j, k, t, t2, t3
      real a(n), b(n, n)
      real s
      do j = 1, n
        b(i - 1, 6) = b(i, 4) * (b(i - 1, j - 2) + 6.0)
      enddo
      do j = 1, n
        b(i, j - 1) = b(5, j + 1) * 9.0
      enddo
      do k = 1, n
        a(k) = 9.0
      enddo
      do j = 1, n
        a(8) = a(j + 2) * 7.0
      enddo
      end
