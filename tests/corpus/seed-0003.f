program fuzz3
      implicit none
      integer n
      parameter (n = 8)
      integer i, j, k, t, t2, t3
      real a(n, n, n)
      real s
      do k = 1, n
        a(i + 2, j - 1, k - 2) = 1.0
      enddo
      do k = 1, n
        a(i + 1, j - 2, k + 1) = 2.0
      enddo
      end
