"""Benchmark harness tests: timer protocol, baseline store schema,
regression detector, ``repro bench`` CLI gate exits, metrics export.

The detector tests run on synthetic timing series (no real timing in the
assertions), so they are deterministic; the CLI tests run a real but
tiny suite (one program, two cheap stages) against a temp directory.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.prometheus import parse_prometheus_text
from repro.perf.bench import (
    BENCH_SCHEMA,
    BENCH_SIZES,
    BenchInputError,
    BenchValidationError,
    Measurement,
    RegressionReport,
    Thresholds,
    append_run,
    bench_path,
    build_suite,
    compare_results,
    discover,
    latest_results,
    load_bench_file,
    load_latest_results,
    mad,
    measure,
    median,
    new_run,
    parse_threshold_overrides,
    profile_call,
    render_bench_prometheus,
    results_to_metrics,
    run_suite,
    validate_bench_file,
)
from repro.perf.bench.suite import STAGE_NAMES
from repro.service.metrics import Metrics
from repro.tool.cli import main as cli_main

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")


def _measurement(name, times, peak=1024, warmup=1):
    return Measurement(name=name, times_s=list(times), warmup=warmup,
                       peak_bytes=peak)


# ---------------------------------------------------------------------------
# Timer protocol


class TestTimer:
    def test_median_and_mad(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5
        assert mad([1.0, 1.0, 1.0]) == 0.0
        assert mad([1.0, 2.0, 9.0]) == 1.0

    def test_measure_counts_warmup_and_reps(self):
        calls = []
        result = measure("t", lambda: calls.append(1), repeats=3,
                         warmup=2, memory=False)
        # 2 warmup + 3 timed, no memory repetition
        assert len(calls) == 5
        assert result.reps == 3
        assert result.warmup == 2
        assert result.peak_bytes == 0

    def test_measure_memory_repetition(self):
        sink = []
        result = measure("t", lambda: sink.append(bytearray(256 * 1024)),
                         repeats=1, warmup=0, memory=True)
        assert result.peak_bytes >= 256 * 1024

    def test_measure_with_fake_timer_is_exact(self):
        ticks = iter([0.0, 1.0, 10.0, 12.0, 20.0, 23.0])
        result = measure("t", lambda: None, repeats=3, warmup=0,
                         memory=False, timer=lambda: next(ticks))
        assert result.times_s == [1.0, 2.0, 3.0]
        assert result.min_s == 1.0
        assert result.median_s == 2.0
        assert result.mad_s == 1.0

    def test_measurement_round_trip(self):
        m = _measurement("x", [0.5, 0.25, 0.75], peak=4096, warmup=2)
        data = m.to_dict()
        back = Measurement.from_dict("x", data)
        assert back.to_dict() == data
        assert back.min_s == 0.25

    def test_measure_rejects_bad_args(self):
        with pytest.raises(ValueError):
            measure("t", lambda: None, repeats=0)
        with pytest.raises(ValueError):
            measure("t", lambda: None, warmup=-1)


# ---------------------------------------------------------------------------
# Baseline store


class TestBaselineStore:
    def test_append_creates_and_extends_trajectory(self, tmp_path):
        results = {"stage:parse/adi": _measurement("stage:parse/adi",
                                                   [0.01, 0.02])}
        path = append_run(results, "test", root=str(tmp_path))
        assert path == bench_path("test", str(tmp_path))
        path2 = append_run(results, "test", root=str(tmp_path))
        assert path2 == path
        data = load_bench_file(path)
        assert data["schema"] == BENCH_SCHEMA
        assert [run["run_id"] for run in data["runs"]] == [1, 2]
        assert latest_results(data)["stage:parse/adi"]["min_s"] == 0.01

    def test_trajectory_cap_drops_oldest(self, tmp_path):
        results = {"b": _measurement("b", [0.01])}
        for _ in range(5):
            append_run(results, "cap", root=str(tmp_path), max_runs=3)
        data = load_bench_file(bench_path("cap", str(tmp_path)))
        assert [run["run_id"] for run in data["runs"]] == [3, 4, 5]

    def test_append_creates_missing_root_directory(self, tmp_path):
        root = tmp_path / "nested" / "bench"
        results = {"stage:parse/adi": _measurement("stage:parse/adi",
                                                   [0.01, 0.02])}
        path = append_run(results, "fresh", root=str(root))
        assert load_bench_file(path)["runs"][0]["run_id"] == 1

    def test_discover_finds_labels(self, tmp_path):
        append_run({"b": _measurement("b", [0.01])}, "one",
                   root=str(tmp_path))
        append_run({"b": _measurement("b", [0.01])}, "two",
                   root=str(tmp_path))
        (tmp_path / "not_a_bench.json").write_text("{}")
        assert sorted(discover(str(tmp_path))) == ["one", "two"]

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError):
            bench_path("../evil")

    @pytest.mark.parametrize("mutate, message", [
        (lambda d: d.update(schema="nope"), "schema"),
        (lambda d: d.update(runs=[]), "non-empty"),
        (lambda d: d["runs"][0].update(run_id="1"), "run_id"),
        (lambda d: d["runs"][0]["results"].clear(), "results"),
        (lambda d: d["runs"][0]["results"]["b"].pop("min_s"), "min_s"),
        (lambda d: d["runs"][0]["results"]["b"].update(times_s=[1.0]),
         "times_s"),
        (lambda d: d["runs"][0]["results"]["b"].update(peak_bytes=-1),
         "peak_bytes"),
    ])
    def test_validation_rejects_malformed(self, mutate, message):
        data = {
            "schema": BENCH_SCHEMA,
            "label": "ok",
            "runs": [new_run({"b": _measurement("b", [0.01, 0.02])})],
        }
        validate_bench_file(data)  # sane before mutation
        mutate(data)
        with pytest.raises(BenchValidationError, match=message):
            validate_bench_file(data)

    def test_committed_bench_files_validate(self):
        """Schema/round-trip check on every BENCH_*.json at the repo
        root (there is at least the committed baseline)."""
        found = discover(REPO_ROOT)
        assert "baseline" in found, "no committed BENCH_baseline.json"
        for label, path in found.items():
            data = load_bench_file(path)  # validates
            rerendered = json.loads(json.dumps(data))
            validate_bench_file(rerendered)

    def test_committed_baseline_covers_stages_and_programs(self):
        data = load_bench_file(bench_path("baseline", REPO_ROOT))
        results = latest_results(data)
        for program in sorted(BENCH_SIZES):
            for stage in STAGE_NAMES:
                bench_id = f"stage:{stage}/{program}"
                assert bench_id in results, f"missing {bench_id}"
                record = results[bench_id]
                assert record["reps"] >= 3
                assert record["min_s"] > 0
                assert record["mad_s"] >= 0
                assert record["peak_bytes"] > 0
            assert f"e2e/{program}" in results
        assert "e2e/qa-corpus" in results


# ---------------------------------------------------------------------------
# Regression detector (synthetic series)


class TestRegressionDetector:
    BASE = {"b": _measurement("b", [0.100, 0.101, 0.102])}

    def test_injected_2x_slowdown_flagged(self):
        current = {"b": _measurement("b", [0.200, 0.202, 0.201])}
        report = compare_results(self.BASE, current)
        assert not report.ok
        [verdict] = report.regressions
        assert verdict.bench_id == "b"
        assert verdict.ratio == pytest.approx(2.0, rel=0.05)

    def test_noop_rerun_passes(self):
        current = {"b": _measurement("b", [0.101, 0.100, 0.103])}
        report = compare_results(self.BASE, current)
        assert report.ok
        assert report.verdicts[0].status == "ok"

    def test_noisy_series_not_flagged(self):
        # 2x on the min, but the repetitions scatter so widely that the
        # slowdown sits inside the noise band.
        base = {"b": _measurement("b", [0.100, 0.400, 0.900])}
        current = {"b": _measurement("b", [0.200, 0.600, 1.100])}
        report = compare_results(base, current)
        assert report.ok

    def test_sub_jitter_slowdown_ignored(self):
        # 3x ratio but a 20µs absolute delta: below the jitter floor.
        base = {"b": _measurement("b", [0.00001, 0.00001])}
        current = {"b": _measurement("b", [0.00003, 0.00003])}
        report = compare_results(base, current)
        assert report.ok

    def test_improvement_reported_not_failed(self):
        current = {"b": _measurement("b", [0.040, 0.041, 0.040])}
        report = compare_results(self.BASE, current)
        assert report.ok
        assert report.verdicts[0].status == "improved"

    def test_new_and_missing_do_not_fail(self):
        base = {"gone": _measurement("gone", [0.1])}
        current = {"fresh": _measurement("fresh", [0.1])}
        report = compare_results(base, current)
        assert report.ok
        assert {v.status for v in report.verdicts} == {"new", "missing"}

    def test_per_bench_override_loosens_one_threshold(self):
        current = {"b": _measurement("b", [0.200, 0.201, 0.202])}
        thresholds = Thresholds(per_bench={"b": 3.0})
        report = compare_results(self.BASE, current, thresholds)
        assert report.ok
        strict = compare_results(self.BASE, current, Thresholds())
        assert not strict.ok

    def test_report_round_trips_to_dict(self):
        current = {"b": _measurement("b", [0.200, 0.202, 0.201])}
        report = compare_results(self.BASE, current)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["ok"] is False
        assert data["regressions"] == 1
        assert data["verdicts"][0]["status"] == "regression"

    def test_threshold_override_parsing(self):
        assert parse_threshold_overrides(["a=2.0", "b/c=1.5"]) == {
            "a": 2.0, "b/c": 1.5,
        }
        with pytest.raises(ValueError):
            parse_threshold_overrides(["missing-ratio"])
        with pytest.raises(ValueError):
            parse_threshold_overrides(["a=0.9"])


# ---------------------------------------------------------------------------
# Suite construction (real, but tiny problem sizes)


class TestSuite:
    def test_suite_covers_seven_stages(self):
        cases = build_suite(programs=["tomcatv"], sizes={"tomcatv": 32},
                            include_e2e=False, include_qa=False)
        stages = {c.stage for c in cases}
        assert stages == set(STAGE_NAMES)
        assert len(STAGE_NAMES) == 7
        assert all(c.bench_id.startswith("stage:") for c in cases)

    def test_suite_ids_are_sorted_and_deterministic(self):
        cases = build_suite(programs=["tomcatv"], sizes={"tomcatv": 32})
        ids = [c.bench_id for c in cases]
        assert ids == sorted(ids)
        again = [c.bench_id for c in build_suite(
            programs=["tomcatv"], sizes={"tomcatv": 32})]
        assert ids == again

    def test_run_suite_produces_measurements(self):
        cases = build_suite(programs=["tomcatv"], sizes={"tomcatv": 32},
                            stages=["parse", "cag_build"],
                            include_e2e=False, include_qa=False)
        results = run_suite(cases, repeats=2, warmup=1, memory=True)
        assert set(results) == {c.bench_id for c in cases}
        for m in results.values():
            assert m.reps == 2
            assert m.min_s > 0
            assert m.peak_bytes > 0

    def test_unknown_stage_or_program_rejected(self):
        with pytest.raises(ValueError, match="unknown stages"):
            build_suite(programs=["adi"], stages=["nope"])
        with pytest.raises(ValueError, match="unknown program"):
            build_suite(programs=["nope"])


# ---------------------------------------------------------------------------
# Profiling hooks


class TestProfiling:
    def test_profile_attaches_hot_functions(self):
        def workload():
            return sorted(range(2000), key=lambda x: -x)

        result = profile_call("w", workload, limit=5)
        assert result.hot, "no hot functions captured"
        assert len(result.hot) <= 5
        assert result.total_s >= 0
        data = result.to_dict()
        assert data["hot"][0]["cumtime_s"] >= data["hot"][-1]["cumtime_s"]

    def test_profile_records_span_event(self):
        from repro.obs import tracing

        tracing.start_trace("t")
        try:
            profile_call("w", lambda: sum(range(100)))
        finally:
            trace = tracing.finish_trace()
        spans = [s for s in trace["spans"] if s["name"] == "bench.profile"]
        assert spans
        events = [e for e in spans[0]["events"]
                  if e["name"] == "profile.hot"]
        assert events and events[0]["attrs"]["functions"]


# ---------------------------------------------------------------------------
# Metrics / Prometheus export


class TestBenchMetricsExport:
    RESULTS = {
        "stage:parse/adi": _measurement("stage:parse/adi",
                                        [0.010, 0.012, 0.011]),
        "e2e/adi": _measurement("e2e/adi", [0.5, 0.6]),
    }

    def test_results_fold_into_bench_seconds(self):
        metrics = results_to_metrics(self.RESULTS)
        snap = metrics.snapshot()
        assert snap["bench_seconds"]["stage:parse/adi"]["count"] == 3
        assert snap["bench_seconds"]["e2e/adi"]["count"] == 2

    def test_prometheus_exposition_parses(self):
        text = render_bench_prometheus(self.RESULTS)
        samples = parse_prometheus_text(text)
        names = {name for name, _ in samples}
        assert "repro_bench_seconds_bucket" in names
        assert samples[(
            "repro_bench_seconds_count", (("bench", "e2e/adi"),)
        )] == 2.0
        assert samples[(
            "repro_bench_min_seconds", (("bench", "stage:parse/adi"),)
        )] == pytest.approx(0.010)
        assert samples[(
            "repro_bench_peak_bytes", (("bench", "e2e/adi"),)
        )] == 1024.0

    def test_observe_bench_in_service_metrics(self):
        metrics = Metrics()
        metrics.observe_bench("b", 0.25)
        snap = metrics.snapshot()
        assert snap["bench_seconds"]["b"]["count"] == 1


# ---------------------------------------------------------------------------
# CLI: run / compare / gate / profile (tiny suite, temp root)


def _run_args(tmp_path, *extra):
    return [
        "--log-level", "error", "bench", *extra,
        "--programs", "tomcatv",
        "--stages", "parse", "alignment_ilp",
        "--repeats", "2", "--warmup", "1",
        "--no-e2e", "--no-qa", "--root", str(tmp_path),
    ]


class TestBenchCLI:
    def test_run_writes_trajectory(self, tmp_path, capsys):
        rc = cli_main(_run_args(tmp_path, "run", "--label", "t"))
        assert rc == 0
        out = capsys.readouterr().out
        assert "stage:alignment_ilp/tomcatv" in out
        data = load_bench_file(bench_path("t", str(tmp_path)))
        assert len(data["runs"]) == 1
        assert data["runs"][0]["meta"]["repeats"] == 2

    def test_run_json_output(self, tmp_path, capsys):
        rc = cli_main(_run_args(tmp_path, "run", "--label", "t",
                                "--json"))
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert "stage:parse/tomcatv" in record["results"]

    def test_gate_passes_on_noop_rerun(self, tmp_path, capsys):
        assert cli_main(_run_args(tmp_path, "run", "--label", "t")) == 0
        capsys.readouterr()
        rc = cli_main(_run_args(tmp_path, "gate", "--baseline", "t"))
        assert rc == 0
        assert "gate: ok" in capsys.readouterr().out

    def test_gate_fails_on_seeded_alignment_regression(self, tmp_path,
                                                       capsys):
        """Acceptance: a 2x slowdown injected into the alignment-ILP
        stage must trip the gate."""
        assert cli_main(_run_args(tmp_path, "run", "--label", "t")) == 0
        path = bench_path("t", str(tmp_path))
        # Gate the recorded run against a halved copy of itself: ratio
        # is exactly 2.0 regardless of machine load, and a zeroed MAD on
        # the doctored bench keeps the noise band from masking it.
        current = str(tmp_path / "current.json")
        cur_data = json.load(open(path))
        # Hand-edited files drop the integrity stamp (absent stamp ->
        # schema-only validation, the documented escape hatch).
        cur_data.pop("integrity", None)
        cur_rec = cur_data["runs"][-1]["results"]
        cur_rec["stage:alignment_ilp/tomcatv"]["mad_s"] = 0.0
        json.dump(cur_data, open(current, "w"))
        data = json.load(open(path))
        data.pop("integrity", None)
        record = data["runs"][-1]["results"]["stage:alignment_ilp/tomcatv"]
        for key in ("min_s", "median_s", "mean_s"):
            record[key] /= 2.0
        record["times_s"] = [t / 2.0 for t in record["times_s"]]
        record["mad_s"] = 0.0
        json.dump(data, open(path, "w"))
        capsys.readouterr()
        rc = cli_main(_run_args(
            tmp_path, "gate", "--baseline", "t", "--current", current
        ))
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSION stage:alignment_ilp/tomcatv" in out

    def test_gate_against_recorded_current_file(self, tmp_path, capsys):
        assert cli_main(_run_args(tmp_path, "run", "--label", "t")) == 0
        current = str(tmp_path / "BENCH_t.json")
        rc = cli_main(_run_args(
            tmp_path, "gate", "--baseline", "t", "--current", current
        ))
        # identical files: every ratio is exactly 1.0
        assert rc == 0
        capsys.readouterr()
        report_rc = cli_main(_run_args(
            tmp_path, "compare", "--baseline", "t", "--current", current,
            "--json",
        ))
        assert report_rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True

    def test_profile_subcommand(self, tmp_path, capsys):
        rc = cli_main(_run_args(tmp_path, "profile", "--bench",
                                "stage:parse", "--limit", "3"))
        assert rc == 0
        out = capsys.readouterr().out
        assert "stage:parse/tomcatv" in out
        assert "cumtime" in out

    def test_run_emits_trace_and_prometheus(self, tmp_path, capsys):
        trace_path = str(tmp_path / "bench.trace.json")
        prom_path = str(tmp_path / "bench.prom")
        rc = cli_main(_run_args(
            tmp_path, "run", "--label", "t", "--no-write",
            "--trace", trace_path, "--prometheus", prom_path,
        ))
        assert rc == 0
        from repro.obs.events import load_trace

        trace = load_trace(trace_path)
        names = {s["name"] for s in trace["spans"]}
        assert {"bench.prepare", "bench.case", "bench.measure"} <= names
        samples = parse_prometheus_text(open(prom_path).read())
        assert any(name == "repro_bench_seconds_bucket"
                   for name, _ in samples)


# ---------------------------------------------------------------------------
# CLI: missing / malformed compare inputs (typed error, exit 2)


class TestBenchInputErrors:
    def test_load_latest_results_missing_file(self, tmp_path):
        path = str(tmp_path / "BENCH_none.json")
        with pytest.raises(BenchInputError) as err:
            load_latest_results(path)
        assert err.value.kind == "missing"
        assert err.value.path == path
        assert "repro bench run" in str(err.value)

    def test_load_latest_results_invalid_json(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(BenchInputError) as err:
            load_latest_results(str(path), role="current")
        assert err.value.kind == "invalid-json"
        assert "current" in str(err.value)

    def test_load_latest_results_schema_mismatch(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(
            json.dumps({"schema": "other/v0", "label": "bad", "runs": []}),
            encoding="utf-8",
        )
        with pytest.raises(BenchInputError) as err:
            load_latest_results(str(path))
        assert err.value.kind == "schema"
        assert BENCH_SCHEMA in str(err.value)

    def test_load_latest_results_tampered_integrity(self, tmp_path):
        path = append_run(
            {"b": _measurement("b", [0.1, 0.2])}, "t", root=str(tmp_path)
        )
        data = json.load(open(path))
        data["runs"][0]["results"]["b"]["min_s"] += 1.0  # stamp now stale
        json.dump(data, open(path, "w"))
        with pytest.raises(BenchInputError) as err:
            load_latest_results(path)
        assert err.value.kind == "corrupt"

    def test_compare_missing_baseline_exits_2(self, tmp_path, capsys):
        rc = cli_main(_run_args(tmp_path, "compare", "--baseline",
                                "nosuch"))
        assert rc == 2
        assert "no such baseline file" in capsys.readouterr().err

    def test_gate_missing_baseline_exits_2(self, tmp_path):
        rc = cli_main(_run_args(tmp_path, "gate", "--baseline", "nosuch"))
        assert rc == 2

    def test_gate_schema_mismatch_emits_json_error_object(self, tmp_path,
                                                          capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"schema": "x"}), encoding="utf-8")
        rc = cli_main(_run_args(tmp_path, "gate", "--baseline", str(bad),
                                "--json"))
        assert rc == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"]["kind"] == "bench-input/schema"
        assert payload["error"]["path"] == str(bad)

    def test_compare_bad_current_exits_2(self, tmp_path, capsys):
        append_run(
            {"b": _measurement("b", [0.1, 0.2])}, "t", root=str(tmp_path)
        )
        bad = tmp_path / "current.json"
        bad.write_text("{", encoding="utf-8")
        rc = cli_main(_run_args(tmp_path, "compare", "--baseline", "t",
                                "--current", str(bad)))
        assert rc == 2
        assert "not valid JSON" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Summary-grid consistency (satellite)


class TestSummaryGrid:
    def _payload(self):
        return [{
            "case": "adi/real/200/p2",
            "tool_optimal": False,
            "loss_percent": 10.0,
            "best": "row",
            "schemes": {
                "row": {"est_us": 90.0, "meas_us": 100.0},
                "column": {"est_us": 130.0, "meas_us": 140.0},
                "tool": {"est_us": 90.0, "meas_us": 110.0},
            },
        }]

    def test_valid_payload_builds_rows(self):
        from repro.tool.report import validate_summary_grid

        [row] = validate_summary_grid(self._payload())
        assert row.program == "adi"
        assert row.cases == 1
        assert row.tool_optimal == 0
        assert row.worst_loss_percent == pytest.approx(10.0)
        assert row.best_scheme_counts == {"row": 1}
        assert row.rankings_correct == 1

    @pytest.mark.parametrize("mutate", [
        lambda p: p[0].update(best="column"),       # not measured-best
        lambda p: p[0].update(loss_percent=55.0),   # inconsistent loss
        lambda p: p[0].update(tool_optimal=True),   # optimal with loss
        lambda p: p[0]["schemes"].pop("tool"),      # tool row required
        lambda p: p[0].update(case="nocase"),       # malformed label
    ])
    def test_inconsistent_payload_rejected(self, mutate):
        from repro.tool.report import validate_summary_grid

        payload = self._payload()
        mutate(payload)
        with pytest.raises(ValueError):
            validate_summary_grid(payload)

    def test_committed_grid_consistent_with_report(self):
        from repro.tool.report import format_summary, validate_summary_grid

        path = os.path.join(REPO_ROOT, "results", "summary_grid.json")
        payload = json.load(open(path))
        rows = validate_summary_grid(payload)
        assert sum(r.cases for r in rows) == len(payload)
        table = format_summary(rows)
        assert "TOTAL" in table
        for row in rows:
            assert row.program in table
