"""Property-based tests of the event-level communication patterns."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import IPSC860, simulate
from repro.machine.patterns import (
    append_alltoall,
    append_broadcast,
    append_reduce_broadcast,
    append_reduction,
)


def message_stats(programs):
    sends = Counter()
    recvs = Counter()
    for proc, ops in enumerate(programs):
        for op in ops:
            if op[0] == "send":
                sends[proc] += 1
            elif op[0] == "recv":
                recvs[proc] += 1
    return sends, recvs


@settings(max_examples=40, deadline=None)
@given(nprocs=st.integers(min_value=1, max_value=17),
       nbytes=st.integers(min_value=1, max_value=1 << 16))
def test_broadcast_reaches_everyone_once(nprocs, nbytes):
    programs = [[] for _ in range(nprocs)]
    append_broadcast(programs, nbytes)
    sends, recvs = message_stats(programs)
    # every non-root receives exactly once; total messages = P - 1
    assert sum(sends.values()) == max(nprocs - 1, 0)
    assert recvs[0] == 0
    for proc in range(1, nprocs):
        assert recvs[proc] == 1
    simulate(programs, IPSC860)  # terminates without deadlock


@settings(max_examples=40, deadline=None)
@given(nprocs=st.integers(min_value=1, max_value=17),
       nbytes=st.integers(min_value=1, max_value=4096))
def test_reduction_gathers_everything(nprocs, nbytes):
    programs = [[] for _ in range(nprocs)]
    append_reduction(programs, nbytes, combine_cost=1.0)
    sends, _recvs = message_stats(programs)
    assert sum(sends.values()) == max(nprocs - 1, 0)
    # every non-root sends exactly once
    for proc in range(1, nprocs):
        assert sends[proc] == 1
    simulate(programs, IPSC860)


@settings(max_examples=30, deadline=None)
@given(nprocs=st.integers(min_value=1, max_value=12),
       local=st.integers(min_value=1, max_value=1 << 18))
def test_alltoall_full_exchange(nprocs, local):
    programs = [[] for _ in range(nprocs)]
    append_alltoall(programs, local)
    sends, recvs = message_stats(programs)
    expected = nprocs - 1 if nprocs > 1 else 0
    for proc in range(nprocs):
        assert sends[proc] == expected
        assert recvs[proc] == expected
    result = simulate(programs, IPSC860)
    if nprocs > 1:
        assert result.stats.bytes_sent >= max(local // nprocs, 1) * \
            nprocs * (nprocs - 1) * 0.5


@settings(max_examples=30, deadline=None)
@given(
    nprocs=st.integers(min_value=2, max_value=12),
    group_size=st.integers(min_value=2, max_value=12),
    offset=st.integers(min_value=0, max_value=10),
)
def test_subgroup_collectives_target_only_members(
    nprocs, group_size, offset
):
    group = [
        (offset + i) % nprocs for i in range(min(group_size, nprocs))
    ]
    if len(set(group)) != len(group):
        return  # wrapped into duplicates: not a valid group
    programs = [[] for _ in range(nprocs)]
    append_broadcast(programs, 128, ranks=group)
    members = set(group)
    for proc in range(nprocs):
        if proc not in members:
            assert programs[proc] == []
        for op in programs[proc]:
            if op[0] == "send":
                assert op[1] in members
    simulate(programs, IPSC860)


@settings(max_examples=20, deadline=None)
@given(
    nprocs=st.integers(min_value=4, max_value=12),
    nbytes=st.integers(min_value=1, max_value=4096),
)
def test_disjoint_subgroups_run_concurrently(nprocs, nbytes):
    """Two disjoint-group collectives interleave without deadlock and the
    makespan matches a single group of the larger size."""
    half = nprocs // 2
    g1 = list(range(half))
    g2 = list(range(half, nprocs))
    programs = [[] for _ in range(nprocs)]
    append_alltoall(programs, nbytes, ranks=g1)
    append_alltoall(programs, nbytes, ranks=g2)
    both = simulate(programs, IPSC860).makespan

    solo = [[] for _ in range(nprocs)]
    append_alltoall(solo, nbytes, ranks=list(range(max(len(g1), len(g2)))))
    single = simulate(solo, IPSC860).makespan
    assert both == pytest.approx(single, rel=0.35)


@settings(max_examples=25, deadline=None)
@given(nprocs=st.integers(min_value=1, max_value=10),
       nbytes=st.integers(min_value=1, max_value=1024))
def test_reduce_broadcast_symmetry(nprocs, nbytes):
    programs = [[] for _ in range(nprocs)]
    append_reduce_broadcast(programs, nbytes)
    sends, recvs = message_stats(programs)
    assert sum(sends.values()) == sum(recvs.values())
    assert sum(sends.values()) == 2 * max(nprocs - 1, 0)
    simulate(programs, IPSC860)
