"""The SLO engine and its inputs: quantile sketches, sliding windows,
objective parsing, burn-rate evaluation, offline event-log replay, the
``repro slo`` / ``repro top`` CLI exit-code contract, and the live
``slo``/``events`` protocol ops."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.slo import (
    FAST_BURN,
    SLO_SCHEMA,
    SLOW_BURN,
    Objective,
    ObjectiveResult,
    SLOReport,
    SLOValidationError,
    evaluate_objectives,
    format_slo_report,
    load_objectives,
    window_from_events,
)
from repro.obs.window import (
    SKETCH_GAMMA,
    LogBucketSketch,
    WindowedOpStats,
)
from repro.tool.cli import main
from repro.tool.top import format_top


class TestLogBucketSketch:
    def test_quantiles_carry_bounded_relative_error(self):
        sketch = LogBucketSketch()
        # spans 4+ decades but stays under the sketch's ~800s cap
        values = [0.0002 * (1.05 ** i) for i in range(200)]
        for value in values:
            sketch.observe(value)
        values.sort()
        for q in (0.5, 0.9, 0.99):
            # the sketch's rank definition: smallest value whose
            # cumulative count reaches ceil(q * n)
            exact = values[int(math.ceil(q * len(values))) - 1]
            estimate = sketch.quantile(q)
            assert estimate is not None
            assert abs(estimate - exact) / exact <= SKETCH_GAMMA - 1.0

    def test_empty_sketch(self):
        sketch = LogBucketSketch()
        assert sketch.quantile(0.5) is None
        assert sketch.count_le(1.0) == 0
        assert sketch.mean == 0.0

    def test_quantile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            LogBucketSketch().quantile(1.5)

    def test_merge_equals_observing_both_streams(self):
        left, right, both = (
            LogBucketSketch(), LogBucketSketch(), LogBucketSketch()
        )
        a = [0.0004 * (1.3 ** i) for i in range(50)]
        b = [0.09 * (1.05 ** i) for i in range(50)]
        for value in a:
            left.observe(value)
            both.observe(value)
        for value in b:
            right.observe(value)
            both.observe(value)
        left.merge(right)
        assert left.counts == both.counts
        assert left.count == both.count
        assert left.total == pytest.approx(both.total)
        assert left.min == both.min and left.max == both.max
        for q in (0.1, 0.5, 0.95):
            assert left.quantile(q) == both.quantile(q)

    def test_merge_into_empty(self):
        target, source = LogBucketSketch(), LogBucketSketch()
        source.observe(0.25)
        target.merge(source)
        assert target.count == 1
        assert target.min == target.max == 0.25

    def test_dict_round_trip(self):
        sketch = LogBucketSketch()
        for value in (1e-7, 0.003, 0.25, 40.0):
            sketch.observe(value)
        clone = LogBucketSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        assert clone.counts == sketch.counts
        assert clone.count == sketch.count
        assert clone.total == pytest.approx(sketch.total)
        assert clone.quantile(0.5) == sketch.quantile(0.5)

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            LogBucketSketch.from_dict({"schema": "nope"})

    def test_count_le_splits_on_threshold(self):
        sketch = LogBucketSketch()
        for _ in range(90):
            sketch.observe(0.010)
        for _ in range(10):
            sketch.observe(10.0)
        assert sketch.count_le(1.0) == 90
        assert sketch.count_le(100.0) == 100
        assert sketch.count_le(1e-9) == 0

    def test_underflow_lands_in_bucket_zero(self):
        sketch = LogBucketSketch()
        sketch.observe(0.0)
        sketch.observe(-1.0)  # clamped, never a math domain error
        assert sketch.counts == {0: 2}


class TestWindowedOpStats:
    def _window(self, start=0.0):
        clock = {"now": start}
        stats = WindowedOpStats(bucket_s=10.0, buckets=6,
                                clock=lambda: clock["now"])
        return stats, clock

    def test_snapshot_counts_and_rates(self):
        stats, clock = self._window()
        for i in range(8):
            stats.observe(0.1, ok=i % 4 != 0, degraded=i % 2 == 0)
        snap = stats.snapshot()
        assert snap["count"] == 8
        assert snap["errors"] == 2
        assert snap["degraded"] == 4
        assert snap["error_rate"] == pytest.approx(0.25)
        assert snap["qps"] == pytest.approx(8 / 60.0)
        assert snap["quantiles"]["p50"] == pytest.approx(0.1, rel=0.25)
        assert snap["sketch"]["count"] == 8

    def test_old_slots_expire_when_clock_wraps(self):
        stats, clock = self._window()
        stats.observe(0.1)
        clock["now"] = 65.0  # 6 x 10s ring: slot 0 is now stale
        stats.observe(0.2)
        assert stats.snapshot()["count"] == 1

    def test_fast_horizon_sees_only_recent_slots(self):
        stats, clock = self._window()
        stats.observe(1.0)
        clock["now"] = 45.0
        stats.observe(2.0)
        full = stats.snapshot()
        fast = stats.snapshot(horizon_s=10.0)
        assert full["count"] == 2
        assert fast["count"] == 1
        assert fast["horizon_s"] == pytest.approx(10.0)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            WindowedOpStats(bucket_s=0.0)
        with pytest.raises(ValueError):
            WindowedOpStats(buckets=1)


def _objectives_file(tmp_path, objectives):
    path = tmp_path / "slo.json"
    path.write_text(json.dumps(
        {"schema": SLO_SCHEMA, "objectives": objectives}
    ))
    return str(path)


class TestObjectiveParsing:
    def test_quantile_objective(self):
        objective = Objective.from_dict(
            {"op": "analyze", "metric": "p99", "threshold_s": 0.25}
        )
        assert objective.name == "analyze-p99"
        assert objective.budget == pytest.approx(0.01)
        assert objective.describe() == "analyze p99 < 250ms"

    def test_rate_objective(self):
        objective = Objective.from_dict(
            {"name": "errs", "metric": "error_rate", "threshold": 0.05}
        )
        assert objective.budget == pytest.approx(0.05)
        assert "error_rate < 5%" in objective.describe()

    @pytest.mark.parametrize("raw", [
        {"metric": "p42", "threshold_s": 0.1},
        {"metric": "p99"},                                # no threshold_s
        {"metric": "p99", "threshold_s": 0.0},
        {"metric": "error_rate"},                         # no threshold
        {"metric": "error_rate", "threshold": 1.5},
        {"metric": "p99", "threshold_s": 0.1, "extra": 1},
    ])
    def test_rejects_malformed(self, raw):
        with pytest.raises(SLOValidationError):
            Objective.from_dict(raw)

    def test_dict_round_trip(self):
        objective = Objective.from_dict(
            {"name": "lat", "op": "slo", "metric": "p95",
             "threshold_s": 0.5}
        )
        assert Objective.from_dict(objective.to_dict()) == objective

    def test_load_objectives(self, tmp_path):
        path = _objectives_file(tmp_path, [
            {"op": "analyze", "metric": "p99", "threshold_s": 0.25},
            {"metric": "error_rate", "threshold": 0.01},
        ])
        objectives = load_objectives(path)
        assert [o.name for o in objectives] == \
            ["analyze-p99", "analyze-error_rate"]

    def test_load_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"objectives": []}))
        with pytest.raises(SLOValidationError):
            load_objectives(str(path))

    def test_load_rejects_duplicates_and_missing_file(self, tmp_path):
        path = _objectives_file(tmp_path, [
            {"name": "same", "metric": "p99", "threshold_s": 0.1},
            {"name": "same", "metric": "p95", "threshold_s": 0.1},
        ])
        with pytest.raises(SLOValidationError, match="duplicate"):
            load_objectives(path)
        with pytest.raises(SLOValidationError):
            load_objectives(str(tmp_path / "absent.json"))


def _windows(seconds_list, op="analyze", fast=None, window_s=600.0):
    """A stats-shaped window snapshot built from explicit latencies."""

    def view(values):
        sketch = LogBucketSketch()
        for value in values:
            sketch.observe(value)
        return {
            "count": sketch.count,
            "error_rate": 0.0,
            "degraded_rate": 0.0,
            "quantiles": sketch.quantiles(),
            "sketch": sketch.to_dict(),
        }

    return {
        "window_s": window_s,
        "fast_s": 60.0,
        "ops": {op: {
            "full": view(seconds_list),
            "fast": view(fast if fast is not None else seconds_list),
        }},
    }


class TestEvaluateObjectives:
    P99 = Objective(name="lat", op="analyze", metric="p99",
                    threshold_s=0.25)

    def test_healthy_window_is_ok(self):
        report = evaluate_objectives(
            [self.P99], _windows([0.01] * 200)
        )
        result = report.results[0]
        assert report.ok and result.status == "ok"
        assert result.bad_fraction == 0.0
        assert result.budget_remaining == pytest.approx(1.0)
        assert result.alerts == []

    def test_budget_overspend_is_violated(self):
        # 5% of requests over threshold >> the 1% p99 budget
        latencies = [0.01] * 95 + [1.0] * 5
        report = evaluate_objectives([self.P99], _windows(latencies))
        result = report.results[0]
        assert result.status == "violated"
        assert result.bad_fraction == pytest.approx(0.05)
        assert result.budget_remaining < 0
        assert not report.ok
        assert [r.objective.name for r in report.violations()] == ["lat"]

    def test_no_data_does_not_fail_unless_required(self):
        report = evaluate_objectives([self.P99], _windows([]))
        assert report.results[0].status == "no-data"
        assert report.ok
        strict = evaluate_objectives(
            [self.P99], _windows([]), require_data=True
        )
        assert strict.results[0].status == "violated"
        assert strict.results[0].alerts == ["no-data"]

    def test_fast_burn_needs_both_horizons(self):
        bad = [0.01] * 70 + [1.0] * 30  # 30x the 1% budget
        report = evaluate_objectives([self.P99], _windows(bad, fast=bad))
        assert report.results[0].alerts == ["fast-burn"]
        assert report.results[0].burn_fast >= FAST_BURN
        # the same full-window burn with a *recovered* fast window must
        # not page: the incident is over
        recovered = evaluate_objectives(
            [self.P99], _windows(bad, fast=[0.01] * 50)
        )
        assert recovered.results[0].alerts == ["slow-burn"]

    def test_slow_burn_alert(self):
        # 5% bad = 5x budget: over SLOW_BURN, under FAST_BURN
        latencies = [0.01] * 95 + [1.0] * 5
        report = evaluate_objectives(
            [self.P99], _windows(latencies, fast=[0.01] * 20)
        )
        result = report.results[0]
        assert result.burn_slow == pytest.approx(5.0)
        assert SLOW_BURN <= result.burn_slow < FAST_BURN
        assert result.alerts == ["slow-burn"]

    def test_rate_objective_uses_reported_rate(self):
        objective = Objective(name="errs", metric="error_rate",
                              threshold=0.10)
        windows = _windows([0.01] * 10)
        windows["ops"]["analyze"]["full"]["error_rate"] = 0.25
        report = evaluate_objectives([objective], windows)
        result = report.results[0]
        assert result.status == "violated"
        assert result.measured == pytest.approx(0.25)

    def test_quantile_fallback_without_sketch(self):
        windows = _windows([0.01] * 98 + [1.0] * 2)
        del windows["ops"]["analyze"]["full"]["sketch"]
        report = evaluate_objectives([self.P99], windows)
        # binary verdict from the reported p99, which 2 in 100 drag
        # over the 250ms threshold
        assert report.results[0].status == "violated"

    def test_missing_op_is_no_data(self):
        other = Objective(name="x", op="ping", metric="p99",
                          threshold_s=0.1)
        report = evaluate_objectives([other], _windows([0.01]))
        assert report.results[0].status == "no-data"

    def test_report_wire_round_trip(self):
        latencies = [0.01] * 95 + [1.0] * 5
        report = evaluate_objectives([self.P99], _windows(latencies))
        clone = SLOReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert clone.ok == report.ok
        assert clone.window_s == report.window_s
        assert [r.to_dict() for r in clone.results] == \
            [r.to_dict() for r in report.results]

    def test_report_from_dict_rejects_non_object(self):
        with pytest.raises(SLOValidationError):
            SLOReport.from_dict("not a report")

    def test_format_mentions_verdicts_and_alerts(self):
        latencies = [0.01] * 95 + [1.0] * 5
        report = evaluate_objectives([self.P99], _windows(latencies))
        text = format_slo_report(report)
        assert "FAIL" in text
        assert "analyze p99 < 250ms" in text
        assert "slow-burn" in text
        assert "1 objective(s) VIOLATED" in text
        healthy = format_slo_report(
            evaluate_objectives([self.P99], _windows([0.01] * 50))
        )
        assert "all objectives met" in healthy


def _event(seq, ts_us, seconds, ok=True, degraded=False, op="analyze"):
    return {
        "schema": "repro.obs/event/v1", "seq": seq, "ts_us": ts_us,
        "type": "service.request",
        "attrs": {"op": op, "seconds": seconds, "ok": ok,
                  "degraded": degraded},
    }


class TestWindowFromEvents:
    def test_replay_matches_event_stream(self):
        now = 1_000_000_000_000_000
        events = [
            _event(i, now - i * 1_000_000, 0.010) for i in range(100)
        ]
        windows = window_from_events(events, window_s=600.0)
        full = windows["ops"]["analyze"]["full"]
        assert full["count"] == 100
        assert full["quantiles"]["p99"] == pytest.approx(0.010, rel=0.25)

    def test_events_outside_window_are_dropped(self):
        now = 1_000_000_000_000_000
        events = [
            _event(1, now, 0.010),
            _event(2, now - int(700e6), 5.0),  # older than the window
            {"schema": "repro.obs/event/v1", "seq": 3, "ts_us": now,
             "type": "trace.kept", "attrs": {}},  # not a request
        ]
        windows = window_from_events(events, window_s=600.0)
        assert windows["ops"]["analyze"]["full"]["count"] == 1

    def test_ops_split_and_errors_counted(self):
        now = 1_000_000_000_000_000
        events = [
            _event(1, now, 0.01),
            _event(2, now, 0.01, ok=False, op="slo"),
        ]
        windows = window_from_events(events)
        assert set(windows["ops"]) == {"analyze", "slo"}
        assert windows["ops"]["slo"]["full"]["errors"] == 1

    def test_empty_log_yields_no_ops(self):
        assert window_from_events([])["ops"] == {}


class TestSLOCommandOffline:
    """``repro slo`` against a recorded event log (no service)."""

    def _seeded_log(self, tmp_path, seconds):
        from repro.obs.telemetry import EventLog

        events_dir = tmp_path / "events"
        with EventLog(events_dir, fsync=False) as log:
            for value in seconds:
                log.record("service.request", {
                    "op": "analyze", "seconds": value, "ok": True,
                    "degraded": False,
                })
        return str(events_dir)

    def _objectives(self, tmp_path):
        return _objectives_file(tmp_path, [
            {"op": "analyze", "metric": "p99", "threshold_s": 0.25},
        ])

    def test_check_healthy_log_exits_zero(self, tmp_path, capsys):
        events = self._seeded_log(tmp_path, [0.01] * 50)
        code = main(["slo", "check",
                     "--objectives", self._objectives(tmp_path),
                     "--events", events])
        assert code == 0
        assert "all objectives met" in capsys.readouterr().out

    def test_check_violating_log_exits_one(self, tmp_path, capsys):
        events = self._seeded_log(tmp_path, [0.01] * 5 + [1.0] * 45)
        code = main(["slo", "check",
                     "--objectives", self._objectives(tmp_path),
                     "--events", events])
        assert code == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_report_never_fails_on_violation(self, tmp_path, capsys):
        events = self._seeded_log(tmp_path, [1.0] * 50)
        code = main(["slo", "report",
                     "--objectives", self._objectives(tmp_path),
                     "--events", events, "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["results"][0]["status"] == "violated"

    def test_require_data_fails_empty_log(self, tmp_path):
        events = self._seeded_log(tmp_path, [])
        code = main(["slo", "check", "--require-data",
                     "--objectives", self._objectives(tmp_path),
                     "--events", events])
        assert code == 1

    def test_missing_event_log_is_input_error(self, tmp_path):
        code = main(["slo", "check",
                     "--objectives", self._objectives(tmp_path),
                     "--events", str(tmp_path / "nowhere")])
        assert code == 2

    def test_bad_objectives_file_is_input_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{не json")
        code = main(["slo", "check", "--objectives", str(bad),
                     "--events", str(tmp_path)])
        assert code == 2

    def test_unreachable_service_is_input_error(self, tmp_path):
        code = main(["slo", "check",
                     "--objectives", self._objectives(tmp_path),
                     "--port", "1"])  # nothing listens there
        assert code == 2


@pytest.fixture(scope="module")
def live_endpoint(tmp_path_factory):
    """A served LayoutService fed only cheap ops (ping/stats/slo), so
    the windowed-op plumbing is exercised without running the pipeline."""
    from repro.service import (
        LayoutServer, LayoutService, WorkerPool, send_request,
    )

    service = LayoutService(pool=WorkerPool(kind="serial"))
    server = LayoutServer(("127.0.0.1", 0), service)
    server.serve_background()
    for _ in range(5):
        send_request({"op": "ping"}, "127.0.0.1", server.port)
    yield "127.0.0.1", server.port
    server.shutdown()
    server.server_close()
    service.close()


class TestLiveSLOAndTop:
    def _objectives(self, tmp_path, op="ping"):
        return _objectives_file(tmp_path, [
            {"op": op, "metric": "p99", "threshold_s": 5.0},
        ])

    def test_slo_op_over_the_wire(self, live_endpoint):
        from repro.service import send_request

        host, port = live_endpoint
        resp = send_request({
            "op": "slo",
            "objectives": [{"op": "ping", "metric": "p99",
                            "threshold_s": 5.0}],
        }, host, port)
        assert resp["ok"]
        report = SLOReport.from_dict(resp["report"])
        assert report.ok
        assert report.results[0].status == "ok"
        assert report.results[0].count >= 5

    def test_slo_op_without_objectives_is_bad_request(self, live_endpoint):
        from repro.service import send_request

        host, port = live_endpoint
        resp = send_request({"op": "slo"}, host, port)
        assert not resp["ok"]
        assert resp["error_kind"] == "bad-request"

    def test_events_op_returns_tail(self, live_endpoint):
        from repro.service import send_request

        host, port = live_endpoint
        resp = send_request(
            {"op": "events", "type": "service.request"}, host, port
        )
        assert resp["ok"]
        assert resp["events"]
        assert all(e["type"] == "service.request"
                   for e in resp["events"])
        assert resp["telemetry"]["events"]["events_total"] > 0

    def test_slo_cli_against_live_service(
        self, live_endpoint, tmp_path, capsys
    ):
        host, port = live_endpoint
        code = main(["slo", "check",
                     "--objectives", self._objectives(tmp_path),
                     "--host", host, "--port", str(port)])
        assert code == 0
        assert "ping p99" in capsys.readouterr().out

    def test_top_once_against_live_service(
        self, live_endpoint, tmp_path, capsys
    ):
        host, port = live_endpoint
        code = main(["top", "--once",
                     "--objectives", self._objectives(tmp_path),
                     "--host", host, "--port", str(port)])
        assert code == 0
        page = capsys.readouterr().out
        assert "repro top" in page
        assert "ping" in page
        assert "slo" in page

    def test_top_unreachable_service_exits_one(self, capsys):
        assert main(["top", "--once", "--port", "1"]) == 1


class TestFormatTop:
    def _stats(self):
        return {
            "uptime_seconds": 3723.0,
            "counters": {"requests_total": 12, "requests_failed": 1,
                         "requests_degraded": 2},
            "cache": {"hits": 3, "misses": 1,
                      "quarantined_total": 0,
                      "breaker": {"state": "closed"}},
            "pool": {"requested_kind": "process",
                     "active_kind": "thread", "max_workers": 4,
                     "degradations": 1,
                     "breaker": {"state": "closed"}},
            "telemetry": {
                "events": {"events_total": 40, "rotations_total": 2,
                           "bad_lines_total": 1},
                "sampler": {"kept_total": 3, "dropped_total": 7,
                            "kept_by_reason": {"slow": 2, "error": 1}},
            },
            "window": {
                "window_s": 600.0, "fast_s": 60.0,
                "ops": {"analyze": {"full": {
                    "count": 10, "qps": 0.5,
                    "error_rate": 0.1, "degraded_rate": 0.2,
                    "quantiles": {"p50": 0.010, "p95": 0.020,
                                  "p99": 0.040},
                }}},
            },
        }

    def test_page_sections(self):
        page = format_top(self._stats())
        assert "uptime 1:02:03" in page
        assert "requests 12" in page
        assert "analyze" in page and "10" in page
        assert "hit rate 75.0%" in page
        assert "thread (requested process)" in page
        assert "40 logged" in page and "bad lines 1" in page
        assert "kept 3/10" in page and "slow=2" in page

    def test_empty_window_and_missing_sections(self):
        page = format_top({"counters": {}, "window": {"ops": {}}})
        assert "(no requests in window)" in page

    def test_slo_section(self):
        report = evaluate_objectives(
            [Objective(name="lat", op="analyze", metric="p99",
                       threshold_s=0.25)],
            _windows([0.01] * 95 + [1.0] * 5),
        )
        page = format_top(self._stats(), report.to_dict())
        assert "[FAIL]" in page
        assert "ALERT" in page
        assert "analyze p99 < 250ms" in page

    def test_unreadable_slo_report(self):
        page = format_top(self._stats(), {"results": ["garbage"]})
        assert "unreadable" in page


class TestChaosEventAccounting:
    """Chaos verdicts flow through the event log (satellite S3)."""

    def test_case_results_carry_fault_observation(self):
        from repro.resilience.chaos import CaseResult
        from repro.resilience.faults import FaultPlan

        case = CaseResult(
            index=0, seed=1, program="adi", plan=FaultPlan(),
            outcome="ok", faults_fired=2, faults_observed=2,
        )
        data = case.to_dict()
        assert data["faults_fired"] == 2
        assert data["faults_observed"] == 2

    def test_campaign_writes_events(self, tmp_path, monkeypatch):
        from repro.obs.telemetry import read_event_log
        from repro.resilience import chaos

        from repro.resilience.faults import FaultPlan

        def fake_run_case(index, seed, program, reference, case_timeout_s):
            return chaos.CaseResult(
                index=index, seed=seed, program=program,
                plan=FaultPlan(seed=seed), outcome="ok",
                faults_fired=1, faults_observed=1,
            )

        monkeypatch.setattr(chaos, "run_case", fake_run_case)
        monkeypatch.setattr(
            chaos, "_reference_response", lambda *a, **k: {"ok": True}
        )
        events_dir = tmp_path / "chaos-events"
        report = chaos.run_chaos(
            cases=3, seed=7, events_dir=str(events_dir)
        )
        assert len(report.cases) == 3
        events, bad = read_event_log(events_dir)
        assert bad == 0
        cases = [e for e in events if e["type"] == "chaos.case"]
        assert len(cases) == 3
        assert [e["attrs"]["seed"] for e in cases] == [7, 8, 9]
        campaign = [e for e in events if e["type"] == "chaos.campaign"]
        assert len(campaign) == 1
        assert campaign[0]["attrs"]["total"] == 3
        assert campaign[0]["attrs"]["ok"] == 3
        assert campaign[0]["attrs"]["violations"] == []
