"""Component affinity graph tests."""

import pytest

from repro.alignment.cag import CAG


def edge(a, ad, b, bd):
    return ((a, ad), (b, bd))


class TestConstruction:
    def test_add_array_nodes(self):
        cag = CAG()
        cag.add_array("a", 2)
        assert cag.nodes == {("a", 0), ("a", 1)}

    def test_preference_creates_edge(self):
        cag = CAG()
        cag.add_preference(("b", 0), ("a", 0), 100.0)
        assert cag.num_edges == 1
        assert cag.total_weight() == 100.0

    def test_same_array_preference_rejected(self):
        cag = CAG()
        with pytest.raises(ValueError):
            cag.add_preference(("a", 0), ("a", 1), 1.0)

    def test_caching_same_direction_no_change(self):
        """Paper 3.1: a repeated preference with the same direction is
        served from the cache — no weight increase."""
        cag = CAG()
        cag.add_preference(("b", 0), ("a", 0), 100.0)
        cag.add_preference(("b", 0), ("a", 0), 100.0)
        assert cag.total_weight() == 100.0

    def test_caching_opposite_direction_adds_and_reverses(self):
        cag = CAG()
        cag.add_preference(("b", 0), ("a", 0), 100.0)
        cag.add_preference(("a", 0), ("b", 0), 40.0)
        assert cag.total_weight() == 140.0
        key = (("a", 0), ("b", 0))
        assert cag.directions[key] == (("a", 0), ("b", 0))

    def test_third_flip_accumulates_again(self):
        cag = CAG()
        cag.add_preference(("b", 0), ("a", 0), 10.0)
        cag.add_preference(("a", 0), ("b", 0), 10.0)
        cag.add_preference(("b", 0), ("a", 0), 10.0)
        assert cag.total_weight() == 30.0

    def test_undirected_drops_directions(self):
        cag = CAG()
        cag.add_preference(("b", 0), ("a", 0), 5.0)
        und = cag.undirected()
        assert und.directions == {}
        assert und.total_weight() == 5.0


class TestComponentsAndConflicts:
    def test_isolated_nodes_singleton_components(self):
        cag = CAG()
        cag.add_array("a", 2)
        comps = cag.components()
        assert len(comps) == 2

    def test_connected_component(self):
        cag = CAG()
        cag.add_undirected_edge(("a", 0), ("b", 0), 1.0)
        cag.add_undirected_edge(("b", 0), ("c", 0), 1.0)
        comps = cag.components()
        assert frozenset({("a", 0), ("b", 0), ("c", 0)}) in comps

    def test_no_conflict(self):
        cag = CAG()
        cag.add_undirected_edge(("a", 0), ("b", 0), 1.0)
        cag.add_undirected_edge(("a", 1), ("b", 1), 1.0)
        assert not cag.has_conflict()

    def test_direct_conflict(self):
        """A path between two dimensions of one array is a conflict."""
        cag = CAG()
        cag.add_undirected_edge(("a", 0), ("b", 0), 1.0)
        cag.add_undirected_edge(("b", 0), ("a", 1), 1.0)
        assert cag.has_conflict()
        assert ((("a", 0)), (("a", 1))) in cag.conflicts()

    def test_transitive_conflict(self):
        cag = CAG()
        cag.add_undirected_edge(("a", 0), ("b", 0), 1.0)
        cag.add_undirected_edge(("b", 0), ("c", 1), 1.0)
        cag.add_undirected_edge(("c", 1), ("a", 1), 1.0)
        assert cag.has_conflict()

    def test_diagonal_alignment_is_conflict(self):
        """Paper: aligning a 1-D array with both dimensions of a 2-D array
        (a diagonal) is disallowed, i.e. reported as a conflict."""
        cag = CAG()
        cag.add_undirected_edge(("v", 0), ("a", 0), 1.0)
        cag.add_undirected_edge(("v", 0), ("a", 1), 1.0)
        assert cag.has_conflict()


class TestMergeAndRestrict:
    def test_merge_accumulates_shared_edges(self):
        c1 = CAG()
        c1.add_undirected_edge(("a", 0), ("b", 0), 10.0)
        c2 = CAG()
        c2.add_undirected_edge(("a", 0), ("b", 0), 5.0)
        c2.add_undirected_edge(("a", 1), ("b", 1), 7.0)
        merged = CAG.merge(c1, c2)
        assert merged.num_edges == 2
        assert merged.total_weight() == 22.0

    def test_merge_does_not_mutate(self):
        c1 = CAG()
        c1.add_undirected_edge(("a", 0), ("b", 0), 10.0)
        CAG.merge(c1, c1)
        assert c1.total_weight() == 10.0

    def test_scaled(self):
        cag = CAG()
        cag.add_undirected_edge(("a", 0), ("b", 0), 10.0)
        assert cag.scaled(3.0).total_weight() == 30.0

    def test_restricted(self):
        cag = CAG()
        cag.add_undirected_edge(("a", 0), ("b", 0), 1.0)
        cag.add_undirected_edge(("b", 0), ("c", 0), 1.0)
        sub = cag.restricted(["a", "b"])
        assert sub.num_edges == 1
        assert all(n[0] in ("a", "b") for n in sub.nodes)

    def test_drop_edges(self):
        cag = CAG()
        cag.add_undirected_edge(("a", 0), ("b", 0), 1.0)
        cag.add_undirected_edge(("a", 1), ("b", 1), 2.0)
        keys = [k for k in cag.weights]
        smaller = cag.drop_edges([keys[0]])
        assert smaller.num_edges == 1
        assert smaller.nodes == cag.nodes

    def test_arrays_listing(self):
        cag = CAG()
        cag.add_undirected_edge(("b", 0), ("a", 0), 1.0)
        assert cag.arrays == ("a", "b")
