"""Resilience layer: fault injection, deadlines, anytime ILP fallbacks,
circuit breaker + backoff, crash-safe state, and the degraded-response
path end to end through the service."""

from __future__ import annotations

import json
import pickle
import socket

import pytest

from repro.ilp import ZeroOneModel, solve
from repro.ilp.branch_bound import solve as bb_solve
from repro.resilience import (
    Backoff,
    CircuitBreaker,
    CorruptStateError,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    atomic_write_bytes,
    atomic_write_json,
    checksum_unwrap,
    checksum_wrap,
    collecting,
    current_deadline,
    deadline_scope,
    note_degradation,
    quarantine,
    remaining_budget,
    stamp_json_integrity,
    verify_json_integrity,
)
from repro.resilience import faults
from repro.service.cache import StageCache
from repro.service.pool import WorkerPool
from repro.service.protocol import LayoutRequest
from repro.service.server import (
    MAX_REQUEST_BYTES,
    LayoutServer,
    LayoutService,
)


# -- fault injection ----------------------------------------------------


class TestFaultInjection:
    def test_unarmed_points_are_noops(self):
        assert faults.active() is None
        faults.fault_point("cache.load")  # must not raise
        assert faults.corrupt_point("cache.load", b"abc") == b"abc"

    def test_error_spec_raises_typed_fault(self):
        plan = FaultPlan(seed=1, specs=[FaultSpec(site="pool.submit")])
        with faults.armed(plan):
            with pytest.raises(InjectedFault) as err:
                faults.fault_point("pool.submit")
        assert err.value.kind == "injected-fault"
        assert "pool.submit" in str(err.value)
        # disarmed again on scope exit
        faults.fault_point("pool.submit")

    def test_flaky_fires_exactly_n_times(self):
        plan = FaultPlan(seed=2, specs=[
            FaultSpec(site="ilp.solve", mode="flaky", times=2),
        ])
        with faults.armed(plan) as injector:
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    faults.fault_point("ilp.solve")
            for _ in range(5):
                faults.fault_point("ilp.solve")
            assert injector.fired_count() == 2

    def test_sites_match_fnmatch_patterns(self):
        plan = FaultPlan(seed=3, specs=[FaultSpec(site="cache.*")])
        with faults.armed(plan):
            with pytest.raises(InjectedFault):
                faults.fault_point("cache.store")
        with faults.armed(plan):
            faults.fault_point("pool.submit")  # no match

    def test_probabilistic_firing_is_seed_deterministic(self):
        def firings(seed):
            plan = FaultPlan(seed=seed, specs=[
                FaultSpec(site="service.request", probability=0.5),
            ])
            out = []
            with faults.armed(plan):
                for _ in range(32):
                    try:
                        faults.fault_point("service.request")
                        out.append(0)
                    except InjectedFault:
                        out.append(1)
            return out

        assert firings(7) == firings(7)
        assert firings(7) != firings(8)
        assert 0 < sum(firings(7)) < 32

    def test_corrupt_transform_damages_payload_deterministically(self):
        plan = FaultPlan(seed=4, specs=[
            FaultSpec(site="cache.load", mode="corrupt"),
        ])
        payload = bytes(range(256)) * 8
        with faults.armed(plan):
            first = faults.corrupt_point("cache.load", payload)
        with faults.armed(plan):
            second = faults.corrupt_point("cache.load", payload)
        assert first != payload
        assert first == second

    def test_plan_round_trips_through_json(self):
        plan = FaultPlan(seed=11, specs=[
            FaultSpec(site="cache.load", mode="corrupt", probability=0.75),
            FaultSpec(site="pool.result", mode="flaky", times=3),
            FaultSpec(site="ilp.solve", mode="delay", delay_s=0.002),
        ])
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(site="x", mode="explode")
        with pytest.raises(ValueError):
            FaultSpec(site="x", mode="flaky")  # times required
        with pytest.raises(ValueError):
            FaultSpec(site="x", probability=1.5)


# -- deadlines ----------------------------------------------------------


class TestDeadline:
    def test_no_scope_means_no_budget(self):
        assert current_deadline() is None
        assert remaining_budget() is None

    def test_scope_installs_and_restores(self):
        deadline = Deadline(60.0)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
            budget = remaining_budget()
            assert budget is not None and 0 < budget <= 60.0
        assert current_deadline() is None

    def test_none_scope_is_transparent(self):
        with deadline_scope(None):
            assert current_deadline() is None

    def test_expiry_and_check(self):
        deadline = Deadline(1e-9)
        assert deadline.expired()
        with deadline_scope(deadline):
            assert remaining_budget() == 0.0
        with pytest.raises(DeadlineExceeded) as err:
            deadline.check("selection")
        assert err.value.kind == "deadline"
        assert "selection" in str(err.value)

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


# -- backoff and circuit breaker ---------------------------------------


class TestBackoff:
    def test_zero_base_disables_waiting(self):
        sleeps = []
        backoff = Backoff(base_s=0.0, sleep=sleeps.append)
        assert backoff.delay(0) == 0.0
        assert backoff.wait(3) == 0.0
        assert sleeps == []

    def test_delays_grow_exponentially_and_cap(self):
        backoff = Backoff(base_s=0.1, factor=2.0, max_s=0.5, jitter=0.0,
                          sleep=lambda _s: None)
        assert backoff.delay(0) == pytest.approx(0.1)
        assert backoff.delay(1) == pytest.approx(0.2)
        assert backoff.delay(10) == pytest.approx(0.5)  # capped

    def test_jitter_is_seed_deterministic_and_bounded(self):
        a = Backoff(base_s=0.1, jitter=0.5, seed=9, sleep=lambda _s: None)
        b = Backoff(base_s=0.1, jitter=0.5, seed=9, sleep=lambda _s: None)
        da = [a.delay(k) for k in range(6)]
        db = [b.delay(k) for k in range(6)]
        assert da == db
        for k, d in enumerate(da):
            raw = min(0.1 * 2.0 ** k, 2.0)
            assert raw * 0.5 <= d <= raw

    def test_wait_uses_injected_sleep(self):
        sleeps = []
        backoff = Backoff(base_s=0.25, jitter=0.0, sleep=sleeps.append)
        backoff.wait(0)
        assert sleeps == [pytest.approx(0.25)]


class TestCircuitBreaker:
    def make(self, **kw):
        self.now = 0.0
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("reset_timeout_s", 10.0)
        return CircuitBreaker(name="t", clock=lambda: self.now, **kw)

    def test_trips_after_consecutive_failures(self):
        breaker = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens_total == 1
        assert not breaker.allow()
        assert breaker.rejections_total == 1

    def test_success_resets_the_failure_run(self):
        breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        self.now = 10.0
        assert breaker.state == "half-open"
        assert breaker.allow()        # the probe
        assert not breaker.allow()    # probe budget spent
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        self.now = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens_total == 2
        # a fresh reset timeout applies from the re-trip
        self.now = 15.0
        assert breaker.state == "open"
        self.now = 20.0
        assert breaker.state == "half-open"

    def test_describe_feeds_the_gauges(self):
        breaker = self.make()
        breaker.record_failure()
        desc = breaker.describe()
        assert desc["name"] == "t"
        assert desc["state"] == "closed"
        assert desc["consecutive_failures"] == 1
        assert desc["opens_total"] == 0


# -- crash-safe persistent state ----------------------------------------


class TestAtomicState:
    def test_atomic_write_replaces_without_temp_residue(self, tmp_path):
        path = tmp_path / "state.bin"
        atomic_write_bytes(path, b"one")
        atomic_write_bytes(path, b"two")
        assert path.read_bytes() == b"two"
        assert [p.name for p in tmp_path.iterdir()] == ["state.bin"]

    def test_checksum_round_trip(self):
        payload = b"the payload" * 100
        assert checksum_unwrap(checksum_wrap(payload)) == payload

    @pytest.mark.parametrize("damage", [
        lambda blob: blob[: len(blob) // 2],          # truncation
        lambda blob: blob[:-1] + bytes([blob[-1] ^ 1]),  # digest flip
        lambda blob: blob[:5] + bytes([blob[5] ^ 0x40]) + blob[6:],
        lambda blob: b"\x00" * 10,                    # too short
        lambda blob: blob[: -41] + b"X" + blob[-40:],  # magic shifted
    ])
    def test_any_damage_raises_corrupt_state(self, damage):
        blob = checksum_wrap(pickle.dumps({"k": list(range(50))}))
        with pytest.raises(CorruptStateError):
            checksum_unwrap(damage(blob), label="entry")

    def test_json_integrity_stamp_and_verify(self):
        stamped = stamp_json_integrity({"a": 1, "b": [2, 3]})
        assert verify_json_integrity(stamped) is True
        # absent stamp: tolerated (hand-edited files drop it)
        assert verify_json_integrity({"a": 1}) is False
        stamped["a"] = 2
        with pytest.raises(CorruptStateError):
            verify_json_integrity(stamped, label="bench")

    def test_json_integrity_ignores_key_order(self):
        stamped = stamp_json_integrity({"a": 1, "b": 2})
        reordered = {k: stamped[k] for k in reversed(list(stamped))}
        assert verify_json_integrity(reordered) is True

    def test_quarantine_renames_and_numbers(self, tmp_path):
        path = tmp_path / "entry.pkl"
        path.write_bytes(b"bad")
        moved = quarantine(path)
        assert moved is not None and moved.name == "entry.pkl.quarantined"
        assert not path.exists()
        path.write_bytes(b"bad again")
        second = quarantine(path)
        assert second is not None
        assert second.name == "entry.pkl.quarantined.1"

    def test_quarantine_of_missing_file_is_none(self, tmp_path):
        assert quarantine(tmp_path / "ghost.pkl") is None

    def test_atomic_write_json_is_loadable(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"x": 1})
        assert json.loads(path.read_text()) == {"x": 1}


# -- cache corruption and breaker (satellite d) -------------------------


class TestCacheCorruption:
    def seeded(self, tmp_path):
        cache = StageCache(root=str(tmp_path))
        cache.store("alignment", "k" * 64, {"value": 42})
        cache.clear_memory()
        return cache, tmp_path / "alignment" / ("k" * 64 + ".pkl")

    def test_disk_round_trip(self, tmp_path):
        cache, _path = self.seeded(tmp_path)
        hit, value = cache.load("alignment", "k" * 64)
        assert hit and value == {"value": 42}

    def test_truncated_entry_is_miss_plus_quarantine(self, tmp_path):
        cache, path = self.seeded(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        hit, value = cache.load("alignment", "k" * 64)
        assert (hit, value) == (False, None)
        assert cache.quarantined_total == 1
        assert not path.exists()
        assert path.with_name(path.name + ".quarantined").exists()

    def test_bad_checksum_is_miss_plus_quarantine(self, tmp_path):
        cache, path = self.seeded(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[3] ^= 0xFF  # flip a payload bit; the footer digest catches it
        path.write_bytes(bytes(blob))
        assert cache.load("alignment", "k" * 64) == (False, None)
        assert cache.quarantined_total == 1

    def test_foreign_garbage_is_miss_plus_quarantine(self, tmp_path):
        cache, path = self.seeded(tmp_path)
        path.write_bytes(b"not a cache entry at all")
        assert cache.load("alignment", "k" * 64) == (False, None)
        assert cache.quarantined_total == 1

    def test_unreadable_disk_is_miss_and_breaker_failure(self, tmp_path):
        cache, _path = self.seeded(tmp_path)
        plan = FaultPlan(seed=5, specs=[FaultSpec(site="cache.load")])
        with faults.armed(plan):
            assert cache.load("alignment", "k" * 64) == (False, None)
        assert cache.quarantined_total == 0  # disk fault, not data rot
        assert cache.breaker.describe()["consecutive_failures"] == 1
        # healthy again once the fault clears
        hit, value = cache.load("alignment", "k" * 64)
        assert hit and value == {"value": 42}

    def test_corrupted_store_is_caught_on_load(self, tmp_path):
        cache = StageCache(root=str(tmp_path))
        plan = FaultPlan(seed=6, specs=[
            FaultSpec(site="cache.store", mode="corrupt"),
        ])
        with faults.armed(plan):
            cache.store("selection", "s" * 64, {"value": 1})
        cache.clear_memory()
        assert cache.load("selection", "s" * 64) == (False, None)
        assert cache.quarantined_total == 1

    def test_breaker_opens_after_fault_run_then_memory_only(self, tmp_path):
        cache, _path = self.seeded(tmp_path)
        plan = FaultPlan(seed=7, specs=[FaultSpec(site="cache.load")])
        with faults.armed(plan):
            for _ in range(cache.breaker.failure_threshold):
                assert cache.load("alignment", "k" * 64) == (False, None)
        assert cache.breaker.state == "open"
        # the entry is on disk and intact, but the open breaker keeps
        # the cache memory-only until the reset timeout
        assert cache.load("alignment", "k" * 64) == (False, None)
        cache.breaker.reset()
        hit, _value = cache.load("alignment", "k" * 64)
        assert hit

    def test_store_fault_degrades_to_memory_only(self, tmp_path):
        cache = StageCache(root=str(tmp_path))
        plan = FaultPlan(seed=8, specs=[FaultSpec(site="cache.store")])
        with faults.armed(plan):
            cache.store("frontend", "f" * 64, "program")
        # memory still serves it; disk never saw it
        assert cache.load("frontend", "f" * 64) == (True, "program")
        assert cache.entry_count() == {}


# -- worker pool retries, backoff, breaker ------------------------------


def _square(x):
    return x * x


class TestPoolResilience:
    def test_flaky_result_is_absorbed_by_retry(self):
        plan = FaultPlan(seed=9, specs=[
            FaultSpec(site="pool.result", mode="flaky", times=1),
        ])
        with WorkerPool(kind="thread", max_workers=2, retries=2) as pool:
            with faults.armed(plan):
                results = pool.run_jobs(_square, [(i,) for i in range(6)])
        assert results == [i * i for i in range(6)]

    def test_retry_waits_on_the_injected_backoff(self):
        sleeps = []
        backoff = Backoff(base_s=0.1, jitter=0.0, sleep=sleeps.append)
        plan = FaultPlan(seed=10, specs=[
            FaultSpec(site="pool.result", mode="flaky", times=1),
        ])
        with WorkerPool(kind="thread", max_workers=2, retries=2,
                        backoff=backoff) as pool:
            with faults.armed(plan):
                results = pool.run_jobs(_square, [(3,), (4,)])
        assert results == [9, 16]
        assert sleeps and sleeps[0] == pytest.approx(0.1)

    def test_submit_fault_run_opens_breaker_and_goes_serial(self):
        breaker = CircuitBreaker(name="worker-pool", failure_threshold=1,
                                 reset_timeout_s=60.0)
        plan = FaultPlan(seed=11, specs=[FaultSpec(site="pool.submit")])
        with WorkerPool(kind="thread", max_workers=2,
                        breaker=breaker) as pool:
            with faults.armed(plan):
                assert pool.run_jobs(_square, [(2,), (5,)]) == [4, 25]
            assert breaker.state == "open"
            # breaker open: the batch runs serially, correctly, without
            # touching the executor (pool.submit would fault again)
            with faults.armed(plan):
                assert pool.run_jobs(_square, [(6,)]) == [36]

    def test_default_backoff_never_sleeps(self):
        pool = WorkerPool(kind="serial")
        assert pool.backoff.base_s == 0.0
        assert pool.describe()["backoff"]["base_s"] == 0.0


# -- anytime ILP --------------------------------------------------------


def _toy_model(n=8):
    model = ZeroOneModel(name="toy", sense="max")
    for i in range(n):
        model.add_var(f"x{i}")
        model.set_objective({f"x{i}": float(i + 1)})
    model.add_constraint(
        {f"x{i}": 1.0 for i in range(n)}, "<=", float(n // 2)
    )
    return model


class TestAnytimeILP:
    @pytest.mark.parametrize("backend", ["scipy", "branch-bound"])
    def test_zero_budget_returns_unknown(self, backend):
        solution = solve(_toy_model(), backend=backend, time_limit=0.0)
        assert solution.status == "unknown"
        assert not solution.has_incumbent
        assert not solution.is_optimal

    @pytest.mark.parametrize("backend", ["scipy", "branch-bound"])
    def test_expired_deadline_clamps_the_solve(self, backend):
        with deadline_scope(Deadline(1e-9)):
            solution = solve(_toy_model(), backend=backend)
        assert solution.status == "unknown"

    def test_generous_deadline_still_proves_optimality(self):
        with deadline_scope(Deadline(60.0)):
            solution = solve(_toy_model(), backend="branch-bound")
        assert solution.status == "optimal"
        assert solution.has_incumbent

    def test_node_limit_incumbent_is_labeled(self):
        solution = bb_solve(_toy_model(n=16), node_limit=3)
        assert solution.status in ("node_limit", "unknown")
        if solution.has_incumbent:
            assert not solution.is_optimal

    def test_ilp_solve_fault_site(self):
        plan = FaultPlan(seed=12, specs=[FaultSpec(site="ilp.solve")])
        with faults.armed(plan):
            with pytest.raises(InjectedFault):
                solve(_toy_model())


# -- greedy fallbacks under expired deadlines ---------------------------


class TestGreedyFallbacks:
    def test_alignment_falls_back_and_notes_degradation(self):
        from repro.alignment.cag import CAG
        from repro.alignment.ilp import resolve_conflicts

        cag = CAG()
        cag.add_array("x", 2)
        cag.add_array("y", 2)
        cag.add_undirected_edge(("x", 0), ("y", 0), 10.0)
        cag.add_undirected_edge(("x", 1), ("y", 0), 4.0)
        cag.add_undirected_edge(("x", 1), ("y", 1), 10.0)

        with collecting() as events:
            with deadline_scope(Deadline(1e-9)):
                res = resolve_conflicts(cag, d=2)
        assert res.optimal is False
        assert not res.resolved.has_conflict()
        # a full assignment, one axis per node, type-2 safe
        assert set(res.assignment) == set(cag.nodes)
        assert len({res.assignment[("x", 0)], res.assignment[("x", 1)]}) == 2
        assert [e.stage for e in events] == ["alignment"]
        assert events[0].reason in ("greedy-fallback", "incumbent")

    def test_selection_falls_back_and_notes_degradation(self):
        from repro.selection import select_layouts
        from repro.selection.layout_graph import DataLayoutGraph, LayoutEdge

        graph = DataLayoutGraph(
            phases=[], pcfg=None, estimates=None,
            node_costs={0: [5.0, 1.0], 1: [2.0, 2.0]},
            edges=[LayoutEdge(src_phase=0, dst_phase=1, costs={
                (0, 0): 0.0, (0, 1): 3.0, (1, 0): 3.0, (1, 1): 0.0,
            })],
            transitions={},
        )
        with collecting() as events:
            with deadline_scope(Deadline(1e-9)):
                result = select_layouts(graph)
        assert result.optimal is False
        assert set(result.selection) == {0, 1}
        # the greedy answer is evaluated with the shared evaluator
        assert result.objective == pytest.approx(
            graph.evaluate(result.selection)
        )
        assert [e.stage for e in events] == ["selection"]

    def test_without_deadline_both_stay_optimal(self):
        from repro.selection import select_layouts
        from repro.selection.layout_graph import DataLayoutGraph

        graph = DataLayoutGraph(
            phases=[], pcfg=None, estimates=None,
            node_costs={0: [5.0, 1.0]}, edges=[], transitions={},
        )
        with collecting() as events:
            result = select_layouts(graph)
        assert result.optimal is True
        assert result.selection == {0: 1}
        assert events == []


# -- degradation accounting --------------------------------------------


class TestDegradationAccounting:
    def test_notes_collect_in_scope_only(self):
        from repro.resilience.degrade import noted_count

        assert noted_count() == 0
        with collecting() as events:
            note_degradation("alignment", "greedy-fallback", "test")
            assert noted_count() == 1
        assert noted_count() == 0
        assert events[0].to_dict() == {
            "stage": "alignment", "reason": "greedy-fallback",
            "detail": "test",
        }

    def test_note_lands_in_active_trace(self):
        from repro.obs import tracing
        from repro.obs.events import iter_events

        tracer = tracing.Tracer(name="t")
        with tracing.activate(tracer):
            with tracing.span("work"):
                note_degradation("selection", "incumbent")
        hits = list(iter_events(tracer.to_dict(), "resilience.degraded"))
        assert len(hits) == 1
        attrs = hits[0][1]["attrs"]
        assert attrs["optimal"] is False
        assert attrs["stage"] == "selection"


# -- the service end to end ---------------------------------------------


REQUEST = {
    "op": "analyze",
    "program": "adi",
    "size": 32,
    "maxiter": 2,
    "procs": 4,
}


class TestServiceDegradedPath:
    def test_expired_deadline_yields_labeled_degraded_response(
        self, tmp_path
    ):
        with LayoutService(
            cache_dir=str(tmp_path),
            pool=WorkerPool(kind="thread", max_workers=2),
        ) as service:
            degraded = service.handle(
                dict(REQUEST, deadline_s=1e-6, request_id="d1")
            )
            assert degraded["ok"]
            assert degraded["degraded"] is True
            stages = {d["stage"] for d in degraded["degradations"]}
            assert "selection" in stages
            assert degraded["layouts"]  # usable answer, just not certified

            # degraded stage outputs were not cached: a follow-up with a
            # full budget recomputes and certifies
            full = service.handle(dict(REQUEST, request_id="d2"))
            assert full["ok"] and full["degraded"] is False
            assert full["predicted_total_us"] > 0

            stats = service.stats()
            assert stats["counters"]["requests_degraded"] == 1
            text = service.prometheus()
            assert "repro_degraded_total 1" in text
            assert 'repro_breaker_state{breaker="cache-disk"} 0' in text
            assert 'repro_breaker_state{breaker="worker-pool"} 0' in text

    def test_degraded_provenance_reports_optimal_false(self, tmp_path):
        from repro.obs.provenance import build_provenance, format_provenance

        with LayoutService(
            pool=WorkerPool(kind="thread", max_workers=2),
        ) as service:
            response = service.analyze(LayoutRequest.from_dict(
                dict(REQUEST, deadline_s=1e-6, trace=True)
            ))
        assert response.ok and response.degraded
        report = build_provenance(response.trace)
        assert report["optimal"] is False
        assert report["degradations"]
        rendered = format_provenance(report)
        assert "DEGRADED result" in rendered

        # the fault-free control: optimal provenance
        with LayoutService(
            pool=WorkerPool(kind="thread", max_workers=2),
        ) as service:
            control = service.analyze(
                LayoutRequest.from_dict(dict(REQUEST, trace=True))
            )
        assert control.ok and not control.degraded
        assert build_provenance(control.trace)["optimal"] is True

    def test_service_request_fault_returns_typed_error(self):
        plan = FaultPlan(seed=13, specs=[
            FaultSpec(site="service.request"),
        ])
        with LayoutService(pool=WorkerPool(kind="serial")) as service:
            with faults.armed(plan):
                response = service.handle({"op": "ping"})
        assert response["ok"] is False
        assert response["error_kind"] == "injected-fault"

    def test_deadline_validation(self):
        from repro.service.errors import RequestValidationError

        with pytest.raises(RequestValidationError):
            LayoutRequest.from_dict(dict(REQUEST, deadline_s=-1))
        with pytest.raises(RequestValidationError):
            LayoutRequest.from_dict(dict(REQUEST, deadline_s="soon"))


class TestRequestSizeCap:
    def test_oversized_line_gets_typed_refusal(self, tmp_path):
        service = LayoutService(pool=WorkerPool(kind="serial"))
        server = LayoutServer(("127.0.0.1", 0), service)
        server.serve_background()
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=30
            ) as sock:
                sock.sendall(b'{"op": "ping", "pad": "' )
                sock.sendall(b"a" * (MAX_REQUEST_BYTES + 16))
                sock.sendall(b'"}\n')
                line = sock.makefile("rb").readline()
            response = json.loads(line)
            assert response["ok"] is False
            assert response["error_kind"] == "request-too-large"
        finally:
            server.shutdown()
            server.server_close()
            service.close()
