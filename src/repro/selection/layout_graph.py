"""The data layout graph (paper Section 2.4).

One node per candidate layout per phase, weighted by the candidate's
estimated execution time times the phase's expected execution frequency;
edges represent possible remappings, weighted by redistribution cost times
transition frequency.

Remapping follows **lazy** semantics (matching the SPMD code generator):
an array is remapped when it is next *used* under a different layout, so
remap edges connect, per array, each referencing phase to the next phase
referencing that array — phases in between that do not touch the array do
not pin its layout.  Transition frequencies are absorbed-flow masses on
the PCFG (a loop back-edge makes the last and first referencing phases of
the loop adjacent, charging per-iteration remaps correctly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..analysis.pcfg import ENTRY, EXIT, PCFG
from ..analysis.phases import Phase
from ..codegen.spmd import array_layout_signature
from ..frontend.symbols import ArraySymbol, SymbolTable
from ..obs import tracing
from ..perf.estimator import EstimatedCandidate, EstimationResult
from ..perf.training import TrainingDatabase

#: mass below this fraction of the initial flow is dropped during
#: absorbed-flow propagation (guards against non-referencing cycles)
_MASS_EPS = 1e-9


def array_transitions(
    pcfg: PCFG,
    referencing: Dict[str, set],
) -> Dict[str, List[Tuple[int, int, float]]]:
    """For every array, the expected number of direct control transfers
    from each referencing phase to the *next* referencing phase.

    Computed by absorbing flow: each referencing phase emits its out-edge
    frequencies; mass travels through non-referencing phases (split
    proportionally to edge frequencies) until absorbed by a referencing
    phase or lost at the program exit.
    """
    graph = pcfg.graph
    out: Dict[str, List[Tuple[int, int, float]]] = {}
    for array, refs in referencing.items():
        transitions: Dict[Tuple[int, int], float] = {}
        for src in sorted(refs):
            if src not in graph:
                continue
            # Initial mass: src's outgoing edge frequencies.
            worklist: List[Tuple[object, float]] = [
                (v, data["freq"])
                for _, v, data in graph.out_edges(src, data=True)
            ]
            initial = sum(m for _, m in worklist) or 1.0
            guard = _MASS_EPS * initial
            while worklist:
                node, mass = worklist.pop()
                if mass <= guard:
                    continue
                if isinstance(node, int) and node in refs:
                    key = (src, node)
                    transitions[key] = transitions.get(key, 0.0) + mass
                    continue
                if node == EXIT:
                    continue
                edges = list(graph.out_edges(node, data=True))
                total = sum(d["freq"] for _, _, d in edges)
                if total <= 0.0:
                    continue
                for _, succ, data in edges:
                    worklist.append((succ, mass * data["freq"] / total))
        out[array] = sorted(
            (src, dst, freq) for (src, dst), freq in transitions.items()
        )
    return out


@dataclass
class LayoutEdge:
    """A remapping edge of the data layout graph."""

    src_phase: int
    dst_phase: int
    #: per (src candidate position, dst candidate position): cost in us
    costs: Dict[Tuple[int, int], float] = field(default_factory=dict)


@dataclass
class DataLayoutGraph:
    """Node and edge weights ready for the selection step."""

    phases: Sequence[Phase]
    pcfg: PCFG
    estimates: EstimationResult
    #: phase -> frequency-weighted node costs per candidate (us)
    node_costs: Dict[int, List[float]]
    edges: List[LayoutEdge]
    transitions: Dict[str, List[Tuple[int, int, float]]]

    def candidates(self, phase_index: int) -> List[EstimatedCandidate]:
        return self.estimates.per_phase[phase_index]

    def num_nodes(self) -> int:
        return sum(len(v) for v in self.estimates.per_phase.values())

    def evaluate(self, selection: Dict[int, int]) -> float:
        """Total estimated cost (us) of a full selection: node costs plus
        remapping edges.  Shared by the ILP (as a cross-check) and by every
        baseline selector."""
        total = 0.0
        for phase_index, costs in self.node_costs.items():
            total += costs[selection[phase_index]]
        for edge in self.edges:
            pair = (selection[edge.src_phase], selection[edge.dst_phase])
            total += edge.costs.get(pair, 0.0)
        return total


def build_layout_graph(
    phases: Sequence[Phase],
    pcfg: PCFG,
    estimates: EstimationResult,
    symbols: SymbolTable,
    db: TrainingDatabase,
    nprocs: int,
) -> DataLayoutGraph:
    """Assemble the data layout graph from estimates and the PCFG."""
    with tracing.span("graph.build", phases=len(phases)) as graph_span:
        graph = _build_layout_graph(
            phases, pcfg, estimates, symbols, db, nprocs
        )
        graph_span.set_attr("nodes", graph.num_nodes())
        graph_span.set_attr("edges", len(graph.edges))
        if tracing.detail_active():
            for array, edges in sorted(graph.transitions.items()):
                tracing.add_event(
                    "graph.transitions",
                    array=array,
                    transitions=[[src, dst, freq]
                                 for src, dst, freq in edges],
                )
    return graph


def _build_layout_graph(
    phases: Sequence[Phase],
    pcfg: PCFG,
    estimates: EstimationResult,
    symbols: SymbolTable,
    db: TrainingDatabase,
    nprocs: int,
) -> DataLayoutGraph:
    referencing: Dict[str, set] = {}
    for phase in phases:
        for array in phase.arrays:
            if isinstance(symbols.get(array), ArraySymbol):
                referencing.setdefault(array, set()).add(phase.index)

    transitions = array_transitions(pcfg, referencing)

    node_costs: Dict[int, List[float]] = {}
    for phase in phases:
        freq = pcfg.phase_frequency(phase.index)
        # The vanishing position-dependent factor breaks exact ties in
        # favour of earlier (simpler, prototype-shaped) candidates, so
        # the optimum is deterministic when estimates coincide.
        node_costs[phase.index] = [
            e.total * freq * (1.0 + 1e-9 * pos)
            for pos, e in enumerate(estimates.per_phase[phase.index])
        ]

    # Group per-array transitions by (src phase, dst phase).
    per_edge: Dict[Tuple[int, int], List[Tuple[str, float]]] = {}
    for array, edges in transitions.items():
        for src, dst, freq in edges:
            per_edge.setdefault((src, dst), []).append((array, freq))

    # Remap pricing is memoized: the transpose prediction depends only
    # on the array (its local block size), and a candidate's signature
    # for an array depends only on (candidate layout, array) — not on
    # the edge — so both are computed once and reused across the i x j
    # candidate pairs.  The accumulation order over ``array_freqs`` is
    # unchanged, keeping edge costs bitwise-equal to the direct loop.
    remap_cost: Dict[str, float] = {}

    def array_remap_cost(array: str) -> float:
        cost = remap_cost.get(array)
        if cost is None:
            symbol = symbols.array(array)
            local = max(symbol.total_bytes // nprocs, 1)
            cost = remap_cost[array] = db.predict(
                "transpose", nprocs, local, stride="nonunit",
                latency="high",
            )
        return cost

    _MISSING = (None,)
    sig_cache: Dict[Tuple[int, str], tuple] = {}

    def signature(cand: EstimatedCandidate, array: str) -> tuple:
        key = (id(cand), array)
        sig = sig_cache.get(key)
        if sig is None:
            try:
                sig = array_layout_signature(cand.candidate.layout, array)
            except KeyError:
                sig = _MISSING
            sig_cache[key] = sig
        return sig

    layout_edges: List[LayoutEdge] = []
    for (src, dst), array_freqs in sorted(per_edge.items()):
        edge = LayoutEdge(src_phase=src, dst_phase=dst)
        src_cands = estimates.per_phase[src]
        dst_cands = estimates.per_phase[dst]
        for i, src_cand in enumerate(src_cands):
            for j, dst_cand in enumerate(dst_cands):
                cost = 0.0
                for array, freq in array_freqs:
                    sig_from = signature(src_cand, array)
                    sig_to = signature(dst_cand, array)
                    if sig_from is _MISSING or sig_to is _MISSING:
                        continue
                    if sig_from == sig_to or not sig_from[0]:
                        continue
                    cost += freq * array_remap_cost(array)
                if cost > 0.0:
                    edge.costs[(i, j)] = cost
        if edge.costs:
            layout_edges.append(edge)

    return DataLayoutGraph(
        phases=phases,
        pcfg=pcfg,
        estimates=estimates,
        node_costs=node_costs,
        edges=layout_edges,
        transitions=transitions,
    )
