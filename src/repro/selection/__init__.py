"""Data layout selection: DLG, 0-1 optimum, and baseline selectors."""

from .layout_graph import (
    DataLayoutGraph,
    LayoutEdge,
    array_transitions,
    build_layout_graph,
)
from .ilp import (
    SelectionILP,
    SelectionResult,
    build_selection_model,
    select_layouts,
)
from .baselines import (
    best_static_selection,
    dp_selection,
    greedy_selection,
    static_selections,
)

__all__ = [
    "DataLayoutGraph", "LayoutEdge", "array_transitions",
    "build_layout_graph",
    "SelectionILP", "SelectionResult", "build_selection_model",
    "select_layouts",
    "greedy_selection", "static_selections", "best_static_selection",
    "dp_selection",
]
