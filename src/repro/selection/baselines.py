"""Baseline layout selectors, for the ablation benchmarks.

* :func:`greedy_selection` — pick each phase's locally cheapest candidate
  and ignore remapping costs (then account for them honestly when
  evaluating);
* :func:`static_selections` — the best *static* layout: one distribution
  for the whole program (per-phase candidates restricted to a single
  distribution signature), no remapping;
* :func:`dp_selection` — exact dynamic programming over the program-order
  phase chain; optimal whenever every remap edge connects consecutive
  phases in that order (straight-line programs such as Erlebacher), a
  heuristic otherwise.

All return ``(selection, cost)`` with costs from the shared
:meth:`DataLayoutGraph.evaluate`, so they are directly comparable with the
0-1 optimum.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .layout_graph import DataLayoutGraph


def greedy_selection(graph: DataLayoutGraph) -> Tuple[Dict[int, int], float]:
    """Locally cheapest candidate per phase (remap-blind)."""
    selection = {
        phase_index: min(range(len(costs)), key=lambda c: costs[c])
        for phase_index, costs in graph.node_costs.items()
    }
    return selection, graph.evaluate(selection)


def _distribution_signature(candidate) -> Tuple:
    dist = candidate.candidate.layout.distribution
    return tuple(
        (d, dist.dims[d].kind, dist.dims[d].procs, dist.dims[d].block)
        for d in dist.distributed_dims()
    )


def static_selections(
    graph: DataLayoutGraph,
) -> List[Tuple[Tuple, Dict[int, int], float]]:
    """For every distribution signature available in *all* phases, the
    cheapest phase-wise choice restricted to it.  Returns a list of
    ``(signature, selection, cost)`` sorted by cost."""
    # Signatures available per phase.
    per_phase_sigs: Dict[int, Dict[Tuple, List[int]]] = {}
    for phase_index, cands in graph.estimates.per_phase.items():
        sigs: Dict[Tuple, List[int]] = {}
        for pos, cand in enumerate(cands):
            sigs.setdefault(_distribution_signature(cand), []).append(pos)
        per_phase_sigs[phase_index] = sigs
    common = None
    for sigs in per_phase_sigs.values():
        keys = set(sigs)
        common = keys if common is None else (common & keys)
    results = []
    for sig in sorted(common or ()):
        selection = {}
        for phase_index, sigs in per_phase_sigs.items():
            positions = sigs[sig]
            costs = graph.node_costs[phase_index]
            selection[phase_index] = min(positions, key=lambda c: costs[c])
        results.append((sig, selection, graph.evaluate(selection)))
    results.sort(key=lambda r: r[2])
    return results


def best_static_selection(
    graph: DataLayoutGraph,
) -> Tuple[Dict[int, int], float]:
    """The cheapest fully static layout."""
    results = static_selections(graph)
    if not results:
        return greedy_selection(graph)
    _sig, selection, cost = results[0]
    return selection, cost


def dp_selection(graph: DataLayoutGraph) -> Tuple[Dict[int, int], float]:
    """Dynamic programming over the program-order chain of phases.

    Edge costs between non-consecutive phases (per-array gaps, loop
    back-edges) are folded in afterwards by the shared evaluator, so the
    reported cost is honest even where the chain assumption breaks.
    """
    order = sorted(graph.node_costs)
    if not order:
        return {}, 0.0
    # Consecutive-phase edge lookup.
    edge_costs: Dict[Tuple[int, int], Dict[Tuple[int, int], float]] = {}
    for edge in graph.edges:
        edge_costs.setdefault((edge.src_phase, edge.dst_phase), {}).update(
            edge.costs
        )

    first = order[0]
    table: List[Dict[int, Tuple[float, Optional[int]]]] = []
    table.append(
        {c: (cost, None) for c, cost in enumerate(graph.node_costs[first])}
    )
    for pos in range(1, len(order)):
        prev_phase, phase = order[pos - 1], order[pos]
        pair_costs = edge_costs.get((prev_phase, phase), {})
        row: Dict[int, Tuple[float, Optional[int]]] = {}
        for cand, node_cost in enumerate(graph.node_costs[phase]):
            best = None
            for prev_cand, (prev_cost, _) in table[-1].items():
                total = prev_cost + node_cost + pair_costs.get(
                    (prev_cand, cand), 0.0
                )
                if best is None or total < best[0]:
                    best = (total, prev_cand)
            row[cand] = best
        table.append(row)
    # Backtrack.
    last_cand = min(table[-1], key=lambda c: table[-1][c][0])
    selection = {order[-1]: last_cand}
    for pos in range(len(order) - 1, 0, -1):
        last_cand = table[pos][last_cand][1]
        selection[order[pos - 1]] = last_cand
    return selection, graph.evaluate(selection)
