"""Graph-level presolve + exact elimination for layout selection.

The selection ILP (one candidate per phase, remap edges) carries a lot
of slack a solver-agnostic pass can remove up front, in the spirit of
the constraint-network propagation Chen & Kandemir apply to 0-1 layout
programs.  Two optimum-preserving reductions run to a fixpoint on the
data layout graph itself:

* **dead-end elimination** (Goldstein's criterion): candidate ``i`` of
  phase ``p`` is pruned when some ``i'`` satisfies ``node(i') - node(i)
  + sum_e max_j [e(i', j) - e(i, j)] < 0`` — switching ``i -> i'``
  strictly improves *every* completion, so ``i`` is in no optimum;
* **conditioning**: a phase reduced to one candidate is fixed, and its
  remap-edge costs fold into the neighbouring phases' node costs.

What survives is a residual graph whose connected components are solved
independently — by exact **min-sum variable elimination** (nonserial
dynamic programming over elimination buckets) when the tables stay
small, falling back to a reduced component ILP otherwise.

Canonical tie-breaking: components eliminate phases in descending index
order and backtrack ascending, taking the *first* argmin at every step.
That yields the lexicographically smallest selection vector among the
optima — exactly the assignment the branch-bound backend's
lexicographically-greatest 0-1 rule decodes to — so the fast path, the
ILP path, and warm-started re-solves all agree bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..ilp import MINIMIZE, ZeroOneModel
from .layout_graph import DataLayoutGraph

#: largest elimination-bucket tensor (elements) before a component falls
#: back to the ILP — nonserial DP is exponential in the bucket scope.
TABLE_CAP = 65536


@dataclass
class SelectionPresolve:
    """Fixpoint of DEE + conditioning over a data layout graph."""

    graph: DataLayoutGraph
    #: phases proven to a single candidate (value is the position)
    fixed: Dict[int, int]
    #: residual phases -> surviving candidate positions (ascending)
    active: Dict[int, List[int]]
    #: conditioned node costs, full candidate index space per phase
    node: Dict[int, "np.ndarray"]
    #: merged remap matrices over full index spaces, keyed (p, q), p < q
    matrices: Dict[Tuple[int, int], "np.ndarray"]
    #: residual connected components (phases ascending)
    components: List[List[int]]
    #: number of (phase, candidate) pairs pruned by dead-end elimination
    pruned: int = 0

    def component_edges(
        self, comp: List[int]
    ) -> List[Tuple[int, int, "np.ndarray"]]:
        """Edges inside ``comp`` restricted to the active candidates."""
        members = set(comp)
        out = []
        for (p, q), matrix in sorted(self.matrices.items()):
            if p in members and q in members:
                sub = matrix[np.ix_(self.active[p], self.active[q])]
                if (sub != 0.0).any():
                    out.append((p, q, sub))
        return out


def presolve_selection(
    graph: DataLayoutGraph,
    allowed: Optional[Dict[int, set]] = None,
) -> SelectionPresolve:
    """Run dead-end elimination + conditioning to a fixpoint.

    Both rules only remove candidates that appear in **no** optimum (and
    fix phases whose candidate appears in **every** optimum), so the
    residual problem has exactly the original optima, shifted by a
    constant.  Raises ``RuntimeError`` when ``allowed`` empties a phase
    (the ILP would be infeasible — same outcome as the slow path).
    """
    node: Dict[int, np.ndarray] = {}
    active: Dict[int, List[int]] = {}
    for phase_index, costs in sorted(graph.node_costs.items()):
        node[phase_index] = np.array(costs, dtype=np.float64)
        positions = list(range(len(costs)))
        if allowed is not None and phase_index in allowed:
            positions = [c for c in positions if c in allowed[phase_index]]
            if not positions:
                raise RuntimeError("selection ILP infeasible")
        active[phase_index] = positions

    # Merge remap edges into one matrix per unordered phase pair; a
    # self-edge only ever charges its (i, i) diagonal, which is always
    # zero (same layout, same array), so it is dropped.
    matrices: Dict[Tuple[int, int], np.ndarray] = {}
    for edge in graph.edges:
        p, q = edge.src_phase, edge.dst_phase
        if p == q:
            continue
        key = (p, q) if p < q else (q, p)
        matrix = matrices.get(key)
        if matrix is None:
            matrix = matrices[key] = np.zeros(
                (len(node[key[0]]), len(node[key[1]]))
            )
        for (i, j), cost in edge.costs.items():
            if p < q:
                matrix[i, j] += cost
            else:
                matrix[j, i] += cost

    fixed: Dict[int, int] = {}
    pruned = 0

    def incident(p: int) -> List[Tuple[Tuple[int, int], bool]]:
        """Matrix keys touching ``p`` (True when ``p`` is the row axis)."""
        out = []
        for key in matrices:
            if key[0] == p:
                out.append((key, True))
            elif key[1] == p:
                out.append((key, False))
        return out

    changed = True
    while changed:
        changed = False
        # Conditioning: fold singleton phases into their neighbours.
        for p in sorted(active):
            if len(active[p]) != 1:
                continue
            c = active[p][0]
            for key, is_row in incident(p):
                matrix = matrices.pop(key)
                q = key[1] if is_row else key[0]
                if q in fixed:
                    continue  # constant cost; the evaluator charges it
                node[q] = node[q] + (matrix[c, :] if is_row
                                     else matrix[:, c])
            fixed[p] = c
            del active[p]
            changed = True
        # Dead-end elimination over the surviving candidates.
        for p in sorted(active):
            cands = active[p]
            m = len(cands)
            if m < 2:
                continue
            diff = node[p][cands][:, None] - node[p][cands][None, :]
            for key, is_row in incident(p):
                q = key[1] if is_row else key[0]
                sub = matrices[key][np.ix_(cands, active[q])] if is_row \
                    else matrices[key][np.ix_(active[q], cands)].T
                diff = diff + (
                    sub[:, None, :] - sub[None, :, :]
                ).max(axis=2)
            # diff[a, b] < 0: switching b -> a strictly improves every
            # completion, so candidate b survives in no optimum.
            dominated = (diff < 0.0).any(axis=0)
            if dominated.any():
                active[p] = [
                    c for c, dead in zip(cands, dominated) if not dead
                ]
                pruned += int(dominated.sum())
                changed = True

    # Residual connected components over the remaining edges.
    residual = sorted(active)
    parent = {p: p for p in residual}

    def find(p: int) -> int:
        while parent[p] != p:
            parent[p] = parent[parent[p]]
            p = parent[p]
        return p

    for (p, q), matrix in matrices.items():
        if p in parent and q in parent:
            sub = matrix[np.ix_(active[p], active[q])]
            if (sub != 0.0).any():
                parent[find(p)] = find(q)
    groups: Dict[int, List[int]] = {}
    for p in residual:
        groups.setdefault(find(p), []).append(p)
    components = sorted(sorted(g) for g in groups.values())

    return SelectionPresolve(
        graph=graph,
        fixed=fixed,
        active=active,
        node=node,
        matrices=matrices,
        components=components,
        pruned=pruned,
    )


def _align(arr: "np.ndarray", scope: Tuple[int, ...],
           target: Tuple[int, ...]) -> "np.ndarray":
    """Reshape a factor over ``scope`` for broadcasting over ``target``.

    Both are ascending phase tuples with ``scope`` a subset of
    ``target``, so inserting singleton axes preserves axis order.
    """
    shape = [1] * len(target)
    for size, p in zip(arr.shape, scope):
        shape[target.index(p)] = size
    return arr.reshape(shape)


def eliminate_component(
    pre: SelectionPresolve,
    comp: List[int],
    table_cap: int = TABLE_CAP,
) -> Optional[Dict[int, int]]:
    """Exactly solve one residual component by variable elimination.

    Returns the optimal candidate position per phase under the canonical
    tie-break, or ``None`` when an elimination bucket would exceed
    ``table_cap`` elements (the caller then solves the component as a
    reduced ILP).
    """
    domain = {p: pre.active[p] for p in comp}
    factors: List[Tuple[Tuple[int, ...], np.ndarray]] = [
        ((p,), pre.node[p][domain[p]]) for p in comp
    ]
    factors.extend(
        ((p, q), sub) for p, q, sub in pre.component_edges(comp)
    )

    #: per eliminated phase: (phase, remaining scope, bucket tensor with
    #: the phase's axis last)
    record: List[Tuple[int, Tuple[int, ...], np.ndarray]] = []
    for q in sorted(comp, reverse=True):
        bucket = [f for f in factors if q in f[0]]
        factors = [f for f in factors if q not in f[0]]
        target: Tuple[int, ...] = tuple(sorted(
            {p for scope, _ in bucket for p in scope}
        ))
        # q is the largest remaining phase, so it owns the last axis.
        size = 1
        for p in target:
            size *= len(domain[p])
        if size > table_cap:
            return None
        combined = np.zeros(tuple(len(domain[p]) for p in target))
        for scope, arr in sorted(bucket, key=lambda f: f[0]):
            combined = combined + _align(arr, scope, target)
        rest = target[:-1]
        record.append((q, rest, combined))
        if rest:
            factors.append((rest, combined.min(axis=-1)))

    # Backtrack in ascending phase order: at each step the first argmin
    # is the smallest candidate achieving the component optimum given
    # the already-assigned earlier phases — the lexicographically
    # smallest optimum overall.
    local: Dict[int, int] = {}
    for q, rest, tensor in reversed(record):
        vector = tensor[tuple(local[r] for r in rest)]
        local[q] = int(np.argmin(vector))
    return {p: domain[p][local[p]] for p in comp}


def build_component_model(
    pre: SelectionPresolve, comp: List[int]
) -> ZeroOneModel:
    """The reduced selection ILP of one residual component.

    Variables keep the full model's ``x:{phase}:{cand}`` naming (over
    surviving candidates only, in the original insertion order) so warm
    starts project directly, plus the usual ``y`` linking variables for
    positive remap entries; node costs are the *conditioned* ones.
    """
    model = ZeroOneModel(name="layout-selection:residual", sense=MINIMIZE)
    objective: Dict[str, float] = {}
    for p in comp:
        for c in pre.active[p]:
            var = model.add_var(f"x:{p}:{c}")
            objective[var] = float(pre.node[p][c])
        model.add_constraint(
            {f"x:{p}:{c}": 1.0 for c in pre.active[p]},
            "==",
            1.0,
            name=f"one-layout:{p}",
        )
    for p, q, sub in pre.component_edges(comp):
        for a, i in enumerate(pre.active[p]):
            for b, j in enumerate(pre.active[q]):
                cost = float(sub[a, b])
                if cost <= 0.0:
                    continue
                yvar = model.add_var(f"y:{p}:{i}:{q}:{j}")
                objective[yvar] = cost
                model.add_constraint(
                    {
                        yvar: 1.0,
                        f"x:{p}:{i}": -1.0,
                        f"x:{q}:{j}": -1.0,
                    },
                    ">=",
                    -1.0,
                    name=f"remap:{p}:{i}->{q}:{j}",
                )
    model.set_objective(objective)
    return model
