"""0-1 integer programming formulation of the data layout selection
problem (Bixby, Kennedy, Kremer — PACT'94; paper Section 2.4).

The problem — pick one candidate per phase minimizing node costs plus
remapping edge costs — is NP-complete (Kremer '93).  The 0-1 translation:

* node variables ``x[p,i]``: candidate ``i`` selected for phase ``p``;
  exactly-one constraints per phase;
* edge variables ``y[p,i,q,j]`` for every remapping edge with positive
  cost, with ``y >= x[p,i] + x[q,j] - 1`` linking constraints (since edge
  costs are positive and the objective minimizes, ``y`` is driven to the
  indicator of both endpoints being selected);
* objective: minimize ``sum x * node_cost + sum y * edge_cost``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..ilp import (
    MINIMIZE,
    Solution,
    SolveStats,
    ZeroOneModel,
    solve as ilp_solve,
)
from ..obs import tracing
from ..resilience.deadline import remaining_budget
from ..resilience.degrade import note_degradation
from .layout_graph import DataLayoutGraph
from .presolve import (
    build_component_model,
    eliminate_component,
    presolve_selection,
)


def _x(phase: int, cand: int) -> str:
    return f"x:{phase}:{cand}"


def _y(p: int, i: int, q: int, j: int) -> str:
    return f"y:{p}:{i}:{q}:{j}"


@dataclass
class SelectionILP:
    """Built model plus decode metadata."""

    model: ZeroOneModel
    graph: DataLayoutGraph

    @property
    def num_variables(self) -> int:
        return self.model.num_variables

    @property
    def num_constraints(self) -> int:
        return self.model.num_constraints


def build_selection_model(
    graph: DataLayoutGraph,
    allowed: Optional[Dict[int, set]] = None,
) -> SelectionILP:
    """Translate the data layout graph into the 0-1 selection model.

    ``allowed`` optionally restricts the candidate positions per phase
    (used to solve for the best layout *within* a static scheme, and to
    honour user edits of the search spaces)."""
    model = ZeroOneModel(name="layout-selection", sense=MINIMIZE)
    objective: Dict[str, float] = {}

    for phase_index, costs in sorted(graph.node_costs.items()):
        for cand, cost in enumerate(costs):
            var = model.add_var(_x(phase_index, cand))
            objective[var] = cost
        model.add_constraint(
            {_x(phase_index, c): 1.0 for c in range(len(costs))},
            "==",
            1.0,
            name=f"one-layout:{phase_index}",
        )
        if allowed is not None and phase_index in allowed:
            for cand in range(len(costs)):
                if cand not in allowed[phase_index]:
                    model.add_constraint(
                        {_x(phase_index, cand): 1.0},
                        "==",
                        0.0,
                        name=f"forbid:{phase_index}:{cand}",
                    )

    for edge in graph.edges:
        p, q = edge.src_phase, edge.dst_phase
        for (i, j), cost in sorted(edge.costs.items()):
            yvar = model.add_var(_y(p, i, q, j))
            objective[yvar] = cost
            # y >= x_p_i + x_q_j - 1
            model.add_constraint(
                {
                    yvar: 1.0,
                    _x(p, i): -1.0,
                    _x(q, j): -1.0,
                },
                ">=",
                -1.0,
                name=f"remap:{p}:{i}->{q}:{j}",
            )
    model.set_objective(objective)
    return SelectionILP(model=model, graph=graph)


@dataclass
class SelectionResult:
    """Selected candidate position per phase (optimal unless flagged)."""

    selection: Dict[int, int]
    objective: float
    solution: Solution
    num_variables: int
    num_constraints: int
    optimal: bool = True  # False when a deadline forced a fallback


def greedy_selection(
    graph: DataLayoutGraph,
    allowed: Optional[Dict[int, set]] = None,
) -> Dict[int, int]:
    """Greedy layout selection: the anytime fallback when the selection
    ILP's budget expires with no incumbent.

    Walks phases in program order picking, for each, the candidate that
    minimizes its node cost plus the remapping cost from the previous
    choices — the classic one-pass heuristic the paper's exact ILP
    improves upon (Section 2.4).
    """
    # Remapping edges into each phase from already-decided phases.
    incoming: Dict[int, list] = {}
    for edge in graph.edges:
        incoming.setdefault(edge.dst_phase, []).append(edge)

    selection: Dict[int, int] = {}
    for phase_index, costs in sorted(graph.node_costs.items()):
        candidates = range(len(costs))
        if allowed is not None and phase_index in allowed:
            candidates = [
                c for c in candidates if c in allowed[phase_index]
            ] or list(range(len(costs)))
        best_cand, best_cost = None, None
        for cand in candidates:
            cost = costs[cand]
            for edge in incoming.get(phase_index, ()):
                prev = selection.get(edge.src_phase)
                if prev is not None:
                    cost += edge.costs.get((prev, cand), 0.0)
            if best_cost is None or cost < best_cost:
                best_cand, best_cost = cand, cost
        selection[phase_index] = best_cand if best_cand is not None else 0
    return selection


def _model_shape(
    graph: DataLayoutGraph, allowed: Optional[Dict[int, set]]
) -> Tuple[int, int]:
    """Variable/constraint counts of the full selection model, computed
    without building it (reported by the presolve fast path)."""
    nvars = ncons = 0
    for phase_index, costs in graph.node_costs.items():
        nvars += len(costs)
        ncons += 1
        if allowed is not None and phase_index in allowed:
            ncons += sum(
                1 for c in range(len(costs)) if c not in allowed[phase_index]
            )
    for edge in graph.edges:
        nvars += len(edge.costs)
        ncons += len(edge.costs)
    return nvars, ncons


def _warm_values(
    model: ZeroOneModel, warm_start: Dict[int, int]
) -> Dict[str, int]:
    """Expand a phase -> candidate warm start into model variable values
    (``y`` variables take their indicator value, which is feasible)."""
    values: Dict[str, int] = {}
    for var in model.variables:
        kind, rest = var.split(":", 1)
        if kind == "x":
            p, c = (int(t) for t in rest.split(":"))
            values[var] = 1 if warm_start.get(p) == c else 0
        else:
            p, i, q, j = (int(t) for t in rest.split(":"))
            values[var] = (
                1 if warm_start.get(p) == i and warm_start.get(q) == j
                else 0
            )
    return values


def _solution_values(
    graph: DataLayoutGraph, selection: Dict[int, int]
) -> Dict[str, int]:
    """The full-model variable assignment a selection corresponds to."""
    values: Dict[str, int] = {}
    for phase_index, costs in graph.node_costs.items():
        for cand in range(len(costs)):
            values[_x(phase_index, cand)] = (
                1 if selection[phase_index] == cand else 0
            )
    for edge in graph.edges:
        p, q = edge.src_phase, edge.dst_phase
        for (i, j) in edge.costs:
            values[_y(p, i, q, j)] = (
                1 if selection[p] == i and selection[q] == j else 0
            )
    return values


def _greedy_degraded(
    graph: DataLayoutGraph,
    allowed: Optional[Dict[int, set]],
    nvars: int,
    ncons: int,
    detail: str,
) -> SelectionResult:
    """The deadline-expired fallback shared by both solve paths."""
    note_degradation("selection", "greedy-fallback", detail)
    selection = greedy_selection(graph, allowed=allowed)
    evaluated = graph.evaluate(selection)
    return SelectionResult(
        selection=selection,
        objective=evaluated,
        solution=Solution(
            status="unknown",
            objective=float("nan"),
            values={},
            stats=SolveStats(backend="presolve"),
        ),
        num_variables=nvars,
        num_constraints=ncons,
        optimal=False,
    )


def _select_presolved(
    graph: DataLayoutGraph,
    backend: str,
    allowed: Optional[Dict[int, set]],
    warm_start: Optional[Dict[int, int]],
    nvars: int,
    ncons: int,
) -> Optional[SelectionResult]:
    """The presolve + exact-elimination fast path.

    Returns ``None`` when the request budget is already spent (the
    legacy path owns that degradation) — otherwise a complete
    :class:`SelectionResult` equal to the legacy path's.
    """
    budget = remaining_budget()
    if budget is not None and budget <= 0:
        return None
    start = time.perf_counter()
    with tracing.span(
        "ilp.presolve", name="layout-selection", variables=nvars
    ) as psp:
        pre = presolve_selection(graph, allowed=allowed)
        psp.set_attr("fixed", len(pre.fixed))
        psp.set_attr("pruned", pre.pruned)
        psp.set_attr("components", len(pre.components))
    selection: Dict[int, int] = dict(pre.fixed)
    optimal = True
    for comp in pre.components:
        budget = remaining_budget()
        if budget is not None and budget <= 0:
            return _greedy_degraded(
                graph, allowed, nvars, ncons,
                "deadline expired during presolve; "
                "greedy one-pass selection",
            )
        solved = eliminate_component(pre, comp)
        if solved is not None:
            selection.update(solved)
            continue
        # Elimination table too large: solve the component as a reduced
        # ILP (same candidate costs, conditioned), warm-started when a
        # previous selection is available.
        model = build_component_model(pre, comp)
        seed = None if warm_start is None else _warm_values(
            model, warm_start
        )
        sub = ilp_solve(model, backend=backend, warm_start=seed)
        if sub.has_incumbent:
            for p in comp:
                for c in pre.active[p]:
                    if sub.values.get(_x(p, c)) == 1:
                        selection[p] = c
                        break
                else:  # pragma: no cover - guaranteed by exactly-one
                    raise AssertionError(f"no candidate chosen for {p}")
            if not sub.is_optimal:
                optimal = False
                note_degradation(
                    "selection", "incumbent",
                    f"solver stopped at {sub.status}; "
                    f"using best incumbent",
                )
        elif sub.status == "unknown":
            return _greedy_degraded(
                graph, allowed, nvars, ncons,
                "no incumbent within budget; greedy one-pass selection",
            )
        else:
            # Exactly-one rows make the model feasible by construction.
            raise RuntimeError(f"selection ILP {sub.status}")
    evaluated = graph.evaluate(selection)
    solution = Solution(
        status="optimal" if optimal else "time_limit",
        objective=evaluated,
        values=_solution_values(graph, selection),
        stats=SolveStats(
            backend=f"{backend}+presolve",
            wall_time=time.perf_counter() - start,
        ),
    )
    return SelectionResult(
        selection=selection,
        objective=evaluated,
        solution=solution,
        num_variables=nvars,
        num_constraints=ncons,
        optimal=optimal,
    )


def select_layouts(
    graph: DataLayoutGraph,
    backend: str = "scipy",
    allowed: Optional[Dict[int, set]] = None,
    presolve: bool = True,
    warm_start: Optional[Dict[int, int]] = None,
) -> SelectionResult:
    """Solve the selection problem to proven optimality.

    By default the graph-level presolve (dead-end elimination +
    conditioning, :mod:`repro.selection.presolve`) fixes most phases and
    the residual components are solved by exact variable elimination —
    the full 0-1 model is only built when ``presolve=False`` or a
    residual component outgrows the elimination tables.  Both paths
    return the same canonical optimum.

    ``warm_start`` (a previous phase -> candidate selection, e.g. along
    a remap chain of re-solves) seeds any branch-bound solve with a
    known incumbent; it never changes the result.

    If a request deadline cuts the solve short, the best incumbent (or
    the greedy one-pass selection) is returned with ``optimal=False``
    and a degradation note instead of an exception.
    """
    with tracing.span(
        "selection.solve", backend=backend, presolve=presolve
    ) as sp:
        nvars, ncons = _model_shape(graph, allowed)
        sp.set_attr("variables", nvars)
        sp.set_attr("constraints", ncons)
        if presolve:
            result = _select_presolved(
                graph, backend, allowed, warm_start, nvars, ncons
            )
            if result is not None:
                sp.set_attr("objective_us", result.objective)
                sp.set_attr("optimal", result.optimal)
                if tracing.detail_active():
                    _record_provenance(graph, result.selection)
                return result
        ilp = build_selection_model(graph, allowed=allowed)
        seed = None if warm_start is None else _warm_values(
            ilp.model, warm_start
        )
        solution = ilp_solve(ilp.model, backend=backend, warm_start=seed)
        optimal = solution.is_optimal
        if solution.has_incumbent:
            selection: Dict[int, int] = {}
            for phase_index, costs in graph.node_costs.items():
                for cand in range(len(costs)):
                    if solution.values.get(_x(phase_index, cand)) == 1:
                        selection[phase_index] = cand
                        break
                else:  # pragma: no cover - guaranteed by exactly-one
                    raise AssertionError(
                        f"no candidate chosen for {phase_index}"
                    )
            if not optimal:
                note_degradation(
                    "selection", "incumbent",
                    f"solver stopped at {solution.status}; "
                    f"using best incumbent",
                )
        elif solution.status == "unknown":
            selection = greedy_selection(graph, allowed=allowed)
            note_degradation(
                "selection", "greedy-fallback",
                "no incumbent within budget; greedy one-pass selection",
            )
        else:
            # Exactly-one rows make the model feasible by construction.
            raise RuntimeError(f"selection ILP {solution.status}")
        evaluated = graph.evaluate(selection)
        if optimal:
            # Cross-check the ILP objective against the shared evaluator.
            # (Skipped for incumbents: their y-variables may sit above
            # the implied indicator values, inflating the reported
            # objective; ``evaluated`` is authoritative either way.)
            if abs(evaluated - solution.objective) > max(
                1e-6 * evaluated, 1e-3
            ):
                raise AssertionError(
                    f"ILP objective {solution.objective} != "
                    f"evaluated {evaluated}"
                )
        sp.set_attr("objective_us", evaluated)
        sp.set_attr("optimal", optimal)
        if tracing.detail_active():
            _record_provenance(graph, selection)
    return SelectionResult(
        selection=selection,
        objective=evaluated,
        solution=solution,
        num_variables=ilp.num_variables,
        num_constraints=ilp.num_constraints,
        optimal=optimal,
    )


def _record_provenance(
    graph: DataLayoutGraph, selection: Dict[int, int]
) -> None:
    """Record why each phase got its layout: the chosen candidate (with
    the full cost vector it won against) and every remapping decision."""
    for phase_index, position in sorted(selection.items()):
        chosen = graph.estimates.per_phase[phase_index][position]
        layout = chosen.candidate.layout
        costs = graph.node_costs[phase_index]
        tracing.add_event(
            "selection.choice",
            phase=phase_index,
            position=position,
            layout=layout.describe(),
            distribution=str(layout.distribution),
            alignment_provenance=chosen.candidate.alignment.provenance,
            node_cost_us=costs[position],
            costs_us=list(costs),
            alignments={name: str(align)
                        for name, align in layout.alignments},
        )
    for edge in graph.edges:
        pair = (selection[edge.src_phase], selection[edge.dst_phase])
        cost = edge.costs.get(pair, 0.0)
        tracing.add_event(
            "selection.remap",
            src_phase=edge.src_phase,
            dst_phase=edge.dst_phase,
            cost_us=cost,
            remapped=cost > 0.0,
        )
