"""Simulated iPSC/860-style machine substrate."""

from .params import IPSC860, MACHINES, PARAGON, MachineParams
from .network import (
    hops,
    hypercube_dimension,
    is_power_of_two,
    neighbors,
    point_to_point_time,
)
from .node import expr_cost, statement_cost, stmt_dtype
from .collectives import (
    broadcast_time,
    redistribute_time,
    reduction_time,
    shift_time,
    transpose_time,
)
from .simulator import (
    Collective,
    SimResult,
    SimStats,
    SimulationError,
    simulate,
)

__all__ = [
    "MachineParams", "IPSC860", "PARAGON", "MACHINES",
    "hops", "hypercube_dimension", "is_power_of_two", "neighbors",
    "point_to_point_time",
    "expr_cost", "statement_cost", "stmt_dtype",
    "broadcast_time", "reduction_time", "shift_time", "transpose_time",
    "redistribute_time",
    "Collective", "SimResult", "SimStats", "SimulationError", "simulate",
]
