"""Event-level communication patterns.

Collective operations are built from point-to-point sends and receives —
as the Fortran D runtime built them — instead of analytic formulas.  Both
the SPMD code generator (collectives *in context*, where entry skew and
serialization against neighbouring phases are emergent) and the
training-set generator (collectives *in isolation*, balanced entry) emit
the same structures, so the estimator's trained costs genuinely are
microbenchmark measurements of the machine, and in-context behaviour may
deviate — the same relationship the paper's tool has to its machine.

All helpers append ops to per-processor op lists (see
:mod:`repro.machine.simulator` for the op forms).

Algorithms:

* **broadcast** — binomial tree rooted at 0: round ``r`` has processors
  ``< 2^r`` send to partner ``+ 2^r``;
* **reduction** — mirrored binomial tree toward 0, with a combine-cost
  compute op per received message;
* **all-to-all / transpose / redistribution** — direct pairwise exchange:
  each processor sends ``P - 1`` chunks of ``local/P`` bytes round-robin
  (rank-ordered to avoid hot spots), then drains its receives.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def _resolve(ranks: Optional[Sequence[int]], nprocs_all: int):
    """Participant ranks of a collective: the whole machine, or the
    subgroup ``ranks`` (e.g. one axis of a processor grid)."""
    if ranks is None:
        return list(range(nprocs_all))
    return list(ranks)


def append_broadcast(
    programs: Sequence[List[tuple]],
    nbytes: int,
    buffered: bool = False,
    root: int = 0,
    ranks: Optional[Sequence[int]] = None,
) -> None:
    """Binomial-tree broadcast of ``nbytes`` from participant ``root``
    (an index into ``ranks``) to every participant.

    ``ranks`` restricts the collective to a processor subgroup (e.g. one
    axis of a multi-dimensional grid); positions are relative to the
    root (rotation keeps the tree shape)."""
    group = _resolve(ranks, len(programs))
    nprocs = len(group)
    if nprocs <= 1:
        return
    span = 1
    while span < nprocs:
        for rel in range(span):
            partner = rel + span
            if partner >= nprocs:
                continue
            src = group[(root + rel) % nprocs]
            dst = group[(root + partner) % nprocs]
            programs[src].append(("send", dst, nbytes, buffered))
            programs[dst].append(("recv", src))
        span *= 2


def append_reduction(
    programs: Sequence[List[tuple]],
    nbytes: int,
    combine_cost: float = 0.0,
    root: int = 0,
    ranks: Optional[Sequence[int]] = None,
) -> None:
    """Binomial-tree reduction of ``nbytes`` onto participant ``root``."""
    group = _resolve(ranks, len(programs))
    nprocs = len(group)
    if nprocs <= 1:
        return
    span = 1
    while span < nprocs:
        span *= 2
    span //= 2
    while span >= 1:
        for rel in range(span):
            partner = rel + span
            if partner >= nprocs:
                continue
            src = group[(root + partner) % nprocs]
            dst = group[(root + rel) % nprocs]
            programs[src].append(("send", dst, nbytes, False))
            programs[dst].append(("recv", src))
            if combine_cost > 0.0:
                programs[dst].append(("compute", combine_cost))
        span //= 2


def append_alltoall(
    programs: Sequence[List[tuple]],
    local_bytes: int,
    buffered: bool = True,
    pack_cost_per_byte: float = 0.0,
    ranks: Optional[Sequence[int]] = None,
) -> None:
    """Direct pairwise exchange of each participant's ``local_bytes``
    (chunk ``local/P`` per partner).  This is the runtime's transpose /
    redistribution primitive."""
    group = _resolve(ranks, len(programs))
    nprocs = len(group)
    if nprocs <= 1:
        return
    chunk = max(local_bytes // nprocs, 1)
    if pack_cost_per_byte > 0.0:
        for proc in group:
            programs[proc].append(
                ("compute", local_bytes * pack_cost_per_byte)
            )
    for step in range(1, nprocs):
        for pos, proc in enumerate(group):
            programs[proc].append(
                ("send", group[(pos + step) % nprocs], chunk, buffered)
            )
    for step in range(1, nprocs):
        for pos, proc in enumerate(group):
            programs[proc].append(("recv", group[(pos - step) % nprocs]))


def append_reduce_broadcast(
    programs: Sequence[List[tuple]],
    nbytes: int,
    combine_cost: float = 0.0,
    ranks: Optional[Sequence[int]] = None,
) -> None:
    """Global reduction whose result every participant needs (the
    Fortran D scheme for scalar reductions): reduce to 0, broadcast
    back."""
    append_reduction(programs, nbytes, combine_cost=combine_cost, root=0,
                     ranks=ranks)
    append_broadcast(programs, nbytes, buffered=False, root=0, ranks=ranks)
