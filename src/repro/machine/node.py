"""Node computation-cost model.

Walks statement ASTs and prices one execution of each statement on the
simulated node processor.  Both the training-set generator (which times
microbenchmark loops) and the SPMD code generator (which emits compute
blocks) use this model, so estimator and simulator agree on *per-iteration
arithmetic* and differ only where the paper's models differ (communication
placement, boundary handling, synchronization).
"""

from __future__ import annotations

from typing import Optional

from ..frontend import ast
from ..frontend.symbols import SymbolTable
from .params import MachineParams

#: operators priced as additions
_ADDITIVE = {"+", "-"}
_RELATIONAL = {"<", "<=", ">", ">=", "==", "/="}


def expr_cost(
    expr: ast.Expr,
    params: MachineParams,
    symbols: Optional[SymbolTable] = None,
    dtype_factor: float = 1.0,
) -> float:
    """Arithmetic + memory cost of evaluating ``expr`` once (microseconds)."""
    if isinstance(expr, (ast.IntLit, ast.RealLit, ast.LogicalLit)):
        return 0.0
    if isinstance(expr, ast.Var):
        return 0.01  # register-resident scalar
    if isinstance(expr, ast.ArrayRef):
        cost = params.op_load * dtype_factor
        for sub in expr.subscripts:
            cost += expr_cost(sub, params, symbols, 1.0) * 0.25
        return cost
    if isinstance(expr, ast.UnaryOp):
        inner = expr_cost(expr.operand, params, symbols, dtype_factor)
        if expr.op in ("-", "+"):
            return inner + 0.5 * params.op_add * dtype_factor
        return inner + 0.02
    if isinstance(expr, ast.BinOp):
        left = expr_cost(expr.left, params, symbols, dtype_factor)
        right = expr_cost(expr.right, params, symbols, dtype_factor)
        if expr.op in _ADDITIVE:
            op = params.op_add
        elif expr.op == "*":
            op = params.op_mul
        elif expr.op == "/":
            op = params.op_div
        elif expr.op == "**":
            op = params.op_pow
        elif expr.op in _RELATIONAL:
            op = params.op_add
        else:  # logical
            op = 0.05
        return left + right + op * dtype_factor
    if isinstance(expr, ast.Call):
        cost = params.op_intrinsic * dtype_factor
        for arg in expr.args:
            cost += expr_cost(arg, params, symbols, dtype_factor)
        # min/max/abs are cheap compared to transcendental intrinsics.
        if expr.name in ("min", "max", "abs", "mod", "sign", "int", "float",
                         "real", "dble"):
            cost -= 0.8 * params.op_intrinsic * dtype_factor
        return cost
    raise TypeError(f"cannot price expression {type(expr).__name__}")


def statement_cost(
    stmt: ast.Stmt,
    params: MachineParams,
    symbols: Optional[SymbolTable] = None,
    dtype: str = "double",
) -> float:
    """Cost of one execution of a simple statement body (assignments and
    IF conditions; loop statements are priced by the code generator via
    iteration counts)."""
    factor = params.dtype_factor(dtype)
    if isinstance(stmt, ast.Assign):
        cost = expr_cost(stmt.expr, params, symbols, factor)
        cost += params.op_store * factor
        if isinstance(stmt.target, ast.ArrayRef):
            for sub in stmt.target.subscripts:
                cost += expr_cost(sub, params, symbols, 1.0) * 0.25
        return cost + params.op_loop_overhead
    if isinstance(stmt, ast.If):
        return expr_cost(stmt.cond, params, symbols, factor) + 0.05
    if isinstance(stmt, ast.Continue):
        return 0.0
    raise TypeError(
        f"statement_cost prices simple statements, not {type(stmt).__name__}"
    )


def stmt_dtype(stmt: ast.Assign, symbols: SymbolTable) -> str:
    """Data type driving a statement's arithmetic (its target's type)."""
    name = stmt.target.name
    symbol = symbols.get(name)
    if symbol is None:
        return "double"
    return symbol.dtype
