"""Collective-communication timing models on the hypercube.

The training sets the paper describes cover broadcasts, reductions, and
transposes besides point-to-point patterns.  We model the classic
hypercube algorithms:

* **broadcast** — spanning binomial tree, ``log2 P`` message stages;
* **reduction** — mirror of broadcast, plus a combine op per stage;
* **transpose / all-to-all** — recursive pairwise exchange: ``log2 P``
  stages exchanging half the local data each, the standard hypercube
  all-to-all (total volume ``(P-1)/P`` of the array per node);
* **shift** — every node sends one boundary block to a neighbour (the
  nearest-neighbour pattern of stencil codes);
* **redistribute** — the general layout-change pattern priced as an
  all-to-all of the array's per-node share.

Each returns the *makespan* of the collective for data of ``nbytes``
bytes per node.
"""

from __future__ import annotations

from .network import hypercube_dimension
from .params import MachineParams


def broadcast_time(params: MachineParams, nprocs: int, nbytes: int,
                   buffered: bool = False) -> float:
    """One-to-all broadcast of ``nbytes``."""
    if nprocs <= 1:
        return 0.0
    stages = hypercube_dimension(nprocs)
    return stages * params.message_time(nbytes, hops=1, buffered=buffered)


def reduction_time(params: MachineParams, nprocs: int, nbytes: int,
                   combine_per_byte: float = 0.02) -> float:
    """All-to-one reduction of ``nbytes`` (plus combine arithmetic)."""
    if nprocs <= 1:
        return 0.0
    stages = hypercube_dimension(nprocs)
    per_stage = params.message_time(nbytes, hops=1) + nbytes * combine_per_byte
    return stages * per_stage


def shift_time(params: MachineParams, nbytes: int,
               buffered: bool = False) -> float:
    """Nearest-neighbour boundary exchange (all pairs in parallel)."""
    return params.message_time(nbytes, hops=1, buffered=buffered)


def transpose_time(params: MachineParams, nprocs: int,
                   local_bytes: int, buffered: bool = True) -> float:
    """All-to-all exchange of a node's ``local_bytes`` of array data.

    Direct pairwise exchange (the Fortran D runtime's transpose): each
    node sends ``P - 1`` chunks of ``local/P`` bytes, so the local data
    crosses the network exactly once; per-chunk software latency is paid
    ``P - 1`` times.  Transposes pack strided slices, so they are buffered
    by default."""
    if nprocs <= 1:
        return 0.0
    chunk = max(local_bytes // nprocs, 1)
    per_partner = params.message_time(chunk, hops=1, buffered=buffered)
    return (nprocs - 1) * per_partner


def redistribute_time(params: MachineParams, nprocs: int,
                      total_bytes: int, buffered: bool = True) -> float:
    """Time to change an array's distribution (e.g. row -> column blocks):
    priced as the hypercube all-to-all over each node's share."""
    if nprocs <= 1:
        return 0.0
    local = max(total_bytes // nprocs, 1)
    return transpose_time(params, nprocs, local, buffered=buffered)
