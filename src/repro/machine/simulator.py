"""Deterministic discrete-event simulator of an SPMD message-passing run.

Each processor executes a *node program*: a flat list of operations
produced by the SPMD code generator.  Operation forms (plain tuples, for
speed — node programs can run to hundreds of thousands of ops for
fine-grain pipelines):

``("compute", duration)``
    local computation for ``duration`` microseconds;
``("send", dst, nbytes, buffered)``
    asynchronous send: the sender is occupied for its software overhead
    and the message becomes available to ``dst`` after the full message
    time (pack/transit/unpack);
``("recv", src)``
    blocking receive of the next FIFO message from ``src``;
``("coll", coll_id)``
    a collective operation: all participants block until everyone has
    arrived, then all leave at ``max(entry times) + duration`` (durations
    and participant groups are registered per ``coll_id``).

The simulation is event-ordered with stable FIFO channels and contains no
randomness: identical inputs give identical makespans.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from .network import point_to_point_time
from .params import MachineParams


class SimulationError(Exception):
    """Raised on deadlock or malformed node programs."""


@dataclass(frozen=True)
class Collective:
    """A registered collective: which processors take part and how long
    the operation takes once everyone has arrived."""

    participants: Tuple[int, ...]
    duration: float


@dataclass
class SimStats:
    """Aggregate counters of one simulated run."""

    messages: int = 0
    bytes_sent: int = 0
    compute_time: float = 0.0  # summed over processors
    recv_wait_time: float = 0.0
    collective_count: int = 0


@dataclass
class SimResult:
    """Outcome of a simulation."""

    makespan: float
    proc_times: List[float]
    stats: SimStats


def simulate(
    programs: Sequence[Sequence[tuple]],
    params: MachineParams,
    collectives: Optional[Dict[int, Collective]] = None,
) -> SimResult:
    """Run the node programs to completion and return timing results."""
    nprocs = len(programs)
    collectives = collectives or {}
    clocks = [0.0] * nprocs
    pcs = [0] * nprocs
    lengths = [len(p) for p in programs]
    channels: Dict[Tuple[int, int], Deque[float]] = {}
    coll_entries: Dict[int, Dict[int, float]] = {}
    coll_done: Dict[int, float] = {}
    stats = SimStats()

    def runnable(proc: int) -> bool:
        return pcs[proc] < lengths[proc]

    remaining = sum(lengths)
    while remaining > 0:
        progress = False
        for proc in range(nprocs):
            ops = programs[proc]
            while pcs[proc] < lengths[proc]:
                op = ops[pcs[proc]]
                kind = op[0]
                if kind == "compute":
                    clocks[proc] += op[1]
                    stats.compute_time += op[1]
                elif kind == "send":
                    _, dst, nbytes, buffered = op
                    if not 0 <= dst < nprocs:
                        raise SimulationError(
                            f"send to invalid processor {dst}"
                        )
                    start = clocks[proc]
                    clocks[proc] = start + params.send_overhead(
                        nbytes, buffered=buffered
                    )
                    arrival = start + point_to_point_time(
                        params, proc, dst, nbytes, buffered=buffered
                    )
                    channels.setdefault((proc, dst), deque()).append(arrival)
                    stats.messages += 1
                    stats.bytes_sent += nbytes
                elif kind == "recv":
                    src = op[1]
                    queue = channels.get((src, proc))
                    if not queue:
                        break  # blocked: message not sent yet
                    arrival = queue.popleft()
                    wait = max(arrival - clocks[proc], 0.0)
                    stats.recv_wait_time += wait
                    clocks[proc] = (
                        max(clocks[proc], arrival) + params.recv_overhead
                    )
                elif kind == "coll":
                    coll_id = op[1]
                    try:
                        coll = collectives[coll_id]
                    except KeyError:
                        raise SimulationError(
                            f"unregistered collective {coll_id}"
                        ) from None
                    if coll_id in coll_done:
                        clocks[proc] = max(clocks[proc], coll_done[coll_id])
                    else:
                        entries = coll_entries.setdefault(coll_id, {})
                        entries.setdefault(proc, clocks[proc])
                        if len(entries) < len(coll.participants):
                            break  # blocked: waiting for the others
                        completion = max(entries.values()) + coll.duration
                        coll_done[coll_id] = completion
                        clocks[proc] = completion
                        stats.collective_count += 1
                else:
                    raise SimulationError(f"unknown op kind {kind!r}")
                pcs[proc] += 1
                remaining -= 1
                progress = True
        if not progress:
            stuck = [
                (proc, programs[proc][pcs[proc]])
                for proc in range(nprocs)
                if runnable(proc)
            ]
            raise SimulationError(f"deadlock; blocked ops: {stuck[:8]}")

    return SimResult(
        makespan=max(clocks) if clocks else 0.0,
        proc_times=clocks,
        stats=stats,
    )
