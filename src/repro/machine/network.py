"""Hypercube interconnect model.

The iPSC/860 is a binary hypercube of up to 128 nodes with
circuit-switched (distance-nearly-insensitive) routing; we keep the
Hamming-distance hop count as a small additive term and use it for the
collective algorithms' structure.
"""

from __future__ import annotations

from typing import List

from .params import MachineParams


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def hypercube_dimension(nprocs: int) -> int:
    """log2(nprocs); nprocs must be a power of two (as on the iPSC)."""
    if not is_power_of_two(nprocs):
        raise ValueError(f"hypercube size must be a power of two, got {nprocs}")
    return nprocs.bit_length() - 1


def hops(src: int, dst: int) -> int:
    """Hamming distance between node numbers = routing hops."""
    return bin(src ^ dst).count("1")


def neighbors(node: int, nprocs: int) -> List[int]:
    """Hypercube neighbours of ``node``."""
    dim = hypercube_dimension(nprocs)
    return [node ^ (1 << d) for d in range(dim)]


def point_to_point_time(
    params: MachineParams,
    src: int,
    dst: int,
    nbytes: int,
    buffered: bool = False,
) -> float:
    """End-to-end message time between two nodes."""
    if src == dst:
        return 0.0
    return params.message_time(nbytes, hops=hops(src, dst), buffered=buffered)
