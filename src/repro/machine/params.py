"""Machine parameters for the simulated target architecture.

The paper's prototype is trained on Intel's iPSC/860 (and Paragon).  We
have no hypercube in the room, so the repo simulates one; the constants
below are set to the iPSC/860's published regime:

* short-message software latency ~75 us, long-message protocol ~150 us
  with the protocol switch near 100 bytes;
* sustained point-to-point bandwidth ~2.8 MB/s (0.36 us/byte);
* nearly distance-insensitive circuit-switched routing (small per-hop
  term);
* i860 nodes achieving a few Mflop/s on compiled Fortran (if77 -O4), with
  expensive division and non-unit-stride memory penalties;
* non-unit-stride messages must be packed/unpacked through a buffer.

All times are **microseconds**; sizes are bytes.  Everything the estimator
and the simulator know about the hardware flows from this one dataclass,
so re-targeting means swapping a parameter set.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineParams:
    """Cost parameters of the simulated message-passing machine."""

    name: str = "ipsc860"

    # -- network -----------------------------------------------------------
    #: software latency of a short message (<= short_message_bytes)
    alpha_short: float = 75.0
    #: software latency of a long message (protocol switch)
    alpha_long: float = 150.0
    #: protocol boundary in bytes
    short_message_bytes: int = 100
    #: transfer time per byte (~2.8 MB/s)
    beta_per_byte: float = 0.36
    #: per-hop wire latency on the hypercube (circuit switched, small)
    hop_latency: float = 2.0
    #: per-byte cost of packing/unpacking a non-unit-stride message
    buffer_copy_per_byte: float = 0.10
    #: receive-side software overhead (crecv + message-queue handling)
    recv_overhead: float = 60.0

    # -- node computation ---------------------------------------------------
    #: double-precision add/subtract
    op_add: float = 0.15
    #: double-precision multiply
    op_mul: float = 0.15
    #: double-precision divide
    op_div: float = 0.80
    #: exponentiation
    op_pow: float = 3.00
    #: intrinsic call (sqrt, sin, exp, ...)
    op_intrinsic: float = 2.50
    #: memory read per array element touched
    op_load: float = 0.08
    #: memory write per array element stored
    op_store: float = 0.10
    #: loop bookkeeping per innermost iteration
    op_loop_overhead: float = 0.05
    #: single-precision discount factor
    real_factor: float = 0.85
    #: extra per-element factor for non-unit-stride traversal (cache)
    stride_penalty: float = 1.6

    # -- derived helpers -----------------------------------------------------

    def message_time(self, nbytes: int, hops: int = 1,
                     buffered: bool = False) -> float:
        """End-to-end time of one point-to-point message."""
        if nbytes <= self.short_message_bytes:
            alpha = self.alpha_short
        else:
            alpha = self.alpha_long
        time = alpha + nbytes * self.beta_per_byte + hops * self.hop_latency
        if buffered:
            time += 2 * nbytes * self.buffer_copy_per_byte  # pack + unpack
        return time

    def send_overhead(self, nbytes: int, buffered: bool = False) -> float:
        """Sender-side occupancy (the sender resumes after this)."""
        if nbytes <= self.short_message_bytes:
            alpha = self.alpha_short
        else:
            alpha = self.alpha_long
        time = alpha + nbytes * self.beta_per_byte
        if buffered:
            time += nbytes * self.buffer_copy_per_byte  # pack
        return time

    def dtype_factor(self, dtype: str) -> float:
        return self.real_factor if dtype in ("real", "integer") else 1.0

    def with_overrides(self, **kwargs) -> "MachineParams":
        return replace(self, **kwargs)


IPSC860 = MachineParams()

#: A Paragon-flavoured parameter set (faster network, same framework) —
#: used by tests to show the framework is machine-parameterized.
PARAGON = MachineParams(
    name="paragon",
    alpha_short=50.0,
    alpha_long=90.0,
    beta_per_byte=0.012,
    hop_latency=0.5,
    op_add=0.08,
    op_mul=0.08,
    op_div=0.45,
    recv_overhead=12.0,
)

MACHINES = {"ipsc860": IPSC860, "paragon": PARAGON}
