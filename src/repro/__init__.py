"""repro — reproduction of Kennedy & Kremer, "Automatic Data Layout for
High Performance Fortran" (SC 1995).

Public API quick reference::

    from repro import AssistantConfig, run_assistant
    result = run_assistant(source_text, AssistantConfig(nprocs=16))
    print(result.selected_layouts)

Subpackages: ``frontend`` (Fortran subset), ``analysis`` (phases/PCFG/
dependences), ``alignment`` (CAG + 0-1 resolution), ``distribution``
(layout types + search spaces), ``perf`` (training sets + estimator),
``machine`` (simulated iPSC/860), ``codegen`` (SPMD lowering),
``selection`` (0-1 layout selection), ``tool`` (assistant + CLI),
``programs`` (Adi, Erlebacher, Tomcatv, Shallow).
"""

from .tool.assistant import AssistantConfig, AssistantResult, run_assistant
from .tool.measurement import Measurement, measure_layouts
from .tool.testcases import TestCase, run_test_case

__version__ = "1.0.0"

__all__ = [
    "AssistantConfig",
    "AssistantResult",
    "run_assistant",
    "Measurement",
    "measure_layouts",
    "TestCase",
    "run_test_case",
    "__version__",
]
