"""Candidate data-layout search spaces (paper Section 2.2.2).

The cross product of a phase's alignment candidates and the distribution
candidates defines its candidate-layout search space.  The prototype uses
the *exhaustive* heuristic restricted to one-dimensional BLOCK
distributions (matching the Fortran D compiler's capabilities); the
generators below also implement the paper's future-work extensions —
one-dimensional CYCLIC/BLOCK-CYCLIC and multi-dimensional BLOCK grids —
behind :class:`DistributionOptions`.

Candidates are deduplicated by behavioural signature: a transposed
orientation distributed by row equals a canonical orientation distributed
by column (Section 3.2's symmetry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # avoid the alignment <-> distribution import cycle
    from ..alignment.search_space import (
        AlignmentCandidate,
        AlignmentSearchSpaces,
    )
from ..analysis.phases import Phase
from ..frontend.symbols import ArraySymbol, SymbolTable
from ..obs.tracing import span as obs_span
from .layouts import (
    BLOCK,
    BLOCK_CYCLIC,
    CYCLIC,
    SERIAL,
    DataLayout,
    DimDistribution,
    Distribution,
)
from .template import Template


@dataclass(frozen=True)
class DistributionOptions:
    """Which distribution shapes to enumerate."""

    one_dim_block: bool = True
    one_dim_cyclic: bool = False
    block_cyclic_sizes: Tuple[int, ...] = ()
    multi_dim_grids: bool = False

    @classmethod
    def prototype(cls) -> "DistributionOptions":
        """The paper prototype's restriction: 1-D BLOCK only."""
        return cls()

    @classmethod
    def extended(cls, block_cyclic_sizes: Tuple[int, ...] = (4,)) -> "DistributionOptions":
        return cls(
            one_dim_cyclic=True,
            block_cyclic_sizes=block_cyclic_sizes,
            multi_dim_grids=True,
        )


def _factor_pairs(n: int) -> List[Tuple[int, int]]:
    pairs = []
    f = 2
    while f * f <= n:
        if n % f == 0:
            pairs.append((f, n // f))
            if f != n // f:
                pairs.append((n // f, f))
        f += 1
    return sorted(pairs)


def enumerate_distributions(
    template: Template, nprocs: int, options: DistributionOptions
) -> List[Distribution]:
    """All candidate distributions of the template over ``nprocs``."""
    rank = template.rank
    out: List[Distribution] = []
    if options.one_dim_block:
        for dim in range(rank):
            out.append(Distribution.one_dim_block(rank, dim, nprocs))
    if options.one_dim_cyclic:
        for dim in range(rank):
            dims = tuple(
                DimDistribution(kind=CYCLIC, procs=nprocs)
                if d == dim
                else DimDistribution(kind=SERIAL)
                for d in range(rank)
            )
            out.append(Distribution(dims=dims))
    for block in options.block_cyclic_sizes:
        for dim in range(rank):
            dims = tuple(
                DimDistribution(kind=BLOCK_CYCLIC, procs=nprocs, block=block)
                if d == dim
                else DimDistribution(kind=SERIAL)
                for d in range(rank)
            )
            out.append(Distribution(dims=dims))
    if options.multi_dim_grids and rank >= 2:
        for d1 in range(rank):
            for d2 in range(d1 + 1, rank):
                for p1, p2 in _factor_pairs(nprocs):
                    dims = []
                    for d in range(rank):
                        if d == d1:
                            dims.append(DimDistribution(kind=BLOCK, procs=p1))
                        elif d == d2:
                            dims.append(DimDistribution(kind=BLOCK, procs=p2))
                        else:
                            dims.append(DimDistribution(kind=SERIAL))
                    out.append(Distribution(dims=tuple(dims)))
    return out


@dataclass(frozen=True)
class CandidateLayout:
    """One node-to-be of the data layout graph: a phase, an alignment
    candidate, a distribution, and the induced concrete per-array layout."""

    phase_index: int
    position: int  # index within the phase's search space
    alignment: "AlignmentCandidate"
    layout: DataLayout

    @property
    def label(self) -> str:
        dist = self.layout.distribution
        dims = dist.distributed_dims()
        dim_txt = ",".join(f"t{d}:{dist.dims[d]}" for d in dims) or "serial"
        return f"phase{self.phase_index}/c{self.position}[{dim_txt}]"


@dataclass
class LayoutSearchSpaces:
    """Per-phase candidate layout lists (the browsable search spaces)."""

    per_phase: Dict[int, List[CandidateLayout]]
    distributions: List[Distribution]
    template: Template
    nprocs: int

    def candidates_for(self, phase_index: int) -> List[CandidateLayout]:
        return self.per_phase[phase_index]

    def total_candidates(self) -> int:
        return sum(len(v) for v in self.per_phase.values())


def build_layout_search_spaces(
    phases: Sequence[Phase],
    alignment_spaces: "AlignmentSearchSpaces",
    template: Template,
    symbols: SymbolTable,
    nprocs: int,
    options: Optional[DistributionOptions] = None,
) -> LayoutSearchSpaces:
    """Cross alignment candidates with distribution candidates, dropping
    behaviourally identical layouts."""
    options = options or DistributionOptions.prototype()
    with obs_span(
        "distribution.enumerate", nprocs=nprocs, phases=len(phases)
    ) as enum_span:
        distributions = enumerate_distributions(template, nprocs, options)
        enum_span.set_attr("distributions", len(distributions))
        per_phase: Dict[int, List[CandidateLayout]] = {}
        for phase in phases:
            with obs_span(
                "distribution.phase", phase=phase.index
            ) as phase_span:
                phase_arrays = [
                    a
                    for a in phase.arrays
                    if isinstance(symbols.get(a), ArraySymbol)
                ]
                seen = set()
                generated = 0
                candidates: List[CandidateLayout] = []
                for alignment in alignment_spaces.candidates_for(
                    phase.index
                ):
                    align_map = {
                        a: alignment.alignment_map[a]
                        for a in phase_arrays
                        if a in alignment.alignment_map
                    }
                    for dist in distributions:
                        layout = DataLayout.build(
                            template=template,
                            alignments=align_map,
                            distribution=dist,
                        )
                        generated += 1
                        signature = layout.signature()
                        if signature in seen:
                            continue
                        seen.add(signature)
                        candidates.append(
                            CandidateLayout(
                                phase_index=phase.index,
                                position=len(candidates),
                                alignment=alignment,
                                layout=layout,
                            )
                        )
                phase_span.set_attr("generated", generated)
                phase_span.set_attr("pruned", generated - len(candidates))
                phase_span.set_attr("kept", len(candidates))
            per_phase[phase.index] = candidates
    return LayoutSearchSpaces(
        per_phase=per_phase,
        distributions=distributions,
        template=template,
        nprocs=nprocs,
    )
