"""Data layout types: alignments, distributions, and candidate layouts.

An HPF layout is the composition of

* an :class:`Alignment` per array — which template dimension each array
  dimension maps to (offset/stride alignment is canonical, as in the
  paper's prototype); template dimensions not covered by an array are
  *replicated* for that array;
* a :class:`Distribution` of the template onto physical processors —
  per template dimension one of ``BLOCK(p)``, ``CYCLIC(p)``,
  ``BLOCK_CYCLIC(b, p)`` or ``*`` (not distributed).

A :class:`DataLayout` bundles both for every array of a phase (or the
whole program) and answers the ownership/local-size queries the compiler
model, the estimator, and the SPMD code generator need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..frontend.symbols import ArraySymbol, SymbolTable
from .template import Template

BLOCK = "block"
CYCLIC = "cyclic"
BLOCK_CYCLIC = "block_cyclic"
SERIAL = "*"


@dataclass(frozen=True)
class Alignment:
    """Map of array dimensions to template dimensions.

    ``axis_map[d]`` is the template dimension array dimension ``d`` (0-based)
    is aligned with.  Must be injective.
    """

    axis_map: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.axis_map)) != len(self.axis_map):
            raise ValueError(f"alignment {self.axis_map} maps two array "
                             "dimensions to one template dimension")

    @property
    def rank(self) -> int:
        return len(self.axis_map)

    def template_dim(self, array_dim: int) -> int:
        return self.axis_map[array_dim]

    def array_dim(self, template_dim: int) -> Optional[int]:
        """The array dimension aligned with ``template_dim``, or None when
        the array is replicated along it."""
        for d, t in enumerate(self.axis_map):
            if t == template_dim:
                return d
        return None

    @classmethod
    def canonical(cls, rank: int) -> "Alignment":
        return cls(axis_map=tuple(range(rank)))

    def is_canonical(self) -> bool:
        return self.axis_map == tuple(range(self.rank))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "align(" + ",".join(f"d{a}->t{t}" for a, t in
                                   enumerate(self.axis_map)) + ")"


@dataclass(frozen=True)
class DimDistribution:
    """Distribution of one template dimension."""

    kind: str  # BLOCK | CYCLIC | BLOCK_CYCLIC | SERIAL
    procs: int = 1
    block: int = 0  # block size for BLOCK_CYCLIC

    def __post_init__(self) -> None:
        if self.kind not in (BLOCK, CYCLIC, BLOCK_CYCLIC, SERIAL):
            raise ValueError(f"bad distribution kind {self.kind!r}")
        if self.kind == SERIAL and self.procs != 1:
            raise ValueError("serial dimensions have procs == 1")
        if self.kind != SERIAL and self.procs < 1:
            raise ValueError("distributed dimensions need procs >= 1")
        if self.kind == BLOCK_CYCLIC and self.block < 1:
            raise ValueError("block-cyclic needs a positive block size")

    @property
    def is_distributed(self) -> bool:
        return self.kind != SERIAL and self.procs > 1

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == SERIAL:
            return "*"
        if self.kind == BLOCK_CYCLIC:
            return f"cyclic({self.block})@{self.procs}"
        return f"{self.kind}@{self.procs}"


@dataclass(frozen=True)
class Distribution:
    """Distribution of every template dimension."""

    dims: Tuple[DimDistribution, ...]

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def total_procs(self) -> int:
        total = 1
        for dim in self.dims:
            if dim.is_distributed:
                total *= dim.procs
        return total

    def distributed_dims(self) -> Tuple[int, ...]:
        return tuple(
            d for d, dim in enumerate(self.dims) if dim.is_distributed
        )

    @classmethod
    def one_dim_block(cls, rank: int, dim: int, procs: int) -> "Distribution":
        """The prototype's candidate shape: BLOCK on one template
        dimension, serial elsewhere."""
        dims = tuple(
            DimDistribution(kind=BLOCK, procs=procs)
            if d == dim
            else DimDistribution(kind=SERIAL)
            for d in range(rank)
        )
        return cls(dims=dims)

    @classmethod
    def serial(cls, rank: int) -> "Distribution":
        return cls(dims=tuple(DimDistribution(kind=SERIAL) for _ in range(rank)))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "dist(" + ", ".join(str(d) for d in self.dims) + ")"


def block_owner(index: int, extent: int, procs: int) -> int:
    """Owning processor of 1-based ``index`` under BLOCK distribution."""
    block = -(-extent // procs)  # ceil
    return min((index - 1) // block, procs - 1)


def block_bounds(proc: int, extent: int, procs: int) -> Tuple[int, int]:
    """Inclusive 1-based (lo, hi) owned by ``proc`` under BLOCK; empty
    blocks return (lo, lo - 1)."""
    block = -(-extent // procs)
    lo = proc * block + 1
    hi = min((proc + 1) * block, extent)
    return lo, max(hi, lo - 1)


def cyclic_owner(index: int, procs: int) -> int:
    return (index - 1) % procs


def block_cyclic_owner(index: int, block: int, procs: int) -> int:
    """Owner of 1-based ``index`` under BLOCK-CYCLIC(block)."""
    return ((index - 1) // block) % procs


def owner_of_index(kind: str, index: int, extent: int, procs: int,
                   block: int = 0) -> int:
    """Owning processor of 1-based ``index`` for any distribution format."""
    if kind == BLOCK:
        return block_owner(index, extent, procs)
    if kind == CYCLIC:
        return cyclic_owner(index, procs)
    if kind == BLOCK_CYCLIC:
        return block_cyclic_owner(index, max(block, 1), procs)
    return 0  # SERIAL: everything on processor 0 (undistributed)


@dataclass(frozen=True)
class DataLayout:
    """A complete candidate layout: per-array alignments + one
    distribution of the shared template."""

    template: Template
    alignments: Tuple[Tuple[str, Alignment], ...]  # sorted by array name
    distribution: Distribution

    @classmethod
    def build(
        cls,
        template: Template,
        alignments: Mapping[str, Alignment],
        distribution: Distribution,
    ) -> "DataLayout":
        if distribution.rank != template.rank:
            raise ValueError("distribution rank must match template rank")
        return cls(
            template=template,
            alignments=tuple(sorted(alignments.items())),
            distribution=distribution,
        )

    @property
    def alignment_map(self) -> Dict[str, Alignment]:
        return dict(self.alignments)

    @property
    def nprocs(self) -> int:
        return self.distribution.total_procs

    def alignment_of(self, array: str) -> Alignment:
        for name, alignment in self.alignments:
            if name == array:
                return alignment
        raise KeyError(f"array {array!r} has no alignment in this layout")

    def arrays(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.alignments)

    # -- ownership queries ---------------------------------------------------

    def distributed_array_dims(self, array: str) -> Tuple[Tuple[int, int, int], ...]:
        """``(array_dim, template_dim, procs)`` for each distributed
        dimension of ``array``."""
        alignment = self.alignment_of(array)
        out = []
        for tdim in self.distribution.distributed_dims():
            adim = alignment.array_dim(tdim)
            if adim is not None:
                out.append((adim, tdim, self.distribution.dims[tdim].procs))
        return tuple(out)

    def replicated_over(self, array: str) -> Tuple[Tuple[int, int], ...]:
        """``(template_dim, procs)`` for distributed template dims the
        array is *not* aligned with (i.e. it is replicated across them)."""
        alignment = self.alignment_of(array)
        out = []
        for tdim in self.distribution.distributed_dims():
            if alignment.array_dim(tdim) is None:
                out.append((tdim, self.distribution.dims[tdim].procs))
        return tuple(out)

    def is_fully_replicated(self, array: str) -> bool:
        return not self.distributed_array_dims(array)

    def local_elements(self, symbol: ArraySymbol) -> int:
        """Per-processor element count of ``symbol`` under this layout."""
        total = symbol.element_count
        for adim, _tdim, procs in self.distributed_array_dims(symbol.name):
            extent = symbol.extents[adim]
            local = -(-extent // procs)
            total = total // extent * local
        return max(total, 1)

    # -- identity / dedup ------------------------------------------------------

    def signature(self) -> Tuple:
        """Hashable *behavioural* identity: per-array distribution pattern.

        Two (alignment, distribution) pairs that partition every array the
        same way — e.g. transposed alignment + column distribution versus
        canonical alignment + row distribution — share a signature, which
        implements the paper's candidate dedup for symmetric orientations.
        """
        per_array = []
        for name, _alignment in self.alignments:
            dist_dims = tuple(
                (adim, self.distribution.dims[tdim].kind,
                 self.distribution.dims[tdim].procs,
                 self.distribution.dims[tdim].block)
                for adim, tdim, _p in self.distributed_array_dims(name)
            )
            repl = tuple(
                procs for _tdim, procs in self.replicated_over(name)
            )
            per_array.append((name, dist_dims, repl))
        return tuple(per_array)

    def describe(self) -> str:
        """Human-readable HPF-style description."""
        lines = [f"!HPF$ {self.template}  {self.distribution}"]
        for name, alignment in self.alignments:
            lines.append(f"!HPF$ ALIGN {name} {alignment}")
        return "\n".join(lines)
