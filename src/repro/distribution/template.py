"""The *program template* (paper Section 2.2).

HPF data layout is two-stage: arrays are first *aligned* to a template (an
array of virtual processors), and the template is then *distributed* onto
physical processors.  The framework determines a single template for the
entire program from the maximal dimensionality and maximal dimensional
extents of the program's arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..frontend.symbols import SymbolTable


@dataclass(frozen=True)
class Template:
    """The program-wide alignment target."""

    rank: int
    extents: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.extents) != self.rank:
            raise ValueError("template extents must match rank")
        if any(e <= 0 for e in self.extents):
            raise ValueError("template extents must be positive")

    @property
    def dims(self) -> range:
        return range(self.rank)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "TEMPLATE(" + ", ".join(str(e) for e in self.extents) + ")"


def determine_template(symbols: SymbolTable) -> Template:
    """Build the program template from the declared arrays: rank is the
    maximal array rank; each extent is the maximum extent any array has in
    that dimension position (falling back to the global maximum extent for
    positions only lower-rank arrays would leave unconstrained)."""
    arrays = symbols.arrays()
    if not arrays:
        raise ValueError("program declares no arrays; nothing to lay out")
    rank = max(a.rank for a in arrays)
    global_max = max(max(a.extents) for a in arrays)
    extents = []
    for dim in range(rank):
        dim_extents = [a.extents[dim] for a in arrays if a.rank > dim]
        extents.append(max(dim_extents) if dim_extents else global_max)
    return Template(rank=rank, extents=tuple(extents))
