"""Layout types and distribution search spaces."""

from .template import Template, determine_template
from .layouts import (
    BLOCK,
    BLOCK_CYCLIC,
    CYCLIC,
    SERIAL,
    Alignment,
    DataLayout,
    DimDistribution,
    Distribution,
    block_bounds,
    block_owner,
    cyclic_owner,
)

__all__ = [
    "Template",
    "determine_template",
    "Alignment",
    "DataLayout",
    "DimDistribution",
    "Distribution",
    "BLOCK",
    "CYCLIC",
    "BLOCK_CYCLIC",
    "SERIAL",
    "block_bounds",
    "block_owner",
    "cyclic_owner",
]

from .search_space import (
    CandidateLayout,
    DistributionOptions,
    LayoutSearchSpaces,
    build_layout_search_spaces,
    enumerate_distributions,
)

__all__ += [
    "CandidateLayout",
    "DistributionOptions",
    "LayoutSearchSpaces",
    "build_layout_search_spaces",
    "enumerate_distributions",
]
