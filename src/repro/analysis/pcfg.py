"""Phase control flow graph (PCFG) construction (paper Section 2.1).

The PCFG is an augmented control flow graph with one node per phase,
annotated with branch probabilities and loop control information.  Here
that information is *resolved into expected execution frequencies*:

* each phase node carries ``freq`` — the expected number of executions of
  the phase per program run;
* each edge ``(p, q)`` carries ``freq`` — the expected number of direct
  control transfers from phase ``p`` to phase ``q`` (this prices dynamic
  remapping between the two phases in the selection step).

Loop back-edges are real phase-to-phase edges: the last phase of a
control-loop body transfers to the first phase ``trips - 1`` times per loop
entry, which is exactly where remapping inside an iterative solver hurts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from .phases import (
    Branch,
    ControlLoop,
    PhaseItem,
    PhasePartition,
    ScalarItem,
    Seq,
)

ENTRY = "entry"
EXIT = "exit"

#: Minimum edge frequency kept in the graph; pure-zero paths are dropped.
_EPS = 1e-12


@dataclass
class PCFG:
    """Wrapper around the underlying DiGraph with typed accessors."""

    graph: nx.DiGraph
    partition: PhasePartition

    @property
    def phase_indices(self) -> List[int]:
        return sorted(n for n in self.graph.nodes if isinstance(n, int))

    def phase_frequency(self, index: int) -> float:
        return self.graph.nodes[index].get("freq", 0.0)

    def transitions(self) -> List[Tuple[int, int, float]]:
        """Phase-to-phase edges ``(src, dst, freq)``."""
        out = []
        for u, v, data in self.graph.edges(data=True):
            if isinstance(u, int) and isinstance(v, int):
                out.append((u, v, data["freq"]))
        return out

    def entry_edges(self) -> List[Tuple[int, float]]:
        return [
            (v, data["freq"])
            for _, v, data in self.graph.out_edges(ENTRY, data=True)
            if isinstance(v, int)
        ]

    def reverse_postorder(self) -> List[int]:
        """Phase indices in reverse postorder of a DFS from the entry —
        the visit order of the alignment search-space heuristic."""
        order = list(nx.dfs_postorder_nodes(self.graph, source=ENTRY))
        order.reverse()
        return [n for n in order if isinstance(n, int)]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        lines = ["PCFG:"]
        for idx in self.phase_indices:
            lines.append(f"  phase {idx}: freq={self.phase_frequency(idx):.1f}")
        for u, v, f in self.transitions():
            lines.append(f"  {u} -> {v}: freq={f:.1f}")
        return "\n".join(lines)


def build_pcfg(partition: PhasePartition) -> PCFG:
    """Build the PCFG from a phase partition's structure tree.

    Works with *port lists*: a port list is ``[(node, freq), ...]`` — the
    places control may be coming from, with expected frequencies.  Regions
    with no phases are transparent (their incoming ports flow through).
    """
    graph = nx.DiGraph()
    graph.add_node(ENTRY)
    graph.add_node(EXIT)
    for phase in partition.phases:
        graph.add_node(phase.index, freq=0.0, phase=phase)

    def add_edge(src, dst, freq: float) -> None:
        if freq <= _EPS:
            return
        if graph.has_edge(src, dst):
            graph[src][dst]["freq"] += freq
        else:
            graph.add_edge(src, dst, freq=freq)

    def process_seq(seq: Seq, incoming: List[Tuple[object, float]]):
        ports = incoming
        for item in seq.items:
            ports = process_item(item, ports)
        return ports

    def process_item(item, incoming):
        if isinstance(item, ScalarItem):
            return incoming  # transparent
        if isinstance(item, PhaseItem):
            idx = item.phase.index
            total = 0.0
            for src, freq in incoming:
                add_edge(src, idx, freq)
                total += freq
            graph.nodes[idx]["freq"] += total
            return [(idx, total)]
        if isinstance(item, Branch):
            then_in = [(s, f * item.prob) for s, f in incoming]
            else_in = [(s, f * (1.0 - item.prob)) for s, f in incoming]
            then_out = process_seq(item.then_body, then_in)
            else_out = process_seq(item.else_body, else_in)
            return _merge_ports(then_out + else_out)
        if isinstance(item, ControlLoop):
            return process_loop(item, incoming)
        raise TypeError(f"unknown structure item {item!r}")

    def process_loop(item: ControlLoop, incoming):
        trips = item.trips
        if trips <= 0 or not _seq_has_phases(item.body):
            # Zero-trip loops and loops without phases are transparent.
            return incoming
        total_in = sum(f for _, f in incoming)
        if total_in <= _EPS:
            return incoming
        # Process the body once with a placeholder source carrying the
        # back-edge mass; afterwards re-point placeholder edges from the
        # body's actual exit ports.
        placeholder = object()
        body_in = list(incoming) + [(placeholder, total_in * (trips - 1))]
        body_out = process_seq(item.body, body_in)

        # Ports still referencing the placeholder describe no-phase paths
        # through the body; fold their mass into the real exits.
        real_out = [(s, f) for s, f in body_out if s is not placeholder]
        leak = sum(f for s, f in body_out if s is placeholder)
        out_total = sum(f for _, f in real_out)
        if out_total <= _EPS:
            return incoming
        if leak > _EPS:
            real_out = [
                (s, f * (out_total + leak) / out_total) for s, f in real_out
            ]
            out_total += leak

        # Re-point placeholder edges: back-edge mass flows from exits.
        placeholder_edges = [
            (v, data["freq"])
            for _, v, data in graph.out_edges(placeholder, data=True)
        ]
        if graph.has_node(placeholder):
            graph.remove_node(placeholder)
        for head, head_freq in placeholder_edges:
            for exit_node, exit_freq in real_out:
                add_edge(exit_node, head, head_freq * exit_freq / out_total)

        # One of ``trips`` body completions continues past the loop.
        return [(s, f / trips) for s, f in real_out]

    final_ports = process_seq(partition.structure, [(ENTRY, 1.0)])
    for src, freq in final_ports:
        add_edge(src, EXIT, freq)
    return PCFG(graph=graph, partition=partition)


def _merge_ports(ports):
    merged: Dict[object, float] = {}
    order: List[object] = []
    for node, freq in ports:
        if node not in merged:
            merged[node] = 0.0
            order.append(node)
        merged[node] += freq
    return [(node, merged[node]) for node in order]


def _seq_has_phases(seq: Seq) -> bool:
    for item in seq.items:
        if isinstance(item, PhaseItem):
            return True
        if isinstance(item, ControlLoop) and _seq_has_phases(item.body):
            return True
        if isinstance(item, Branch) and (
            _seq_has_phases(item.then_body) or _seq_has_phases(item.else_body)
        ):
            return True
    return False
