"""Program partitioning into *phases* (paper Section 2.1).

A phase is the outermost loop in a loop nest such that the loop defines an
induction variable occurring in a subscript expression of an array reference
in the loop body.  Loops that fail the test (e.g. time-stepping loops) are
*control loops*: the partitioner descends into them and records their trip
counts so phase execution frequencies are known.  IF statements at control
level become branches with (guessed or user-supplied) probabilities.

The result is a structure tree (:class:`Seq` / :class:`ControlLoop` /
:class:`Branch` / :class:`PhaseItem` / :class:`ScalarItem`) from which
:mod:`repro.analysis.pcfg` builds the phase control flow graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..frontend import ast
from ..frontend.symbols import SymbolTable
from .references import (
    ArrayAccess,
    LoopInfo,
    analyze_subscript,
    collect_accesses,
)

DEFAULT_BRANCH_PROBABILITY = 0.5


@dataclass(frozen=True)
class Phase:
    """One program phase: an outermost subscript-defining loop nest."""

    index: int
    stmt: ast.Do
    accesses: Tuple[ArrayAccess, ...]
    line: int

    @property
    def name(self) -> str:
        return f"phase{self.index}"

    @property
    def loop_var(self) -> str:
        return self.stmt.var

    @property
    def arrays(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for acc in self.accesses:
            seen.setdefault(acc.array, None)
        return tuple(seen)

    @property
    def written_arrays(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for acc in self.accesses:
            if acc.is_write:
                seen.setdefault(acc.array, None)
        return tuple(seen)

    def loop_nest(self) -> Tuple[LoopInfo, ...]:
        """The *perfect-nest prefix* of the phase: the chain of loops from
        the phase root downward, following single-loop bodies.  Used by the
        execution model to reason about pipeline granularity."""
        deepest: Tuple[LoopInfo, ...] = ()
        for acc in self.accesses:
            if len(acc.loops) > len(deepest):
                deepest = acc.loops
        return deepest

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}(do {self.loop_var}, line {self.line})"


# --- structure tree --------------------------------------------------------


@dataclass(frozen=True)
class PhaseItem:
    phase: Phase


@dataclass(frozen=True)
class ScalarItem:
    """Straight-line statements between phases (boundary assignments and
    similar).  They carry no layout preference and negligible cost, but are
    kept so the PCFG faithfully reflects program order."""

    stmts: Tuple[ast.Stmt, ...]


@dataclass(frozen=True)
class ControlLoop:
    """A loop whose variable never appears in a subscript (e.g. a time
    loop): its body is a nested region executed ``trips`` times."""

    var: str
    trips: int
    body: "Seq"


@dataclass(frozen=True)
class Branch:
    """An IF at control level with branch probability ``prob`` for the
    then-side."""

    prob: float
    then_body: "Seq"
    else_body: "Seq"


StructureItem = Union[PhaseItem, ScalarItem, ControlLoop, Branch]


@dataclass(frozen=True)
class Seq:
    items: Tuple[StructureItem, ...]


@dataclass
class PhasePartition:
    """Result of program partitioning."""

    phases: List[Phase]
    structure: Seq
    branch_probability: float

    def phase_by_index(self, index: int) -> Phase:
        return self.phases[index]

    def __len__(self) -> int:
        return len(self.phases)


def _loop_var_in_subscripts(stmt: ast.Do) -> bool:
    """Paper's phase test: does ``stmt.var`` occur in a subscript of an
    array reference in the loop body?"""
    for inner in ast.walk_stmts(stmt.body):
        for expr in ast.stmt_exprs(inner):
            for ref in ast.expr_array_refs(expr):
                for sub in ref.subscripts:
                    for node in ast.walk_expr(sub):
                        if isinstance(node, ast.Var) and node.name == stmt.var:
                            return True
    return False


def _is_phase_loop(stmt: ast.Do, symbols: SymbolTable) -> bool:
    return _loop_var_in_subscripts(stmt)


def partition_phases(
    program: ast.Program,
    symbols: SymbolTable,
    branch_probability: float = DEFAULT_BRANCH_PROBABILITY,
    branch_prob_overrides: Optional[Dict[int, float]] = None,
) -> PhasePartition:
    """Partition ``program`` into phases and build the structure tree.

    ``branch_prob_overrides`` maps IF-statement source lines to actual
    branch probabilities (then-side); unlisted IFs use the global guess —
    this is how the Figure 6 guessed-vs-actual experiment is driven.
    """

    overrides = branch_prob_overrides or {}

    def prob_for(stmt: ast.If) -> float:
        return overrides.get(stmt.line, branch_probability)

    phases: List[Phase] = []

    def trip_count(stmt: ast.Do) -> int:
        lo = analyze_subscript(stmt.lo, symbols.constants)
        hi = analyze_subscript(stmt.hi, symbols.constants)
        step = (
            analyze_subscript(stmt.step, symbols.constants)
            if stmt.step is not None
            else None
        )
        if lo.is_constant() and hi.is_constant():
            step_val = step.const if step is not None and step.is_constant() else 1
            if step_val == 0:
                return 1
            return max((hi.const - lo.const) // step_val + 1, 0)
        return 1

    def make_phase(stmt: ast.Do) -> Phase:
        accesses = collect_accesses(
            [stmt], symbols, branch_probability, branch_prob_overrides=overrides
        )
        phase = Phase(
            index=len(phases),
            stmt=stmt,
            accesses=tuple(accesses),
            line=stmt.line,
        )
        phases.append(phase)
        return phase

    def build_seq(stmts) -> Seq:
        items: List[StructureItem] = []
        pending_scalars: List[ast.Stmt] = []

        def flush_scalars() -> None:
            if pending_scalars:
                items.append(ScalarItem(stmts=tuple(pending_scalars)))
                pending_scalars.clear()

        for stmt in stmts:
            if isinstance(stmt, ast.Do):
                flush_scalars()
                if _is_phase_loop(stmt, symbols):
                    items.append(PhaseItem(phase=make_phase(stmt)))
                else:
                    items.append(
                        ControlLoop(
                            var=stmt.var,
                            trips=trip_count(stmt),
                            body=build_seq(stmt.body),
                        )
                    )
            elif isinstance(stmt, ast.If):
                # An IF whose bodies contain no loops is plain scalar code.
                has_loop = any(
                    isinstance(s, ast.Do) for s in ast.walk_stmts([stmt])
                )
                if has_loop:
                    flush_scalars()
                    items.append(
                        Branch(
                            prob=prob_for(stmt),
                            then_body=build_seq(stmt.then_body),
                            else_body=build_seq(stmt.else_body),
                        )
                    )
                else:
                    pending_scalars.append(stmt)
            else:
                pending_scalars.append(stmt)
        flush_scalars()
        return Seq(items=tuple(items))

    structure = build_seq(program.body)
    return PhasePartition(
        phases=phases,
        structure=structure,
        branch_probability=branch_probability,
    )
