"""Program analysis: references, phase partitioning, PCFG, dependences."""

from .references import (
    AffineExpr,
    ArrayAccess,
    LoopInfo,
    analyze_subscript,
    collect_accesses,
)
from .phases import (
    DEFAULT_BRANCH_PROBABILITY,
    Branch,
    ControlLoop,
    Phase,
    PhaseItem,
    PhasePartition,
    ScalarItem,
    Seq,
    partition_phases,
)
from .pcfg import ENTRY, EXIT, PCFG, build_pcfg
from .dependence import (
    Dependence,
    carried_flow_vars,
    flow_dependences_on_var,
    is_uniform_pair,
    phase_dependences,
    reduction_vars,
    scalar_reductions,
)

__all__ = [
    "AffineExpr",
    "ArrayAccess",
    "LoopInfo",
    "analyze_subscript",
    "collect_accesses",
    "DEFAULT_BRANCH_PROBABILITY",
    "Branch",
    "ControlLoop",
    "Phase",
    "PhaseItem",
    "PhasePartition",
    "ScalarItem",
    "Seq",
    "partition_phases",
    "ENTRY",
    "EXIT",
    "PCFG",
    "build_pcfg",
    "Dependence",
    "carried_flow_vars",
    "flow_dependences_on_var",
    "is_uniform_pair",
    "phase_dependences",
    "reduction_vars",
    "scalar_reductions",
]
