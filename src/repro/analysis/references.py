"""Array-reference and affine-subscript extraction.

Alignment and distribution analysis both reason about *affine* subscripts
``c0 + c1*v1 + c2*v2 + ...`` over loop induction variables.  This module
normalizes every subscript expression of every array reference into that
form (or marks it non-affine), and records read/write direction plus the
enclosing loop nest, which later drives owner-computes communication
placement and dependence testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..frontend import ast
from ..frontend.symbols import SymbolTable


@dataclass(frozen=True)
class AffineExpr:
    """``const + sum(coeffs[v] * v)``; ``affine`` is False when the source
    expression could not be normalized (the variables/const are then
    meaningless)."""

    coeffs: Tuple[Tuple[str, int], ...]  # sorted (variable, coefficient)
    const: int
    affine: bool = True

    @property
    def coeff_map(self) -> Dict[str, int]:
        return dict(self.coeffs)

    def coeff(self, var: str) -> int:
        return self.coeff_map.get(var, 0)

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(v for v, _ in self.coeffs)

    def is_constant(self) -> bool:
        return self.affine and not self.coeffs

    def single_index_var(self) -> Optional[str]:
        """The unique variable when the subscript is ``a*v + c``, else None."""
        if self.affine and len(self.coeffs) == 1:
            return self.coeffs[0][0]
        return None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if not self.affine:
            return "<non-affine>"
        parts = [f"{c}*{v}" if c != 1 else v for v, c in self.coeffs]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


_NOT_AFFINE = AffineExpr(coeffs=(), const=0, affine=False)


def analyze_subscript(
    expr: ast.Expr, constants: Optional[Dict[str, int | float]] = None
) -> AffineExpr:
    """Normalize a subscript expression into affine form.

    ``constants`` supplies PARAMETER values so that e.g. ``n - 1`` with
    ``PARAMETER (n = 64)`` stays affine — but note we deliberately keep
    *symbolic* scalar names (like a runtime ``n``) as variables with
    coefficient so alignment analysis can still match ``a(i) = b(n - i)``
    style reversals.
    """
    constants = constants or {}

    def go(e: ast.Expr) -> Optional[Tuple[Dict[str, int], int]]:
        if isinstance(e, ast.IntLit):
            return {}, e.value
        if isinstance(e, ast.Var):
            if e.name in constants and isinstance(constants[e.name], int):
                return {}, int(constants[e.name])
            return {e.name: 1}, 0
        if isinstance(e, ast.UnaryOp):
            inner = go(e.operand)
            if inner is None:
                return None
            coeffs, const = inner
            if e.op == "-":
                return {v: -c for v, c in coeffs.items()}, -const
            if e.op == "+":
                return coeffs, const
            return None
        if isinstance(e, ast.BinOp):
            left = go(e.left)
            right = go(e.right)
            if e.op in ("+", "-"):
                if left is None or right is None:
                    return None
                lc, lk = left
                rc, rk = right
                sign = 1 if e.op == "+" else -1
                merged = dict(lc)
                for v, c in rc.items():
                    merged[v] = merged.get(v, 0) + sign * c
                return (
                    {v: c for v, c in merged.items() if c != 0},
                    lk + sign * rk,
                )
            if e.op == "*":
                if left is None or right is None:
                    return None
                lc, lk = left
                rc, rk = right
                if not lc:  # constant * linear
                    return (
                        {v: lk * c for v, c in rc.items() if lk * c != 0},
                        lk * rk,
                    )
                if not rc:  # linear * constant
                    return (
                        {v: rk * c for v, c in lc.items() if rk * c != 0},
                        rk * lk,
                    )
                return None
            return None
        return None

    result = go(expr)
    if result is None:
        return _NOT_AFFINE
    coeffs, const = result
    return AffineExpr(coeffs=tuple(sorted(coeffs.items())), const=const)


@dataclass(frozen=True)
class LoopInfo:
    """One enclosing DO loop of a reference: variable and (possibly
    symbolic) bounds evaluated against PARAMETER constants when constant."""

    var: str
    lo: Optional[int]
    hi: Optional[int]
    step: int
    depth: int  # 0 = outermost loop of the phase

    @property
    def trip_count(self) -> Optional[int]:
        if self.lo is None or self.hi is None:
            return None
        if self.step == 0:
            return None
        count = (self.hi - self.lo) // self.step + 1
        return max(count, 0)


@dataclass(frozen=True)
class ArrayAccess:
    """One static array reference with its normalized subscripts and the
    loop nest enclosing it."""

    array: str
    ref: ast.ArrayRef
    subscripts: Tuple[AffineExpr, ...]
    is_write: bool
    stmt: ast.Stmt
    loops: Tuple[LoopInfo, ...]  # outermost-first enclosing loops
    guard_probability: float = 1.0  # product of enclosing IF branch probs

    @property
    def rank(self) -> int:
        return len(self.subscripts)

    def dimension_for_loop(self, var: str) -> Optional[int]:
        """The unique 0-based dimension whose subscript uses ``var``, or
        None if absent/ambiguous."""
        hits = [
            d
            for d, sub in enumerate(self.subscripts)
            if sub.affine and sub.coeff(var) != 0
        ]
        if len(hits) == 1:
            return hits[0]
        return None

    def loop_for_dimension(self, dim: int) -> Optional[str]:
        """The unique loop variable indexing dimension ``dim``, or None."""
        sub = self.subscripts[dim]
        return sub.single_index_var()

    @property
    def execution_count(self) -> int:
        """Iterations of the enclosing nest (1 when any bound is unknown)."""
        total = 1
        for loop in self.loops:
            trips = loop.trip_count
            if trips is None:
                return 1
            total *= trips
        return max(total, 1)


def _eval_bound(
    expr: ast.Expr, constants: Dict[str, int | float]
) -> Optional[int]:
    aff = analyze_subscript(expr, constants)
    if aff.is_constant():
        return aff.const
    return None


def collect_accesses(
    stmts,
    symbols: SymbolTable,
    branch_probability: float = 0.5,
    branch_prob_overrides=None,
) -> List[ArrayAccess]:
    """Collect every array access in ``stmts`` (pre-order), tracking the
    enclosing loop nest and IF-guard probabilities.

    ``branch_probability`` is the guessed probability for each IF branch
    (the paper's prototype guesses 50%); ``branch_prob_overrides`` maps IF
    source lines to measured probabilities.
    """
    accesses: List[ArrayAccess] = []
    constants = symbols.constants
    overrides = branch_prob_overrides or {}

    def visit(stmt_seq, loops: Tuple[LoopInfo, ...], prob: float) -> None:
        for stmt in stmt_seq:
            if isinstance(stmt, ast.Assign):
                _collect_stmt(stmt, loops, prob)
            elif isinstance(stmt, ast.Do):
                info = LoopInfo(
                    var=stmt.var,
                    lo=_eval_bound(stmt.lo, constants),
                    hi=_eval_bound(stmt.hi, constants),
                    step=(
                        _eval_bound(stmt.step, constants) or 1
                        if stmt.step is not None
                        else 1
                    ),
                    depth=len(loops),
                )
                visit(stmt.body, loops + (info,), prob)
            elif isinstance(stmt, ast.If):
                p_then = overrides.get(stmt.line, branch_probability)
                visit(stmt.then_body, loops, prob * p_then)
                visit(stmt.else_body, loops, prob * (1.0 - p_then))

    def _collect_stmt(
        stmt: ast.Assign, loops: Tuple[LoopInfo, ...], prob: float
    ) -> None:
        def record(ref: ast.ArrayRef, is_write: bool) -> None:
            if symbols.get(ref.name) is None:
                return
            subs = tuple(
                analyze_subscript(s, constants) for s in ref.subscripts
            )
            accesses.append(
                ArrayAccess(
                    array=ref.name,
                    ref=ref,
                    subscripts=subs,
                    is_write=is_write,
                    stmt=stmt,
                    loops=loops,
                    guard_probability=prob,
                )
            )

        if isinstance(stmt.target, ast.ArrayRef):
            record(stmt.target, True)
            # Subscript expressions of the target are reads.
            for sub in stmt.target.subscripts:
                for ref in ast.expr_array_refs(sub):
                    record(ref, False)
        for ref in ast.expr_array_refs(stmt.expr):
            record(ref, False)

    visit(stmts, (), 1.0)
    return accesses
