"""Data dependence analysis for phase classification.

The execution model (paper Section 2.3 / 3) classifies each phase under a
candidate layout as *loosely synchronous*, *pipelined*, *sequentialized*,
or a *reduction*, based on whether a loop-carried flow dependence crosses
the distributed dimension.  The tests here are the classic ZIV / strong-SIV
tests specialized to *uniform* dependences (equal index variables and
coefficients per dimension, constant offset differences) — exactly the
pattern regular dense kernels exhibit.

Distances are normalized to **iteration counts of the carrying loop**
(element distance divided by ``coefficient * step``), so downward-counting
backward sweeps (``DO i = n-1, 1, -1``) report positive flow distances just
like forward sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..frontend import ast
from .phases import Phase
from .references import ArrayAccess


@dataclass(frozen=True)
class Dependence:
    """A loop-carried dependence between two accesses of one array."""

    array: str
    kind: str  # "flow" | "anti" | "output"
    carrier_var: str  # loop variable carrying the dependence
    distance: int  # positive iteration distance of the carrier loop
    dim: int  # array dimension in which the carried offset occurs
    source: ArrayAccess  # earlier access (the write, for flow)
    sink: ArrayAccess  # later access


def _step_for(access: ArrayAccess, var: str) -> Optional[int]:
    for loop in access.loops:
        if loop.var == var:
            return loop.step
    return None


def _pair_dependences(
    write: ArrayAccess, other: ArrayAccess
) -> List[Dependence]:
    """Dependences between a write and another access (read or write) of
    the same array, assuming uniform subscripts.

    Returns one :class:`Dependence` per loop variable with a nonzero
    normalized distance.  Returns [] when the accesses provably never touch
    the same element, or when the subscript pattern is not uniform (the
    callers treat non-uniform pairs via :func:`is_uniform_pair`).
    """
    if write.array != other.array or write.rank != other.rank:
        return []
    distances: Dict[str, Tuple[Fraction, int]] = {}
    for dim in range(write.rank):
        ws, os_ = write.subscripts[dim], other.subscripts[dim]
        if not (ws.affine and os_.affine):
            return []
        if ws.coeffs != os_.coeffs:
            return []  # non-uniform; handled separately
        if not ws.coeffs:
            # ZIV: both constant.
            if ws.const != os_.const:
                return []  # provably independent in this dimension
            continue
        if len(ws.coeffs) != 1:
            return []  # coupled subscript; out of scope for uniform test
        var, coeff = ws.coeffs[0]
        step = _step_for(write, var)
        if step is None or step == 0:
            # Not a loop variable of the write (e.g. symbolic scalar):
            # require identical subscripts, else give up on this pair.
            if ws.const != os_.const:
                return []
            continue
        # Element written at iter k: coeff*(lo + k*step) + w.const; read at
        # iter k': same element  =>  k' - k = (w.const - o.const)/(coeff*step)
        delta = Fraction(ws.const - os_.const, coeff * step)
        if delta.denominator != 1:
            return []  # offsets never coincide on the iteration lattice
        if var in distances and distances[var][0] != delta:
            return []  # inconsistent; treat as independent (uniform only)
        distances[var] = (delta, dim)

    deps: List[Dependence] = []
    for var, (delta, dim) in distances.items():
        if delta == 0:
            continue
        if delta > 0:
            kind = "flow" if not other.is_write else "output"
            deps.append(
                Dependence(
                    array=write.array,
                    kind=kind,
                    carrier_var=var,
                    distance=int(delta),
                    dim=dim,
                    source=write,
                    sink=other,
                )
            )
        else:
            kind = "anti" if not other.is_write else "output"
            deps.append(
                Dependence(
                    array=write.array,
                    kind=kind,
                    carrier_var=var,
                    distance=int(-delta),
                    dim=dim,
                    source=other,
                    sink=write,
                )
            )
    return deps


def is_uniform_pair(a: ArrayAccess, b: ArrayAccess) -> bool:
    """True when the two accesses have dimension-wise equal index variables
    and coefficients (the uniform-dependence precondition)."""
    if a.rank != b.rank:
        return False
    for dim in range(a.rank):
        sa, sb = a.subscripts[dim], b.subscripts[dim]
        if not (sa.affine and sb.affine):
            return False
        if sa.coeffs != sb.coeffs:
            return False
    return True


def phase_dependences(phase: Phase) -> List[Dependence]:
    """All uniform loop-carried dependences inside ``phase``."""
    by_array: Dict[str, List[ArrayAccess]] = {}
    for acc in phase.accesses:
        by_array.setdefault(acc.array, []).append(acc)
    deps: List[Dependence] = []
    for accesses in by_array.values():
        writes = [a for a in accesses if a.is_write]
        for write in writes:
            for other in accesses:
                if other is write:
                    continue
                deps.extend(_pair_dependences(write, other))
    return deps


def flow_dependences_on_var(phase: Phase, var: str) -> List[Dependence]:
    """Flow dependences carried by loop variable ``var`` in ``phase``."""
    return [
        d
        for d in phase_dependences(phase)
        if d.kind == "flow" and d.carrier_var == var
    ]


def carried_flow_vars(phase: Phase) -> Tuple[str, ...]:
    """Loop variables that carry at least one flow dependence, in a stable
    order."""
    seen: Dict[str, None] = {}
    for dep in phase_dependences(phase):
        if dep.kind == "flow":
            seen.setdefault(dep.carrier_var, None)
    return tuple(seen)


def scalar_reductions(phase: Phase) -> List[ast.Assign]:
    """Assignments reducing array data into a scalar (``s = s + a(i,j)``,
    ``rmax = max(rmax, ...)``): scalar target that also appears on the
    right-hand side alongside at least one array reference."""
    out: List[ast.Assign] = []
    seen: set = set()
    for acc in phase.accesses:
        stmt = acc.stmt
        if id(stmt) in seen or not isinstance(stmt, ast.Assign):
            continue
        seen.add(id(stmt))
        if not isinstance(stmt.target, ast.Var):
            continue
        rhs_vars = {
            n.name for n in ast.walk_expr(stmt.expr) if isinstance(n, ast.Var)
        }
        rhs_arrays = any(True for _ in ast.expr_array_refs(stmt.expr))
        if stmt.target.name in rhs_vars and rhs_arrays:
            out.append(stmt)
    return out


def reduction_vars(phase: Phase) -> Tuple[str, ...]:
    """Loop variables the phase reduces over.

    A loop variable ``v`` is a reduction variable when some assignment both
    reads and writes the same location independent of ``v`` (scalar
    accumulators, or array accumulators not indexed by ``v``) while its
    right-hand side reads data indexed by ``v``.
    """
    reducing: Dict[str, None] = {}
    writes = [a for a in phase.accesses if a.is_write]
    for write in writes:
        loop_vars = {loop.var for loop in write.loops}
        indexed = set()
        for sub in write.subscripts:
            indexed.update(sub.variables)
        free = loop_vars - indexed
        if not free:
            continue
        # The same statement must read data indexed by the free variable
        # (otherwise it is plain redundant-store code, not a reduction).
        for acc in phase.accesses:
            if acc.stmt is not write.stmt or acc.is_write:
                continue
            read_vars = set()
            for sub in acc.subscripts:
                read_vars.update(sub.variables)
            for var in free & read_vars:
                reducing.setdefault(var, None)
    return tuple(reducing)
