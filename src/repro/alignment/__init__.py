"""Alignment analysis: CAG, lattice, 0-1 conflict resolution, heuristic."""

from .cag import CAG, Node
from .lattice import Partitioning
from .weights import build_phase_cag, communication_cost
from .ilp import (
    AlignmentILP,
    AlignmentResolution,
    build_alignment_model,
    resolve_conflicts,
)
from .orientation import OrientationError, canonical_alignments, orient
from .search_space import (
    AlignmentCandidate,
    AlignmentSearchSpaces,
    PhaseClass,
    build_alignment_search_spaces,
    dominance_factor,
)

__all__ = [
    "CAG",
    "Node",
    "Partitioning",
    "build_phase_cag",
    "communication_cost",
    "AlignmentILP",
    "AlignmentResolution",
    "build_alignment_model",
    "resolve_conflicts",
    "OrientationError",
    "canonical_alignments",
    "orient",
    "AlignmentCandidate",
    "AlignmentSearchSpaces",
    "PhaseClass",
    "build_alignment_search_spaces",
    "dominance_factor",
]
