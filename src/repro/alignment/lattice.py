"""Semi-lattice of conflict-free alignment information (paper §2.2.1).

The inter-dimensional alignment information of a conflict-free CAG is its
node partitioning (connected components).  Partitionings over a fixed node
set form a semi-lattice under the *refinement* partial order:

* bottom = all-singletons (no alignment information);
* ``X ⊑ Y`` iff X refines Y (X carries weaker-or-equal information);
* ``meet`` = coarsest common refinement (blockwise intersection);
* ``join`` = finest common coarsening (transitive union) — a join may
  introduce a conflict, which callers must check.

Partitionings are immutable; all operations are linear (in practice) using
hash-tagged block membership, matching the paper's complexity discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from .cag import CAG, Node


@dataclass(frozen=True)
class Partitioning:
    """An immutable partitioning of CAG nodes."""

    blocks: Tuple[FrozenSet[Node], ...]

    def __post_init__(self) -> None:
        seen: Set[Node] = set()
        for block in self.blocks:
            if not block:
                raise ValueError("empty partition block")
            if seen & block:
                raise ValueError("overlapping partition blocks")
            seen |= block

    @classmethod
    def of(cls, blocks: Iterable[Iterable[Node]]) -> "Partitioning":
        normalized = sorted(
            (frozenset(b) for b in blocks if b), key=lambda b: sorted(b)
        )
        return cls(blocks=tuple(normalized))

    @classmethod
    def bottom(cls, nodes: Iterable[Node]) -> "Partitioning":
        """No alignment information: every node is its own block."""
        return cls.of([{n} for n in nodes])

    @classmethod
    def from_cag(cls, cag: CAG) -> "Partitioning":
        """The alignment information of a conflict-free CAG."""
        return cls.of(cag.components())

    # -- queries ---------------------------------------------------------------

    @property
    def nodes(self) -> FrozenSet[Node]:
        out: Set[Node] = set()
        for block in self.blocks:
            out |= block
        return frozenset(out)

    def block_of(self, node: Node) -> FrozenSet[Node]:
        for block in self.blocks:
            if node in block:
                return block
        raise KeyError(f"{node!r} not in partitioning")

    def _membership(self) -> Dict[Node, int]:
        tag: Dict[Node, int] = {}
        for i, block in enumerate(self.blocks):
            for node in block:
                tag[node] = i
        return tag

    def has_conflict(self) -> bool:
        """Two dimensions of one array in the same block."""
        for block in self.blocks:
            arrays: Set[str] = set()
            for array, _dim in block:
                if array in arrays:
                    return True
                arrays.add(array)
        return False

    def aligned(self, a: Node, b: Node) -> bool:
        tags = self._membership()
        return tags.get(a) is not None and tags.get(a) == tags.get(b)

    # -- lattice operations -----------------------------------------------------

    def refines(self, other: "Partitioning") -> bool:
        """``self ⊑ other``: every block of self fits inside a block of
        other.  Requires equal node sets; linear via membership tags."""
        if self.nodes != other.nodes:
            return False
        tags = other._membership()
        for block in self.blocks:
            it = iter(block)
            first_tag = tags[next(it)]
            if any(tags[node] != first_tag for node in it):
                return False
        return True

    def meet(self, other: "Partitioning") -> "Partitioning":
        """Coarsest common refinement: blockwise intersections."""
        if self.nodes != other.nodes:
            raise ValueError("meet requires identical node sets")
        tags_a = self._membership()
        tags_b = other._membership()
        groups: Dict[Tuple[int, int], Set[Node]] = {}
        for node in self.nodes:
            groups.setdefault((tags_a[node], tags_b[node]), set()).add(node)
        return Partitioning.of(groups.values())

    def join(self, other: "Partitioning") -> "Partitioning":
        """Finest common coarsening: union-find over both block sets.
        May introduce conflicts — callers check :meth:`has_conflict`."""
        if self.nodes != other.nodes:
            raise ValueError("join requires identical node sets")
        parent: Dict[Node, Node] = {n: n for n in self.nodes}

        def find(x: Node) -> Node:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for partitioning in (self, other):
            for block in partitioning.blocks:
                nodes = sorted(block)
                for node in nodes[1:]:
                    ra, rb = find(nodes[0]), find(node)
                    if ra != rb:
                        parent[ra] = rb
        groups: Dict[Node, Set[Node]] = {}
        for node in self.nodes:
            groups.setdefault(find(node), set()).add(node)
        return Partitioning.of(groups.values())

    def restricted(self, arrays: Iterable[str]) -> "Partitioning":
        """Projection onto the nodes of the given arrays."""
        keep = set(arrays)
        blocks = []
        for block in self.blocks:
            sub = {n for n in block if n[0] in keep}
            if sub:
                blocks.append(sub)
        return Partitioning.of(blocks)

    def extended(self, nodes: Iterable[Node]) -> "Partitioning":
        """Add missing nodes as singletons (keeps node sets comparable)."""
        missing = [n for n in nodes if n not in self.nodes]
        blocks: List[Set[Node]] = [set(b) for b in self.blocks]
        blocks.extend({n} for n in missing)
        return Partitioning.of(blocks)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        def fmt(block: FrozenSet[Node]) -> str:
            return "{" + ", ".join(f"{a}[{d}]" for a, d in sorted(block)) + "}"

        return " | ".join(fmt(b) for b in self.blocks)
