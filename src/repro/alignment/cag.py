"""Component affinity graph (CAG) — Li & Chen's representation of
inter-dimensional alignment preferences (paper Section 2.2.1).

A ``d``-dimensional array contributes ``d`` nodes ``(array, dim)``.
Weighted undirected edges connect dimensions of *distinct* arrays that are
coupled in a computation; the weight is the expected penalty (communication
volume) of not aligning them.

During weight construction the CAG is *directed* — edge directions track
the flow of values under the owner-computes rule, implementing the paper's
caching model (Section 3.1):

* first occurrence of a preference: record weight and direction;
* re-occurrence with the **same** direction: cached, no change;
* re-occurrence with the **opposite** direction: add the new cost and
  reverse the stored direction.

Once built, directions are dropped (:meth:`CAG.undirected`).

A *conflict* exists when two nodes of the same array are connected — such
a CAG cannot be turned into a valid alignment without cutting edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

Node = Tuple[str, int]  # (array name, 0-based dimension)


def _key(a: Node, b: Node) -> Tuple[Node, Node]:
    return (a, b) if a <= b else (b, a)


@dataclass
class CAG:
    """Mutable component affinity graph."""

    nodes: Set[Node] = field(default_factory=set)
    #: undirected edge key -> weight
    weights: Dict[Tuple[Node, Node], float] = field(default_factory=dict)
    #: edge key -> (src, dst); present only while directions are tracked
    directions: Dict[Tuple[Node, Node], Tuple[Node, Node]] = field(
        default_factory=dict
    )

    # -- construction -----------------------------------------------------

    def add_node(self, node: Node) -> None:
        self.nodes.add(node)

    def add_array(self, array: str, rank: int) -> None:
        for dim in range(rank):
            self.nodes.add((array, dim))

    def add_preference(self, src: Node, dst: Node, cost: float) -> None:
        """Record a directed alignment preference (value flows src→dst)
        using the caching rule described in the module docstring."""
        if src[0] == dst[0]:
            raise ValueError("alignment preferences connect distinct arrays")
        self.nodes.add(src)
        self.nodes.add(dst)
        key = _key(src, dst)
        if key not in self.weights:
            self.weights[key] = cost
            self.directions[key] = (src, dst)
            return
        if self.directions.get(key) == (src, dst):
            return  # same direction: the communicated values are cached
        self.weights[key] += cost
        self.directions[key] = (src, dst)

    def add_undirected_edge(self, a: Node, b: Node, weight: float) -> None:
        """Accumulate weight on an undirected edge (used when merging)."""
        if a[0] == b[0]:
            raise ValueError("CAG edges connect distinct arrays")
        self.nodes.add(a)
        self.nodes.add(b)
        key = _key(a, b)
        self.weights[key] = self.weights.get(key, 0.0) + weight

    def undirected(self) -> "CAG":
        """Copy with edge directions dropped (end of weight building)."""
        return CAG(nodes=set(self.nodes), weights=dict(self.weights))

    def copy(self) -> "CAG":
        return CAG(
            nodes=set(self.nodes),
            weights=dict(self.weights),
            directions=dict(self.directions),
        )

    def scaled(self, factor: float) -> "CAG":
        """Copy with every edge weight multiplied by ``factor`` (used for
        the dominance scaling of import operations)."""
        return CAG(
            nodes=set(self.nodes),
            weights={k: w * factor for k, w in self.weights.items()},
        )

    # -- basic queries -----------------------------------------------------

    @property
    def arrays(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for array, _dim in sorted(self.nodes):
            seen.setdefault(array, None)
        return tuple(seen)

    def array_nodes(self, array: str) -> List[Node]:
        return sorted(n for n in self.nodes if n[0] == array)

    def edges(self) -> List[Tuple[Node, Node, float]]:
        return [(a, b, w) for (a, b), w in sorted(self.weights.items())]

    @property
    def num_edges(self) -> int:
        return len(self.weights)

    def total_weight(self) -> float:
        return sum(self.weights.values())

    def neighbors(self, node: Node) -> List[Node]:
        out = []
        for a, b in self.weights:
            if a == node:
                out.append(b)
            elif b == node:
                out.append(a)
        return sorted(out)

    # -- components & conflicts ------------------------------------------

    def components(self) -> List[FrozenSet[Node]]:
        """Connected components (the alignment information of a
        conflict-free CAG), sorted for determinism."""
        parent: Dict[Node, Node] = {n: n for n in self.nodes}

        def find(x: Node) -> Node:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in self.weights:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb
        groups: Dict[Node, Set[Node]] = {}
        for node in self.nodes:
            groups.setdefault(find(node), set()).add(node)
        return sorted(
            (frozenset(g) for g in groups.values()), key=lambda g: sorted(g)
        )

    def has_conflict(self) -> bool:
        """True when some component contains two dimensions of one array
        (there is a path between two nodes of the same array)."""
        for component in self.components():
            arrays_seen: Set[str] = set()
            for array, _dim in component:
                if array in arrays_seen:
                    return True
                arrays_seen.add(array)
        return False

    def conflicts(self) -> List[Tuple[Node, Node]]:
        """All same-array node pairs that are connected."""
        out = []
        for component in self.components():
            by_array: Dict[str, List[Node]] = {}
            for node in sorted(component):
                by_array.setdefault(node[0], []).append(node)
            for nodes in by_array.values():
                for i in range(len(nodes)):
                    for j in range(i + 1, len(nodes)):
                        out.append((nodes[i], nodes[j]))
        return out

    # -- merging ------------------------------------------------------------

    @staticmethod
    def merge(*cags: "CAG") -> "CAG":
        """Graph union; weights of shared edges accumulate."""
        merged = CAG()
        for cag in cags:
            merged.nodes |= cag.nodes
            for key, weight in cag.weights.items():
                merged.weights[key] = merged.weights.get(key, 0.0) + weight
        return merged

    def restricted(self, arrays: Iterable[str]) -> "CAG":
        """Sub-CAG induced by the given arrays (the paper's restriction of
        an imported candidate to the sink class's arrays)."""
        keep = set(arrays)
        nodes = {n for n in self.nodes if n[0] in keep}
        weights = {
            key: w
            for key, w in self.weights.items()
            if key[0][0] in keep and key[1][0] in keep
        }
        return CAG(nodes=nodes, weights=weights)

    def drop_edges(self, keys: Iterable[Tuple[Node, Node]]) -> "CAG":
        dropped = set(keys)
        return CAG(
            nodes=set(self.nodes),
            weights={
                k: w for k, w in self.weights.items() if k not in dropped
            },
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"CAG({len(self.nodes)} nodes, {self.num_edges} edges)"]
        for (a, b), w in sorted(self.weights.items()):
            lines.append(f"  {a[0]}[{a[1]}] -- {b[0]}[{b[1]}]  w={w:g}")
        return "\n".join(lines)
