"""CAG edge-weight computation (paper Section 3.1).

Assumes an advanced compilation system that caches communicated values and
maps computation by the owner-computes rule on a MIMD machine.  The model
is *pessimistic*: every unsatisfied alignment preference is assumed to cost
communication.

For each assignment ``L(...) = ... R(...) ...`` whose left-hand side is an
array element, every right-hand-side reference of a *different* array
induces directed preferences R→L between dimension pairs indexed by the
same induction variable.  The preference cost models communication volume:
the byte size of the array at the edge's **source** (the communicated
array under owner-computes).  Re-occurring preferences follow the caching
rule implemented in :meth:`repro.alignment.cag.CAG.add_preference`: same
direction → cached/no change; opposite direction → add cost and reverse.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.phases import Phase
from ..analysis.references import ArrayAccess
from ..frontend.symbols import ArraySymbol, SymbolTable
from ..obs import tracing
from .cag import CAG


def _matched_dims(
    write: ArrayAccess, read: ArrayAccess
) -> List[Tuple[int, int]]:
    """Dimension pairs (write_dim, read_dim) indexed by the same unique
    induction variable."""
    pairs: List[Tuple[int, int]] = []
    for dl in range(write.rank):
        var = write.subscripts[dl].single_index_var()
        if var is None:
            continue
        for dr in range(read.rank):
            if read.subscripts[dr].single_index_var() == var:
                pairs.append((dl, dr))
    return pairs


def communication_cost(symbol: ArraySymbol) -> float:
    """Volume model: the size in bytes of the communicated array."""
    return float(symbol.total_bytes)


def build_phase_cag(phase: Phase, symbols: SymbolTable) -> CAG:
    """Build the weighted, undirected CAG of one phase.

    Every array referenced in the phase contributes its nodes even when it
    has no alignment preference (isolated nodes default to canonical
    orientation later).
    """
    if not tracing.active():
        return _build_phase_cag(phase, symbols)
    with tracing.span("cag.build", phase=phase.index) as sp:
        cag = _build_phase_cag(phase, symbols)
        sp.set_attr("nodes", len(cag.nodes))
        sp.set_attr("edges", len(cag.weights))
        sp.set_attr("total_weight", cag.total_weight())
        if tracing.detail_active():
            for (a, b), weight in sorted(cag.weights.items()):
                tracing.add_event(
                    "cag.edge",
                    phase=phase.index,
                    src=f"{a[0]}[{a[1]}]",
                    dst=f"{b[0]}[{b[1]}]",
                    weight=weight,
                )
    return cag


def _build_phase_cag(phase: Phase, symbols: SymbolTable) -> CAG:
    cag = CAG()
    for array in phase.arrays:
        symbol = symbols.get(array)
        if isinstance(symbol, ArraySymbol):
            cag.add_array(array, symbol.rank)

    # Group accesses by statement so writes meet their own reads.
    by_stmt: Dict[int, List[ArrayAccess]] = {}
    stmt_order: List[int] = []
    for acc in phase.accesses:
        key = id(acc.stmt)
        if key not in by_stmt:
            by_stmt[key] = []
            stmt_order.append(key)
        by_stmt[key].append(acc)

    for key in stmt_order:
        accesses = by_stmt[key]
        writes = [a for a in accesses if a.is_write]
        reads = [a for a in accesses if not a.is_write]
        for write in writes:
            for read in reads:
                if read.array == write.array:
                    continue
                read_symbol = symbols.get(read.array)
                if not isinstance(read_symbol, ArraySymbol):
                    continue
                cost = communication_cost(read_symbol)
                for dl, dr in _matched_dims(write, read):
                    src = (read.array, dr)  # owner-computes: value flows
                    dst = (write.array, dl)  # from the read to the write
                    cag.add_preference(src, dst, cost)
    return cag.undirected()
