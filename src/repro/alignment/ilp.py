"""0-1 integer programming formulation of the inter-dimensional alignment
problem — the paper's appendix, implemented verbatim.

An instance asks for a ``d``-partitioning of a weighted CAG minimizing the
weight of edges that cross partitions (equivalently, maximizing the weight
of edges inside partitions).

Variables
    * node switches ``a_ik`` — node ``a_i`` lies in partition ``k``;
    * edge switches ``a$b^{ik}_{jk}`` — the edge's source and sink both lie
      in partition ``k``.

Constraints
    * (type1) every node in exactly one partition: ``sum_k a_ik = 1``;
    * (type2) two dimensions of one array never share a partition:
      ``sum_i a_ik <= 1`` for every (array, k);
    * IN-constraints: for every node ``a_i``, partition ``k`` and source
      array ``b``: ``sum_{b_j in SRC(b, a_i)} e <= a_ik``;
    * OUT-constraints: symmetric over ``SINK(a_i, c)``.

Edge directions are first *normalized* so all edges between one array pair
point the same way (the paper notes the direction only affects constraint
count, not correctness).

Objective: maximize ``sum_e sum_k e_k * weight(e)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ilp import MAXIMIZE, Solution, ZeroOneModel, solve as ilp_solve
from ..obs.tracing import add_event as obs_event, span as obs_span
from ..resilience.degrade import note_degradation
from .cag import CAG, Node
from .lattice import Partitioning


def _node_var(node: Node, k: int) -> str:
    return f"n:{node[0]}[{node[1]}]@{k}"


def _edge_var(src: Node, dst: Node, k: int) -> str:
    return f"e:{src[0]}[{src[1]}]${dst[0]}[{dst[1]}]@{k}"


@dataclass
class AlignmentILP:
    """A built alignment model plus the metadata to decode solutions."""

    model: ZeroOneModel
    cag: CAG
    d: int
    directed_edges: List[Tuple[Node, Node, float]]

    @property
    def num_variables(self) -> int:
        return self.model.num_variables

    @property
    def num_constraints(self) -> int:
        return self.model.num_constraints


def build_alignment_model(cag: CAG, d: int, name: str = "alignment") -> AlignmentILP:
    """Translate a CAG + template rank ``d`` into the appendix 0-1 model."""
    if any(dim >= d for _a, dim in cag.nodes):
        raise ValueError(
            f"CAG contains a dimension index >= template rank {d}"
        )
    model = ZeroOneModel(name=name, sense=MAXIMIZE)

    nodes = sorted(cag.nodes)
    arrays: Dict[str, List[Node]] = {}
    for node in nodes:
        arrays.setdefault(node[0], []).append(node)

    # Edge-direction normalization: orient every edge from the
    # lexicographically smaller array to the larger one.
    directed: List[Tuple[Node, Node, float]] = []
    for (a, b), weight in sorted(cag.weights.items()):
        src, dst = (a, b) if a[0] <= b[0] else (b, a)
        directed.append((src, dst, weight))

    # Variables.
    for node in nodes:
        for k in range(d):
            model.add_var(_node_var(node, k))
    for src, dst, _w in directed:
        for k in range(d):
            model.add_var(_edge_var(src, dst, k))

    # (type1) node constraints.
    for node in nodes:
        model.add_constraint(
            {_node_var(node, k): 1.0 for k in range(d)},
            "==",
            1.0,
            name=f"type1:{node[0]}[{node[1]}]",
        )
    # (type2) array constraints.
    for array, array_nodes in sorted(arrays.items()):
        if len(array_nodes) < 2:
            continue
        for k in range(d):
            model.add_constraint(
                {_node_var(node, k): 1.0 for node in array_nodes},
                "<=",
                1.0,
                name=f"type2:{array}@{k}",
            )

    # Group edges for IN/OUT constraints.
    in_groups: Dict[Tuple[Node, str], List[Tuple[Node, Node]]] = {}
    out_groups: Dict[Tuple[Node, str], List[Tuple[Node, Node]]] = {}
    for src, dst, _w in directed:
        in_groups.setdefault((dst, src[0]), []).append((src, dst))
        out_groups.setdefault((src, dst[0]), []).append((src, dst))

    for (sink, src_array), edges in sorted(in_groups.items()):
        for k in range(d):
            coeffs = {_edge_var(s, t, k): 1.0 for s, t in edges}
            coeffs[_node_var(sink, k)] = -1.0
            model.add_constraint(
                coeffs, "<=", 0.0,
                name=f"in:{sink[0]}[{sink[1]}]<-{src_array}@{k}",
            )
    for (source, dst_array), edges in sorted(out_groups.items()):
        for k in range(d):
            coeffs = {_edge_var(s, t, k): 1.0 for s, t in edges}
            coeffs[_node_var(source, k)] = -1.0
            model.add_constraint(
                coeffs, "<=", 0.0,
                name=f"out:{source[0]}[{source[1]}]->{dst_array}@{k}",
            )

    # Objective: maximize satisfied edge weight.
    objective: Dict[str, float] = {}
    for src, dst, weight in directed:
        for k in range(d):
            objective[_edge_var(src, dst, k)] = weight
    model.set_objective(objective)

    return AlignmentILP(model=model, cag=cag, d=d, directed_edges=directed)


@dataclass
class AlignmentResolution:
    """Result of conflict resolution."""

    resolved: CAG  # the input CAG with cut edges removed (conflict-free)
    partitioning: Partitioning  # components of the resolved CAG
    assignment: Dict[Node, int]  # the ILP's partition index per node
    cut_weight: float
    solution: Solution
    num_variables: int
    num_constraints: int
    optimal: bool = True  # False when a deadline forced a fallback


def greedy_orientation(cag: CAG, d: int) -> Dict[Node, int]:
    """Greedy CAG orientation: the anytime fallback when the alignment
    ILP's budget expires without a proven optimum.

    Starts from the identity alignment (dimension ``i`` of every array
    on template axis ``i`` — always feasible, and the paper's default
    when no conflicts exist), then makes one deterministic
    local-improvement pass: each node moves to the axis that maximizes
    the satisfied weight of its incident edges, subject to the type-2
    rule that two dimensions of one array never share an axis.
    """
    nodes = sorted(cag.nodes)
    assignment: Dict[Node, int] = {node: node[1] for node in nodes}

    neighbors: Dict[Node, List[Tuple[Node, float]]] = {n: [] for n in nodes}
    for (a, b), weight in cag.weights.items():
        neighbors[a].append((b, weight))
        neighbors[b].append((a, weight))

    by_array: Dict[str, List[Node]] = {}
    for node in nodes:
        by_array.setdefault(node[0], []).append(node)

    # Visit heavy nodes first so they claim their best axis.
    def incident_weight(node: Node) -> float:
        return sum(w for _n, w in neighbors[node])

    for node in sorted(nodes, key=lambda n: (-incident_weight(n), n)):
        taken = {
            assignment[sib] for sib in by_array[node[0]] if sib != node
        }
        best_k = assignment[node]
        best_gain = sum(
            w for other, w in neighbors[node]
            if assignment[other] == best_k
        )
        for k in range(d):
            if k == best_k or k in taken:
                continue
            gain = sum(
                w for other, w in neighbors[node]
                if assignment[other] == k
            )
            if gain > best_gain:
                best_gain = gain
                best_k = k
        assignment[node] = best_k
    return assignment


def resolve_conflicts(
    cag: CAG, d: int, backend: str = "scipy", name: str = "alignment",
    presolve: bool = True,
    warm_start: Optional[Dict[str, int]] = None,
) -> AlignmentResolution:
    """Optimally resolve the inter-dimensional alignment conflicts of
    ``cag`` for a ``d``-dimensional template.

    Returns the conflict-free CAG obtained by removing the minimum-weight
    set of partition-crossing edges, as chosen by the 0-1 solver.  With
    ``presolve`` (the default) constraint propagation fixes forced
    switch variables before the backend runs — for rank-1 templates the
    whole model usually collapses without a solver call; the solution is
    identical either way.  ``warm_start`` seeds a branch-bound solve
    with a known feasible variable assignment.  If a request deadline
    cut the solve short, the best incumbent (or the greedy orientation)
    is used instead and the resolution is flagged ``optimal=False`` with
    a degradation note.
    """
    with obs_span("alignment.resolve", name=name, template_rank=d) as sp:
        ilp = build_alignment_model(cag, d, name=name)
        sp.set_attr("variables", ilp.num_variables)
        sp.set_attr("constraints", ilp.num_constraints)
        solution = ilp_solve(
            ilp.model, backend=backend, presolve=presolve,
            warm_start=warm_start,
        )
        optimal = solution.is_optimal
        if solution.has_incumbent:
            assignment: Dict[Node, int] = {}
            for node in cag.nodes:
                for k in range(d):
                    if solution.values.get(_node_var(node, k)) == 1:
                        assignment[node] = k
                        break
            if not optimal:
                note_degradation(
                    "alignment", "incumbent",
                    f"solver stopped at {solution.status}; "
                    f"using best incumbent for {name!r}",
                )
        elif solution.status == "unknown":
            # Budget expired before any incumbent: fall back to the
            # greedy orientation heuristic.
            assignment = greedy_orientation(cag, d)
            note_degradation(
                "alignment", "greedy-fallback",
                f"no incumbent within budget; greedy orientation "
                f"for {name!r}",
            )
        else:
            # The model is feasible by construction (identity alignment
            # always satisfies it); a proven "infeasible" is a solver bug.
            raise RuntimeError(
                f"alignment ILP unexpectedly {solution.status} for {name!r}"
            )
        cut_keys = []
        cut_weight = 0.0
        for (a, b), weight in cag.weights.items():
            if assignment[a] != assignment[b]:
                cut_keys.append((a, b))
                cut_weight += weight
        if cut_keys:
            obs_event(
                "alignment.cut",
                name=name,
                cut_edges=sorted(
                    f"{a[0]}[{a[1]}]--{b[0]}[{b[1]}]" for a, b in cut_keys
                ),
                cut_weight=cut_weight,
            )
        resolved = cag.drop_edges(cut_keys)
    if resolved.has_conflict():  # pragma: no cover - guarded by type2
        raise AssertionError("ILP resolution left a conflict")
    return AlignmentResolution(
        resolved=resolved,
        partitioning=Partitioning.from_cag(resolved),
        assignment=assignment,
        cut_weight=cut_weight,
        solution=solution,
        num_variables=ilp.num_variables,
        num_constraints=ilp.num_constraints,
        optimal=optimal,
    )
