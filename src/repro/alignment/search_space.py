"""Alignment search-space construction (paper Section 3.2).

The heuristic:

1. initialize per-phase CAGs (conflicts resolved optimally by the 0-1
   formulation);
2. partition the phases into *classes* whose merged CAGs are conflict-free,
   visiting phases in reverse postorder of the PCFG and greedily joining
   CAGs; a conflict closes the current class and opens a new one;
3. exchange alignment information between classes by *imports*: importing
   class S into class T scales S's edge weights by a dominance factor,
   merges with T's CAG, optimally resolves any conflict in the merged CAG,
   and restricts the result to T's arrays;
4. an imported candidate enters T's search space only if its information
   is not weaker-or-equal (``⊑``) to a candidate already present;
5. class candidates are projected onto each phase of the class (restricted
   to the phase's arrays, oriented, deduplicated).

With ``p`` classes each final class search space holds at most ``p``
candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.pcfg import PCFG
from ..analysis.phases import Phase
from ..distribution.layouts import Alignment
from ..distribution.template import Template
from ..frontend.symbols import ArraySymbol, SymbolTable
from ..obs.tracing import add_event as obs_event, span as obs_span
from .cag import CAG
from .ilp import AlignmentResolution, resolve_conflicts
from .lattice import Partitioning
from .orientation import orient
from .weights import build_phase_cag


@dataclass(frozen=True)
class AlignmentCandidate:
    """One entry of an alignment search space."""

    partitioning: Partitioning
    alignments: Tuple[Tuple[str, Alignment], ...]  # sorted by array
    provenance: str  # "own" | "import:<class>"

    @property
    def alignment_map(self) -> Dict[str, Alignment]:
        return dict(self.alignments)

    def signature(self) -> Tuple:
        return self.alignments


@dataclass
class PhaseClass:
    """A set of phases whose merged CAG is conflict-free."""

    index: int
    phase_indices: List[int]
    cag: CAG
    candidates: List[Partitioning] = field(default_factory=list)

    @property
    def name(self) -> str:
        return f"class{self.index}"


@dataclass
class AlignmentSearchSpaces:
    """Result of alignment analysis: per-phase candidate lists plus the
    intermediate structures (browsable, per the tool's design goal)."""

    per_phase: Dict[int, List[AlignmentCandidate]]
    classes: List[PhaseClass]
    phase_cags: Dict[int, CAG]
    resolutions: List[AlignmentResolution]  # every ILP resolution performed

    def candidates_for(self, phase_index: int) -> List[AlignmentCandidate]:
        return self.per_phase[phase_index]

    def insert_candidate(
        self, phase_index: int, candidate: AlignmentCandidate
    ) -> None:
        """User hook: add a hand-written candidate to a phase's space."""
        existing = self.per_phase.setdefault(phase_index, [])
        if all(c.signature() != candidate.signature() for c in existing):
            existing.append(candidate)

    def delete_candidate(self, phase_index: int, position: int) -> None:
        """User hook: remove a candidate (the spaces are editable)."""
        del self.per_phase[phase_index][position]


def dominance_factor(sink: CAG) -> float:
    """Scale factor applied to an import's source CAG so its preferences
    dominate the sink's when the merge conflicts."""
    return sink.total_weight() + 1.0


def build_alignment_search_spaces(
    phases: List[Phase],
    pcfg: PCFG,
    symbols: SymbolTable,
    template: Template,
    backend: str = "scipy",
) -> AlignmentSearchSpaces:
    """Run the full Section 3.2 heuristic."""
    d = template.rank
    resolutions: List[AlignmentResolution] = []

    # Step 1 — per-phase conflict-free CAGs.
    phase_cags: Dict[int, CAG] = {}
    for phase in phases:
        cag = build_phase_cag(phase, symbols)
        if cag.has_conflict():
            obs_event("cag.conflict", where=f"phase{phase.index}")
            resolution = resolve_conflicts(
                cag, d, backend=backend, name=f"phase{phase.index}"
            )
            resolutions.append(resolution)
            cag = resolution.resolved
        phase_cags[phase.index] = cag

    # Step 2 — greedy class partitioning in reverse postorder.
    order = pcfg.reverse_postorder()
    order += [p.index for p in phases if p.index not in set(order)]
    classes: List[PhaseClass] = []
    current: Optional[PhaseClass] = None
    for idx in order:
        cag = phase_cags[idx]
        if current is None:
            current = PhaseClass(index=len(classes), phase_indices=[idx],
                                 cag=cag.copy())
            continue
        merged = CAG.merge(current.cag, cag)
        if merged.has_conflict():
            classes.append(current)
            current = PhaseClass(index=len(classes), phase_indices=[idx],
                                 cag=cag.copy())
        else:
            current.cag = merged
            current.phase_indices.append(idx)
    if current is not None:
        classes.append(current)

    # Step 3/4 — exchange alignment information via imports.
    with obs_span("alignment.imports", classes=len(classes)):
        for sink in classes:
            own = Partitioning.from_cag(sink.cag)
            sink.candidates = [own]
            for source in classes:
                if source is sink:
                    continue
                scaled = source.cag.scaled(dominance_factor(sink.cag))
                merged = CAG.merge(scaled, sink.cag)
                if merged.has_conflict():
                    obs_event(
                        "cag.conflict",
                        where=f"import:{source.name}->{sink.name}",
                    )
                    resolution = resolve_conflicts(
                        merged, d, backend=backend,
                        name=f"import:{source.name}->{sink.name}",
                    )
                    resolutions.append(resolution)
                    merged = resolution.resolved
                imported = Partitioning.from_cag(
                    merged.restricted(sink.cag.arrays)
                ).extended(sink.cag.nodes)
                # Insert only if not weaker-or-equal to existing
                # information.
                accepted = not any(
                    imported.refines(c) for c in sink.candidates
                )
                obs_event(
                    "alignment.import",
                    source=source.name,
                    sink=sink.name,
                    accepted=accepted,
                )
                if accepted:
                    sink.candidates.append(imported)

    # Step 5 — project class candidates onto individual phases.
    per_phase: Dict[int, List[AlignmentCandidate]] = {}
    class_of_phase = {
        idx: cls for cls in classes for idx in cls.phase_indices
    }
    for phase in phases:
        cls = class_of_phase[phase.index]
        seen = set()
        candidates: List[AlignmentCandidate] = []
        for pos, class_candidate in enumerate(cls.candidates):
            phase_nodes = phase_cags[phase.index].nodes
            restricted = class_candidate.restricted(
                [a for a in phase.arrays]
            ).extended(phase_nodes)
            alignments = orient(restricted, d, symbols)
            # Ensure every phase array has an alignment entry.
            for array in phase.arrays:
                symbol = symbols.get(array)
                if isinstance(symbol, ArraySymbol) and array not in alignments:
                    alignments[array] = Alignment.canonical(symbol.rank)
            candidate = AlignmentCandidate(
                partitioning=restricted,
                alignments=tuple(sorted(alignments.items())),
                provenance="own" if pos == 0 else f"import:{pos}",
            )
            if candidate.signature() not in seen:
                seen.add(candidate.signature())
                candidates.append(candidate)
        per_phase[phase.index] = candidates

    return AlignmentSearchSpaces(
        per_phase=per_phase,
        classes=classes,
        phase_cags=phase_cags,
        resolutions=resolutions,
    )
