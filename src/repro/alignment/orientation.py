"""Orientation selection (paper Section 2.2.1, "Orientation Selection").

A conflict-free CAG's partitioning only records *relative* alignment; an
orientation maps each block (set of mutually aligned array dimensions) to
a concrete template dimension.  For a d-dimensional template with d blocks
there are d! orientations, all satisfying the preferences; we use a greedy
strategy in the spirit of Anderson & Lam: blocks are placed in decreasing
weight order onto the template dimension most of their members "naturally"
occupy (weighted by array size), subject to the constraint that blocks
containing dimensions of the same array take distinct template dimensions.

The prototype's distribution search spaces are 1-D BLOCK only, so any
orientation composed with the exhaustive distribution set yields the same
candidate layouts (the paper notes this symmetry); the greedy choice keeps
descriptions canonical and minimizes remapping between similarly oriented
candidates.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..distribution.layouts import Alignment
from ..frontend.symbols import ArraySymbol, SymbolTable
from .cag import Node
from .lattice import Partitioning


class OrientationError(Exception):
    """Raised when a partitioning cannot be embedded in the template."""


def orient(
    partitioning: Partitioning,
    template_rank: int,
    symbols: SymbolTable,
) -> Dict[str, Alignment]:
    """Choose template dimensions for every block and derive per-array
    :class:`Alignment` maps."""
    if partitioning.has_conflict():
        raise OrientationError(
            "cannot orient a conflicting partitioning (two dimensions of "
            "one array share a block)"
        )
    blocks = list(partitioning.blocks)

    def block_weight(block: FrozenSet[Node]) -> float:
        weight = 0.0
        for array, _dim in block:
            symbol = symbols.get(array)
            if isinstance(symbol, ArraySymbol):
                weight += symbol.total_bytes
        return weight

    def votes(block: FrozenSet[Node]) -> Dict[int, float]:
        """How strongly the block prefers each template dimension: each
        member (a, dim) votes for template dim ``dim`` with the array's
        size."""
        out: Dict[int, float] = {}
        for array, dim in block:
            symbol = symbols.get(array)
            size = (
                float(symbol.total_bytes)
                if isinstance(symbol, ArraySymbol)
                else 1.0
            )
            if dim < template_rank:
                out[dim] = out.get(dim, 0.0) + size
        return out

    # Deterministic order: heaviest blocks first, ties by content.
    order = sorted(
        range(len(blocks)),
        key=lambda i: (-block_weight(blocks[i]), sorted(blocks[i])),
    )

    assignment: Dict[int, int] = {}  # block index -> template dim
    used_by_array: Dict[str, set] = {}
    for block_index in order:
        block = blocks[block_index]
        block_arrays = {array for array, _dim in block}
        forbidden = set()
        for array in block_arrays:
            forbidden |= used_by_array.get(array, set())
        candidates = [t for t in range(template_rank) if t not in forbidden]
        if not candidates:
            raise OrientationError(
                f"no template dimension left for block {sorted(block)}"
            )
        vote = votes(block)
        best = max(candidates, key=lambda t: (vote.get(t, 0.0), -t))
        assignment[block_index] = best
        for array in block_arrays:
            used_by_array.setdefault(array, set()).add(best)

    # Derive per-array axis maps.
    dim_map: Dict[str, Dict[int, int]] = {}
    for block_index, tdim in assignment.items():
        for array, dim in blocks[block_index]:
            dim_map.setdefault(array, {})[dim] = tdim

    alignments: Dict[str, Alignment] = {}
    for array, mapping in sorted(dim_map.items()):
        symbol = symbols.get(array)
        rank = symbol.rank if isinstance(symbol, ArraySymbol) else (
            max(mapping) + 1
        )
        axis = []
        taken = set(mapping.values())
        free = [t for t in range(template_rank) if t not in taken]
        for dim in range(rank):
            if dim in mapping:
                axis.append(mapping[dim])
            else:
                # Dimension absent from the partitioning (isolated node
                # dropped by a restriction): give it a leftover template
                # dimension, preferring the natural position.
                if dim in free:
                    axis.append(dim)
                    free.remove(dim)
                elif free:
                    axis.append(free.pop(0))
                else:  # pragma: no cover - rank <= template_rank invariant
                    raise OrientationError(
                        f"array {array!r} rank exceeds template rank"
                    )
        alignments[array] = Alignment(axis_map=tuple(axis))
    return alignments


def canonical_alignments(
    arrays: List[str], symbols: SymbolTable
) -> Dict[str, Alignment]:
    """Identity alignment for every array (dimension d → template dim d)."""
    out: Dict[str, Alignment] = {}
    for array in arrays:
        symbol = symbols.get(array)
        if isinstance(symbol, ArraySymbol):
            out[array] = Alignment.canonical(symbol.rank)
    return out
