"""Human-readable reports of assistant runs and experiments.

The envisioned tool is interactive: the user browses search spaces with
their predicted performances.  These formatters are the text rendering of
that interface (and what the CLI prints).
"""

from __future__ import annotations

from typing import List, Optional

from .assistant import AssistantResult
from .schemes import Scheme, TOOL, matching_scheme
from .testcases import SummaryRow, TestCaseResult


def format_search_spaces(result: AssistantResult, limit: int = 0) -> str:
    """The browsable per-phase candidate table with predicted times."""
    lines = [
        f"program template: {result.template}",
        f"phases: {len(result.partition)}   "
        f"alignment classes: {len(result.alignment_spaces.classes)}   "
        f"candidates: {result.layout_spaces.total_candidates()}",
    ]
    indices = sorted(result.layout_spaces.per_phase)
    if limit:
        indices = indices[:limit]
    selection = result.selection.selection
    for idx in indices:
        phase = result.partition.phases[idx]
        freq = result.pcfg.phase_frequency(idx)
        lines.append(
            f"phase {idx} (line {phase.line}, do {phase.loop_var}, "
            f"freq {freq:g}):"
        )
        for pos, est in enumerate(result.estimates.per_phase[idx]):
            marker = "*" if selection.get(idx) == pos else " "
            dist = est.candidate.layout.distribution
            lines.append(
                f"  {marker} c{pos} {dist}  "
                f"{est.estimate.exec_class:<20s} "
                f"{est.total / 1000.0:10.3f} ms"
            )
    return "\n".join(lines)


def format_selection(result: AssistantResult) -> str:
    """The chosen layout, HPF-style, with per-phase deviations."""
    lines = [
        f"predicted execution time: "
        f"{result.predicted_total_us / 1e6:.4f} s",
        f"layout is {'DYNAMIC (remapping)' if result.is_dynamic else 'static'}",
        f"selection ILP: {result.selection.num_variables} variables, "
        f"{result.selection.num_constraints} constraints, solved in "
        f"{result.selection.solution.stats.wall_time * 1000:.0f} ms",
    ]
    selection = result.selection.selection
    sample_idx = min(selection)
    sample = result.layout_spaces.per_phase[sample_idx][selection[sample_idx]]
    lines.append(sample.layout.describe())

    def differs(idx: int, pos: int) -> bool:
        layout = result.layout_spaces.per_phase[idx][pos].layout
        if layout.distribution != sample.layout.distribution:
            return True
        sample_align = sample.layout.alignment_map
        return any(
            name in sample_align and alignment != sample_align[name]
            for name, alignment in layout.alignments
        )

    deviations = [
        (idx, pos)
        for idx, pos in sorted(selection.items())
        if differs(idx, pos)
    ]
    if deviations:
        lines.append("phases with different layouts:")
        for idx, pos in deviations:
            layout = result.layout_spaces.per_phase[idx][pos].layout
            lines.append(f"  phase {idx}: {layout.distribution}")
    return "\n".join(lines)


def format_schemes(schemes: List[Scheme]) -> str:
    """Estimated vs measured table for the promising schemes."""
    lines = [f"{'scheme':<12} {'estimated':>12} {'measured':>12}"]
    for scheme in schemes:
        measured = (
            f"{scheme.measured_us / 1e6:10.4f} s"
            if scheme.measured_us is not None
            else "-"
        )
        lines.append(
            f"{scheme.name:<12} {scheme.estimated_us / 1e6:10.4f} s "
            f"{measured:>12}"
        )
    return "\n".join(lines)


def format_test_case(result: TestCaseResult) -> str:
    lines = [f"== {result.case.label} =="]
    lines.append(format_schemes(result.schemes))
    picked = matching_scheme(result.schemes, result.tool_scheme.selection)
    picked_name = picked.name if picked else "custom dynamic"
    best = result.best_measured
    verdict = "OPTIMAL" if result.tool_optimal else (
        f"suboptimal (+{result.loss_percent:.1f}% vs {best.name})"
    )
    lines.append(f"tool picked: {picked_name} -> {verdict}")
    return "\n".join(lines)


def format_summary(rows: List[SummaryRow]) -> str:
    lines = [
        f"{'program':<12} {'cases':>5} {'optimal':>8} {'worst loss':>11} "
        f"{'rank ok':>8}  best-scheme tallies"
    ]
    total_cases = total_optimal = 0
    worst = 0.0
    for row in rows:
        tallies = ", ".join(
            f"{name}:{count}"
            for name, count in sorted(row.best_scheme_counts.items())
        )
        lines.append(
            f"{row.program:<12} {row.cases:>5} {row.tool_optimal:>8} "
            f"{row.worst_loss_percent:>10.1f}% {row.rankings_correct:>8}  "
            f"{tallies}"
        )
        total_cases += row.cases
        total_optimal += row.tool_optimal
        worst = max(worst, row.worst_loss_percent)
    lines.append(
        f"{'TOTAL':<12} {total_cases:>5} {total_optimal:>8} {worst:>10.1f}%"
    )
    return "\n".join(lines)
