"""Human-readable reports of assistant runs and experiments.

The envisioned tool is interactive: the user browses search spaces with
their predicted performances.  These formatters are the text rendering of
that interface (and what the CLI prints).
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional

from .assistant import AssistantResult
from .schemes import Scheme, TOOL, matching_scheme
from .testcases import SummaryRow, TestCaseResult


def format_search_spaces(result: AssistantResult, limit: int = 0) -> str:
    """The browsable per-phase candidate table with predicted times."""
    lines = [
        f"program template: {result.template}",
        f"phases: {len(result.partition)}   "
        f"alignment classes: {len(result.alignment_spaces.classes)}   "
        f"candidates: {result.layout_spaces.total_candidates()}",
    ]
    indices = sorted(result.layout_spaces.per_phase)
    if limit:
        indices = indices[:limit]
    selection = result.selection.selection
    for idx in indices:
        phase = result.partition.phases[idx]
        freq = result.pcfg.phase_frequency(idx)
        lines.append(
            f"phase {idx} (line {phase.line}, do {phase.loop_var}, "
            f"freq {freq:g}):"
        )
        for pos, est in enumerate(result.estimates.per_phase[idx]):
            marker = "*" if selection.get(idx) == pos else " "
            dist = est.candidate.layout.distribution
            lines.append(
                f"  {marker} c{pos} {dist}  "
                f"{est.estimate.exec_class:<20s} "
                f"{est.total / 1000.0:10.3f} ms"
            )
    return "\n".join(lines)


def format_selection(result: AssistantResult) -> str:
    """The chosen layout, HPF-style, with per-phase deviations."""
    lines = [
        f"predicted execution time: "
        f"{result.predicted_total_us / 1e6:.4f} s",
        f"layout is {'DYNAMIC (remapping)' if result.is_dynamic else 'static'}",
        f"selection ILP: {result.selection.num_variables} variables, "
        f"{result.selection.num_constraints} constraints, solved in "
        f"{result.selection.solution.stats.wall_time * 1000:.0f} ms",
    ]
    selection = result.selection.selection
    sample_idx = min(selection)
    sample = result.layout_spaces.per_phase[sample_idx][selection[sample_idx]]
    lines.append(sample.layout.describe())

    def differs(idx: int, pos: int) -> bool:
        layout = result.layout_spaces.per_phase[idx][pos].layout
        if layout.distribution != sample.layout.distribution:
            return True
        sample_align = sample.layout.alignment_map
        return any(
            name in sample_align and alignment != sample_align[name]
            for name, alignment in layout.alignments
        )

    deviations = [
        (idx, pos)
        for idx, pos in sorted(selection.items())
        if differs(idx, pos)
    ]
    if deviations:
        lines.append("phases with different layouts:")
        for idx, pos in deviations:
            layout = result.layout_spaces.per_phase[idx][pos].layout
            lines.append(f"  phase {idx}: {layout.distribution}")
    return "\n".join(lines)


def format_schemes(schemes: List[Scheme]) -> str:
    """Estimated vs measured table for the promising schemes."""
    lines = [f"{'scheme':<12} {'estimated':>12} {'measured':>12}"]
    for scheme in schemes:
        measured = (
            f"{scheme.measured_us / 1e6:10.4f} s"
            if scheme.measured_us is not None
            else "-"
        )
        lines.append(
            f"{scheme.name:<12} {scheme.estimated_us / 1e6:10.4f} s "
            f"{measured:>12}"
        )
    return "\n".join(lines)


def format_test_case(result: TestCaseResult) -> str:
    lines = [f"== {result.case.label} =="]
    lines.append(format_schemes(result.schemes))
    picked = matching_scheme(result.schemes, result.tool_scheme.selection)
    picked_name = picked.name if picked else "custom dynamic"
    best = result.best_measured
    verdict = "OPTIMAL" if result.tool_optimal else (
        f"suboptimal (+{result.loss_percent:.1f}% vs {best.name})"
    )
    lines.append(f"tool picked: {picked_name} -> {verdict}")
    return "\n".join(lines)


def format_summary(rows: List[SummaryRow]) -> str:
    lines = [
        f"{'program':<12} {'cases':>5} {'optimal':>8} {'worst loss':>11} "
        f"{'rank ok':>8}  best-scheme tallies"
    ]
    total_cases = total_optimal = 0
    worst = 0.0
    for row in rows:
        tallies = ", ".join(
            f"{name}:{count}"
            for name, count in sorted(row.best_scheme_counts.items())
        )
        lines.append(
            f"{row.program:<12} {row.cases:>5} {row.tool_optimal:>8} "
            f"{row.worst_loss_percent:>10.1f}% {row.rankings_correct:>8}  "
            f"{tallies}"
        )
        total_cases += row.cases
        total_optimal += row.tool_optimal
        worst = max(worst, row.worst_loss_percent)
    lines.append(
        f"{'TOTAL':<12} {total_cases:>5} {total_optimal:>8} {worst:>10.1f}%"
    )
    return "\n".join(lines)


#: relative tolerance for the summary-grid internal-consistency checks
_GRID_RTOL = 1e-6


def validate_summary_grid(payload: Any) -> List[SummaryRow]:
    """Validate a ``results/summary_grid.json`` payload and rebuild the
    per-program :class:`SummaryRow` aggregates from it.

    Each entry must be internally consistent with the semantics of
    :class:`~repro.tool.testcases.TestCaseResult`: ``best`` names the
    measured-best scheme, ``loss_percent`` matches the tool-vs-best
    measurement gap, and ``tool_optimal`` agrees with a zero loss.
    Raises ``ValueError`` with a pointed message on the first violation.
    """
    if not isinstance(payload, list) or not payload:
        raise ValueError("summary grid must be a non-empty list")
    rows: dict = {}
    for i, entry in enumerate(payload):
        where = f"grid[{i}]"
        if not isinstance(entry, Mapping):
            raise ValueError(f"{where}: not an object")
        case = entry.get("case")
        if not isinstance(case, str) or case.count("/") < 3:
            raise ValueError(
                f"{where}: case must look like 'prog/dtype/n/pK', "
                f"got {case!r}"
            )
        program = case.split("/", 1)[0]
        schemes = entry.get("schemes")
        if not isinstance(schemes, Mapping) or TOOL not in schemes:
            raise ValueError(
                f"{where}: schemes must be an object containing {TOOL!r}"
            )
        for name, cell in schemes.items():
            for key in ("est_us", "meas_us"):
                value = (cell or {}).get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"{where}: schemes[{name!r}].{key} must be a "
                        f"non-negative number"
                    )
        named = {n: c for n, c in schemes.items() if n != TOOL}
        if not named:
            raise ValueError(f"{where}: no named schemes besides the tool")
        best_meas = min(c["meas_us"] for c in named.values())
        best = entry.get("best")
        if best != "dynamic":
            if best not in schemes:
                raise ValueError(
                    f"{where}: best {best!r} not among schemes "
                    f"{sorted(schemes)}"
                )
            if schemes[best]["meas_us"] > best_meas * (1 + _GRID_RTOL):
                raise ValueError(
                    f"{where}: best {best!r} is not measured-best "
                    f"({schemes[best]['meas_us']} vs {best_meas})"
                )
        tool_meas = schemes[TOOL]["meas_us"]
        expected_loss = max(tool_meas / best_meas - 1.0, 0.0) * 100.0
        loss = entry.get("loss_percent")
        if not isinstance(loss, (int, float)) or loss < 0:
            raise ValueError(
                f"{where}: loss_percent must be a non-negative number"
            )
        optimal = entry.get("tool_optimal")
        if not isinstance(optimal, bool):
            raise ValueError(f"{where}: tool_optimal must be a bool")
        # tool_optimal may hold with a small measured gap when the tool's
        # *selection* equals the best scheme's; a large gap is a lie.
        if optimal and loss > _GRID_RTOL * 100.0:
            raise ValueError(
                f"{where}: tool_optimal but loss_percent is {loss}"
            )
        if not optimal and abs(loss - expected_loss) > max(
            _GRID_RTOL * 100.0, expected_loss * _GRID_RTOL
        ):
            raise ValueError(
                f"{where}: loss_percent {loss} inconsistent with "
                f"schemes (expected {expected_loss})"
            )

        row = rows.setdefault(program, SummaryRow(program=program))
        row.cases += 1
        if optimal:
            row.tool_optimal += 1
        else:
            row.worst_loss_percent = max(row.worst_loss_percent, loss)
        row.best_scheme_counts[best] = (
            row.best_scheme_counts.get(best, 0) + 1
        )
        by_est = sorted(named, key=lambda n: named[n]["est_us"])
        by_meas = sorted(named, key=lambda n: named[n]["meas_us"])
        if by_est == by_meas:
            row.rankings_correct += 1
    return [rows[name] for name in sorted(rows)]


def format_service_response(resp: dict) -> str:
    """Render an analyze response received over the service protocol."""
    if not resp.get("ok"):
        kind = resp.get("error_kind", "internal")
        return f"request failed [{kind}]: {resp.get('error')}"
    lines = [
        f"predicted execution time: "
        f"{resp['predicted_total_us'] / 1e6:.4f} s",
        f"layout is "
        f"{'DYNAMIC (remapping)' if resp['is_dynamic'] else 'static'}",
        f"cache: {resp['cache_hits']} stage hits, "
        f"{resp['cache_misses']} misses",
    ]
    for timing in resp.get("stage_timings", []):
        mark = "hit " if timing["cache_hit"] else "miss"
        lines.append(
            f"  {timing['stage']:<13s} {mark} "
            f"{timing['seconds'] * 1000.0:9.2f} ms"
        )
    layouts = resp.get("layouts", {})
    if layouts:
        first = layouts[min(layouts, key=int)]
        lines.append(first["hpf"])
        distinct = {
            (layout["distribution"], tuple(sorted(layout["alignments"].items())))
            for layout in layouts.values()
        }
        if len(distinct) > 1:
            lines.append(
                f"({len(distinct)} distinct per-phase layouts; "
                f"phase 0 shown)"
            )
    return "\n".join(lines)


def format_service_stats(stats: dict) -> str:
    """Render a ``service stats`` snapshot."""
    counters = stats.get("counters", {})
    cache = stats.get("cache", {})
    pool = stats.get("pool", {})
    lines = [
        f"uptime: {stats.get('uptime_seconds', 0.0):.1f} s",
        f"requests: {counters.get('requests_total', 0)} total, "
        f"{counters.get('requests_ok', 0)} ok, "
        f"{counters.get('requests_failed', 0)} failed, "
        f"{counters.get('requests_timeout', 0)} timed out",
        f"cache: {cache.get('hits', 0)} hits, "
        f"{cache.get('misses', 0)} misses "
        f"(dir: {cache.get('dir') or 'memory-only'})",
    ]
    for stage, slot in sorted(cache.get("per_stage", {}).items()):
        lines.append(
            f"  {stage:<13s} {slot['hits']:>6} hits {slot['misses']:>6} misses"
        )
    lines.append(
        f"pool: {pool.get('active_kind', '?')} "
        f"(requested {pool.get('requested_kind', '?')}, "
        f"{pool.get('degradations', 0)} degradations)"
    )
    stage_seconds = stats.get("stage_seconds", {})
    if stage_seconds:
        lines.append(
            f"{'stage timings':<13s} {'count':>6} {'mean':>10} {'max':>10}"
        )
        for stage, hist in sorted(stage_seconds.items()):
            mean_ms = hist["mean"] * 1000.0
            max_ms = (hist["max"] or 0.0) * 1000.0
            lines.append(
                f"  {stage:<13s} {hist['count']:>4} "
                f"{mean_ms:>8.2f}ms {max_ms:>8.2f}ms"
            )
    return "\n".join(lines)
