"""Promising global layout *schemes* — the alternatives the paper
measures against each other in Figures 3-7.

For a program whose template has ``r`` dimensions the interesting schemes
are:

* ``dist-k`` (static): the cheapest selection whose distribution is BLOCK
  on template dimension ``k`` everywhere (``row``/``column`` for 2-D
  programs; ``dim1``/``dim2``/``dim3`` for Erlebacher);
* ``remapped``: each phase takes its locally cheapest candidate (the
  greedy, remap-blind choice — for ADI-style programs this is exactly the
  transpose scheme that keeps every phase dependence-local);
* ``tool``: the assistant's 0-1 optimal selection.

Each scheme carries both the *estimated* cost (assistant cost model) and,
once measured, the simulated execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..selection.baselines import greedy_selection
from ..selection.ilp import select_layouts
from .assistant import AssistantResult
from .measurement import Measurement, measure_layouts

STATIC_PREFIX = "dist"
REMAPPED = "remapped"
TOOL = "tool"

#: human-oriented names for the 2-D static schemes
DIM_NAMES_2D = {0: "row", 1: "column"}


@dataclass
class Scheme:
    """One global layout alternative."""

    name: str
    selection: Dict[int, int]
    estimated_us: float
    measurement: Optional[Measurement] = None

    @property
    def measured_us(self) -> Optional[float]:
        return self.measurement.makespan_us if self.measurement else None

    @property
    def is_static(self) -> bool:
        return self.name.startswith(STATIC_PREFIX) or self.name in (
            "row", "column"
        )


def _static_allowed(result: AssistantResult, tdim: int
                    ) -> Optional[Dict[int, Set[int]]]:
    """Candidate positions behaviourally equal to *canonical alignment +
    1-D BLOCK on template dimension* ``tdim``.

    Matching is by layout signature, not by the candidate's syntactic
    distribution: a transposed orientation distributed on the other
    dimension is the same layout (the paper's orientation symmetry), and
    the search-space dedup may have kept either spelling.
    """
    from ..distribution.layouts import (
        Alignment,
        DataLayout,
        Distribution,
    )
    from ..frontend.symbols import ArraySymbol

    template = result.template
    symbols = result.symbols
    allowed: Dict[int, Set[int]] = {}
    for idx, cands in result.layout_spaces.per_phase.items():
        phase = result.partition.phases[idx]
        align = {}
        for array in phase.arrays:
            symbol = symbols.get(array)
            if isinstance(symbol, ArraySymbol):
                align[array] = Alignment.canonical(symbol.rank)
        dist = Distribution.one_dim_block(
            template.rank, tdim, result.config.nprocs
        )
        # Preference order for the scheme's alignment: fully canonical
        # first (the layout a user would write down), then the phase's own
        # alignment candidates (embeddings of lower-rank arrays, e.g. a
        # coefficient vector aligned with the sweep dimension, have no
        # canonical spelling).
        targets = [
            DataLayout.build(
                template=template, alignments=align, distribution=dist
            ).signature()
        ]
        for acand in result.alignment_spaces.candidates_for(idx):
            amap = {
                a: acand.alignment_map[a]
                for a in align
                if a in acand.alignment_map
            }
            if len(amap) == len(align):
                targets.append(
                    DataLayout.build(
                        template=template, alignments=amap,
                        distribution=dist,
                    ).signature()
                )
        positions: Set[int] = set()
        for target in targets:
            positions = {
                pos for pos, cand in enumerate(cands)
                if cand.layout.signature() == target
            }
            if positions:
                break
        if not positions:
            return None  # scheme unavailable for this phase
        allowed[idx] = positions
    return allowed


def scheme_name_for_dim(result: AssistantResult, tdim: int) -> str:
    if result.template.rank == 2 and tdim in DIM_NAMES_2D:
        return DIM_NAMES_2D[tdim]
    return f"{STATIC_PREFIX}{tdim + 1}"


def enumerate_schemes(result: AssistantResult) -> List[Scheme]:
    """Build the promising-scheme list (estimates only; measuring is the
    caller's choice since simulation is the slow part)."""
    schemes: List[Scheme] = []
    for tdim in range(result.template.rank):
        allowed = _static_allowed(result, tdim)
        if allowed is None:
            continue
        restricted = select_layouts(
            result.graph, backend=result.config.ilp_backend, allowed=allowed
        )
        schemes.append(
            Scheme(
                name=scheme_name_for_dim(result, tdim),
                selection=restricted.selection,
                estimated_us=restricted.objective,
            )
        )
    greedy_sel, greedy_cost = greedy_selection(result.graph)
    if all(greedy_sel != s.selection for s in schemes):
        schemes.append(
            Scheme(
                name=REMAPPED, selection=greedy_sel, estimated_us=greedy_cost
            )
        )
    tool_sel = result.selection.selection
    schemes.append(
        Scheme(
            name=TOOL,
            selection=dict(tool_sel),
            estimated_us=result.selection.objective,
        )
    )
    return schemes


def measure_scheme(
    scheme: Scheme,
    result: AssistantResult,
    source: str,
    actual_branch_probs: Optional[Dict[int, float]] = None,
    actual_branch_probability: float = 0.5,
    max_pipeline_stages: int = 1024,
) -> Scheme:
    """Fill in the simulated execution time of ``scheme``."""
    layouts = {
        idx: result.layout_spaces.per_phase[idx][pos].layout
        for idx, pos in scheme.selection.items()
    }
    scheme.measurement = measure_layouts(
        source,
        layouts,
        nprocs=result.config.nprocs,
        machine=result.config.machine,
        actual_branch_probs=actual_branch_probs,
        actual_branch_probability=actual_branch_probability,
        max_pipeline_stages=max_pipeline_stages,
    )
    return scheme


def matching_scheme(schemes: List[Scheme], selection: Dict[int, int]
                    ) -> Optional[Scheme]:
    """The scheme (excluding ``tool`` itself) whose selection equals the
    given one — used to name what the tool picked."""
    for scheme in schemes:
        if scheme.name != TOOL and scheme.selection == selection:
            return scheme
    return None
