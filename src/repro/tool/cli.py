"""Command-line interface of the data layout assistant.

Usage examples::

    autolayout analyze --program adi --size 256 --procs 16
    autolayout analyze --file mycode.f --procs 8 --show-spaces
    autolayout compare --program erlebacher --size 64 --procs 16
    autolayout summary --programs adi shallow --quick
    autolayout analyze --program adi --procs 16 --trace trace.json
    autolayout explain --program adi --size 256 --procs 16
    autolayout stats --program adi --procs 16 --prometheus
    autolayout serve --port 7861 --cache-dir ~/.autolayout-cache
    autolayout request --program adi --size 256 --procs 16
    autolayout service stats
    autolayout service metrics
    repro fuzz --cases 200 --seed 0
    repro fuzz --budget 60s --out /tmp/fuzz-failures
    repro bench run --label baseline
    repro bench gate --baseline baseline
    repro bench profile --bench stage:alignment_ilp/adi

``analyze`` runs the four framework steps and prints the selected layout
(``--trace``/``--trace-chrome`` record the run's span trace); ``explain``
reconstructs *why* each array got its layout from the recorded trace;
``stats`` runs one analysis in-process and prints the observability
snapshot (``--prometheus`` for text exposition); ``compare`` also
measures every promising scheme on the simulated machine; ``summary``
reproduces the paper's aggregate statistics over the test-case grids;
``serve`` starts the long-lived layout service and ``request`` /
``service`` talk to it over its JSON protocol; ``fuzz`` runs the
differential-oracle fuzzer; ``bench`` drives the deterministic
benchmark harness and regression gate over ``BENCH_<label>.json``
baselines (``repro`` is an alias of this entry point).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..machine.params import MACHINES
from ..obs.log import LOG_LEVELS, configure_logging, get_logger
from ..programs.registry import PROGRAMS
from .assistant import AssistantConfig, run_assistant
from .report import (
    format_schemes,
    format_search_spaces,
    format_selection,
    format_summary,
    format_test_case,
)
from .schemes import enumerate_schemes, measure_scheme
from .testcases import TestCase, grid_for, run_test_case, summarize

logger = get_logger("repro.cli")


def _load_source(args: argparse.Namespace) -> str:
    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            return handle.read()
    spec = PROGRAMS[args.program]
    kwargs = {"n": args.size or spec.default_size,
              "dtype": args.dtype or spec.default_dtype}
    if spec.has_time_loop:
        kwargs["maxiter"] = args.maxiter
    return spec.source_fn(**kwargs)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--program", choices=sorted(PROGRAMS),
                        default="adi", help="bundled benchmark program")
    parser.add_argument("--file", help="Fortran source file instead")
    parser.add_argument("--size", type=int, help="problem size n")
    parser.add_argument("--dtype", choices=["real", "double"])
    parser.add_argument("--maxiter", type=int, default=3,
                        help="time-loop iterations for iterative programs")
    parser.add_argument("--procs", type=int, default=16,
                        help="number of processors")
    parser.add_argument("--machine", choices=sorted(MACHINES),
                        default="ipsc860")
    parser.add_argument("--backend", choices=["scipy", "branch-bound"],
                        default="scipy", help="0-1 solver backend")


def _run_traced(source: str, config: AssistantConfig,
                trace_path: Optional[str],
                chrome_path: Optional[str]):
    """Run the assistant, recording a span trace when asked to; returns
    ``(result, trace_dict_or_None)``.  With neither path set, tracing
    stays off entirely (results are bitwise-identical either way)."""
    from ..obs import tracing

    if not trace_path and not chrome_path:
        return run_assistant(source, config), None
    tracing.start_trace("analyze")
    try:
        result = run_assistant(source, config)
    finally:
        trace = tracing.finish_trace()
    if trace_path:
        from ..obs.events import write_trace

        write_trace(trace, trace_path)
        logger.info("wrote trace to %s", trace_path)
    if chrome_path:
        from ..obs.chrome import write_chrome_trace

        write_chrome_trace(trace, chrome_path)
        logger.info("wrote Chrome trace to %s", chrome_path)
    return result, trace


def cmd_analyze(args: argparse.Namespace) -> int:
    source = _load_source(args)
    config = AssistantConfig(
        nprocs=args.procs,
        machine=MACHINES[args.machine],
        ilp_backend=args.backend,
    )
    result, _ = _run_traced(source, config, args.trace, args.trace_chrome)
    if args.show_spaces:
        print(format_search_spaces(result))
        print()
    print(format_selection(result))
    from .memory import memory_footprint

    report = memory_footprint(result.symbols, result.selected_layouts)
    print(f"per-node memory: {report}")
    if args.dot_dir:
        import os

        from .graphviz import export_dot

        os.makedirs(args.dot_dir, exist_ok=True)
        for name, text in export_dot(result).items():
            path = os.path.join(args.dot_dir, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {path}")
    return 0


def cmd_hpf(args: argparse.Namespace) -> int:
    from .hpf_writer import write_hpf

    source = _load_source(args)
    config = AssistantConfig(
        nprocs=args.procs,
        machine=MACHINES[args.machine],
        ilp_backend=args.backend,
    )
    result = run_assistant(source, config)
    text = write_hpf(result)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Run a traced analysis and report why each array got its layout."""
    import json

    from ..obs import tracing
    from ..obs.provenance import build_provenance, format_provenance

    source = _load_source(args)
    config = AssistantConfig(
        nprocs=args.procs,
        machine=MACHINES[args.machine],
        ilp_backend=args.backend,
    )
    tracing.start_trace("explain")
    try:
        run_assistant(source, config)
    finally:
        trace = tracing.finish_trace()
    report = build_provenance(trace)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_provenance(report))
    if args.trace:
        from ..obs.events import write_trace

        write_trace(trace, args.trace)
        logger.info("wrote trace to %s", args.trace)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """One-shot observability snapshot: run a single analysis through an
    in-process service and print its metrics registry."""
    import json

    from ..service import LayoutService, WorkerPool
    from ..service.protocol import LayoutRequest
    from .report import format_service_stats

    with LayoutService(
        pool=WorkerPool(kind="serial"), use_cache=False
    ) as service:
        request = LayoutRequest.from_dict({
            "program": args.program if not args.file else None,
            "source": (open(args.file, encoding="utf-8").read()
                       if args.file else None),
            "size": args.size,
            "dtype": args.dtype,
            "maxiter": args.maxiter,
            "procs": args.procs,
            "machine": args.machine,
            "backend": args.backend,
        })
        response = service.analyze(request)
        if not response.ok:
            logger.error("analysis failed: %s", response.error)
            return 1
        if args.prometheus:
            print(service.prometheus(), end="")
        elif args.json:
            print(json.dumps(service.stats(), indent=2, sort_keys=True))
        else:
            print(format_service_stats(service.stats()))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    source = _load_source(args)
    config = AssistantConfig(
        nprocs=args.procs,
        machine=MACHINES[args.machine],
        ilp_backend=args.backend,
    )
    result = run_assistant(source, config)
    schemes = enumerate_schemes(result)
    for scheme in schemes:
        measure_scheme(scheme, result, source)
    print(format_schemes(schemes))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from ..obs.slo import SLOValidationError, load_objectives
    from ..resilience.admission import (
        AdaptiveConcurrencyLimiter,
        AdmissionController,
    )
    from ..resilience.breaker import Backoff
    from ..service import (
        LayoutServer,
        LayoutService,
        ServiceTelemetry,
        TailSampler,
        WorkerPool,
    )

    objectives = None
    if args.slo_file:
        try:
            objectives = load_objectives(args.slo_file)
        except SLOValidationError as exc:
            logger.error("bad objectives file: %s", exc)
            return 2
    telemetry = ServiceTelemetry(
        events_dir=args.telemetry_dir,
        sampler=TailSampler(
            slow_s=args.slow_trace_ms / 1e3,
            sample_every=args.trace_sample_every,
        ),
    )
    pool = WorkerPool(kind=args.pool, max_workers=args.workers,
                      job_timeout=args.job_timeout,
                      retries=args.retries,
                      backoff=Backoff(base_s=args.retry_backoff))
    max_limit = args.admission_max_concurrency
    initial = args.admission_initial_concurrency
    initial = min(initial if initial is not None else 8, max_limit)
    try:
        admission = AdmissionController(
            limiter=AdaptiveConcurrencyLimiter(
                initial_limit=initial, max_limit=max_limit,
            ),
            max_queue=args.admission_max_queue,
            max_queue_wait_s=args.admission_queue_wait,
            breakers=[pool.breaker],
        )
    except ValueError as exc:
        logger.error("bad admission settings: %s", exc)
        return 2
    service = LayoutService(
        cache_dir=args.cache_dir,
        pool=pool,
        request_timeout=args.request_timeout,
        use_cache=not args.no_cache,
        telemetry=telemetry,
        objectives=objectives,
        admission=admission,
        brownout_budget_s=args.brownout_budget,
    )
    # the cache (and its breaker) only exist once the service does
    admission.breakers.append(service.cache.breaker)
    server = LayoutServer((args.host, args.port), service,
                          conn_timeout_s=args.conn_timeout)

    def _drain_and_stop(signum, frame):  # pragma: no cover - signal path
        logger.info(
            "SIGTERM: draining (deadline %ss) before shutdown",
            args.drain_deadline,
        )
        threading.Thread(
            target=server.graceful_shutdown,
            args=(args.drain_deadline,),
            daemon=True,
        ).start()

    try:
        signal.signal(signal.SIGTERM, _drain_and_stop)
    except ValueError:  # not the main thread (embedded use)
        pass
    logger.info(
        "layout service listening on %s:%s (pool: %s, cache: %s, "
        "events: %s, objectives: %d, concurrency: %d..%d, queue: %d)",
        args.host, server.port, service.pool.active_kind,
        args.cache_dir or "memory-only",
        args.telemetry_dir or "memory-only",
        len(objectives or []),
        initial, max_limit, args.admission_max_queue,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
        service.close()
    return 0


def cmd_request(args: argparse.Namespace) -> int:
    import json

    from ..service import send_request
    from .report import format_service_response

    payload = {
        "op": "analyze",
        "procs": args.procs,
        "maxiter": args.maxiter,
        "machine": args.machine,
        "backend": args.backend,
        "use_cache": not args.no_cache,
    }
    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            payload["source"] = handle.read()
    else:
        payload["program"] = args.program
    if args.size is not None:
        payload["size"] = args.size
    if args.dtype is not None:
        payload["dtype"] = args.dtype
    if args.deadline is not None:
        payload["deadline_s"] = args.deadline
    try:
        if args.retries:
            from ..service import RetryPolicy, send_request_with_retries

            resp = send_request_with_retries(
                payload, host=args.host, port=args.port,
                timeout=args.timeout,
                policy=RetryPolicy(max_attempts=args.retries + 1),
            )
        else:
            resp = send_request(payload, host=args.host, port=args.port,
                                timeout=args.timeout)
    except OSError as exc:
        logger.error(
            "cannot reach layout service at %s:%s (%s); "
            "start one with: autolayout serve",
            args.host, args.port, exc,
        )
        return 1
    if args.json:
        print(json.dumps(resp, indent=2, sort_keys=True))
    else:
        print(format_service_response(resp))
    return 0 if resp.get("ok") else 1


def cmd_service(args: argparse.Namespace) -> int:
    import json

    from ..service import send_request
    from .report import format_service_stats

    payload = {"op": args.action}
    if args.action == "shutdown" and args.drain_deadline is not None:
        payload["drain_deadline_s"] = args.drain_deadline
    try:
        resp = send_request(payload, host=args.host,
                            port=args.port, timeout=args.timeout)
    except OSError as exc:
        logger.error(
            "cannot reach layout service at %s:%s (%s); "
            "start one with: autolayout serve",
            args.host, args.port, exc,
        )
        return 1
    if not resp.get("ok"):
        logger.error("service %s failed: %s",
                     args.action, resp.get("error"))
        return 1
    if args.action == "stats":
        if args.json:
            print(json.dumps(resp["stats"], indent=2, sort_keys=True))
        else:
            print(format_service_stats(resp["stats"]))
    elif args.action == "metrics":
        print(resp["text"], end="")
    else:
        print(json.dumps(resp))
    if args.action == "ready" and not resp.get("ready"):
        return 3  # distinguishable "up but not ready" for orchestrators
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    """Evaluate declared objectives against a live service or a
    recorded event log.  ``check`` exits 1 on violation, 2 on input
    error; ``report`` only fails (2) on input errors."""
    import json
    import os

    from ..obs.slo import (
        SLOReport,
        SLOValidationError,
        evaluate_objectives,
        format_slo_report,
        load_objectives,
        window_from_events,
    )

    try:
        objectives = load_objectives(args.objectives)
    except SLOValidationError as exc:
        logger.error("bad objectives file: %s", exc)
        return 2

    if args.events:
        from ..obs.telemetry import read_event_log

        if not os.path.exists(args.events):
            logger.error("no event log at %r", args.events)
            return 2
        events, bad = read_event_log(args.events)
        if bad:
            logger.warning("skipped %d unreadable event-log lines", bad)
        windows = window_from_events(events, window_s=args.window)
        report = evaluate_objectives(
            objectives, windows, require_data=args.require_data
        )
    else:
        from ..service import send_request

        payload = {
            "op": "slo",
            "objectives": [o.to_dict() for o in objectives],
            "require_data": args.require_data,
        }
        try:
            resp = send_request(payload, host=args.host, port=args.port,
                                timeout=args.timeout)
        except OSError as exc:
            logger.error(
                "cannot reach layout service at %s:%s (%s); "
                "start one with: autolayout serve",
                args.host, args.port, exc,
            )
            return 2
        if not resp.get("ok"):
            logger.error("slo evaluation failed: %s", resp.get("error"))
            return 2
        try:
            report = SLOReport.from_dict(resp.get("report", {}))
        except SLOValidationError as exc:
            logger.error("unreadable slo report from service: %s", exc)
            return 2

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_slo_report(report))
    if args.action == "check" and not report.ok:
        return 1
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard over the service's windowed stats (``--once``
    prints a single page, for CI logs and tests)."""
    import time as _time

    from ..obs.slo import SLOValidationError, load_objectives
    from ..service import send_request
    from .top import CLEAR, format_top

    objectives = None
    if args.objectives:
        try:
            objectives = load_objectives(args.objectives)
        except SLOValidationError as exc:
            logger.error("bad objectives file: %s", exc)
            return 2

    def one_page() -> str:
        resp = send_request({"op": "stats"}, host=args.host,
                            port=args.port, timeout=args.timeout)
        if not resp.get("ok"):
            raise OSError(resp.get("error", "stats request failed"))
        slo_report = None
        if objectives is not None:
            slo_resp = send_request(
                {"op": "slo",
                 "objectives": [o.to_dict() for o in objectives]},
                host=args.host, port=args.port, timeout=args.timeout,
            )
            if slo_resp.get("ok"):
                slo_report = slo_resp.get("report")
        return format_top(resp["stats"], slo_report)

    try:
        if args.once:
            print(one_page())
            return 0
        while True:  # pragma: no cover - interactive loop
            page = one_page()
            print(CLEAR + page, flush=True)
            _time.sleep(args.interval)
    except OSError as exc:
        logger.error(
            "cannot reach layout service at %s:%s (%s); "
            "start one with: autolayout serve",
            args.host, args.port, exc,
        )
        return 1
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


def _parse_budget(text: str) -> float:
    """Parse a wall-clock budget like ``60s``, ``2m`` or plain seconds."""
    text = text.strip().lower()
    factor = 1.0
    if text.endswith("s"):
        text = text[:-1]
    elif text.endswith("m"):
        text, factor = text[:-1], 60.0
    try:
        value = float(text) * factor
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad budget {text!r}: expected e.g. 60s, 2m or 90"
        )
    if value <= 0:
        raise argparse.ArgumentTypeError("budget must be positive")
    return value


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Run a differential-oracle fuzz campaign (see ``repro.qa``)."""
    from ..qa import ALL_CHECKS, GeneratorConfig, run_fuzz

    config = GeneratorConfig(
        max_arrays=args.max_arrays,
        max_rank=args.max_rank,
        max_phases=args.max_phases,
        size=args.size or 8,
    )
    if args.oracle_scope:
        config = config.small()
    assistant_config = AssistantConfig(
        nprocs=args.procs,
        machine=MACHINES[args.machine],
        ilp_backend=args.backend,
    )
    checks = args.checks if args.checks else None
    if checks is not None:
        unknown = sorted(set(checks) - set(ALL_CHECKS))
        if unknown:
            logger.error("unknown checks: %s (known: %s)",
                         ", ".join(unknown), ", ".join(ALL_CHECKS))
            return 2

    def progress(case_seed: int, report) -> None:
        if report.cases_run and report.cases_run % 50 == 0:
            logger.info("fuzz: %d cases, %d failures",
                        report.cases_run, len(report.failures))

    def campaign():
        return run_fuzz(
            seed=args.seed,
            cases=args.cases,
            budget_seconds=args.budget,
            config=config,
            assistant_config=assistant_config,
            checks=checks,
            minimize=not args.no_minimize,
            out_dir=args.out,
            progress=progress,
        )

    if args.trace:
        from ..obs import tracing
        from ..obs.events import write_trace

        tracing.start_trace("fuzz")
        try:
            report = campaign()
        finally:
            trace = tracing.finish_trace()
        write_trace(trace, args.trace)
        logger.info("wrote trace to %s", args.trace)
    else:
        report = campaign()

    print(report.summary())
    if report.failures and args.out:
        print(f"repro cases written to {args.out}")
    return 0 if report.ok else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """Replay seeded fault plans over the paper programs and assert the
    resilience invariant (see ``repro.resilience.chaos``)."""
    import json

    from ..resilience import chaos

    programs = args.programs or list(chaos.DEFAULT_PROGRAMS)
    unknown = sorted(set(programs) - set(chaos.DEFAULT_PROGRAMS))
    if unknown:
        logger.error("unknown programs: %s (known: %s)",
                     ", ".join(unknown),
                     ", ".join(chaos.DEFAULT_PROGRAMS))
        return 2

    def progress(case) -> None:
        if (case.index + 1) % 20 == 0:
            logger.info("chaos: %d cases run", case.index + 1)

    report = chaos.run_chaos(
        cases=args.cases,
        seed=args.seed,
        programs=programs,
        budget_s=args.budget,
        case_timeout_s=args.case_timeout,
        procs=args.procs,
        artifact_dir=args.artifacts,
        progress=progress,
        events_dir=args.events,
        overload_fraction=args.overload_fraction,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    if not report.ok and args.artifacts:
        print(f"fault-plan artifacts written to {args.artifacts}")
    return 0 if report.ok else 1


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Open-loop load generation against a running service; gates like
    ``repro bench gate`` (see ``repro.service.loadtest``)."""
    import json

    from ..service.loadtest import (
        LoadtestConfig,
        LoadtestReport,
        run_loadtest,
    )

    profile_data = {}
    if args.profile:
        try:
            with open(args.profile, "r", encoding="utf-8") as handle:
                profile_data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            logger.error("bad loadtest profile %r: %s", args.profile, exc)
            return 2

    request = dict(profile_data.get("request", {}))
    if args.program:
        request["program"] = args.program
    if args.size is not None:
        request["size"] = args.size
    if args.procs is not None:
        request["procs"] = args.procs
    if args.deadline is not None:
        request["deadline_s"] = args.deadline
    if args.no_cache:
        request["use_cache"] = False
    request.setdefault("program", "adi")
    request.setdefault("procs", 4)

    try:
        config = LoadtestConfig.from_profile(
            profile_data,
            rate=args.rate,
            duration_s=args.duration,
            timeout_s=args.request_timeout,
            workers=args.workers,
            request=request,
        )
    except ValueError as exc:
        logger.error("bad loadtest configuration: %s", exc)
        return 2

    baseline = None
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = LoadtestReport.from_dict(json.load(handle))
        except (OSError, ValueError, KeyError,
                json.JSONDecodeError) as exc:
            logger.error("bad baseline report %r: %s", args.baseline, exc)
            return 2

    p99_budget = args.p99_budget
    if args.slo:
        from ..obs.slo import SLOValidationError, load_objectives

        try:
            objectives = load_objectives(args.slo)
        except SLOValidationError as exc:
            logger.error("bad objectives file: %s", exc)
            return 2
        for objective in objectives:
            if (objective.op == "analyze" and objective.metric == "p99"
                    and objective.threshold_s is not None):
                p99_budget = objective.threshold_s
                break
        else:
            logger.error(
                "no analyze p99 objective in %r to gate on", args.slo
            )
            return 2

    try:
        report = run_loadtest(
            config, host=args.host, port=args.port,
            progress=lambda msg: logger.info("loadtest: %s", msg),
        )
    except RuntimeError as exc:
        logger.error("%s", exc)
        return 2

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        logger.info("loadtest report written to %s", args.out)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())

    problems = report.gate(
        p99_budget_s=p99_budget,
        baseline=baseline,
        min_goodput_ratio=args.min_goodput_ratio,
        require_shed=args.require_shed,
    )
    if args.gate or args.require_shed or baseline is not None \
            or p99_budget is not None:
        for problem in problems:
            logger.error("loadtest gate: %s", problem)
        return 1 if problems else 0
    # even ungated, invariant violations (wrong/untyped/no-reply) fail
    for violation in report.violations:
        logger.error("loadtest: %s", violation)
    return 1 if report.violations else 0


def _bench_trace_scope(args: argparse.Namespace):
    """Context manager running a bench command under tracing when
    ``--trace`` / ``--trace-chrome`` were given (no-op otherwise)."""
    import contextlib

    @contextlib.contextmanager
    def scope():
        trace_path = getattr(args, "trace", None)
        chrome_path = getattr(args, "trace_chrome", None)
        if not trace_path and not chrome_path:
            yield
            return
        from ..obs import tracing

        tracing.start_trace("bench")
        try:
            yield
        finally:
            trace = tracing.finish_trace()
            if trace_path:
                from ..obs.events import write_trace

                write_trace(trace, trace_path)
                logger.info("wrote trace to %s", trace_path)
            if chrome_path:
                from ..obs.chrome import write_chrome_trace

                write_chrome_trace(trace, chrome_path)
                logger.info("wrote Chrome trace to %s", chrome_path)

    return scope()


def _bench_run_suite(args: argparse.Namespace):
    """Build and run the suite as the given bench flags request;
    returns ``{bench_id: Measurement}``."""
    from ..perf import bench as perfbench

    config = perfbench.default_bench_config(
        machine=MACHINES[args.machine], backend=args.backend
    )
    cases = perfbench.build_suite(
        programs=args.programs or None,
        config=config,
        stages=args.stages or None,
        include_e2e=not args.no_e2e,
        include_qa=not args.no_qa,
    )

    def progress(case, m) -> None:
        logger.info("bench %-32s min %.2fms (mad %.3fms)",
                    case.bench_id, m.min_s * 1e3, m.mad_s * 1e3)

    return perfbench.run_suite(
        cases, repeats=args.repeats, warmup=args.warmup,
        memory=not args.no_memory, progress=progress,
    )


def _bench_baseline_path(args: argparse.Namespace) -> str:
    """Resolve ``--baseline`` (a label or an explicit path) to a path."""
    import os

    from ..perf import bench as perfbench

    baseline = args.baseline
    if os.path.sep in baseline or os.path.exists(baseline):
        return baseline
    return perfbench.bench_path(baseline, args.root)


def cmd_bench_run(args: argparse.Namespace) -> int:
    import json

    from ..perf import bench as perfbench

    with _bench_trace_scope(args):
        results = _bench_run_suite(args)
    meta = perfbench.run_meta(
        args.repeats, args.warmup,
        programs=args.programs or sorted(perfbench.BENCH_SIZES),
    )
    path = None
    if not args.no_write:
        path = perfbench.append_run(
            results, args.label, root=args.root, meta=meta
        )
        logger.info("appended run to %s", path)
    if args.prometheus:
        with open(args.prometheus, "w", encoding="utf-8") as handle:
            handle.write(perfbench.render_bench_prometheus(results))
        logger.info("wrote Prometheus exposition to %s", args.prometheus)
    if args.json:
        record = perfbench.new_run(results, meta=meta)
        record["bench_file"] = path
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(perfbench.format_run(results))
        if path:
            print(f"baseline trajectory: {path}")
    return 0


def _bench_compare(args: argparse.Namespace):
    """Shared body of ``bench compare`` and ``bench gate``.

    Raises :class:`repro.perf.bench.BenchInputError` when the baseline
    or ``--current`` file is missing, unreadable, corrupt, or does not
    match the bench schema.
    """
    from ..perf import bench as perfbench

    base_path = _bench_baseline_path(args)
    base = perfbench.load_latest_results(base_path, role="baseline")
    if args.current:
        current = perfbench.load_latest_results(
            args.current, role="current"
        )
    else:
        with _bench_trace_scope(args):
            current = _bench_run_suite(args)
    thresholds = perfbench.Thresholds(
        max_ratio=args.max_ratio,
        mad_sigmas=args.mad_sigmas,
        min_slowdown_s=args.min_slowdown,
        per_bench=perfbench.parse_threshold_overrides(
            args.threshold or []
        ),
    )
    return perfbench.compare_results(base, current, thresholds)


def _report_bench_input_error(exc, as_json: bool) -> int:
    """One clean diagnostic (and exit code 2) for a bad compare/gate
    input file instead of a raw traceback."""
    import json

    logger.error("%s", exc)
    if as_json:
        print(json.dumps({
            "error": {"kind": f"bench-input/{exc.kind}",
                      "path": exc.path, "detail": exc.detail},
        }, indent=2, sort_keys=True))
    return 2


def cmd_bench_compare(args: argparse.Namespace) -> int:
    import json

    from ..perf import bench as perfbench

    try:
        report = _bench_compare(args)
    except perfbench.BenchInputError as exc:
        return _report_bench_input_error(exc, args.json)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(perfbench.format_compare(report))
    return 0


def cmd_bench_gate(args: argparse.Namespace) -> int:
    import json

    from ..perf import bench as perfbench

    try:
        report = _bench_compare(args)
    except perfbench.BenchInputError as exc:
        return _report_bench_input_error(exc, args.json)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(perfbench.format_compare(report))
    if not report.ok:
        logger.error("bench gate failed: %d regression(s)",
                     len(report.regressions))
        return 1
    return 0


def cmd_bench_profile(args: argparse.Namespace) -> int:
    import json

    from ..perf import bench as perfbench

    config = perfbench.default_bench_config(
        machine=MACHINES[args.machine], backend=args.backend
    )
    with _bench_trace_scope(args):
        cases = perfbench.build_suite(
            programs=args.programs or None,
            config=config,
            stages=args.stages or None,
            include_e2e=not args.no_e2e,
            include_qa=not args.no_qa,
        )
        wanted = args.bench or []
        if wanted:
            cases = [
                c for c in cases
                if any(pat in c.bench_id for pat in wanted)
            ]
            if not cases:
                logger.error("no benchmarks match %s", wanted)
                return 2
        profiles = [
            perfbench.profile_call(c.bench_id, c.fn, limit=args.limit)
            for c in cases
        ]
    if args.json:
        print(json.dumps([p.to_dict() for p in profiles], indent=2,
                         sort_keys=True))
    else:
        print("\n\n".join(
            perfbench.format_profile(p) for p in profiles
        ))
    return 0


def cmd_summary(args: argparse.Namespace) -> int:
    programs = args.programs or sorted(PROGRAMS)
    results = []
    for name in programs:
        spec = PROGRAMS[name]
        cases = grid_for(spec)
        if args.quick:
            cases = cases[:: max(len(cases) // 4, 1)]
        for case in cases:
            result = run_test_case(case, machine=MACHINES[args.machine])
            results.append(result)
            if args.verbose:
                print(format_test_case(result))
                print()
    print(format_summary(summarize(results)))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="autolayout",
        description="Automatic data layout assistant for HPF-like programs "
                    "(Kennedy & Kremer, SC'95 reproduction)",
    )
    parser.add_argument("--log-level", choices=list(LOG_LEVELS),
                        default="info",
                        help="stderr logging verbosity (default: info)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="select a data layout")
    _add_common(p_analyze)
    p_analyze.add_argument("--show-spaces", action="store_true",
                           help="print the candidate search spaces")
    p_analyze.add_argument("--dot-dir",
                           help="write PCFG / layout-graph DOT files here")
    p_analyze.add_argument("--trace",
                           help="record the run's span trace to this "
                                "JSON file")
    p_analyze.add_argument("--trace-chrome",
                           help="also export a chrome://tracing file")
    p_analyze.set_defaults(func=cmd_analyze)

    p_explain = sub.add_parser(
        "explain",
        help="trace a run and report why each array got its layout",
    )
    _add_common(p_explain)
    p_explain.add_argument("--json", action="store_true",
                           help="print the provenance report as JSON")
    p_explain.add_argument("--trace",
                           help="also write the underlying span trace")
    p_explain.set_defaults(func=cmd_explain)

    p_stats = sub.add_parser(
        "stats",
        help="run one in-process analysis and print the metrics registry",
    )
    _add_common(p_stats)
    p_stats.add_argument("--prometheus", action="store_true",
                         help="Prometheus text exposition format")
    p_stats.add_argument("--json", action="store_true",
                         help="print the raw JSON snapshot")
    p_stats.set_defaults(func=cmd_stats)

    p_compare = sub.add_parser(
        "compare", help="measure every promising scheme on the simulator"
    )
    _add_common(p_compare)
    p_compare.set_defaults(func=cmd_compare)

    p_hpf = sub.add_parser(
        "hpf", help="emit the program with HPF layout directives"
    )
    _add_common(p_hpf)
    p_hpf.add_argument("--output", "-o", help="write to a file")
    p_hpf.set_defaults(func=cmd_hpf)

    from ..service.server import DEFAULT_HOST, DEFAULT_PORT

    def _add_endpoint(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--host", default=DEFAULT_HOST)
        parser.add_argument("--port", type=int, default=DEFAULT_PORT)
        parser.add_argument("--timeout", type=float, default=300.0,
                            help="client-side socket timeout (s)")

    p_serve = sub.add_parser(
        "serve", help="start the long-lived layout-analysis service"
    )
    p_serve.add_argument("--host", default=DEFAULT_HOST)
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT)
    p_serve.add_argument("--cache-dir",
                         help="persist the stage cache here "
                              "(omit for memory-only)")
    p_serve.add_argument("--pool", choices=["process", "thread", "serial"],
                         default="process", help="worker pool kind")
    p_serve.add_argument("--workers", type=int,
                         help="worker count (default: cpu count)")
    p_serve.add_argument("--job-timeout", type=float,
                         help="per-estimation-job timeout (s)")
    p_serve.add_argument("--retries", type=int, default=1,
                         help="retries for transient worker failures")
    p_serve.add_argument("--retry-backoff", type=float, default=0.05,
                         help="base seconds of the jittered exponential "
                              "backoff between worker retries "
                              "(0 disables waiting)")
    p_serve.add_argument("--request-timeout", type=float,
                         help="per-request deadline (s)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable the stage cache")
    p_serve.add_argument("--telemetry-dir",
                         help="persist the NDJSON event log here "
                              "(omit for an in-memory ring)")
    p_serve.add_argument("--slo-file",
                         help="objectives file served by the slo op and "
                              "`repro slo` by default")
    p_serve.add_argument("--slow-trace-ms", type=float, default=250.0,
                         help="keep the full span tree of requests "
                              "slower than this (tail sampling)")
    p_serve.add_argument("--trace-sample-every", type=int, default=20,
                         help="also keep every K-th healthy trace "
                              "(deterministic on trace id)")
    p_serve.add_argument("--admission-max-concurrency", type=int,
                         default=64,
                         help="ceiling of the adaptive concurrency "
                              "limiter (AIMD discovers the working "
                              "limit below it)")
    p_serve.add_argument("--admission-initial-concurrency", type=int,
                         help="starting concurrency limit "
                              "(default: min(8, max))")
    p_serve.add_argument("--admission-max-queue", type=int, default=64,
                         help="bounded admission queue depth; beyond it "
                              "requests shed with a typed 'overloaded' "
                              "error")
    p_serve.add_argument("--admission-queue-wait", type=float,
                         default=2.0,
                         help="max seconds a request may queue before "
                              "shedding (its own deadline may shed it "
                              "sooner)")
    p_serve.add_argument("--brownout-budget", type=float, default=0.25,
                         help="solver budget (s) for requests admitted "
                              "under brownout: fast labeled-degraded "
                              "answers before shedding starts")
    p_serve.add_argument("--conn-timeout", type=float, default=300.0,
                         help="per-connection socket timeout (s); idle "
                              "or slow-writing clients get a typed "
                              "timeout reply and are disconnected")
    p_serve.add_argument("--drain-deadline", type=float, default=10.0,
                         help="SIGTERM graceful-drain bound (s): stop "
                              "admitting, finish in-flight work, then "
                              "stop the listener")
    p_serve.set_defaults(func=cmd_serve)

    p_request = sub.add_parser(
        "request", help="send one analyze request to a running service"
    )
    _add_common(p_request)
    _add_endpoint(p_request)
    p_request.add_argument("--json", action="store_true",
                           help="print the raw JSON response")
    p_request.add_argument("--no-cache", action="store_true",
                           help="ask the service to bypass its cache")
    p_request.add_argument("--deadline", type=float,
                           help="solver budget in seconds; past it the "
                                "response degrades to the best available "
                                "answer instead of blocking")
    p_request.add_argument("--retries", type=int, default=0,
                           help="retry typed 'overloaded' rejections up "
                                "to this many times (retry-budgeted, "
                                "jittered backoff, honors the server's "
                                "retry_after_s)")
    p_request.set_defaults(func=cmd_request)

    p_service = sub.add_parser(
        "service", help="query or control a running service"
    )
    p_service.add_argument(
        "action",
        choices=["stats", "metrics", "ping", "health", "ready",
                 "shutdown"],
    )
    _add_endpoint(p_service)
    p_service.add_argument("--json", action="store_true",
                           help="print the raw JSON stats")
    p_service.add_argument("--drain-deadline", type=float,
                           help="for shutdown: bound the graceful drain "
                                "to this many seconds")
    p_service.set_defaults(func=cmd_service)

    p_slo = sub.add_parser(
        "slo",
        help="evaluate service-level objectives (live service or "
             "recorded event log)",
    )
    p_slo.add_argument("action", choices=["check", "report"],
                       help="check exits nonzero on violation; "
                            "report always exits 0 unless input is bad")
    p_slo.add_argument("--objectives", required=True,
                       help="objectives file (JSON, repro.obs/slo/v1)")
    p_slo.add_argument("--events",
                       help="evaluate a recorded event log (a directory "
                            "of segments or one .ndjson file) instead "
                            "of a live service")
    p_slo.add_argument("--window", type=float, default=600.0,
                       help="window length for --events replay (s)")
    p_slo.add_argument("--require-data", action="store_true",
                       help="treat empty windows as violations "
                            "(smoke tests)")
    _add_endpoint(p_slo)
    p_slo.add_argument("--json", action="store_true",
                       help="print the machine-readable report")
    p_slo.set_defaults(func=cmd_slo)

    p_top = sub.add_parser(
        "top",
        help="live dashboard of a running service's sliding windows",
    )
    _add_endpoint(p_top)
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="seconds between repaints")
    p_top.add_argument("--once", action="store_true",
                       help="print one page and exit (CI-friendly)")
    p_top.add_argument("--objectives",
                       help="objectives file to show budget burn for")
    p_top.set_defaults(func=cmd_top)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="run the differential-oracle fuzzer over generated programs",
    )
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="base seed; case i uses seed + i")
    p_fuzz.add_argument("--cases", type=int,
                        help="number of cases to run")
    p_fuzz.add_argument("--budget", type=_parse_budget,
                        help="wall-clock budget, e.g. 60s or 2m "
                             "(default when --cases is absent: 100 cases)")
    p_fuzz.add_argument("--out", help="write minimized repro cases here")
    p_fuzz.add_argument("--checks", nargs="*",
                        help="subset of checks to run (default: all)")
    p_fuzz.add_argument("--no-minimize", action="store_true",
                        help="skip failure minimization")
    p_fuzz.add_argument("--max-arrays", type=int, default=3)
    p_fuzz.add_argument("--max-rank", type=int, default=3)
    p_fuzz.add_argument("--max-phases", type=int, default=4)
    p_fuzz.add_argument("--size", type=int,
                        help="declared array extent n (default 8)")
    p_fuzz.add_argument("--no-oracle-scope", dest="oracle_scope",
                        action="store_false",
                        help="allow instances beyond the exhaustive-oracle "
                             "scope (oracle checks skip oversized cases)")
    p_fuzz.add_argument("--procs", type=int, default=4,
                        help="number of processors for the pipeline")
    p_fuzz.add_argument("--machine", choices=sorted(MACHINES),
                        default="ipsc860")
    p_fuzz.add_argument("--backend", choices=["scipy", "branch-bound"],
                        default="scipy", help="0-1 solver backend under test")
    p_fuzz.add_argument("--trace",
                        help="record the campaign's span trace to this "
                             "JSON file")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_chaos = sub.add_parser(
        "chaos",
        help="replay seeded fault plans over the paper programs and "
             "assert the resilience invariant",
    )
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="base seed; case i uses seed + i")
    p_chaos.add_argument("--cases", type=int, default=50,
                         help="maximum number of cases to run")
    p_chaos.add_argument("--budget", type=_parse_budget,
                         help="wall-clock budget, e.g. 60s or 2m "
                              "(stops the campaign early)")
    p_chaos.add_argument("--case-timeout", type=float, default=60.0,
                         help="seconds before a case counts as a hang")
    p_chaos.add_argument("--programs", nargs="*",
                         help="paper programs to target (default: all)")
    p_chaos.add_argument("--procs", type=int, default=4,
                         help="number of processors for the pipeline")
    p_chaos.add_argument("--artifacts",
                         help="write violating fault plans here")
    p_chaos.add_argument("--events",
                         help="record per-case outcomes to an NDJSON "
                              "event log in this directory")
    p_chaos.add_argument("--overload-fraction", type=float, default=0.15,
                         help="fraction of cases run as burst-arrival "
                              "overload cases instead of fault-injection "
                              "cases (0 disables)")
    p_chaos.add_argument("--json", action="store_true",
                         help="print the machine-readable report")
    p_chaos.set_defaults(func=cmd_chaos)

    p_loadtest = sub.add_parser(
        "loadtest",
        help="open-loop load generator: fixed arrival rate against a "
             "running service, classifying every outcome and gating "
             "on violations/p99/goodput/shed",
    )
    p_loadtest.add_argument("--rate", type=float,
                            help="arrivals per second (open loop: the "
                                 "schedule does not slow down when the "
                                 "server does)")
    p_loadtest.add_argument("--duration", type=float,
                            help="run length in seconds")
    p_loadtest.add_argument("--profile",
                            help="JSON profile with defaults "
                                 "(see examples/loadtest.json); flags "
                                 "override it")
    p_loadtest.add_argument("--program",
                            help="paper program to request (default adi)")
    p_loadtest.add_argument("--size", type=int,
                            help="problem size for the request")
    p_loadtest.add_argument("--procs", type=int,
                            help="processor count for the request")
    p_loadtest.add_argument("--deadline", type=float,
                            help="per-request deadline_s sent to the "
                                 "server (enables deadline-aware "
                                 "shedding)")
    p_loadtest.add_argument("--no-cache", action="store_true",
                            help="bypass the server's stage cache so "
                                 "every request costs real work")
    p_loadtest.add_argument("--workers", type=int,
                            help="generator thread pool size "
                                 "(default 256); raise it if "
                                 "max_dispatch_lag_s climbs")
    p_loadtest.add_argument("--request-timeout", type=float,
                            help="client-side timeout per request (s, "
                                 "default 30); expiry counts as "
                                 "no-reply, a violation")
    p_loadtest.add_argument("--host", default=DEFAULT_HOST)
    p_loadtest.add_argument("--port", type=int, default=DEFAULT_PORT)
    p_loadtest.add_argument("--json", action="store_true",
                            help="print the machine-readable report")
    p_loadtest.add_argument("--out",
                            help="write the report JSON here (usable "
                                 "later as --baseline)")
    p_loadtest.add_argument("--baseline",
                            help="earlier report JSON to hold goodput "
                                 "against")
    p_loadtest.add_argument("--min-goodput-ratio", type=float,
                            default=0.8,
                            help="fail if goodput drops below this "
                                 "fraction of the baseline's")
    p_loadtest.add_argument("--p99-budget", type=float,
                            help="admitted-request p99 budget (s)")
    p_loadtest.add_argument("--slo",
                            help="objectives file; gates admitted p99 "
                                 "on its analyze p99 threshold")
    p_loadtest.add_argument("--require-shed", action="store_true",
                            help="fail unless the run shed something "
                                 "(overload legs must prove admission "
                                 "control engaged)")
    p_loadtest.add_argument("--gate", action="store_true",
                            help="exit 1 on any gate problem")
    p_loadtest.set_defaults(func=cmd_loadtest)

    p_bench = sub.add_parser(
        "bench",
        help="deterministic benchmark harness and regression gate",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    def _add_bench_common(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--programs", nargs="*",
                            choices=sorted(PROGRAMS),
                            help="paper programs to bench (default: all)")
        parser.add_argument("--stages", nargs="*",
                            help="pipeline stages to bench (default: all)")
        parser.add_argument("--repeats", type=int, default=5,
                            help="timed repetitions per benchmark")
        parser.add_argument("--warmup", type=int, default=1,
                            help="untimed warmup repetitions")
        parser.add_argument("--no-memory", action="store_true",
                            help="skip the tracemalloc memory repetition")
        parser.add_argument("--no-e2e", action="store_true",
                            help="skip the end-to-end benchmarks")
        parser.add_argument("--no-qa", action="store_true",
                            help="skip the generated QA-corpus benchmark")
        parser.add_argument("--machine", choices=sorted(MACHINES),
                            default="ipsc860")
        parser.add_argument("--backend",
                            choices=["scipy", "branch-bound"],
                            default="scipy")
        parser.add_argument("--root", default=".",
                            help="directory holding BENCH_*.json files")
        parser.add_argument("--json", action="store_true",
                            help="print machine-readable JSON")
        parser.add_argument("--trace",
                            help="record the bench run's span trace here")
        parser.add_argument("--trace-chrome",
                            help="also export a chrome://tracing file")

    def _add_bench_thresholds(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--baseline", required=True,
                            help="baseline label or BENCH_*.json path")
        parser.add_argument("--current",
                            help="compare a recorded BENCH_*.json instead "
                                 "of running the suite")
        parser.add_argument("--max-ratio", type=float, default=1.5,
                            help="slowdown ratio that fails the gate")
        parser.add_argument("--mad-sigmas", type=float, default=4.0,
                            help="noise band width in MADs")
        parser.add_argument("--min-slowdown", type=float, default=1e-4,
                            help="absolute slowdown floor in seconds")
        parser.add_argument("--threshold", action="append",
                            metavar="BENCH=RATIO",
                            help="per-benchmark ratio override "
                                 "(repeatable)")

    pb_run = bench_sub.add_parser(
        "run", help="run the suite and append to BENCH_<label>.json"
    )
    _add_bench_common(pb_run)
    pb_run.add_argument("--label", default="baseline",
                        help="baseline label (file: BENCH_<label>.json)")
    pb_run.add_argument("--no-write", action="store_true",
                        help="do not write the trajectory file")
    pb_run.add_argument("--prometheus",
                        help="write Prometheus text exposition here")
    pb_run.set_defaults(func=cmd_bench_run)

    pb_compare = bench_sub.add_parser(
        "compare", help="compare a run against a stored baseline"
    )
    _add_bench_common(pb_compare)
    _add_bench_thresholds(pb_compare)
    pb_compare.set_defaults(func=cmd_bench_compare)

    pb_gate = bench_sub.add_parser(
        "gate",
        help="like compare, but exit 1 on a significant regression",
    )
    _add_bench_common(pb_gate)
    _add_bench_thresholds(pb_gate)
    pb_gate.set_defaults(func=cmd_bench_gate)

    pb_profile = bench_sub.add_parser(
        "profile", help="cProfile hot-function summaries per benchmark"
    )
    _add_bench_common(pb_profile)
    pb_profile.add_argument("--bench", nargs="*",
                            help="substring filters on benchmark IDs")
    pb_profile.add_argument("--limit", type=int, default=10,
                            help="hot functions to show per benchmark")
    pb_profile.set_defaults(func=cmd_bench_profile)

    p_summary = sub.add_parser(
        "summary", help="run test-case grids and print the summary table"
    )
    p_summary.add_argument("--programs", nargs="*", choices=sorted(PROGRAMS))
    p_summary.add_argument("--machine", choices=sorted(MACHINES),
                           default="ipsc860")
    p_summary.add_argument("--quick", action="store_true",
                           help="sample a few cases per program")
    p_summary.add_argument("--verbose", action="store_true")
    p_summary.set_defaults(func=cmd_summary)

    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
