"""Test-case runner: the paper's experimental protocol.

A test case is (program, data type, problem size, processor count).  For
each test case the assistant proposes a layout; every promising scheme is
also measured on the simulated machine, and we record whether the tool's
choice is the measured best, how the rankings compare, and the
performance loss of a suboptimal choice — the numbers behind the paper's
"84 of 99 optimal, worst loss 9.3%" summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..machine.params import IPSC860, MachineParams
from ..programs.registry import PROGRAMS, ProgramSpec
from .assistant import AssistantConfig, AssistantResult, run_assistant
from .schemes import Scheme, TOOL, enumerate_schemes, measure_scheme


@dataclass(frozen=True)
class TestCase:
    """One experimental configuration."""

    __test__ = False  # not a pytest class, despite the name

    program: str
    n: int
    dtype: str
    nprocs: int
    maxiter: int = 3

    @property
    def label(self) -> str:
        return f"{self.program}/{self.dtype}/{self.n}/p{self.nprocs}"


@dataclass
class TestCaseResult:
    """Assistant decision + measured scheme table for one test case."""

    case: TestCase
    schemes: List[Scheme]
    tool_scheme: Scheme
    assistant: Optional[AssistantResult] = None

    @property
    def measured_schemes(self) -> List[Scheme]:
        return [s for s in self.schemes if s.measurement is not None]

    @property
    def best_measured(self) -> Scheme:
        candidates = [s for s in self.measured_schemes if s.name != TOOL]
        return min(candidates, key=lambda s: s.measured_us)

    @property
    def tool_measured_us(self) -> float:
        return self.tool_scheme.measured_us

    @property
    def tool_optimal(self) -> bool:
        """Did the tool pick the measured-best scheme (within timing
        noise-free simulation, exact equality of selections or times)?"""
        best = self.best_measured
        return (
            self.tool_scheme.selection == best.selection
            or self.tool_measured_us <= best.measured_us * (1 + 1e-9)
        )

    @property
    def loss_percent(self) -> float:
        """Performance loss of the tool's choice vs the measured best."""
        best = self.best_measured.measured_us
        return max(self.tool_measured_us / best - 1.0, 0.0) * 100.0

    @property
    def best_overall_name(self) -> str:
        """Name of the measured-best scheme, counting the tool's dynamic
        layout as a promising scheme in its own right (the paper tallies
        its dynamic candidate alongside the static ones)."""
        from .schemes import matching_scheme

        best = min(self.measured_schemes, key=lambda s: s.measured_us)
        if best.name == TOOL:
            named = matching_scheme(self.schemes, best.selection)
            if named is not None:
                return named.name
            # Distinct dynamic selection: strictly best only if it beats
            # the named schemes.
            runner_up = self.best_measured
            if best.measured_us < runner_up.measured_us * (1 - 1e-9):
                return "dynamic"
            return runner_up.name
        return best.name

    def ranking_correct(self) -> bool:
        """Do the estimated and measured scheme orders agree?"""
        comparable = [
            s for s in self.measured_schemes if s.name != TOOL
        ]
        by_est = sorted(comparable, key=lambda s: s.estimated_us)
        by_meas = sorted(comparable, key=lambda s: s.measured_us)
        return [s.name for s in by_est] == [s.name for s in by_meas]


def source_for(case: TestCase) -> str:
    spec = PROGRAMS[case.program]
    if spec.has_time_loop:
        return spec.source(n=case.n, dtype=case.dtype, maxiter=case.maxiter)
    return spec.source(n=case.n, dtype=case.dtype)


def run_test_case(
    case: TestCase,
    machine: MachineParams = IPSC860,
    actual_branch_probability: float = 0.9,
    max_pipeline_stages: int = 1024,
    keep_assistant: bool = False,
) -> TestCaseResult:
    """Run the assistant and measure every promising scheme.

    ``actual_branch_probability`` is the real (simulated-workload) branch
    behaviour; the assistant still guesses 50% as in the paper.
    """
    source = source_for(case)
    config = AssistantConfig(nprocs=case.nprocs, machine=machine)
    assistant = run_assistant(source, config)
    schemes = enumerate_schemes(assistant)

    # Measure each distinct selection once; schemes sharing a selection
    # share the measurement.
    by_selection: Dict[Tuple, Scheme] = {}
    for scheme in schemes:
        key = tuple(sorted(scheme.selection.items()))
        if key in by_selection:
            scheme.measurement = by_selection[key].measurement
            continue
        measure_scheme(
            scheme,
            assistant,
            source,
            actual_branch_probability=actual_branch_probability,
            max_pipeline_stages=max_pipeline_stages,
        )
        by_selection[key] = scheme

    tool_scheme = next(s for s in schemes if s.name == TOOL)
    return TestCaseResult(
        case=case,
        schemes=schemes,
        tool_scheme=tool_scheme,
        assistant=assistant if keep_assistant else None,
    )


def grid_for(spec: ProgramSpec) -> List[TestCase]:
    """The test-case grid of one program (documented in EXPERIMENTS.md)."""
    skip = set(spec.grid_skip)
    cases = []
    for dtype in spec.grid_dtypes:
        for n in spec.grid_sizes:
            for procs in spec.grid_procs:
                if (dtype, n, procs) in skip:
                    continue
                cases.append(
                    TestCase(
                        program=spec.name, n=n, dtype=dtype, nprocs=procs
                    )
                )
    for dtype, n, procs in spec.grid_extra:
        cases.append(
            TestCase(program=spec.name, n=n, dtype=dtype, nprocs=procs)
        )
    return cases


@dataclass
class SummaryRow:
    """Per-program aggregation for the summary table."""

    program: str
    cases: int = 0
    tool_optimal: int = 0
    worst_loss_percent: float = 0.0
    best_scheme_counts: Dict[str, int] = field(default_factory=dict)
    rankings_correct: int = 0


def summarize(results: List[TestCaseResult]) -> List[SummaryRow]:
    rows: Dict[str, SummaryRow] = {}
    for result in results:
        row = rows.setdefault(
            result.case.program, SummaryRow(program=result.case.program)
        )
        row.cases += 1
        if result.tool_optimal:
            row.tool_optimal += 1
        else:
            row.worst_loss_percent = max(
                row.worst_loss_percent, result.loss_percent
            )
        best = result.best_overall_name
        row.best_scheme_counts[best] = row.best_scheme_counts.get(best, 0) + 1
        if result.ranking_correct():
            row.rankings_correct += 1
    return [rows[name] for name in sorted(rows)]
