"""HPF source emission: the assistant's end product.

Given an :class:`AssistantResult`, re-emit the user's program with High
Performance Fortran directives inserted:

* a ``PROCESSORS`` arrangement and the program ``TEMPLATE``;
* one ``ALIGN`` directive per array (replicated template dimensions shown
  as ``*``), taken from the selected layout of the array's first
  referencing phase;
* a ``DISTRIBUTE`` directive for the template;
* for dynamic layouts, ``REDISTRIBUTE``/``REALIGN`` directives in front
  of the phases where the selection changes an array's mapping (the
  paper's remapping points), plus ``DYNAMIC`` declarations for the
  affected arrays.

The emitted text is the paper's "totally specified data layout": a valid
sketch a user would hand to an HPF compiler.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..codegen.spmd import array_layout_signature
from ..distribution.layouts import Alignment, DataLayout
from ..frontend import ast
from ..frontend.printer import format_declaration, format_stmt
from ..frontend.symbols import ArraySymbol
from .assistant import AssistantResult

_BASE = "      "
_INDEX_NAMES = "ijklmn"


def _align_directive(array: str, alignment: Alignment,
                     template_rank: int) -> str:
    array_indices = [_INDEX_NAMES[d % 6] for d in range(alignment.rank)]
    template_slots = ["*"] * template_rank
    for adim, tdim in enumerate(alignment.axis_map):
        template_slots[tdim] = array_indices[adim]
    return (
        f"!HPF$ align {array}({', '.join(array_indices)}) "
        f"with t({', '.join(template_slots)})"
    )


def _distribute_text(layout: DataLayout) -> str:
    parts = []
    for dim in layout.distribution.dims:
        if not dim.is_distributed:
            parts.append("*")
        elif dim.kind == "block":
            parts.append("block")
        elif dim.kind == "cyclic":
            parts.append("cyclic")
        else:
            parts.append(f"cyclic({dim.block})")
    return ", ".join(parts)


def write_hpf(result: AssistantResult) -> str:
    """Render the program with the selected layout as HPF directives."""
    program = result.program
    symbols = result.symbols
    selection = result.selection.selection
    layouts: Dict[int, DataLayout] = result.selected_layouts

    # -- decide the initial (declaration-time) mapping per array: its
    # layout at the first referencing phase, in phase order.
    first_layout: Dict[str, Tuple[Alignment, DataLayout]] = {}
    remap_directives: Dict[int, List[str]] = {}
    current_sig: Dict[str, Tuple] = {}
    dynamic_arrays = set()
    for phase in result.partition.phases:
        layout = layouts[phase.index]
        for array in phase.arrays:
            if not isinstance(symbols.get(array), ArraySymbol):
                continue
            try:
                sig = array_layout_signature(layout, array)
                alignment = layout.alignment_of(array)
            except KeyError:
                continue
            if array not in first_layout:
                first_layout[array] = (alignment, layout)
                current_sig[array] = sig
                continue
            if current_sig[array] != sig:
                dynamic_arrays.add(array)
                lines = remap_directives.setdefault(phase.index, [])
                lines.append(
                    f"!HPF$ realign {array} "
                    f"with t  ! remap before phase {phase.index}: "
                    f"{_align_directive(array, alignment, result.template.rank)[6:]}"
                    f", distribute ({_distribute_text(layout)})"
                )
                current_sig[array] = sig

    # -- header -----------------------------------------------------------
    nprocs = result.config.nprocs
    lines: List[str] = [f"program {program.name}", f"{_BASE}implicit none"]
    for decl in program.declarations:
        lines.extend(format_declaration(decl))
    lines.append(f"!HPF$ processors procs({nprocs})")
    extents = ", ".join(str(e) for e in result.template.extents)
    lines.append(f"!HPF$ template t({extents})")
    sample_layout: Optional[DataLayout] = None
    for array in sorted(first_layout):
        alignment, layout = first_layout[array]
        if sample_layout is None:
            sample_layout = layout
        lines.append(
            _align_directive(array, alignment, result.template.rank)
        )
    if dynamic_arrays:
        lines.append(
            "!HPF$ dynamic " + ", ".join(sorted(dynamic_arrays))
        )
    if sample_layout is not None:
        lines.append(
            f"!HPF$ distribute t({_distribute_text(sample_layout)}) "
            f"onto procs"
        )

    # -- body with remap directives spliced before phase roots ------------
    phase_of_stmt = {
        id(phase.stmt): phase.index for phase in result.partition.phases
    }

    def render(stmts, depth: int) -> None:
        for stmt in stmts:
            idx = phase_of_stmt.get(id(stmt))
            if idx is not None and idx in remap_directives:
                lines.extend(remap_directives[idx])
            if isinstance(stmt, ast.Do) and id(stmt) not in phase_of_stmt:
                # control loop: recurse so nested phases get directives
                header = format_stmt(stmt, depth)[0]
                lines.append(header)
                render(stmt.body, depth + 1)
                lines.append(_BASE + "  " * depth + "enddo")
            elif isinstance(stmt, ast.If) and any(
                id(s) in phase_of_stmt for s in ast.walk_stmts([stmt])
            ):
                lines.append(
                    _BASE + "  " * depth
                    + f"if ({_cond_text(stmt)}) then"
                )
                render(stmt.then_body, depth + 1)
                if stmt.else_body:
                    lines.append(_BASE + "  " * depth + "else")
                    render(stmt.else_body, depth + 1)
                lines.append(_BASE + "  " * depth + "endif")
            else:
                lines.extend(format_stmt(stmt, depth))

    def _cond_text(stmt: ast.If) -> str:
        from ..frontend.printer import format_expr

        return format_expr(stmt.cond)

    render(program.body, 0)
    lines.append(f"{_BASE}end")
    return "\n".join(lines) + "\n"
