"""The data layout assistant: the paper's four framework steps end to end.

1. partition the program into phases and build the PCFG;
2. construct alignment and candidate-layout search spaces;
3. estimate every candidate (and remapping costs) against the machine's
   training sets;
4. select one candidate per phase with the 0-1 optimum.

The result object keeps every intermediate structure browsable — the
framework is designed for an interactive tool, so search spaces can be
inspected and edited before re-running selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..alignment.search_space import (
    AlignmentSearchSpaces,
    build_alignment_search_spaces,
)
from ..analysis.pcfg import PCFG, build_pcfg
from ..analysis.phases import (
    DEFAULT_BRANCH_PROBABILITY,
    PhasePartition,
    partition_phases,
)
from ..distribution.layouts import DataLayout
from ..distribution.search_space import (
    DistributionOptions,
    LayoutSearchSpaces,
    build_layout_search_spaces,
)
from ..distribution.template import Template, determine_template
from ..frontend import ast
from ..frontend.inline import inline_program
from ..frontend.parser import parse_source_file
from ..frontend.symbols import SymbolTable, build_symbol_table
from ..machine.params import IPSC860, MachineParams
from ..perf.compiler_model import FORTRAN_D_PROTOTYPE, CompilerOptions
from ..perf.estimator import EstimationResult, estimate_search_spaces
from ..perf.training import TrainingDatabase, cached_training_database
from ..selection.ilp import SelectionResult, select_layouts
from ..selection.layout_graph import DataLayoutGraph, build_layout_graph


@dataclass
class AssistantConfig:
    """Everything the framework is parameterized with (compiler, machine,
    problem size via the source text, and processor count)."""

    nprocs: int
    machine: MachineParams = IPSC860
    compiler: CompilerOptions = FORTRAN_D_PROTOTYPE
    distributions: DistributionOptions = field(
        default_factory=DistributionOptions.prototype
    )
    ilp_backend: str = "scipy"
    branch_probability: float = DEFAULT_BRANCH_PROBABILITY
    branch_prob_overrides: Optional[Dict[int, float]] = None


@dataclass
class AssistantResult:
    """All four steps' outputs, plus the final selected layouts."""

    config: AssistantConfig
    program: ast.Program
    symbols: SymbolTable
    partition: PhasePartition
    pcfg: PCFG
    template: Template
    alignment_spaces: AlignmentSearchSpaces
    layout_spaces: LayoutSearchSpaces
    estimates: EstimationResult
    graph: DataLayoutGraph
    selection: SelectionResult
    db: TrainingDatabase

    @property
    def selected_layouts(self) -> Dict[int, DataLayout]:
        return {
            idx: self.layout_spaces.per_phase[idx][pos].layout
            for idx, pos in self.selection.selection.items()
        }

    @property
    def predicted_total_us(self) -> float:
        return self.selection.objective

    @property
    def is_dynamic(self) -> bool:
        """Does the selected layout remap anything?"""
        sel = self.selection.selection
        for edge in self.graph.edges:
            pair = (sel[edge.src_phase], sel[edge.dst_phase])
            if edge.costs.get(pair, 0.0) > 0.0:
                return True
        return False

    def reselect(self, allowed: Optional[Dict[int, Set[int]]] = None
                 ) -> SelectionResult:
        """Re-run the selection step, optionally restricted — the hook for
        user edits of the search spaces."""
        return select_layouts(
            self.graph, backend=self.config.ilp_backend, allowed=allowed
        )


def run_assistant(source: str, config: AssistantConfig) -> AssistantResult:
    """Run the four framework steps on Fortran source text.

    Multi-unit files (PROGRAM plus SUBROUTINEs) are inlined first — the
    framework itself is intra-procedural, like the paper's prototype, but
    the tool performs the inlining its authors did by hand.
    """
    program = inline_program(parse_source_file(source))
    symbols = build_symbol_table(program)
    partition = partition_phases(
        program,
        symbols,
        branch_probability=config.branch_probability,
        branch_prob_overrides=config.branch_prob_overrides,
    )
    pcfg = build_pcfg(partition)
    template = determine_template(symbols)
    alignment_spaces = build_alignment_search_spaces(
        partition.phases, pcfg, symbols, template,
        backend=config.ilp_backend,
    )
    layout_spaces = build_layout_search_spaces(
        partition.phases, alignment_spaces, template, symbols,
        nprocs=config.nprocs, options=config.distributions,
    )
    db = cached_training_database(config.machine)
    estimates = estimate_search_spaces(
        partition.phases, layout_spaces, symbols, config.machine,
        db=db, options=config.compiler,
    )
    graph = build_layout_graph(
        partition.phases, pcfg, estimates, symbols, db, config.nprocs
    )
    selection = select_layouts(graph, backend=config.ilp_backend)
    return AssistantResult(
        config=config,
        program=program,
        symbols=symbols,
        partition=partition,
        pcfg=pcfg,
        template=template,
        alignment_spaces=alignment_spaces,
        layout_spaces=layout_spaces,
        estimates=estimates,
        graph=graph,
        selection=selection,
        db=db,
    )
