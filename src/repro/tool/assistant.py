"""The data layout assistant: the paper's four framework steps end to end.

1. partition the program into phases and build the PCFG;
2. construct alignment and candidate-layout search spaces;
3. estimate every candidate (and remapping costs) against the machine's
   training sets;
4. select one candidate per phase with the 0-1 optimum.

The result object keeps every intermediate structure browsable — the
framework is designed for an interactive tool, so search spaces can be
inspected and edited before re-running selection.

The run is decomposed into six *stages* (frontend, partition, alignment,
distribution, estimation, selection), each an independently callable,
independently cacheable pure function of its inputs; ``run_assistant``
is simply their composition.  The layout service (``repro.service``)
times and caches each stage separately.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

from ..alignment.search_space import (
    AlignmentSearchSpaces,
    build_alignment_search_spaces,
)
from ..analysis.pcfg import PCFG, build_pcfg
from ..analysis.phases import (
    DEFAULT_BRANCH_PROBABILITY,
    PhasePartition,
    partition_phases,
)
from ..distribution.layouts import DataLayout
from ..distribution.search_space import (
    DistributionOptions,
    LayoutSearchSpaces,
    build_layout_search_spaces,
)
from ..distribution.template import Template, determine_template
from ..frontend import ast
from ..frontend.inline import inline_program
from ..frontend.parser import parse_source_file
from ..frontend.symbols import SymbolTable, build_symbol_table
from ..machine.params import IPSC860, MACHINES, MachineParams
from ..obs.tracing import span as obs_span
from ..perf.compiler_model import FORTRAN_D_PROTOTYPE, CompilerOptions
from ..perf.estimator import (
    EstimationResult,
    JobRunner,
    estimate_search_spaces,
)
from ..perf.training import TrainingDatabase, cached_training_database
from ..selection.ilp import SelectionResult, select_layouts
from ..selection.layout_graph import DataLayoutGraph, build_layout_graph


@dataclass
class AssistantConfig:
    """Everything the framework is parameterized with (compiler, machine,
    problem size via the source text, and processor count)."""

    nprocs: int
    machine: MachineParams = IPSC860
    compiler: CompilerOptions = FORTRAN_D_PROTOTYPE
    distributions: DistributionOptions = field(
        default_factory=DistributionOptions.prototype
    )
    ilp_backend: str = "scipy"
    branch_probability: float = DEFAULT_BRANCH_PROBABILITY
    branch_prob_overrides: Optional[Dict[int, float]] = None
    #: "batched" prices all candidates of a phase through vectorized
    #: cost tables; "scalar" is the legacy per-candidate loop, kept as
    #: the differential reference (both are bitwise-equal).
    estimation_mode: str = "batched"
    #: presolve + exact elimination before the selection/alignment ILPs;
    #: False forces the legacy full-model solves.
    ilp_presolve: bool = True

    # -- serialization ---------------------------------------------------
    #
    # Configs must round-trip through plain dicts (JSON-safe) so the
    # service protocol can carry them and the stage cache can key on
    # them.  ``to_dict`` → ``from_dict`` is the round-trip; ``to_key``
    # is a stable content hash of the canonical dict.

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable dict capturing every field."""
        overrides = None
        if self.branch_prob_overrides is not None:
            overrides = {
                str(k): float(v)
                for k, v in sorted(self.branch_prob_overrides.items())
            }
        dist = asdict(self.distributions)
        dist["block_cyclic_sizes"] = list(dist["block_cyclic_sizes"])
        return {
            "nprocs": self.nprocs,
            "machine": asdict(self.machine),
            "compiler": asdict(self.compiler),
            "distributions": dist,
            "ilp_backend": self.ilp_backend,
            "branch_probability": self.branch_probability,
            "branch_prob_overrides": overrides,
            "estimation_mode": self.estimation_mode,
            "ilp_presolve": self.ilp_presolve,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AssistantConfig":
        """Rebuild a config from :meth:`to_dict` output (or a hand-written
        dict; the machine may be given by registry name)."""
        machine = data.get("machine", IPSC860)
        if isinstance(machine, str):
            machine = MACHINES[machine]
        elif isinstance(machine, Mapping):
            machine = MachineParams(**machine)
        compiler = data.get("compiler", FORTRAN_D_PROTOTYPE)
        if isinstance(compiler, Mapping):
            compiler = CompilerOptions(**compiler)
        dist = data.get("distributions")
        if dist is None:
            distributions = DistributionOptions.prototype()
        elif isinstance(dist, Mapping):
            dist = dict(dist)
            dist["block_cyclic_sizes"] = tuple(
                dist.get("block_cyclic_sizes", ())
            )
            distributions = DistributionOptions(**dist)
        else:
            distributions = dist
        overrides = data.get("branch_prob_overrides")
        if overrides is not None:
            overrides = {int(k): float(v) for k, v in overrides.items()}
        return cls(
            nprocs=int(data["nprocs"]),
            machine=machine,
            compiler=compiler,
            distributions=distributions,
            ilp_backend=data.get("ilp_backend", "scipy"),
            branch_probability=float(
                data.get("branch_probability", DEFAULT_BRANCH_PROBABILITY)
            ),
            branch_prob_overrides=overrides,
            estimation_mode=str(data.get("estimation_mode", "batched")),
            ilp_presolve=bool(data.get("ilp_presolve", True)),
        )

    def to_key(self) -> str:
        """Stable content hash of the config (cache-key ingredient)."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class AssistantResult:
    """All four steps' outputs, plus the final selected layouts."""

    config: AssistantConfig
    program: ast.Program
    symbols: SymbolTable
    partition: PhasePartition
    pcfg: PCFG
    template: Template
    alignment_spaces: AlignmentSearchSpaces
    layout_spaces: LayoutSearchSpaces
    estimates: EstimationResult
    graph: DataLayoutGraph
    selection: SelectionResult
    db: TrainingDatabase

    @property
    def selected_layouts(self) -> Dict[int, DataLayout]:
        return {
            idx: self.layout_spaces.per_phase[idx][pos].layout
            for idx, pos in self.selection.selection.items()
        }

    @property
    def predicted_total_us(self) -> float:
        return self.selection.objective

    @property
    def is_dynamic(self) -> bool:
        """Does the selected layout remap anything?"""
        sel = self.selection.selection
        for edge in self.graph.edges:
            pair = (sel[edge.src_phase], sel[edge.dst_phase])
            if edge.costs.get(pair, 0.0) > 0.0:
                return True
        return False

    def reselect(self, allowed: Optional[Dict[int, Set[int]]] = None,
                 warm_start: bool = True) -> SelectionResult:
        """Re-run the selection step, optionally restricted — the hook for
        user edits of the search spaces.

        By default the re-solve is warm-started from the current
        selection (repaired onto ``allowed`` where it violates a
        restriction), so walking a remap chain of edits re-prices from
        the previous incumbent instead of from scratch.  Warm starts
        never change the canonical result; ``warm_start=False`` opts
        out.
        """
        seed: Optional[Dict[int, int]] = None
        if warm_start:
            seed = dict(self.selection.selection)
            if allowed is not None:
                for phase_index, positions in allowed.items():
                    if positions and seed.get(phase_index) not in positions:
                        seed[phase_index] = min(positions)
        return select_layouts(
            self.graph, backend=self.config.ilp_backend, allowed=allowed,
            presolve=self.config.ilp_presolve, warm_start=seed,
        )


# ---------------------------------------------------------------------------
# The six stages.  Each is a pure function of its arguments; the service
# caches each one under a content-derived key (see repro/service/cache.py).

#: stage names, in pipeline order
STAGES = (
    "frontend", "partition", "alignment", "distribution", "estimation",
    "selection",
)


def stage_frontend(source: str) -> Tuple[ast.Program, SymbolTable]:
    """Parse and inline the source, build the symbol table.

    Multi-unit files (PROGRAM plus SUBROUTINEs) are inlined first — the
    framework itself is intra-procedural, like the paper's prototype, but
    the tool performs the inlining its authors did by hand.
    """
    with obs_span("stage:frontend", source_bytes=len(source)) as sp:
        with obs_span("frontend.parse"):
            program = parse_source_file(source)
        with obs_span("frontend.inline"):
            program = inline_program(program)
        with obs_span("frontend.symbols"):
            symbols = build_symbol_table(program)
        sp.set_attr("arrays", len(symbols.arrays()))
    return program, symbols


def stage_partition(
    program: ast.Program, symbols: SymbolTable, config: AssistantConfig
) -> Tuple[PhasePartition, PCFG, Template]:
    """Phase partitioning, PCFG construction, template determination."""
    with obs_span("stage:partition") as sp:
        with obs_span("partition.phases"):
            partition = partition_phases(
                program,
                symbols,
                branch_probability=config.branch_probability,
                branch_prob_overrides=config.branch_prob_overrides,
            )
        with obs_span("partition.pcfg"):
            pcfg = build_pcfg(partition)
        with obs_span("partition.template"):
            template = determine_template(symbols)
        sp.set_attr("phases", len(partition.phases))
        sp.set_attr("template_rank", template.rank)
    return partition, pcfg, template


def stage_alignment(
    partition: PhasePartition,
    pcfg: PCFG,
    symbols: SymbolTable,
    template: Template,
    config: AssistantConfig,
) -> AlignmentSearchSpaces:
    """Per-phase alignment search spaces (intra-phase CAG optimization)."""
    with obs_span("stage:alignment", backend=config.ilp_backend) as sp:
        spaces = build_alignment_search_spaces(
            partition.phases, pcfg, symbols, template,
            backend=config.ilp_backend,
        )
        sp.set_attr("classes", len(spaces.classes))
        sp.set_attr("resolutions", len(spaces.resolutions))
        sp.set_attr(
            "candidates",
            sum(len(v) for v in spaces.per_phase.values()),
        )
    return spaces


def stage_distribution(
    partition: PhasePartition,
    alignment_spaces: AlignmentSearchSpaces,
    template: Template,
    symbols: SymbolTable,
    config: AssistantConfig,
) -> LayoutSearchSpaces:
    """Candidate data-layout search spaces (alignment x distribution)."""
    with obs_span("stage:distribution", nprocs=config.nprocs) as sp:
        spaces = build_layout_search_spaces(
            partition.phases, alignment_spaces, template, symbols,
            nprocs=config.nprocs, options=config.distributions,
        )
        sp.set_attr("candidates", spaces.total_candidates())
        sp.set_attr("distributions", len(spaces.distributions))
    return spaces


def stage_estimation(
    partition: PhasePartition,
    layout_spaces: LayoutSearchSpaces,
    symbols: SymbolTable,
    config: AssistantConfig,
    job_runner: Optional[JobRunner] = None,
) -> Tuple[EstimationResult, TrainingDatabase]:
    """Price every candidate of every phase against the training sets."""
    with obs_span(
        "stage:estimation", parallel=job_runner is not None
    ) as sp:
        with obs_span("estimation.training_db"):
            db = cached_training_database(config.machine)
        estimates = estimate_search_spaces(
            partition.phases, layout_spaces, symbols, config.machine,
            db=db, options=config.compiler, job_runner=job_runner,
            mode=config.estimation_mode,
        )
        sp.set_attr(
            "candidates",
            sum(len(v) for v in estimates.per_phase.values()),
        )
    return estimates, db


def stage_selection(
    partition: PhasePartition,
    pcfg: PCFG,
    estimates: EstimationResult,
    symbols: SymbolTable,
    db: TrainingDatabase,
    config: AssistantConfig,
) -> Tuple[DataLayoutGraph, SelectionResult]:
    """Build the data layout graph and solve the 0-1 selection problem."""
    with obs_span("stage:selection", backend=config.ilp_backend) as sp:
        graph = build_layout_graph(
            partition.phases, pcfg, estimates, symbols, db, config.nprocs
        )
        selection = select_layouts(
            graph, backend=config.ilp_backend,
            presolve=config.ilp_presolve,
        )
        sp.set_attr("variables", selection.num_variables)
        sp.set_attr("constraints", selection.num_constraints)
        sp.set_attr("objective_us", selection.objective)
    return graph, selection


def run_assistant(
    source: str,
    config: AssistantConfig,
    job_runner: Optional[JobRunner] = None,
) -> AssistantResult:
    """Run the four framework steps on Fortran source text.

    ``job_runner`` (optional) parallelizes the estimation stage; results
    are identical with or without it.
    """
    with obs_span("pipeline", nprocs=config.nprocs):
        program, symbols = stage_frontend(source)
        partition, pcfg, template = stage_partition(
            program, symbols, config
        )
        alignment_spaces = stage_alignment(
            partition, pcfg, symbols, template, config
        )
        layout_spaces = stage_distribution(
            partition, alignment_spaces, template, symbols, config
        )
        estimates, db = stage_estimation(
            partition, layout_spaces, symbols, config,
            job_runner=job_runner
        )
        graph, selection = stage_selection(
            partition, pcfg, estimates, symbols, db, config
        )
    return AssistantResult(
        config=config,
        program=program,
        symbols=symbols,
        partition=partition,
        pcfg=pcfg,
        template=template,
        alignment_spaces=alignment_spaces,
        layout_spaces=layout_spaces,
        estimates=estimates,
        graph=graph,
        selection=selection,
        db=db,
    )
