"""The experiments' "measured" side.

The paper compiles each promising layout with the Fortran D compiler and
times the SPMD programs on the iPSC/860; here the SPMD code generator
lowers the program under each layout and the discrete-event simulator
times it.  Measured runs use the *actual* branch probabilities (the
assistant only sees its 50% guess), and exact boundary-processor
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..analysis.phases import PhasePartition, partition_phases
from ..codegen.spmd import SPMDBuilder, compile_program
from ..distribution.layouts import DataLayout
from ..frontend.inline import inline_program
from ..frontend.parser import parse_source_file
from ..frontend.symbols import SymbolTable, build_symbol_table
from ..machine.params import IPSC860, MachineParams
from ..machine.simulator import SimResult, simulate


@dataclass
class Measurement:
    """One measured (simulated) program execution."""

    makespan_us: float
    messages: int
    bytes_sent: int
    remap_count: int
    remap_time_us: float

    @property
    def seconds(self) -> float:
        return self.makespan_us / 1e6


def measure_layouts(
    source: str,
    selected_layouts: Dict[int, DataLayout],
    nprocs: int,
    machine: MachineParams = IPSC860,
    actual_branch_probs: Optional[Dict[int, float]] = None,
    actual_branch_probability: float = 0.5,
    max_pipeline_stages: int = 1024,
) -> Measurement:
    """Compile ``source`` under per-phase ``selected_layouts`` and run it
    on the simulated machine.

    ``actual_branch_probs`` / ``actual_branch_probability`` describe real
    program behaviour (per-IF-line overrides and the default); phase
    indices are stable across branch-probability settings because the
    phase *structure* does not depend on them.
    """
    program = inline_program(parse_source_file(source))
    symbols = build_symbol_table(program)
    partition = partition_phases(
        program,
        symbols,
        branch_probability=actual_branch_probability,
        branch_prob_overrides=actual_branch_probs,
    )
    builder = compile_program(
        partition,
        symbols,
        selected_layouts,
        machine,
        nprocs,
        max_pipeline_stages=max_pipeline_stages,
    )
    result = simulate(builder.programs, machine, builder.collectives)
    return Measurement(
        makespan_us=result.makespan,
        messages=result.stats.messages,
        bytes_sent=result.stats.bytes_sent,
        remap_count=builder.remap_count,
        remap_time_us=builder.remap_time_total,
    )
