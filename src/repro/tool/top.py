"""``repro top``: a live terminal dashboard over the stats snapshot.

Pure formatting — :func:`format_top` turns one ``stats`` response (plus
an optional SLO report) into a fixed-width text page, and ``repro top``
repaints it every ``--interval`` seconds with an ANSI home+clear.  The
formatter is side-effect free so tests can assert on the page without a
terminal, and ``--once`` prints a single page for CI logs.

Everything shown is windowed ("now"), not lifetime: per-op QPS and
quantiles come from the sliding windows, the cache hit rate from the
lifetime counters (labelled as such), breaker/pool state from their
describe() blocks, and budget burn from the SLO engine.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional

from ..obs.slo import QUANTILE_METRICS, SLOReport, format_slo_report

#: ANSI clear-screen-and-home, used between live repaints
CLEAR = "\x1b[2J\x1b[H"


def _ms(value: Optional[float]) -> str:
    """A latency cell: milliseconds, or ``-`` when unknown."""
    if value is None:
        return "      -"
    return f"{value * 1e3:7.1f}"


def _pct(value: Optional[float]) -> str:
    if value is None:
        return "    -"
    return f"{value * 100:4.1f}%"


def _uptime(seconds: float) -> str:
    seconds = max(int(seconds), 0)
    hours, rem = divmod(seconds, 3600)
    minutes, secs = divmod(rem, 60)
    return f"{hours:d}:{minutes:02d}:{secs:02d}"


def _ops_section(window: Mapping[str, Any]) -> List[str]:
    ops = window.get("ops", {})
    lines = [
        f"ops (last {window.get('window_s', 0):.0f}s window, "
        f"fast {window.get('fast_s', 0):.0f}s)",
        "  op        count    qps   p50 ms   p95 ms   p99 ms"
        "   err%   degr%",
    ]
    if not ops:
        lines.append("  (no requests in window)")
        return lines
    for op in sorted(ops):
        full = ops[op].get("full", {})
        q = full.get("quantiles") or {}
        lines.append(
            f"  {op:<9s} {full.get('count', 0):5d} "
            f"{full.get('qps', 0.0):6.2f}  "
            f"{_ms(q.get('p50'))}  {_ms(q.get('p95'))}  "
            f"{_ms(q.get('p99'))}  "
            f"{_pct(full.get('error_rate'))}  "
            f"{_pct(full.get('degraded_rate'))}"
        )
    return lines


def _cache_section(stats: Mapping[str, Any]) -> List[str]:
    cache = stats.get("cache", {})
    hits = int(cache.get("hits", 0))
    misses = int(cache.get("misses", 0))
    total = hits + misses
    rate = f"{hits / total * 100:.1f}%" if total else "-"
    breaker = cache.get("breaker") or {}
    line = (
        f"cache     hit rate {rate} ({hits}/{total} lifetime)"
        f"   quarantined {cache.get('quarantined_total', 0)}"
    )
    if breaker:
        line += f"   disk breaker {breaker.get('state', '?')}"
    return [line]


def _pool_section(stats: Mapping[str, Any]) -> List[str]:
    pool = stats.get("pool") or {}
    if not pool:
        return []
    breaker = pool.get("breaker") or {}
    line = (
        f"pool      {pool.get('active_kind', '?')}"
        f" (requested {pool.get('requested_kind', '?')})"
        f" x{pool.get('max_workers', '?')}"
        f"   degradations {pool.get('degradations', 0)}"
    )
    if breaker:
        line += f"   breaker {breaker.get('state', '?')}"
    return [line]


def _admission_section(stats: Mapping[str, Any]) -> List[str]:
    admission = stats.get("admission") or {}
    if not admission:
        return []
    limiter = admission.get("limiter") or {}
    counters = admission.get("counters") or {}
    state = "draining" if admission.get("draining") else (
        "brownout" if admission.get("brownout") else "ok"
    )
    lines = [
        f"admission {state}"
        f"   in-flight {admission.get('in_flight', 0)}"
        f"/{limiter.get('usable', '?')}"
        f" (limit {limiter.get('limit', '?')}"
        f", zombies {limiter.get('zombies', 0)})"
        f"   queued {admission.get('queue_depth', 0)}"
        f"/{admission.get('max_queue', '?')}"
    ]
    shed = admission.get("shed_total", 0)
    if shed or counters.get("rejected_draining", 0) \
            or counters.get("brownout_admitted", 0):
        lines.append(
            f"          shed {shed}"
            f" (deadline {counters.get('shed_deadline', 0)}"
            f", queue-full {counters.get('shed_queue_full', 0)}"
            f", wait-timeout {counters.get('shed_wait_timeout', 0)})"
            f"   drain-rejected {counters.get('rejected_draining', 0)}"
            f"   brownout-admitted "
            f"{counters.get('brownout_admitted', 0)}"
        )
    return lines


def _telemetry_section(stats: Mapping[str, Any]) -> List[str]:
    telemetry = stats.get("telemetry") or {}
    events = telemetry.get("events") or {}
    sampler = telemetry.get("sampler") or {}
    if not events and not sampler:
        return []
    kept = sampler.get("kept_total", 0)
    dropped = sampler.get("dropped_total", 0)
    total = kept + dropped
    kept_pct = f"{kept / total * 100:.1f}%" if total else "-"
    reasons = sampler.get("kept_by_reason") or {}
    reason_text = " ".join(
        f"{name}={count}" for name, count in sorted(reasons.items())
    ) or "-"
    return [
        f"events    {events.get('events_total', 0)} logged"
        f"   rotations {events.get('rotations_total', 0)}"
        f"   bad lines {events.get('bad_lines_total', 0)}",
        f"traces    kept {kept}/{total} ({kept_pct})   by reason: "
        f"{reason_text}",
    ]


def _slo_section(slo_report: Optional[Mapping[str, Any]]) -> List[str]:
    if not slo_report:
        return []
    try:
        report = SLOReport.from_dict(slo_report)
    except Exception:
        return ["slo       (unreadable report)"]
    lines = ["slo"]
    for result in report.results:
        objective = result.objective
        flag = {"ok": "OK  ", "violated": "FAIL", "no-data": "----"}[
            result.status
        ]
        if result.status == "no-data":
            detail = "no data"
        else:
            if objective.metric in QUANTILE_METRICS:
                measured = (
                    f"{result.measured * 1e3:.1f}ms"
                    if result.measured is not None else "-"
                )
            else:
                measured = (
                    f"{result.measured * 100:.2f}%"
                    if result.measured is not None else "-"
                )
            detail = (
                f"{measured}  budget {result.budget_remaining:+.2f}  "
                f"burn {result.burn_slow:.1f}x"
            )
            if result.alerts:
                detail += "  ALERT " + ",".join(result.alerts)
        lines.append(
            f"  [{flag}] {objective.describe():<30s} {detail}"
        )
    return lines


def format_top(
    stats: Mapping[str, Any],
    slo_report: Optional[Mapping[str, Any]] = None,
) -> str:
    """One dashboard page from a ``stats`` snapshot (and optionally the
    serialized SLO report from the ``slo`` op)."""
    counters = stats.get("counters", {})
    lines = [
        f"repro top    uptime {_uptime(stats.get('uptime_seconds', 0.0))}"
        f"    requests {counters.get('requests_total', 0)}"
        f"    failed {counters.get('requests_failed', 0)}"
        f"    degraded {counters.get('requests_degraded', 0)}",
        "",
    ]
    lines.extend(_ops_section(stats.get("window", {})))
    lines.append("")
    lines.extend(_cache_section(stats))
    lines.extend(_pool_section(stats))
    lines.extend(_admission_section(stats))
    lines.extend(_telemetry_section(stats))
    slo_lines = _slo_section(slo_report)
    if slo_lines:
        lines.append("")
        lines.extend(slo_lines)
    return "\n".join(lines)


__all__ = ["CLEAR", "format_top", "format_slo_report"]
