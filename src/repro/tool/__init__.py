"""The data layout assistant tool: end-to-end pipeline, measurement,
schemes, test-case grids, reports, CLI."""

from .assistant import AssistantConfig, AssistantResult, run_assistant
from .measurement import Measurement, measure_layouts
from .schemes import (
    REMAPPED,
    TOOL,
    Scheme,
    enumerate_schemes,
    matching_scheme,
    measure_scheme,
)
from .testcases import (
    SummaryRow,
    TestCase,
    TestCaseResult,
    grid_for,
    run_test_case,
    source_for,
    summarize,
)
from .report import (
    format_schemes,
    format_search_spaces,
    format_selection,
    format_summary,
    format_test_case,
)

__all__ = [
    "AssistantConfig", "AssistantResult", "run_assistant",
    "Measurement", "measure_layouts",
    "Scheme", "TOOL", "REMAPPED", "enumerate_schemes", "measure_scheme",
    "matching_scheme",
    "TestCase", "TestCaseResult", "SummaryRow", "grid_for",
    "run_test_case", "source_for", "summarize",
    "format_schemes", "format_search_spaces", "format_selection",
    "format_summary", "format_test_case",
]

from .graphviz import export_dot, layout_graph_to_dot, pcfg_to_dot
from .hpf_writer import write_hpf
from .memory import DEFAULT_NODE_BYTES, MemoryReport, memory_footprint

__all__ += [
    "export_dot", "layout_graph_to_dot", "pcfg_to_dot",
    "write_hpf",
    "DEFAULT_NODE_BYTES", "MemoryReport", "memory_footprint",
]
