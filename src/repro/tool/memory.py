"""Per-processor memory footprint of a layout.

The iPSC/860's nodes had single-digit megabytes of memory; whether a
problem *fits* constrains the test-case grids (the paper's larger sizes
could not run on small partitions).  This model counts each array's local
elements under its selected layout, plus the ghost/buffer overhead of the
communication the compiler model plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..distribution.layouts import DataLayout
from ..frontend.symbols import ArraySymbol, SymbolTable

#: per-node memory of the simulated iPSC/860 (8 MB, minus ~1 MB of NX/OS)
DEFAULT_NODE_BYTES = 7 * 1024 * 1024


@dataclass
class MemoryReport:
    """Per-array and total local footprint of one layout."""

    per_array: Dict[str, int]
    total_bytes: int
    node_bytes: int

    @property
    def fits(self) -> bool:
        return self.total_bytes <= self.node_bytes

    @property
    def utilization(self) -> float:
        return self.total_bytes / self.node_bytes

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        status = "fits" if self.fits else "DOES NOT FIT"
        return (
            f"{self.total_bytes / (1 << 20):.2f} MB of "
            f"{self.node_bytes / (1 << 20):.0f} MB per node ({status})"
        )


def memory_footprint(
    symbols: SymbolTable,
    layouts: Dict[int, DataLayout],
    node_bytes: int = DEFAULT_NODE_BYTES,
    ghost_fraction: float = 0.05,
) -> MemoryReport:
    """Worst-case per-node bytes across all selected layouts.

    Each array is charged its largest local share over the phases that
    lay it out (a dynamically remapped array needs both homes'
    allocations only transiently; we charge the maximum, as the Fortran D
    runtime reused the remap buffer).  ``ghost_fraction`` approximates
    overlap areas and message buffers.
    """
    per_array: Dict[str, int] = {}
    for layout in layouts.values():
        for array in layout.arrays():
            symbol = symbols.get(array)
            if not isinstance(symbol, ArraySymbol):
                continue
            local = layout.local_elements(symbol) * symbol.element_bytes
            per_array[array] = max(per_array.get(array, 0), local)
    # Arrays never laid out (not referenced in any phase) are replicated.
    for symbol in symbols.arrays():
        if symbol.name not in per_array:
            per_array[symbol.name] = symbol.total_bytes
    total = sum(per_array.values())
    total = int(total * (1.0 + ghost_fraction))
    return MemoryReport(
        per_array=per_array, total_bytes=total, node_bytes=node_bytes
    )
