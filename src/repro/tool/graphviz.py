"""Graphviz (DOT) export of the framework's graph structures.

The envisioned assistant is interactive; rendering the phase control flow
graph and the data layout graph is how a user *sees* why a dynamic layout
was (or wasn't) chosen.  These emitters produce plain DOT text — feed to
``dot -Tsvg`` or any graphviz viewer.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.pcfg import ENTRY, EXIT, PCFG
from ..selection.layout_graph import DataLayoutGraph
from .assistant import AssistantResult


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def pcfg_to_dot(pcfg: PCFG, title: str = "PCFG") -> str:
    """The phase control flow graph: nodes labelled with frequencies,
    edges with expected transition counts."""
    lines = [
        f"digraph {_quote(title)} {{",
        "  rankdir=TB;",
        '  node [shape=box, fontname="monospace"];',
        f"  {_quote(str(ENTRY))} [shape=circle];",
        f"  {_quote(str(EXIT))} [shape=doublecircle];",
    ]
    for idx in pcfg.phase_indices:
        phase = pcfg.graph.nodes[idx].get("phase")
        label = f"phase {idx}"
        if phase is not None:
            label += f"\\ndo {phase.loop_var} (line {phase.line})"
        label += f"\\nfreq {pcfg.phase_frequency(idx):g}"
        lines.append(f"  {idx} [label={_quote(label)}];")
    for u, v, data in pcfg.graph.edges(data=True):
        u_txt = str(u) if not isinstance(u, int) else str(u)
        v_txt = str(v) if not isinstance(v, int) else str(v)
        label = f"{data['freq']:g}"
        lines.append(
            f"  {_quote(u_txt)} -> {_quote(v_txt)} "
            f"[label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def layout_graph_to_dot(
    graph: DataLayoutGraph,
    selection: Optional[Dict[int, int]] = None,
    title: str = "DataLayoutGraph",
) -> str:
    """The data layout graph: one node per candidate (selected candidates
    highlighted), remapping edges labelled with their costs."""
    lines = [
        f"digraph {_quote(title)} {{",
        "  rankdir=LR;",
        '  node [shape=record, fontname="monospace"];',
    ]
    for phase_index, costs in sorted(graph.node_costs.items()):
        lines.append(f"  subgraph cluster_{phase_index} {{")
        lines.append(f"    label={_quote(f'phase {phase_index}')};")
        for cand, cost in enumerate(costs):
            node = f"p{phase_index}c{cand}"
            estimate = graph.estimates.per_phase[phase_index][cand]
            dist = estimate.candidate.layout.distribution
            label = f"c{cand} {dist}|{cost / 1000.0:.2f} ms"
            attrs = f"label={_quote(label)}"
            if selection is not None and selection.get(phase_index) == cand:
                attrs += ', style=filled, fillcolor="palegreen"'
            lines.append(f"    {node} [{attrs}];")
        lines.append("  }")
    for edge in graph.edges:
        for (i, j), cost in sorted(edge.costs.items()):
            src = f"p{edge.src_phase}c{i}"
            dst = f"p{edge.dst_phase}c{j}"
            attrs = f"label={_quote(f'{cost / 1000.0:.2f} ms')}"
            if selection is not None and (
                selection.get(edge.src_phase) == i
                and selection.get(edge.dst_phase) == j
            ):
                attrs += ', color="red", penwidth=2'
            lines.append(f"  {src} -> {dst} [{attrs}];")
    lines.append("}")
    return "\n".join(lines)


def export_dot(result: AssistantResult) -> Dict[str, str]:
    """Both graphs of an assistant run, keyed by suggested file name."""
    return {
        "pcfg.dot": pcfg_to_dot(result.pcfg),
        "layout_graph.dot": layout_graph_to_dot(
            result.graph, result.selection.selection
        ),
    }
