"""Subroutine inlining.

The paper's prototype performs only intra-procedural analysis — its
authors ran an *inlined* version of Erlebacher for exactly this reason.
This module is the tool-side answer: parse a multi-unit file and inline
every CALL, producing the single PROGRAM unit the rest of the framework
analyzes.

Supported argument passing (checked, with clear errors otherwise):

* whole arrays passed by name (``call sweep(a, b)`` with dummy arrays) —
  the dummy's references are renamed to the actual array;
* scalar variables passed by name — renamed likewise (Fortran passes by
  reference, so writes to scalar dummies update the actual);
* constant/expression actuals bound to *read-only* scalar dummies — the
  expression is substituted at each use.

Subroutine locals are renamed ``<sub>_<n>_<name>`` per call site, so
repeated calls never collide; their declarations are appended to the main
program's.  Calls inside subroutines are inlined recursively (cycles are
rejected).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from . import ast


class InlineError(Exception):
    """Raised for unsupported call patterns or missing subroutines."""


def _expr_rename(expr: ast.Expr, mapping: Dict[str, ast.Expr]) -> ast.Expr:
    """Substitute names in an expression.

    Array names map to plain ``Var`` targets whose name is taken; scalar
    names may map to arbitrary expressions.
    """
    if isinstance(expr, (ast.IntLit, ast.RealLit, ast.LogicalLit)):
        return expr
    if isinstance(expr, ast.Var):
        return mapping.get(expr.name, expr)
    if isinstance(expr, ast.ArrayRef):
        target = mapping.get(expr.name)
        if target is None:
            name = expr.name
        elif isinstance(target, ast.Var):
            name = target.name
        elif isinstance(target, ast.ArrayRef) and not target.subscripts:
            name = target.name
        else:
            raise InlineError(
                f"array dummy {expr.name!r} bound to a non-name actual"
            )
        return ast.ArrayRef(
            name=name,
            subscripts=tuple(
                _expr_rename(s, mapping) for s in expr.subscripts
            ),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(op=expr.op,
                           operand=_expr_rename(expr.operand, mapping))
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(
            op=expr.op,
            left=_expr_rename(expr.left, mapping),
            right=_expr_rename(expr.right, mapping),
        )
    if isinstance(expr, ast.Call):
        return ast.Call(
            name=expr.name,
            args=tuple(_expr_rename(a, mapping) for a in expr.args),
        )
    raise InlineError(f"cannot rename {type(expr).__name__}")


def _stmt_rename(stmt: ast.Stmt, mapping: Dict[str, ast.Expr]) -> ast.Stmt:
    if isinstance(stmt, ast.Assign):
        target = _expr_rename(stmt.target, mapping)
        if not isinstance(target, (ast.Var, ast.ArrayRef)):
            raise InlineError(
                "assignment to a dummy bound to a non-variable actual"
            )
        return ast.Assign(
            target=target, expr=_expr_rename(stmt.expr, mapping),
            line=stmt.line,
        )
    if isinstance(stmt, ast.Do):
        var_expr = mapping.get(stmt.var)
        if var_expr is not None:
            if not isinstance(var_expr, ast.Var):
                raise InlineError(
                    f"loop variable {stmt.var!r} bound to an expression"
                )
            var = var_expr.name
        else:
            var = stmt.var
        return ast.Do(
            var=var,
            lo=_expr_rename(stmt.lo, mapping),
            hi=_expr_rename(stmt.hi, mapping),
            step=(
                _expr_rename(stmt.step, mapping)
                if stmt.step is not None else None
            ),
            body=tuple(_stmt_rename(s, mapping) for s in stmt.body),
            label=stmt.label,
            line=stmt.line,
        )
    if isinstance(stmt, ast.If):
        return ast.If(
            cond=_expr_rename(stmt.cond, mapping),
            then_body=tuple(
                _stmt_rename(s, mapping) for s in stmt.then_body
            ),
            else_body=tuple(
                _stmt_rename(s, mapping) for s in stmt.else_body
            ),
            line=stmt.line,
        )
    if isinstance(stmt, ast.Continue):
        return stmt
    if isinstance(stmt, ast.CallStmt):
        return ast.CallStmt(
            name=stmt.name,
            args=tuple(_expr_rename(a, mapping) for a in stmt.args),
            line=stmt.line,
        )
    raise InlineError(f"cannot rename {type(stmt).__name__}")


def _written_names(stmts: Sequence[ast.Stmt]) -> Set[str]:
    out: Set[str] = set()
    for stmt in ast.walk_stmts(stmts):
        if isinstance(stmt, ast.Assign):
            out.add(stmt.target.name)
        elif isinstance(stmt, ast.Do):
            out.add(stmt.var)
    return out


class _Inliner:
    def __init__(self, source_file: ast.SourceFile):
        self.subroutines = {s.name: s for s in source_file.subroutines}
        self.program = source_file.program
        self.extra_decls: List[ast.Declaration] = []
        self._counter = 0

    def run(self) -> ast.Program:
        body = self._inline_block(self.program.body, stack=())
        return ast.Program(
            name=self.program.name,
            declarations=tuple(self.program.declarations)
            + tuple(self.extra_decls),
            body=body,
        )

    def _inline_block(
        self, stmts: Sequence[ast.Stmt], stack: Tuple[str, ...]
    ) -> Tuple[ast.Stmt, ...]:
        out: List[ast.Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, ast.CallStmt):
                out.extend(self._expand_call(stmt, stack))
            elif isinstance(stmt, ast.Do):
                out.append(
                    ast.Do(
                        var=stmt.var, lo=stmt.lo, hi=stmt.hi,
                        step=stmt.step,
                        body=self._inline_block(stmt.body, stack),
                        label=stmt.label, line=stmt.line,
                    )
                )
            elif isinstance(stmt, ast.If):
                out.append(
                    ast.If(
                        cond=stmt.cond,
                        then_body=self._inline_block(stmt.then_body, stack),
                        else_body=self._inline_block(stmt.else_body, stack),
                        line=stmt.line,
                    )
                )
            else:
                out.append(stmt)
        return tuple(out)

    def _expand_call(
        self, call: ast.CallStmt, stack: Tuple[str, ...]
    ) -> Tuple[ast.Stmt, ...]:
        if call.name in stack:
            raise InlineError(
                f"recursive call chain {' -> '.join(stack + (call.name,))}"
            )
        sub = self.subroutines.get(call.name)
        if sub is None:
            raise InlineError(f"unknown subroutine {call.name!r}")
        if len(call.args) != len(sub.params):
            raise InlineError(
                f"call to {call.name!r} passes {len(call.args)} args, "
                f"declared with {len(sub.params)}"
            )
        self._counter += 1
        prefix = f"{sub.name}_{self._counter}_"

        mapping: Dict[str, ast.Expr] = {}
        written = _written_names(sub.body)
        param_set = set(sub.params)
        for dummy, actual in zip(sub.params, call.args):
            if isinstance(actual, ast.Var):
                mapping[dummy] = actual
            elif isinstance(actual, ast.ArrayRef) and not actual.subscripts:
                mapping[dummy] = ast.Var(actual.name)
            else:
                if dummy in written:
                    raise InlineError(
                        f"subroutine {sub.name!r} writes dummy "
                        f"{dummy!r}, but the call passes an expression"
                    )
                mapping[dummy] = actual

        # Rename locals (declared names that are not dummies) per site.
        for decl in sub.declarations:
            if isinstance(decl, ast.ParameterDecl):
                renamed = ast.ParameterDecl(
                    bindings=tuple(
                        (prefix + name, expr) for name, expr in decl.bindings
                    ),
                    line=decl.line,
                )
                self.extra_decls.append(renamed)
                for name, _expr in decl.bindings:
                    mapping[name] = ast.Var(prefix + name)
            elif isinstance(decl, (ast.TypeDecl, ast.DimensionDecl)):
                kept = []
                for entity in decl.entities:
                    if entity.name in param_set:
                        continue  # dummies take the actual's declaration
                    mapping.setdefault(
                        entity.name, ast.Var(prefix + entity.name)
                    )
                    kept.append(
                        ast.Entity(
                            name=prefix + entity.name,
                            dims=tuple(
                                ast.DimSpec(
                                    lo=_expr_rename(d.lo, mapping),
                                    hi=_expr_rename(d.hi, mapping),
                                )
                                for d in entity.dims
                            ),
                        )
                    )
                if kept:
                    if isinstance(decl, ast.TypeDecl):
                        self.extra_decls.append(
                            ast.TypeDecl(dtype=decl.dtype,
                                         entities=tuple(kept),
                                         line=decl.line)
                        )
                    else:
                        self.extra_decls.append(
                            ast.DimensionDecl(entities=tuple(kept),
                                              line=decl.line)
                        )
        # Undeclared locals (e.g. loop variables) also get fresh names.
        for name in sorted(written):
            if name not in mapping and name not in param_set:
                mapping[name] = ast.Var(prefix + name)
                self.extra_decls.append(
                    ast.TypeDecl(
                        dtype="integer",
                        entities=(ast.Entity(name=prefix + name),),
                    )
                )

        renamed_body = tuple(
            _stmt_rename(s, mapping) for s in sub.body
        )
        return self._inline_block(renamed_body, stack + (call.name,))


def inline_program(source_file: ast.SourceFile) -> ast.Program:
    """Inline every CALL in ``source_file``, returning one PROGRAM unit."""
    return _Inliner(source_file).run()


def parse_and_inline(source: str) -> ast.Program:
    """Convenience: parse a multi-unit file and inline it."""
    from .parser import parse_source_file

    return inline_program(parse_source_file(source))
