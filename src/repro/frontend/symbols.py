"""Symbol table construction for parsed programs.

Evaluates PARAMETER constants, merges type and DIMENSION declarations, and
classifies every declared name as a scalar or an array with known integer
extents.  Induction variables and any undeclared names default to INTEGER
scalars (Fortran implicit typing is otherwise not modelled; the bundled
sources declare everything).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from . import ast

#: bytes per element for each supported data type
DTYPE_BYTES = {"integer": 4, "real": 4, "double": 8, "logical": 4}


class SymbolError(Exception):
    """Raised for inconsistent or unevaluable declarations."""


@dataclass(frozen=True)
class ArraySymbol:
    """A declared array: name, element type, and per-dimension bounds."""

    name: str
    dtype: str
    bounds: Tuple[Tuple[int, int], ...]  # inclusive (lo, hi) per dimension

    @property
    def rank(self) -> int:
        return len(self.bounds)

    @property
    def extents(self) -> Tuple[int, ...]:
        return tuple(hi - lo + 1 for lo, hi in self.bounds)

    @property
    def element_count(self) -> int:
        count = 1
        for extent in self.extents:
            count *= extent
        return count

    @property
    def element_bytes(self) -> int:
        return DTYPE_BYTES[self.dtype]

    @property
    def total_bytes(self) -> int:
        return self.element_count * self.element_bytes


@dataclass(frozen=True)
class ScalarSymbol:
    """A declared (or implicitly typed) scalar."""

    name: str
    dtype: str


Symbol = ArraySymbol | ScalarSymbol


class SymbolTable:
    """Name → symbol mapping plus the PARAMETER constant environment."""

    def __init__(self) -> None:
        self._symbols: Dict[str, Symbol] = {}
        self.constants: Dict[str, int | float] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __getitem__(self, name: str) -> Symbol:
        return self._symbols[name]

    def get(self, name: str) -> Optional[Symbol]:
        return self._symbols.get(name)

    def add(self, symbol: Symbol) -> None:
        self._symbols[symbol.name] = symbol

    def arrays(self) -> Tuple[ArraySymbol, ...]:
        return tuple(
            s for s in self._symbols.values() if isinstance(s, ArraySymbol)
        )

    def scalars(self) -> Tuple[ScalarSymbol, ...]:
        return tuple(
            s for s in self._symbols.values() if isinstance(s, ScalarSymbol)
        )

    def array(self, name: str) -> ArraySymbol:
        sym = self._symbols.get(name)
        if not isinstance(sym, ArraySymbol):
            raise SymbolError(f"{name!r} is not a declared array")
        return sym


def eval_const_expr(expr: ast.Expr, constants: Dict[str, int | float]):
    """Evaluate a compile-time-constant expression (literals, PARAMETER
    names, arithmetic)."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.RealLit):
        return expr.value
    if isinstance(expr, ast.Var):
        if expr.name not in constants:
            raise SymbolError(
                f"{expr.name!r} used in a constant expression but is not a "
                "PARAMETER"
            )
        return constants[expr.name]
    if isinstance(expr, ast.UnaryOp):
        value = eval_const_expr(expr.operand, constants)
        if expr.op == "-":
            return -value
        if expr.op == "+":
            return value
        raise SymbolError(f"operator {expr.op!r} not allowed in constants")
    if isinstance(expr, ast.BinOp):
        left = eval_const_expr(expr.left, constants)
        right = eval_const_expr(expr.right, constants)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            # Fortran integer division truncates.
            if isinstance(left, int) and isinstance(right, int):
                return int(left / right)
            return left / right
        if expr.op == "**":
            return left**right
        raise SymbolError(f"operator {expr.op!r} not allowed in constants")
    raise SymbolError(f"cannot evaluate {type(expr).__name__} as a constant")


def build_symbol_table(
    program: ast.Program,
    extra_constants: Optional[Dict[str, int | float]] = None,
) -> SymbolTable:
    """Build the symbol table for ``program``.

    PARAMETER declarations are evaluated in order; later type/DIMENSION
    declarations may reference earlier constants in their bounds.
    ``extra_constants`` supplies additional compile-time values (the
    interpreter passes a subroutine's bound scalar arguments so dummy
    array bounds like ``u(m, m)`` evaluate).
    """
    table = SymbolTable()
    if extra_constants:
        table.constants.update(extra_constants)
    # dtype by name from type declarations (dimension info may arrive
    # separately via DIMENSION).
    dtypes: Dict[str, str] = {}
    dims: Dict[str, Tuple[Tuple[int, int], ...]] = {}

    def eval_dims(entity: ast.Entity) -> Tuple[Tuple[int, int], ...]:
        bounds = []
        for spec in entity.dims:
            lo = eval_const_expr(spec.lo, table.constants)
            hi = eval_const_expr(spec.hi, table.constants)
            if not isinstance(lo, int) or not isinstance(hi, int):
                raise SymbolError(
                    f"array {entity.name!r} has non-integer bounds"
                )
            if hi < lo:
                raise SymbolError(
                    f"array {entity.name!r} has empty dimension {lo}:{hi}"
                )
            bounds.append((lo, hi))
        return tuple(bounds)

    for decl in program.declarations:
        if isinstance(decl, ast.ParameterDecl):
            for name, expr in decl.bindings:
                table.constants[name] = eval_const_expr(expr, table.constants)
        elif isinstance(decl, ast.TypeDecl):
            for entity in decl.entities:
                dtypes[entity.name] = decl.dtype
                if entity.dims:
                    dims[entity.name] = eval_dims(entity)
        elif isinstance(decl, ast.DimensionDecl):
            for entity in decl.entities:
                if not entity.dims:
                    raise SymbolError(
                        f"DIMENSION entry {entity.name!r} has no bounds"
                    )
                dims[entity.name] = eval_dims(entity)

    names = set(dtypes) | set(dims)
    extra = set(extra_constants or ())
    for name in sorted(names):
        dtype = dtypes.get(name, "integer")
        if name in table.constants and name not in extra:
            continue  # PARAMETER names are constants, not variables
        if name in dims:
            table.add(ArraySymbol(name=name, dtype=dtype, bounds=dims[name]))
        else:
            table.add(ScalarSymbol(name=name, dtype=dtype))

    # Loop induction variables and other undeclared names: integer scalars.
    for stmt in ast.walk_stmts(program.body):
        if isinstance(stmt, ast.Do) and stmt.var not in table:
            table.add(ScalarSymbol(name=stmt.var, dtype="integer"))
    return table
