"""Abstract syntax tree for the Fortran-77 subset accepted by the tool.

The prototype in the paper restricts non-linear control flow to ``DO`` loops
and ``IF`` statements (Section 3); the node set below covers exactly that
subset plus the declarations needed to size arrays:

* expressions: numeric literals, scalar variables, array references with
  affine subscripts, unary/binary operators, and intrinsic calls;
* statements: assignments, counted ``DO`` loops, block ``IF``/``ELSE``, and
  ``CONTINUE``;
* declarations: ``INTEGER`` / ``REAL`` / ``DOUBLE PRECISION`` entity lists
  (optionally with dimension specs), ``DIMENSION``, and ``PARAMETER``.

All nodes are immutable dataclasses so they can be shared freely between
analyses; positions (``line``) point back into the original source for
diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for expression nodes."""


@dataclass(frozen=True)
class IntLit(Expr):
    """Integer literal."""

    value: int


@dataclass(frozen=True)
class RealLit(Expr):
    """Real or double-precision literal (``1.5``, ``1D0``, ``2.5E-3``)."""

    value: float
    is_double: bool = False


@dataclass(frozen=True)
class LogicalLit(Expr):
    """``.TRUE.`` or ``.FALSE.``."""

    value: bool


@dataclass(frozen=True)
class Var(Expr):
    """Reference to a scalar variable (or loop induction variable)."""

    name: str


@dataclass(frozen=True)
class ArrayRef(Expr):
    """Reference to ``name(sub_1, ..., sub_d)``."""

    name: str
    subscripts: Tuple[Expr, ...]

    @property
    def rank(self) -> int:
        return len(self.subscripts)


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary ``-``, ``+`` or ``.NOT.``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic (``+ - * / **``), relational (``.LT.`` etc. stored
    as ``< <= > >= == /=``) or logical (``.AND.`` / ``.OR.``) operator."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Call(Expr):
    """Intrinsic function call such as ``SQRT(x)`` or ``MAX(a, b)``."""

    name: str
    args: Tuple[Expr, ...]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    """Base class for statement nodes."""

    line: int = field(default=0, kw_only=True)


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = expr`` where target is a scalar or an array element."""

    target: Union[Var, ArrayRef]
    expr: Expr


@dataclass(frozen=True)
class Do(Stmt):
    """Counted DO loop ``DO var = lo, hi [, step]``.

    ``label`` records the statement label for the classic
    ``DO 10 ... 10 CONTINUE`` form; loops written with ``ENDDO`` have
    ``label is None``.
    """

    var: str
    lo: Expr
    hi: Expr
    step: Optional[Expr]
    body: Tuple[Stmt, ...]
    label: Optional[int] = None


@dataclass(frozen=True)
class If(Stmt):
    """Block IF with optional ELSE part (ELSEIF chains are desugared into
    nested ``If`` nodes in the else branch)."""

    cond: Expr
    then_body: Tuple[Stmt, ...]
    else_body: Tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class Continue(Stmt):
    """``CONTINUE`` — a no-op, kept so labelled loop ends survive parsing."""


@dataclass(frozen=True)
class CallStmt(Stmt):
    """``CALL name(arg, ...)`` — removed by the inliner before analysis."""

    name: str
    args: Tuple[Expr, ...] = ()


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DimSpec:
    """One declared dimension ``lo:hi`` (Fortran default ``lo = 1``).

    Bounds are expressions so they may reference PARAMETER constants; the
    symbol-table pass evaluates them to integers.
    """

    lo: Expr
    hi: Expr


@dataclass(frozen=True)
class Entity:
    """A declared name, optionally with a dimension spec list."""

    name: str
    dims: Tuple[DimSpec, ...] = ()


@dataclass(frozen=True)
class TypeDecl:
    """``INTEGER``/``REAL``/``DOUBLE PRECISION`` declaration."""

    dtype: str  # "integer" | "real" | "double"
    entities: Tuple[Entity, ...]
    line: int = 0


@dataclass(frozen=True)
class DimensionDecl:
    """Standalone ``DIMENSION a(n, m), ...`` declaration."""

    entities: Tuple[Entity, ...]
    line: int = 0


@dataclass(frozen=True)
class ParameterDecl:
    """``PARAMETER (name = const-expr, ...)``."""

    bindings: Tuple[Tuple[str, Expr], ...]
    line: int = 0


Declaration = Union[TypeDecl, DimensionDecl, ParameterDecl]


@dataclass(frozen=True)
class Program:
    """A parsed PROGRAM unit."""

    name: str
    declarations: Tuple[Declaration, ...]
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class Subroutine:
    """A parsed SUBROUTINE unit (consumed by the inliner)."""

    name: str
    params: Tuple[str, ...]
    declarations: Tuple[Declaration, ...]
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class SourceFile:
    """A parsed file: one PROGRAM plus any number of SUBROUTINEs."""

    program: Program
    subroutines: Tuple[Subroutine, ...]


# ---------------------------------------------------------------------------
# Generic traversal helpers
# ---------------------------------------------------------------------------


def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, ArrayRef):
        for sub in expr.subscripts:
            yield from walk_expr(sub)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expr(arg)


def walk_stmts(stmts):
    """Yield every statement in ``stmts``, pre-order, descending into
    loop and branch bodies."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, Do):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)


def expr_array_refs(expr: Expr):
    """Yield every :class:`ArrayRef` inside ``expr`` (including inside the
    subscripts of other references)."""
    for node in walk_expr(expr):
        if isinstance(node, ArrayRef):
            yield node


def stmt_exprs(stmt: Stmt):
    """Yield the top-level expressions of a single statement (not its
    nested statement bodies)."""
    if isinstance(stmt, Assign):
        yield stmt.target
        yield stmt.expr
    elif isinstance(stmt, Do):
        yield stmt.lo
        yield stmt.hi
        if stmt.step is not None:
            yield stmt.step
    elif isinstance(stmt, If):
        yield stmt.cond
