"""Fortran-77 subset front end: lexer, parser, AST, and symbol tables."""

from . import ast
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse_source
from .symbols import (
    DTYPE_BYTES,
    ArraySymbol,
    ScalarSymbol,
    SymbolError,
    SymbolTable,
    build_symbol_table,
    eval_const_expr,
)

__all__ = [
    "ast",
    "tokenize",
    "Token",
    "LexError",
    "parse_source",
    "ParseError",
    "ArraySymbol",
    "ScalarSymbol",
    "SymbolTable",
    "SymbolError",
    "build_symbol_table",
    "eval_const_expr",
    "DTYPE_BYTES",
]

from .inline import InlineError, inline_program, parse_and_inline
from .parser import parse_source_file
from .printer import format_expr, format_program, format_stmt

__all__ += [
    "InlineError", "inline_program", "parse_and_inline",
    "parse_source_file",
    "format_expr", "format_program", "format_stmt",
]

from .interp import Environment, InterpError, Interpreter, run_program, \
    run_source

__all__ += [
    "Environment", "InterpError", "Interpreter", "run_program",
    "run_source",
]
