"""Reference interpreter for the Fortran subset.

Executes programs sequentially with NumPy-backed arrays — the semantic
ground truth behind the source-level machinery:

* the bundled benchmark re-creations compute finite, sensible values;
* the inliner is *semantics-preserving*: running a multi-unit program
  (CALLs executed directly, Fortran reference semantics) gives exactly
  the same final state as running its inlined form;
* the unparser round-trips: a printed program executes identically.

Arrays are Fortran-style: column-major conceptually, declared bounds
honored (1-based by default), out-of-bounds subscripts raise.  Intrinsic
functions map to their Python equivalents.  The interpreter is for
validation at small problem sizes, not for performance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from . import ast
from .symbols import ArraySymbol, ScalarSymbol, SymbolTable, build_symbol_table


class InterpError(Exception):
    """Raised on runtime errors (bad subscripts, unknown names...)."""


_INTRINSICS = {
    "sqrt": math.sqrt,
    "abs": abs,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "min": min,
    "max": max,
    "mod": lambda a, b: math.fmod(a, b) if isinstance(a, float) else a % b,
    "sign": lambda a, b: math.copysign(abs(a), b),
    "int": int,
    "float": float,
    "real": float,
    "dble": float,
}

_DTYPE_NP = {"integer": np.int64, "real": np.float32, "double": np.float64}


@dataclass
class FortranArray:
    """A declared array with its bounds and storage."""

    symbol: ArraySymbol
    data: np.ndarray

    @classmethod
    def allocate(cls, symbol: ArraySymbol) -> "FortranArray":
        return cls(
            symbol=symbol,
            data=np.zeros(symbol.extents,
                          dtype=_DTYPE_NP[symbol.dtype], order="F"),
        )

    def _index(self, subscripts: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(subscripts) != self.symbol.rank:
            raise InterpError(
                f"{self.symbol.name}: {len(subscripts)} subscripts for a "
                f"rank-{self.symbol.rank} array"
            )
        index = []
        for value, (lo, hi) in zip(subscripts, self.symbol.bounds):
            if not lo <= value <= hi:
                raise InterpError(
                    f"{self.symbol.name}: subscript {value} outside "
                    f"{lo}:{hi}"
                )
            index.append(value - lo)
        return tuple(index)

    def get(self, subscripts: Tuple[int, ...]):
        value = self.data[self._index(subscripts)]
        return value.item()

    def set(self, subscripts: Tuple[int, ...], value) -> None:
        self.data[self._index(subscripts)] = value


@dataclass
class Environment:
    """Execution state: arrays (possibly aliased through CALLs), scalars,
    and constant bindings."""

    arrays: Dict[str, FortranArray] = field(default_factory=dict)
    scalars: Dict[str, float] = field(default_factory=dict)
    constants: Dict[str, float] = field(default_factory=dict)

    def lookup(self, name: str):
        if name in self.scalars:
            return self.scalars[name]
        if name in self.constants:
            return self.constants[name]
        raise InterpError(f"undefined scalar {name!r}")


class Interpreter:
    """Executes one program unit (and any subroutines, by reference)."""

    def __init__(self, source_file: ast.SourceFile,
                 max_statements: int = 50_000_000):
        self.source_file = source_file
        self.subroutines = {s.name: s for s in source_file.subroutines}
        self.max_statements = max_statements
        self.statements_executed = 0

    # -- setup --------------------------------------------------------------

    def _build_env(
        self, unit, extra_constants: Optional[Dict[str, float]] = None
    ) -> Tuple[Environment, SymbolTable]:
        program = ast.Program(
            name=getattr(unit, "name", "unit"),
            declarations=unit.declarations,
            body=unit.body,
        )
        table = build_symbol_table(program, extra_constants=extra_constants)
        env = Environment()
        env.constants.update(table.constants)
        for symbol in table.arrays():
            env.arrays[symbol.name] = FortranArray.allocate(symbol)
        for symbol in table.scalars():
            env.scalars[symbol.name] = (
                0 if symbol.dtype == "integer" else 0.0
            )
        return env, table

    def run(self) -> Environment:
        """Execute the PROGRAM unit; returns its final environment."""
        env, _table = self._build_env(self.source_file.program)
        self._exec_block(self.source_file.program.body, env)
        return env

    # -- statements -----------------------------------------------------------

    def _tick(self) -> None:
        self.statements_executed += 1
        if self.statements_executed > self.max_statements:
            raise InterpError("statement budget exhausted (runaway loop?)")

    def _exec_block(self, stmts, env: Environment) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.Stmt, env: Environment) -> None:
        self._tick()
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.expr, env)
            target = stmt.target
            if isinstance(target, ast.Var):
                if target.name in env.arrays:
                    raise InterpError(
                        f"whole-array assignment to {target.name!r}"
                    )
                if isinstance(env.scalars.get(target.name), int) and \
                        not isinstance(value, bool):
                    env.scalars[target.name] = (
                        int(value) if isinstance(value, float) else value
                    )
                else:
                    env.scalars[target.name] = value
            else:
                array = env.arrays.get(target.name)
                if array is None:
                    raise InterpError(f"unknown array {target.name!r}")
                subs = tuple(
                    int(self._eval(s, env)) for s in target.subscripts
                )
                array.set(subs, value)
        elif isinstance(stmt, ast.Do):
            lo = int(self._eval(stmt.lo, env))
            hi = int(self._eval(stmt.hi, env))
            step = int(self._eval(stmt.step, env)) if stmt.step else 1
            if step == 0:
                raise InterpError("zero DO step")
            var = stmt.var
            value = lo
            while (step > 0 and value <= hi) or (step < 0 and value >= hi):
                env.scalars[var] = value
                self._exec_block(stmt.body, env)
                value += step
            env.scalars[var] = value
        elif isinstance(stmt, ast.If):
            if self._truthy(self._eval(stmt.cond, env)):
                self._exec_block(stmt.then_body, env)
            else:
                self._exec_block(stmt.else_body, env)
        elif isinstance(stmt, ast.Continue):
            return
        elif isinstance(stmt, ast.CallStmt):
            self._exec_call(stmt, env)
        else:
            raise InterpError(f"cannot execute {type(stmt).__name__}")

    def _exec_call(self, call: ast.CallStmt, env: Environment) -> None:
        sub = self.subroutines.get(call.name)
        if sub is None:
            raise InterpError(f"unknown subroutine {call.name!r}")
        if len(call.args) != len(sub.params):
            raise InterpError(
                f"call to {call.name!r}: arity mismatch"
            )
        # Scalar arguments are evaluated first so dummy array bounds
        # (``u(m, m)``) are known when the callee's arrays are declared.
        scalar_bindings: Dict[str, float] = {}
        for dummy, actual in zip(sub.params, call.args):
            if isinstance(actual, ast.Var) and actual.name in env.arrays:
                continue
            value = (
                env.lookup(actual.name)
                if isinstance(actual, ast.Var)
                else self._eval(actual, env)
            )
            if isinstance(value, int):
                scalar_bindings[dummy] = value
        callee_env, _table = self._build_env(
            sub, extra_constants=scalar_bindings or None
        )
        # Bind dummies: arrays alias the caller's storage; scalars are
        # passed by reference when the actual is a variable.
        scalar_refs: Dict[str, str] = {}
        for dummy, actual in zip(sub.params, call.args):
            if isinstance(actual, ast.Var) and actual.name in env.arrays:
                caller = env.arrays[actual.name]
                dummy_symbol = (
                    callee_env.arrays[dummy].symbol
                    if dummy in callee_env.arrays else None
                )
                if dummy_symbol is None:
                    raise InterpError(
                        f"{call.name!r}: array passed to scalar dummy "
                        f"{dummy!r}"
                    )
                # Alias the storage; keep the callee's declared bounds
                # view (Fortran sequence association for equal shapes).
                callee_env.arrays[dummy] = FortranArray(
                    symbol=dummy_symbol,
                    data=caller.data,
                )
            elif isinstance(actual, ast.Var):
                callee_env.scalars[dummy] = env.lookup(actual.name)
                scalar_refs[dummy] = actual.name
            else:
                callee_env.scalars[dummy] = self._eval(actual, env)
        self._exec_block(sub.body, callee_env)
        # Copy back by-reference scalars.
        for dummy, caller_name in scalar_refs.items():
            if caller_name in env.scalars:
                env.scalars[caller_name] = callee_env.scalars[dummy]

    # -- expressions ------------------------------------------------------------

    def _truthy(self, value) -> bool:
        return bool(value)

    def _eval(self, expr: ast.Expr, env: Environment):
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.RealLit):
            return expr.value
        if isinstance(expr, ast.LogicalLit):
            return expr.value
        if isinstance(expr, ast.Var):
            return env.lookup(expr.name)
        if isinstance(expr, ast.ArrayRef):
            array = env.arrays.get(expr.name)
            if array is None:
                raise InterpError(f"unknown array {expr.name!r}")
            subs = tuple(
                int(self._eval(s, env)) for s in expr.subscripts
            )
            return array.get(subs)
        if isinstance(expr, ast.UnaryOp):
            value = self._eval(expr.operand, env)
            if expr.op == "-":
                return -value
            if expr.op == "+":
                return value
            if expr.op == ".not.":
                return not self._truthy(value)
            raise InterpError(f"unknown unary {expr.op!r}")
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left, env)
            if expr.op == ".and.":
                return self._truthy(left) and self._truthy(
                    self._eval(expr.right, env)
                )
            if expr.op == ".or.":
                return self._truthy(left) or self._truthy(
                    self._eval(expr.right, env)
                )
            right = self._eval(expr.right, env)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                if isinstance(left, int) and isinstance(right, int):
                    return int(left / right)  # Fortran truncation
                return left / right
            if expr.op == "**":
                return left ** right
            if expr.op == "<":
                return left < right
            if expr.op == "<=":
                return left <= right
            if expr.op == ">":
                return left > right
            if expr.op == ">=":
                return left >= right
            if expr.op == "==":
                return left == right
            if expr.op == "/=":
                return left != right
            raise InterpError(f"unknown operator {expr.op!r}")
        if isinstance(expr, ast.Call):
            fn = _INTRINSICS.get(expr.name)
            if fn is None:
                raise InterpError(f"unknown intrinsic {expr.name!r}")
            args = [self._eval(a, env) for a in expr.args]
            return fn(*args)
        raise InterpError(f"cannot evaluate {type(expr).__name__}")


def run_source(source: str, max_statements: int = 50_000_000
               ) -> Environment:
    """Parse and execute Fortran-subset source (multi-unit allowed),
    returning the final environment."""
    from .parser import parse_source_file

    return Interpreter(
        parse_source_file(source), max_statements=max_statements
    ).run()


def run_program(program: ast.Program, max_statements: int = 50_000_000
                ) -> Environment:
    """Execute an already-parsed single program unit."""
    return Interpreter(
        ast.SourceFile(program=program, subroutines=()),
        max_statements=max_statements,
    ).run()
