"""Tokenizer for the Fortran-77 subset.

The lexer accepts a pragmatic mix of fixed- and free-form conventions so the
bundled benchmark sources stay readable:

* comments: full-line ``C``/``c``/``*`` in column 1 or ``!`` anywhere;
* statement labels: a leading integer on a line (used by ``DO 10 ... 10
  CONTINUE`` loops);
* continuations: a trailing ``&`` joins the next line;
* case-insensitive keywords and identifiers (normalized to lower case);
* Fortran operators ``.LT. .LE. .GT. .GE. .EQ. .NE. .AND. .OR. .NOT.
  .TRUE. .FALSE.`` as single tokens.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional


class LexError(Exception):
    """Raised on input the lexer cannot tokenize."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


# Token kinds
NAME = "NAME"
INT = "INT"
REAL = "REAL"
OP = "OP"
NEWLINE = "NEWLINE"
LABEL = "LABEL"
EOF = "EOF"

KEYWORDS = frozenset(
    {
        "program",
        "end",
        "enddo",
        "endif",
        "do",
        "if",
        "then",
        "else",
        "elseif",
        "integer",
        "real",
        "double",
        "precision",
        "parameter",
        "dimension",
        "continue",
        "implicit",
        "none",
    }
)

# Dotted operators mapped to canonical spellings.
_DOT_OPS = {
    ".lt.": "<",
    ".le.": "<=",
    ".gt.": ">",
    ".ge.": ">=",
    ".eq.": "==",
    ".ne.": "/=",
    ".and.": ".and.",
    ".or.": ".or.",
    ".not.": ".not.",
    ".true.": ".true.",
    ".false.": ".false.",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<dotop>\.(?:lt|le|gt|ge|eq|ne|and|or|not|true|false)\.)
  | (?P<real>(?:\d+\.\d*|\.\d+|\d+)(?:[edED][+-]?\d+)|\d+\.\d*|\.\d+)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z][A-Za-z0-9_]*)
  | (?P<op>\*\*|<=|>=|==|/=|[-+*/(),=<>:])
  | (?P<ws>[ \t]+)
    """,
    re.VERBOSE | re.IGNORECASE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, line={self.line})"


def _logical_lines(source: str) -> Iterator[tuple[int, str]]:
    """Yield ``(first_line_number, text)`` logical lines with comments
    stripped and ``&`` continuations joined."""
    pending: Optional[str] = None
    pending_line = 0
    for lineno, raw in enumerate(source.splitlines(), start=1):
        # Full-line comments (classic column-1 markers).
        if raw[:1] in ("C", "c", "*"):
            continue
        # Inline comments.
        text = raw.split("!", 1)[0].rstrip()
        if not text.strip():
            continue
        if pending is not None:
            text = pending + " " + text.strip()
            lineno_out = pending_line
            pending = None
        else:
            lineno_out = lineno
        if text.rstrip().endswith("&"):
            pending = text.rstrip()[:-1]
            pending_line = lineno_out
            continue
        yield lineno_out, text


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``, returning a flat token list ending in EOF.

    Each logical line produces its tokens followed by one NEWLINE token.
    A leading integer on a line is emitted as a LABEL token.
    """
    tokens: List[Token] = []
    for lineno, text in _logical_lines(source):
        pos = 0
        first_on_line = True
        stripped = text.lstrip()
        # Statement label: integer at start of line followed by a
        # statement (which always begins with a letter).
        label_match = re.match(r"(\d+)\s+[A-Za-z]", stripped)
        if label_match:
            tokens.append(Token(LABEL, label_match.group(1), lineno))
            pos = text.index(label_match.group(1)) + len(label_match.group(1))
            first_on_line = False
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise LexError(f"unexpected character {text[pos]!r}", lineno)
            pos = match.end()
            if match.lastgroup == "ws":
                continue
            value = match.group()
            if match.lastgroup == "dotop":
                tokens.append(Token(OP, _DOT_OPS[value.lower()], lineno))
            elif match.lastgroup == "real":
                tokens.append(Token(REAL, value, lineno))
            elif match.lastgroup == "int":
                tokens.append(Token(INT, value, lineno))
            elif match.lastgroup == "name":
                tokens.append(Token(NAME, value.lower(), lineno))
            elif match.lastgroup == "op":
                tokens.append(Token(OP, value, lineno))
            first_on_line = False
        del first_on_line
        tokens.append(Token(NEWLINE, "\n", lineno))
    last_line = tokens[-1].line if tokens else 1
    tokens.append(Token(EOF, "", last_line))
    return tokens
