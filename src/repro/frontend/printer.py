"""Fortran unparser: render AST nodes back to compilable subset source.

Used by the HPF writer (which re-emits the user's program with layout
directives inserted) and by the parse/unparse round-trip property tests.
Output is free-form-ish (ENDDO loops, ``&`` continuations avoided by
keeping expressions on one line) but parses back through
:func:`repro.frontend.parser.parse_source` to an equal AST.
"""

from __future__ import annotations

from typing import List

from . import ast

_INDENT = "  "
_BASE = "      "

#: operator precedence for minimal parenthesization (higher binds tighter)
_PRECEDENCE = {
    ".or.": 1,
    ".and.": 2,
    "<": 4, "<=": 4, ">": 4, ">=": 4, "==": 4, "/=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6,
    "**": 8,
}

_REL_TO_DOTTED = {
    "<": ".lt.", "<=": ".le.", ">": ".gt.", ">=": ".ge.",
    "==": ".eq.", "/=": ".ne.",
}


def format_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.RealLit):
        if expr.is_double:
            text = repr(expr.value)
            if "e" in text:
                return text.replace("e", "d")
            return f"{text}d0"
        text = repr(expr.value)
        return text
    if isinstance(expr, ast.LogicalLit):
        return ".true." if expr.value else ".false."
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.ArrayRef):
        subs = ", ".join(format_expr(s) for s in expr.subscripts)
        return f"{expr.name}({subs})"
    if isinstance(expr, ast.Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.UnaryOp):
        if expr.op == ".not.":
            inner = format_expr(expr.operand, 3)
            return f".not. {inner}"
        inner = format_expr(expr.operand, 7)
        text = f"{expr.op}{inner}"
        if parent_prec >= 5:
            return f"({text})"
        return text
    if isinstance(expr, ast.BinOp):
        prec = _PRECEDENCE[expr.op]
        # left-assoc operators: right child needs a bump; ** is
        # right-assoc: left child needs it.
        left_prec = prec + (1 if expr.op == "**" else 0)
        right_prec = prec + (0 if expr.op == "**" else 1)
        op_text = _REL_TO_DOTTED.get(expr.op, expr.op)
        spaced = op_text if op_text == "**" else f" {op_text} "
        if op_text == "**":
            spaced = " ** "
        text = (
            format_expr(expr.left, left_prec)
            + spaced
            + format_expr(expr.right, right_prec)
        )
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"cannot print {type(expr).__name__}")


def format_stmt(stmt: ast.Stmt, depth: int = 0) -> List[str]:
    """Render one statement as indented source lines."""
    pad = _BASE + _INDENT * depth
    if isinstance(stmt, ast.Assign):
        return [f"{pad}{format_expr(stmt.target)} = "
                f"{format_expr(stmt.expr)}"]
    if isinstance(stmt, ast.Continue):
        return [f"{pad}continue"]
    if isinstance(stmt, ast.CallStmt):
        if stmt.args:
            args = ", ".join(format_expr(a) for a in stmt.args)
            return [f"{pad}call {stmt.name}({args})"]
        return [f"{pad}call {stmt.name}"]
    if isinstance(stmt, ast.Do):
        header = (f"{pad}do {stmt.var} = {format_expr(stmt.lo)}, "
                  f"{format_expr(stmt.hi)}")
        if stmt.step is not None:
            header += f", {format_expr(stmt.step)}"
        lines = [header]
        body = stmt.body
        # labelled loops are normalized to ENDDO form; drop a trailing
        # CONTINUE that only carried the label.
        if stmt.label is not None and body and isinstance(
            body[-1], ast.Continue
        ):
            body = body[:-1]
        for inner in body:
            lines.extend(format_stmt(inner, depth + 1))
        lines.append(f"{pad}enddo")
        return lines
    if isinstance(stmt, ast.If):
        if not stmt.else_body and len(stmt.then_body) == 1 and isinstance(
            stmt.then_body[0], ast.Assign
        ):
            inner = format_stmt(stmt.then_body[0], 0)[0].strip()
            return [f"{pad}if ({format_expr(stmt.cond)}) {inner}"]
        lines = [f"{pad}if ({format_expr(stmt.cond)}) then"]
        for inner in stmt.then_body:
            lines.extend(format_stmt(inner, depth + 1))
        if stmt.else_body:
            lines.append(f"{pad}else")
            for inner in stmt.else_body:
                lines.extend(format_stmt(inner, depth + 1))
        lines.append(f"{pad}endif")
        return lines
    raise TypeError(f"cannot print {type(stmt).__name__}")


def format_declaration(decl: ast.Declaration) -> List[str]:
    if isinstance(decl, ast.ParameterDecl):
        inner = ", ".join(
            f"{name} = {format_expr(expr)}" for name, expr in decl.bindings
        )
        return [f"{_BASE}parameter ({inner})"]
    if isinstance(decl, (ast.TypeDecl, ast.DimensionDecl)):
        if isinstance(decl, ast.TypeDecl):
            head = {"double": "double precision"}.get(decl.dtype, decl.dtype)
        else:
            head = "dimension"
        entities = []
        for entity in decl.entities:
            if entity.dims:
                dims = ", ".join(
                    format_expr(d.hi)
                    if isinstance(d.lo, ast.IntLit) and d.lo.value == 1
                    else f"{format_expr(d.lo)}:{format_expr(d.hi)}"
                    for d in entity.dims
                )
                entities.append(f"{entity.name}({dims})")
            else:
                entities.append(entity.name)
        return [f"{_BASE}{head} " + ", ".join(entities)]
    raise TypeError(f"cannot print {type(decl).__name__}")


def format_program(program: ast.Program) -> str:
    """Render a whole PROGRAM unit."""
    lines = [f"program {program.name}", f"{_BASE}implicit none"]
    for decl in program.declarations:
        lines.extend(format_declaration(decl))
    for stmt in program.body:
        lines.extend(format_stmt(stmt, 0))
    lines.append(f"{_BASE}end")
    return "\n".join(lines) + "\n"
