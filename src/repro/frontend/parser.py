"""Recursive-descent parser for the Fortran-77 subset.

Grammar (statements end at NEWLINE):

    program     := PROGRAM name NL {declaration NL} {statement NL} END
    declaration := type-spec entity {"," entity}
                 | DIMENSION entity {"," entity}
                 | PARAMETER "(" name "=" expr {"," name "=" expr} ")"
                 | IMPLICIT NONE
    type-spec   := INTEGER | REAL | DOUBLE PRECISION
    entity      := name ["(" dim {"," dim} ")"]
    dim         := expr [":" expr]
    statement   := assign | do | if | CONTINUE
    do          := DO [label] name "=" expr "," expr ["," expr] NL
                       {statement NL}
                   (ENDDO | label CONTINUE)
    if          := IF "(" expr ")" THEN NL {statement NL}
                   {ELSEIF "(" expr ")" THEN NL {statement NL}}
                   [ELSE NL {statement NL}] ENDIF
                 | IF "(" expr ")" assign          (logical IF)
    assign      := (name | array-ref) "=" expr

Expression precedence (loosest to tightest):
``.or.`` < ``.and.`` < ``.not.`` < relational < additive < multiplicative
< unary sign < ``**`` (right-associative).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .lexer import EOF, INT, LABEL, NAME, NEWLINE, OP, REAL, Token, tokenize


class ParseError(Exception):
    """Raised on syntactically invalid input."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"line {token.line}: {message} (at {token.value!r})")
        self.token = token


_RELATIONAL = {"<", "<=", ">", ">=", "==", "/="}
_DECL_HEADS = {"integer", "real", "double", "dimension", "parameter", "implicit"}


class Parser:
    """Single-pass recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind != EOF:
            self._pos += 1
        return tok

    def _check(self, kind: str, value: Optional[str] = None) -> bool:
        tok = self._cur
        return tok.kind == kind and (value is None or tok.value == value)

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        if not self._check(kind, value):
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}", self._cur)
        return self._advance()

    def _skip_newlines(self) -> None:
        while self._accept(NEWLINE):
            pass

    # -- program ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = self._parse_program_unit()
        self._skip_newlines()
        self._expect(EOF)
        return program

    def parse_file(self) -> ast.SourceFile:
        """Parse one PROGRAM unit plus any SUBROUTINE units (any order)."""
        program: Optional[ast.Program] = None
        subroutines: List[ast.Subroutine] = []
        self._skip_newlines()
        while self._cur.kind != EOF:
            if self._check(NAME, "program"):
                if program is not None:
                    raise ParseError("duplicate PROGRAM unit", self._cur)
                program = self._parse_program_unit()
            elif self._check(NAME, "subroutine"):
                subroutines.append(self._parse_subroutine_unit())
            else:
                raise ParseError(
                    "expected PROGRAM or SUBROUTINE", self._cur
                )
            self._skip_newlines()
        if program is None:
            raise ParseError("no PROGRAM unit in file", self._cur)
        return ast.SourceFile(
            program=program, subroutines=tuple(subroutines)
        )

    def _parse_program_unit(self) -> ast.Program:
        self._skip_newlines()
        self._expect(NAME, "program")
        name = self._expect(NAME).value
        self._expect(NEWLINE)
        declarations = self._parse_declaration_block()
        body = self._parse_stmt_block(stop={"end"})
        self._expect(NAME, "end")
        return ast.Program(
            name=name, declarations=tuple(declarations), body=body
        )

    def _parse_subroutine_unit(self) -> ast.Subroutine:
        self._expect(NAME, "subroutine")
        name = self._expect(NAME).value
        params: List[str] = []
        if self._accept(OP, "("):
            if not self._check(OP, ")"):
                while True:
                    params.append(self._expect(NAME).value)
                    if not self._accept(OP, ","):
                        break
            self._expect(OP, ")")
        self._expect(NEWLINE)
        declarations = self._parse_declaration_block()
        body = self._parse_stmt_block(stop={"end"})
        self._expect(NAME, "end")
        return ast.Subroutine(
            name=name,
            params=tuple(params),
            declarations=tuple(declarations),
            body=body,
        )

    def _parse_declaration_block(self) -> List[ast.Declaration]:
        self._skip_newlines()
        declarations: List[ast.Declaration] = []
        while self._cur.kind == NAME and self._cur.value in _DECL_HEADS:
            decl = self._parse_declaration()
            if decl is not None:
                declarations.append(decl)
            self._expect(NEWLINE)
            self._skip_newlines()
        return declarations

    # -- declarations -----------------------------------------------------

    def _parse_declaration(self) -> Optional[ast.Declaration]:
        tok = self._advance()
        line = tok.line
        head = tok.value
        if head == "implicit":
            self._expect(NAME, "none")
            return None
        if head == "parameter":
            self._expect(OP, "(")
            bindings: List[Tuple[str, ast.Expr]] = []
            while True:
                pname = self._expect(NAME).value
                self._expect(OP, "=")
                bindings.append((pname, self._parse_expr()))
                if not self._accept(OP, ","):
                    break
            self._expect(OP, ")")
            return ast.ParameterDecl(bindings=tuple(bindings), line=line)
        if head == "dimension":
            return ast.DimensionDecl(entities=self._parse_entity_list(), line=line)
        # Type declarations.
        if head == "double":
            self._expect(NAME, "precision")
            dtype = "double"
        else:
            dtype = head
        return ast.TypeDecl(
            dtype=dtype, entities=self._parse_entity_list(), line=line
        )

    def _parse_entity_list(self) -> Tuple[ast.Entity, ...]:
        entities: List[ast.Entity] = []
        while True:
            name = self._expect(NAME).value
            dims: Tuple[ast.DimSpec, ...] = ()
            if self._accept(OP, "("):
                specs: List[ast.DimSpec] = []
                while True:
                    first = self._parse_expr()
                    if self._accept(OP, ":"):
                        specs.append(ast.DimSpec(lo=first, hi=self._parse_expr()))
                    else:
                        specs.append(ast.DimSpec(lo=ast.IntLit(1), hi=first))
                    if not self._accept(OP, ","):
                        break
                self._expect(OP, ")")
                dims = tuple(specs)
            entities.append(ast.Entity(name=name, dims=dims))
            if not self._accept(OP, ","):
                break
        return tuple(entities)

    # -- statements ---------------------------------------------------------

    def _parse_stmt_block(
        self, stop: set, stop_label: Optional[int] = None
    ) -> Tuple[ast.Stmt, ...]:
        """Parse statements until a stopping keyword (not consumed) or, for
        labelled DO loops, until the statement carrying ``stop_label`` has
        been parsed (consumed; its trailing NEWLINE is left for the caller,
        matching the convention that every statement parser leaves its
        terminating NEWLINE unconsumed)."""
        stmts: List[ast.Stmt] = []
        while True:
            self._skip_newlines()
            tok = self._cur
            if tok.kind == EOF:
                break
            if tok.kind == NAME and tok.value in stop:
                break
            label: Optional[int] = None
            if tok.kind == LABEL:
                label = int(self._advance().value)
            stmt = self._parse_statement()
            stmts.append(stmt)
            if stop_label is not None and label == stop_label:
                return tuple(stmts)
            self._expect(NEWLINE)
        if stop_label is not None:
            raise ParseError(f"missing statement label {stop_label}", self._cur)
        return tuple(stmts)

    def _parse_statement(self) -> ast.Stmt:
        tok = self._cur
        if tok.kind != NAME:
            raise ParseError("expected statement", tok)
        if tok.value == "do":
            return self._parse_do()
        if tok.value == "if":
            return self._parse_if()
        if tok.value == "continue":
            self._advance()
            return ast.Continue(line=tok.line)
        if tok.value == "call":
            return self._parse_call()
        return self._parse_assign()

    def _parse_call(self) -> ast.CallStmt:
        call_tok = self._expect(NAME, "call")
        name = self._expect(NAME).value
        args: List[ast.Expr] = []
        if self._accept(OP, "("):
            if not self._check(OP, ")"):
                while True:
                    args.append(self._parse_expr())
                    if not self._accept(OP, ","):
                        break
            self._expect(OP, ")")
        return ast.CallStmt(name=name, args=tuple(args), line=call_tok.line)

    def _parse_do(self) -> ast.Do:
        do_tok = self._expect(NAME, "do")
        label: Optional[int] = None
        if self._cur.kind == INT:
            label = int(self._advance().value)
        var = self._expect(NAME).value
        self._expect(OP, "=")
        lo = self._parse_expr()
        self._expect(OP, ",")
        hi = self._parse_expr()
        step: Optional[ast.Expr] = None
        if self._accept(OP, ","):
            step = self._parse_expr()
        self._expect(NEWLINE)
        if label is None:
            body = self._parse_stmt_block(stop={"enddo"})
            self._expect(NAME, "enddo")
        else:
            body = self._parse_stmt_block(stop=set(), stop_label=label)
        return ast.Do(
            var=var, lo=lo, hi=hi, step=step, body=body, label=label,
            line=do_tok.line,
        )

    def _parse_if(self) -> ast.If:
        if_tok = self._expect(NAME, "if")
        self._expect(OP, "(")
        cond = self._parse_expr()
        self._expect(OP, ")")
        if not self._check(NAME, "then"):
            # Logical IF: a single statement on the same line.
            stmt = self._parse_statement()
            return ast.If(cond=cond, then_body=(stmt,), line=if_tok.line)
        self._expect(NAME, "then")
        self._expect(NEWLINE)
        then_body = self._parse_stmt_block(stop={"else", "elseif", "endif"})
        else_body: Tuple[ast.Stmt, ...] = ()
        if self._check(NAME, "elseif"):
            elif_tok = self._advance()
            self._pos -= 1  # re-parse as a fresh IF by rewriting the token
            self._tokens[self._pos] = Token(NAME, "if", elif_tok.line)
            else_body = (self._parse_if(),)
            return ast.If(
                cond=cond, then_body=then_body, else_body=else_body,
                line=if_tok.line,
            )
        if self._accept(NAME, "else"):
            self._expect(NEWLINE)
            else_body = self._parse_stmt_block(stop={"endif"})
        self._expect(NAME, "endif")
        return ast.If(
            cond=cond, then_body=then_body, else_body=else_body, line=if_tok.line
        )

    def _parse_assign(self) -> ast.Assign:
        tok = self._cur
        target = self._parse_primary()
        if not isinstance(target, (ast.Var, ast.ArrayRef)):
            raise ParseError("invalid assignment target", tok)
        self._expect(OP, "=")
        expr = self._parse_expr()
        return ast.Assign(target=target, expr=expr, line=tok.line)

    # -- expressions --------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._accept(OP, ".or."):
            left = ast.BinOp(op=".or.", left=left, right=self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._accept(OP, ".and."):
            left = ast.BinOp(op=".and.", left=left, right=self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self._accept(OP, ".not."):
            return ast.UnaryOp(op=".not.", operand=self._parse_not())
        return self._parse_relational()

    def _parse_relational(self) -> ast.Expr:
        left = self._parse_additive()
        if self._cur.kind == OP and self._cur.value in _RELATIONAL:
            op = self._advance().value
            return ast.BinOp(op=op, left=left, right=self._parse_additive())
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._cur.kind == OP and self._cur.value in ("+", "-"):
            op = self._advance().value
            left = ast.BinOp(op=op, left=left, right=self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._cur.kind == OP and self._cur.value in ("*", "/"):
            op = self._advance().value
            left = ast.BinOp(op=op, left=left, right=self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._cur.kind == OP and self._cur.value in ("+", "-"):
            op = self._advance().value
            return ast.UnaryOp(op=op, operand=self._parse_unary())
        return self._parse_power()

    def _parse_power(self) -> ast.Expr:
        base = self._parse_primary()
        if self._accept(OP, "**"):
            # Right-associative: recurse through unary so -x ** -y parses.
            return ast.BinOp(op="**", left=base, right=self._parse_unary())
        return base

    def _parse_primary(self) -> ast.Expr:
        tok = self._cur
        if tok.kind == INT:
            self._advance()
            return ast.IntLit(int(tok.value))
        if tok.kind == REAL:
            self._advance()
            text = tok.value.lower()
            is_double = "d" in text
            return ast.RealLit(float(text.replace("d", "e")), is_double=is_double)
        if tok.kind == OP and tok.value in (".true.", ".false."):
            self._advance()
            return ast.LogicalLit(tok.value == ".true.")
        if tok.kind == OP and tok.value == "(":
            self._advance()
            inner = self._parse_expr()
            self._expect(OP, ")")
            return inner
        if tok.kind == NAME:
            self._advance()
            if self._accept(OP, "("):
                args: List[ast.Expr] = []
                if not self._check(OP, ")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self._accept(OP, ","):
                            break
                self._expect(OP, ")")
                if tok.value in INTRINSICS:
                    return ast.Call(name=tok.value, args=tuple(args))
                return ast.ArrayRef(name=tok.value, subscripts=tuple(args))
            return ast.Var(name=tok.value)
        raise ParseError("expected expression", tok)


#: Recognized intrinsic functions; anything else with parentheses is an
#: array reference.  (The subset has no user function calls.)
INTRINSICS = frozenset(
    {
        "sqrt", "abs", "min", "max", "exp", "log", "sin", "cos", "tan",
        "mod", "sign", "dble", "real", "int", "float",
    }
)


def parse_source(source: str) -> ast.Program:
    """Parse single-unit Fortran-subset source text into a
    :class:`repro.frontend.ast.Program`.

    Multi-unit files (PROGRAM + SUBROUTINEs) go through
    :func:`parse_source_file` and the inliner instead.
    """
    return Parser(tokenize(source)).parse_program()


def parse_source_file(source: str) -> ast.SourceFile:
    """Parse a file containing one PROGRAM and any number of SUBROUTINE
    units."""
    return Parser(tokenize(source)).parse_file()
