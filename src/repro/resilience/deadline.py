"""Request deadlines: a monotonic time budget carried in a ContextVar.

A :class:`Deadline` is created once per request (from the protocol's
``deadline_s`` field, or derived from the server's hard request
timeout) and installed with :func:`deadline_scope`.  Downstream code
never receives it explicitly — the ILP entry point reads
:func:`current_deadline` and clamps its solver time limit to the
remaining budget, which is what makes the NP-complete alignment and
selection solves *anytime*: on expiry they return their best incumbent
(or a greedy heuristic) instead of running away.

ContextVars do not cross threads on their own; the service re-enters
the scope inside its pipeline thread, and :class:`Deadline` objects
themselves are immutable-after-init and safe to share.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter
from typing import Iterator, Optional

from ..obs import telemetry
from .errors import DeadlineExceeded


class Deadline:
    """A wall-clock budget anchored on the monotonic clock."""

    __slots__ = ("budget_s", "_expires_at", "_reported")

    def __init__(self, budget_s: float):
        if budget_s <= 0:
            raise ValueError(f"deadline budget must be > 0, got {budget_s}")
        self.budget_s = float(budget_s)
        self._expires_at = perf_counter() + self.budget_s
        self._reported = False

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self._expires_at - perf_counter()

    def expired(self) -> bool:
        if self.remaining() > 0.0:
            return False
        # One telemetry event per deadline, on first observation of
        # expiry (a benign race can at worst duplicate it).
        if not self._reported:
            self._reported = True
            telemetry.emit(
                "deadline.expired",
                budget_s=self.budget_s,
                overrun_s=-self.remaining(),
            )
        return True

    def check(self, label: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget ran out."""
        if self.expired():
            where = f" at {label}" if label else ""
            raise DeadlineExceeded(
                f"deadline of {self.budget_s:g}s exceeded{where}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Deadline(budget_s={self.budget_s:g}, "
                f"remaining={self.remaining():.3f})")


_current: ContextVar[Optional[Deadline]] = ContextVar(
    "repro_deadline", default=None
)


def current_deadline() -> Optional[Deadline]:
    """The deadline governing the current context, if any."""
    return _current.get()


def remaining_budget() -> Optional[float]:
    """Seconds left on the current deadline (clamped at 0), or ``None``
    when no deadline is in scope."""
    deadline = _current.get()
    if deadline is None:
        return None
    return max(deadline.remaining(), 0.0)


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install ``deadline`` for the duration of the block (``None``
    installs nothing, so callers can scope unconditionally)."""
    if deadline is None:
        yield None
        return
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)
