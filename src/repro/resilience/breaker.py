"""Circuit breaker and exponential-backoff-with-jitter primitives.

The breaker wraps flaky dependencies (the worker pool's executor, the
cache's disk) with the classic three-state machine:

- ``closed``    — calls flow; K *consecutive* failures open the circuit;
- ``open``      — calls are rejected outright (callers degrade: the
  cache goes memory-only, the pool runs serial) until a reset timeout;
- ``half-open`` — a bounded number of probe calls are let through; one
  success closes the circuit, one failure re-opens it.

Everything is injectable (clock, RNG, sleep) so tests are instantaneous
and deterministic, and :meth:`CircuitBreaker.describe` feeds the state
gauges exported by the service.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Dict, Optional

from ..obs import telemetry

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing."""

    def __init__(
        self,
        name: str = "",
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_probes = max(half_open_probes, 1)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        self.opens_total = 0
        self.rejections_total = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = HALF_OPEN
            self._probes_inflight = 0
            self._emit_transition(OPEN, HALF_OPEN)
        return self._state

    def _emit_transition(self, old: str, new: str) -> None:
        """Every state change becomes a telemetry event (no-op without
        an installed sink; sinks never raise back into the breaker)."""
        telemetry.emit(
            "breaker.transition",
            breaker=self.name, from_state=old, to_state=new,
            opens_total=self.opens_total,
        )

    def allow(self) -> bool:
        """May a call proceed right now?"""
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and (
                self._probes_inflight < self.half_open_probes
            ):
                self._probes_inflight += 1
                return True
            self.rejections_total += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            old = self._state
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._probes_inflight = 0
            self._state = CLOSED
            if old != CLOSED:
                self._emit_transition(old, CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            state = self._state_locked()
            if state == HALF_OPEN:
                self._trip_locked()
                return
            self._consecutive_failures += 1
            if (state == CLOSED
                    and self._consecutive_failures >= self.failure_threshold):
                self._trip_locked()

    def _trip_locked(self) -> None:
        old = self._state
        self._state = OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probes_inflight = 0
        self.opens_total += 1
        self._emit_transition(old, OPEN)

    def reset(self) -> None:
        """Force-close (tests and admin tooling)."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probes_inflight = 0

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "name": self.name,
                "state": self._state_locked(),
                "failure_threshold": self.failure_threshold,
                "reset_timeout_s": self.reset_timeout_s,
                "consecutive_failures": self._consecutive_failures,
                "opens_total": self.opens_total,
                "rejections_total": self.rejections_total,
            }


class Backoff:
    """Exponential backoff with full jitter: attempt ``k`` waits
    ``min(base * factor**k, max) * uniform(1 - jitter, 1)``.

    The RNG is seedable (deterministic delays in tests) and ``sleep`` is
    injectable (no real waiting in tests).  ``base_s=0`` disables
    waiting entirely — the default for the worker pool under test.
    """

    def __init__(
        self,
        base_s: float = 0.05,
        factor: float = 2.0,
        max_s: float = 2.0,
        jitter: float = 0.5,
        seed: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.base_s = base_s
        self.factor = factor
        self.max_s = max_s
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._sleep = sleep

    def delay(self, attempt: int) -> float:
        """The wait before retry ``attempt`` (0-based), jittered."""
        if self.base_s <= 0:
            return 0.0
        raw = min(self.base_s * (self.factor ** attempt), self.max_s)
        if self.jitter <= 0:
            return raw
        return raw * (1.0 - self.jitter * self._rng.random())

    def wait(self, attempt: int) -> float:
        """Sleep for :meth:`delay`; returns the seconds waited."""
        seconds = self.delay(attempt)
        if seconds > 0:
            self._sleep(seconds)
        return seconds

    def describe(self) -> Dict[str, Any]:
        return {
            "base_s": self.base_s,
            "factor": self.factor,
            "max_s": self.max_s,
            "jitter": self.jitter,
        }
