"""Overload protection: admission control in front of request handling.

Three cooperating pieces guard the service's front door:

- :class:`AdaptiveConcurrencyLimiter` — an AIMD limiter (in the style
  of Netflix concurrency-limits) that discovers how many requests the
  box can usefully run at once.  It tracks a "no-load" latency floor
  with an asymmetric EWMA (fast downward, slow upward so congestion
  cannot poison the baseline) and compares each completed request
  against it: latency within ``tolerance``× the floor earns an additive
  increase (+1 per ~limit samples), latency beyond it — or a timeout —
  costs a multiplicative decrease.  *Zombie* workers (threads abandoned
  by a request-timeout that cannot be cancelled) are subtracted from
  the usable limit so admission decisions see true load, not nominal
  capacity;

- :class:`AdmissionController` — a bounded queue plus the limiter.  A
  request is admitted immediately when a concurrency slot is free,
  queued briefly when one is about to be, and **shed with a typed**
  :class:`~repro.resilience.errors.OverloadedError` (carrying
  ``retry_after_s``) when the queue is full, the bounded wait times
  out, or — the deadline-aware case — the *predicted* queue wait would
  consume the request's own budget, so work that would time out anyway
  is never started.  When utilization crosses the brownout threshold,
  or any wired :class:`~repro.resilience.breaker.CircuitBreaker` is not
  closed, admitted tickets are flagged ``brownout``: the service clamps
  their solver budget so the existing anytime/greedy fallbacks produce
  fast, *labeled-degraded* answers — brownout before shedding, shedding
  before collapse;

- drain support — :meth:`AdmissionController.begin_drain` flips the
  controller into rejection mode (typed
  :class:`~repro.resilience.errors.ShuttingDownError`), wakes queued
  waiters, and :meth:`wait_idle` blocks until in-flight work completes
  or the drain deadline expires.

Everything is thread-safe behind one condition variable, clocks are
injectable for deterministic tests, and every shed / brownout flip /
drain transition is published through :func:`repro.obs.telemetry.emit`
so the event log and ``repro top`` see overload as a first-class,
observable state.
"""

from __future__ import annotations

import threading
from time import monotonic
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..obs import telemetry
from .breaker import CircuitBreaker
from .errors import OverloadedError, ShuttingDownError

#: service-time guess (seconds) used for wait prediction before any
#: request has completed — deliberately conservative
DEFAULT_SERVICE_ESTIMATE_S = 0.1

#: EWMA smoothing of the observed per-request service time
SERVICE_TIME_ALPHA = 0.2

#: floor on the retry hint so clients never busy-spin
MIN_RETRY_AFTER_S = 0.05


class AdaptiveConcurrencyLimiter:
    """AIMD concurrency limit driven by the latency gradient."""

    def __init__(
        self,
        initial_limit: int = 8,
        min_limit: int = 1,
        max_limit: int = 64,
        tolerance: float = 2.0,
        decrease_factor: float = 0.7,
    ):
        if not 1 <= min_limit <= initial_limit <= max_limit:
            raise ValueError(
                "need 1 <= min_limit <= initial_limit <= max_limit, got "
                f"{min_limit}/{initial_limit}/{max_limit}"
            )
        if tolerance <= 1.0:
            raise ValueError(f"tolerance must be > 1, got {tolerance}")
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError(
                f"decrease_factor must be in (0, 1), got {decrease_factor}"
            )
        self.min_limit = int(min_limit)
        self.max_limit = int(max_limit)
        self.tolerance = float(tolerance)
        self.decrease_factor = float(decrease_factor)
        self._lock = threading.Lock()
        self._limit = float(initial_limit)
        self._baseline: Optional[float] = None
        self._zombies = 0
        self.increases_total = 0
        self.decreases_total = 0

    # -- the AIMD loop ---------------------------------------------------

    def on_sample(self, seconds: float, ok: bool = True) -> None:
        """Feed one completed request's latency into the limiter."""
        with self._lock:
            if not ok:
                self._decrease_locked()
                return
            if self._baseline is None:
                self._baseline = seconds
            elif seconds < self._baseline:
                # chase the no-load floor quickly downward...
                self._baseline += (seconds - self._baseline) * 0.5
            else:
                # ...but drift upward slowly, so sustained congestion
                # cannot retrain the floor and mask itself
                self._baseline += (seconds - self._baseline) * 0.05
            if seconds <= self._baseline * self.tolerance:
                if self._limit < self.max_limit:
                    # additive increase: +1 after ~limit good samples
                    self._limit = min(
                        self._limit + 1.0 / max(self._limit, 1.0),
                        float(self.max_limit),
                    )
                    self.increases_total += 1
            else:
                self._decrease_locked()

    def on_timeout(self) -> None:
        """A request blew its hard timeout — strongest congestion signal."""
        with self._lock:
            self._decrease_locked()

    def _decrease_locked(self) -> None:
        decreased = max(
            self._limit * self.decrease_factor, float(self.min_limit)
        )
        if decreased < self._limit:
            self.decreases_total += 1
        self._limit = decreased

    # -- zombie accounting -----------------------------------------------

    def note_zombie(self) -> int:
        """A worker thread was abandoned (timed-out future that cannot
        be cancelled); it still burns a core, so the usable limit
        shrinks until :meth:`zombie_done`."""
        with self._lock:
            self._zombies += 1
            return self._zombies

    def zombie_done(self) -> int:
        with self._lock:
            self._zombies = max(self._zombies - 1, 0)
            return self._zombies

    # -- reading ---------------------------------------------------------

    @property
    def limit(self) -> int:
        with self._lock:
            return int(self._limit)

    @property
    def zombies(self) -> int:
        with self._lock:
            return self._zombies

    def usable(self) -> int:
        """The concurrency admission may actually grant right now: the
        AIMD limit minus live zombie workers, never below one (the
        service must always drain eventually)."""
        with self._lock:
            return max(int(self._limit) - self._zombies, 1)

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            usable = max(int(self._limit) - self._zombies, 1)
            return {
                "limit": int(self._limit),
                "usable": usable,
                "zombies": self._zombies,
                "min_limit": self.min_limit,
                "max_limit": self.max_limit,
                "tolerance": self.tolerance,
                "baseline_s": self._baseline,
                "increases_total": self.increases_total,
                "decreases_total": self.decreases_total,
            }


class Ticket:
    """One admitted request: how long it queued, and whether it was
    admitted under brownout (the service clamps its solver budget)."""

    __slots__ = ("waited_s", "brownout")

    def __init__(self, waited_s: float, brownout: bool):
        self.waited_s = waited_s
        self.brownout = brownout


class AdmissionController:
    """Bounded admission queue with deadline-aware load shedding."""

    def __init__(
        self,
        limiter: Optional[AdaptiveConcurrencyLimiter] = None,
        max_queue: int = 64,
        max_queue_wait_s: float = 2.0,
        brownout_utilization: float = 0.85,
        breakers: Optional[Sequence[CircuitBreaker]] = None,
        clock: Callable[[], float] = monotonic,
    ):
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if max_queue_wait_s <= 0:
            raise ValueError(
                f"max_queue_wait_s must be > 0, got {max_queue_wait_s}"
            )
        if not 0.0 < brownout_utilization <= 1.0:
            raise ValueError(
                "brownout_utilization must be in (0, 1], got "
                f"{brownout_utilization}"
            )
        self.limiter = limiter or AdaptiveConcurrencyLimiter()
        self.max_queue = int(max_queue)
        self.max_queue_wait_s = float(max_queue_wait_s)
        self.brownout_utilization = float(brownout_utilization)
        self.breakers: List[CircuitBreaker] = list(breakers or [])
        self._clock = clock
        self._cond = threading.Condition()
        self._in_flight = 0
        self._queued = 0
        self._draining = False
        self._brownout_active = False
        self._service_ewma: Optional[float] = None
        self._counters: Dict[str, int] = {
            "admitted": 0,
            "admitted_after_wait": 0,
            "shed_deadline": 0,
            "shed_queue_full": 0,
            "shed_wait_timeout": 0,
            "rejected_draining": 0,
            "brownout_admitted": 0,
        }

    # -- predictions -----------------------------------------------------

    def _predicted_wait_locked(self) -> float:
        """Expected queue wait for one more arrival: zero when a slot is
        free, else Little's-law-style ``waiters * service / servers``."""
        usable = self.limiter.usable()
        if self._in_flight < usable and self._queued == 0:
            return 0.0
        service = self._service_ewma or DEFAULT_SERVICE_ESTIMATE_S
        return (self._queued + 1) * service / max(usable, 1)

    def _retry_after_locked(self) -> float:
        return max(self._predicted_wait_locked(), MIN_RETRY_AFTER_S)

    def _brownout_locked(self) -> bool:
        usable = self.limiter.usable()
        if self._in_flight / max(usable, 1) >= self.brownout_utilization:
            return True
        # a non-closed breaker means a dependency (pool, cache disk) is
        # already degraded: prefer fast labeled-degraded answers now
        return any(b.state != "closed" for b in self.breakers)

    def _note_brownout_locked(self, active: bool) -> None:
        if active != self._brownout_active:
            self._brownout_active = active
            telemetry.emit(
                "admission.brownout",
                active=active,
                in_flight=self._in_flight,
                queue_depth=self._queued,
                limit=self.limiter.limit,
            )

    # -- the front door --------------------------------------------------

    def try_acquire(self, budget_s: Optional[float] = None) -> Ticket:
        """Admit one request or raise a typed rejection.

        ``budget_s`` is the request's remaining time budget; when the
        predicted queue wait would consume it, the request is shed
        immediately (deadline-aware shedding) so doomed work never
        starts.  Raises :class:`OverloadedError` (with
        ``retry_after_s``) or :class:`ShuttingDownError`.
        """
        start = self._clock()
        with self._cond:
            if self._draining:
                self._counters["rejected_draining"] += 1
                raise ShuttingDownError("service is draining")
            predicted = self._predicted_wait_locked()
            if budget_s is not None and predicted >= budget_s:
                self._counters["shed_deadline"] += 1
                retry_after = self._retry_after_locked()
                telemetry.emit(
                    "admission.shed", reason="deadline",
                    predicted_wait_s=round(predicted, 4),
                    budget_s=budget_s, queue_depth=self._queued,
                    in_flight=self._in_flight,
                )
                raise OverloadedError(
                    f"predicted queue wait {predicted:.3f}s would consume "
                    f"the request budget {budget_s:.3f}s",
                    retry_after_s=retry_after,
                )
            if predicted > 0.0 and self._queued >= self.max_queue:
                self._counters["shed_queue_full"] += 1
                retry_after = self._retry_after_locked()
                telemetry.emit(
                    "admission.shed", reason="queue-full",
                    queue_depth=self._queued, in_flight=self._in_flight,
                    limit=self.limiter.limit,
                )
                raise OverloadedError(
                    f"admission queue full ({self._queued}/"
                    f"{self.max_queue})",
                    retry_after_s=retry_after,
                )
            wait_cap = self.max_queue_wait_s
            if budget_s is not None:
                wait_cap = min(wait_cap, budget_s)
            give_up_at = start + wait_cap
            waited = False
            self._queued += 1
            try:
                while self._in_flight >= self.limiter.usable():
                    if self._draining:
                        self._counters["rejected_draining"] += 1
                        raise ShuttingDownError("service is draining")
                    remaining = give_up_at - self._clock()
                    if remaining <= 0:
                        self._counters["shed_wait_timeout"] += 1
                        retry_after = self._retry_after_locked()
                        telemetry.emit(
                            "admission.shed", reason="wait-timeout",
                            waited_s=round(self._clock() - start, 4),
                            queue_depth=self._queued - 1,
                            in_flight=self._in_flight,
                        )
                        raise OverloadedError(
                            "no concurrency slot freed within "
                            f"{wait_cap:.3f}s",
                            retry_after_s=retry_after,
                        )
                    waited = True
                    self._cond.wait(timeout=remaining)
            finally:
                self._queued -= 1
            self._in_flight += 1
            self._counters["admitted"] += 1
            if waited:
                self._counters["admitted_after_wait"] += 1
            brownout = self._brownout_locked()
            self._note_brownout_locked(brownout)
            if brownout:
                self._counters["brownout_admitted"] += 1
            return Ticket(
                waited_s=self._clock() - start, brownout=brownout
            )

    def release(
        self,
        ticket: Ticket,
        seconds: float,
        ok: bool = True,
        timed_out: bool = False,
    ) -> None:
        """Return one admitted request's slot and feed its latency to
        the limiter (a timeout is the strongest congestion signal)."""
        with self._cond:
            self._in_flight = max(self._in_flight - 1, 0)
            if ok and not timed_out:
                if self._service_ewma is None:
                    self._service_ewma = seconds
                else:
                    self._service_ewma += (
                        (seconds - self._service_ewma) * SERVICE_TIME_ALPHA
                    )
            self._note_brownout_locked(self._brownout_locked())
            self._cond.notify_all()
        if timed_out:
            self.limiter.on_timeout()
        else:
            self.limiter.on_sample(seconds, ok=ok)

    # -- zombie pass-through ---------------------------------------------

    def note_zombie(self) -> int:
        return self.limiter.note_zombie()

    def zombie_done(self) -> int:
        remaining = self.limiter.zombie_done()
        with self._cond:
            # a zombie finishing restores usable capacity: wake waiters
            self._cond.notify_all()
        return remaining

    # -- drain -----------------------------------------------------------

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    def begin_drain(self) -> None:
        """Stop admitting; queued waiters are woken and rejected."""
        with self._cond:
            if self._draining:
                return
            self._draining = True
            in_flight = self._in_flight
            queued = self._queued
            self._cond.notify_all()
        telemetry.emit(
            "service.drain", phase="begin",
            in_flight=in_flight, queue_depth=queued,
        )

    def wait_idle(self, timeout_s: float) -> bool:
        """Block until no request is in flight, or ``timeout_s`` runs
        out; returns whether the controller went idle in time."""
        give_up_at = self._clock() + max(timeout_s, 0.0)
        with self._cond:
            while self._in_flight > 0:
                remaining = give_up_at - self._clock()
                if remaining <= 0:
                    return False
                self._cond.wait(timeout=remaining)
            return True

    # -- introspection ---------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        with self._cond:
            counters = dict(self._counters)
            shed_total = (
                counters["shed_deadline"] + counters["shed_queue_full"]
                + counters["shed_wait_timeout"]
            )
            return {
                "in_flight": self._in_flight,
                "queue_depth": self._queued,
                "max_queue": self.max_queue,
                "max_queue_wait_s": self.max_queue_wait_s,
                "draining": self._draining,
                "brownout": self._brownout_active,
                "brownout_utilization": self.brownout_utilization,
                "predicted_wait_s": self._predicted_wait_locked(),
                "service_time_ewma_s": self._service_ewma,
                "shed_total": shed_total,
                "counters": counters,
                "limiter": self.limiter.describe(),
            }
