"""Degradation accounting: every fallback path declares itself.

The invariant the service promises is *optimal result, labeled-degraded
result, or clean typed error*.  The "labeled" part is this module: when
an anytime ILP returns an unproven incumbent, or a greedy heuristic
stands in for an expired solve, the code calls
:func:`note_degradation`.  The note lands in two places:

- the per-request collector installed by the service
  (:func:`collecting`), which sets the response's ``degraded`` flag,
  the ``repro_degraded_total`` counter, and keeps degraded stage
  outputs out of the persistent cache;
- the active trace, as a ``resilience.degraded`` event with
  ``optimal=False``, so ``repro explain`` provenance shows exactly
  which decision was heuristic;
- the telemetry event log (when a service has installed a sink), as a
  durable ``degradation`` event.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from ..obs import telemetry, tracing


@dataclass(frozen=True)
class DegradationEvent:
    """One fallback decision: which stage degraded and why."""

    stage: str
    reason: str
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        out = {"stage": self.stage, "reason": self.reason}
        if self.detail:
            out["detail"] = self.detail
        return out


_events: ContextVar[Optional[List[DegradationEvent]]] = ContextVar(
    "repro_degradations", default=None
)


@contextmanager
def collecting() -> Iterator[List[DegradationEvent]]:
    """Install a fresh collector; yields the (live) event list."""
    bucket: List[DegradationEvent] = []
    token = _events.set(bucket)
    try:
        yield bucket
    finally:
        _events.reset(token)


def note_degradation(stage: str, reason: str,
                     detail: str = "") -> DegradationEvent:
    """Record one degradation in the active collector and trace."""
    event = DegradationEvent(stage=stage, reason=reason, detail=detail)
    bucket = _events.get()
    if bucket is not None:
        bucket.append(event)
    tracing.add_event(
        "resilience.degraded",
        stage=stage,
        reason=reason,
        detail=detail,
        optimal=False,
    )
    telemetry.emit(
        "degradation", stage=stage, reason=reason, detail=detail
    )
    return event


def noted_count() -> int:
    """How many degradations the current collector has seen (0 when no
    collector is installed) — lets the cache skip storing any stage
    output whose computation degraded."""
    bucket = _events.get()
    return len(bucket) if bucket is not None else 0
