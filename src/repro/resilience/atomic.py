"""Crash-safe persistent state: atomic writes, checksums, quarantine.

Every artifact the system persists — stage-cache pickles, bench
baselines, fuzz corpora — goes through this module so that a crash,
torn write, or bit flip can never be mistaken for valid state:

- **atomic writes**: payload lands in a ``mkstemp`` sibling, is
  fsynced, then ``os.replace``d over the destination.  Readers see the
  old file or the new file, never a prefix.
- **checksum footers** (binary artifacts): the payload is wrapped with
  a magic marker, payload length, and a SHA-256 digest.  Unwrapping
  raises :class:`~.errors.CorruptStateError` on any mismatch.
- **embedded integrity** (JSON artifacts): a top-level ``integrity``
  field holding the SHA-256 of the canonical dump of everything else.
- **quarantine**: a corrupt file is renamed aside (``*.quarantined``),
  not deleted — self-healing for the reader, evidence for the operator.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .errors import CorruptStateError

PathLike = Union[str, Path]

#: footer layout: MAGIC + 8-byte big-endian payload length + 32-byte sha256
FOOTER_MAGIC = b"REPROCK1"
_FOOTER_LEN = len(FOOTER_MAGIC) + 8 + 32

#: JSON field name carrying the embedded digest
INTEGRITY_FIELD = "integrity"

QUARANTINE_SUFFIX = ".quarantined"


# -- atomic file replacement --------------------------------------------

def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tempfile + ``os.replace``)."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: PathLike, text: str,
                      encoding: str = "utf-8") -> None:
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: PathLike, payload: Any,
                      indent: int = 2) -> None:
    atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    )


# -- binary checksum footers --------------------------------------------

def checksum_wrap(payload: bytes) -> bytes:
    """Append the footer: ``payload | MAGIC | len(payload) | sha256``."""
    digest = hashlib.sha256(payload).digest()
    return (payload + FOOTER_MAGIC
            + len(payload).to_bytes(8, "big") + digest)


def checksum_unwrap(blob: bytes, label: str = "artifact") -> bytes:
    """Strip and verify the footer; raise :class:`CorruptStateError` on
    truncation, missing magic, length mismatch, or digest mismatch."""
    if len(blob) < _FOOTER_LEN:
        raise CorruptStateError(
            f"{label}: too short for a checksum footer "
            f"({len(blob)} < {_FOOTER_LEN} bytes)"
        )
    payload, footer = blob[:-_FOOTER_LEN], blob[-_FOOTER_LEN:]
    magic = footer[: len(FOOTER_MAGIC)]
    if magic != FOOTER_MAGIC:
        raise CorruptStateError(f"{label}: checksum footer magic missing")
    length = int.from_bytes(
        footer[len(FOOTER_MAGIC): len(FOOTER_MAGIC) + 8], "big"
    )
    if length != len(payload):
        raise CorruptStateError(
            f"{label}: footer claims {length} payload bytes, "
            f"found {len(payload)}"
        )
    digest = footer[len(FOOTER_MAGIC) + 8:]
    if hashlib.sha256(payload).digest() != digest:
        raise CorruptStateError(f"{label}: sha256 mismatch")
    return payload


# -- embedded JSON integrity --------------------------------------------

def _json_digest(payload: Dict[str, Any]) -> str:
    body = {k: v for k, v in payload.items() if k != INTEGRITY_FIELD}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def stamp_json_integrity(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Return a copy of ``payload`` with its ``integrity`` field set to
    the SHA-256 of the canonical dump of every other field."""
    stamped = dict(payload)
    stamped[INTEGRITY_FIELD] = _json_digest(payload)
    return stamped


def verify_json_integrity(payload: Dict[str, Any],
                          label: str = "artifact") -> bool:
    """``True`` if the stamp matches, ``False`` if absent; raises
    :class:`CorruptStateError` when a stamp is present but wrong."""
    stamp = payload.get(INTEGRITY_FIELD)
    if stamp is None:
        return False
    if stamp != _json_digest(payload):
        raise CorruptStateError(f"{label}: embedded integrity mismatch")
    return True


# -- quarantine ---------------------------------------------------------

def quarantine(path: PathLike) -> Optional[Path]:
    """Move a corrupt file aside as ``<name>.quarantined`` (numbered if
    that exists).  Returns the new path, or ``None`` if the file was
    already gone or could not be moved (never raises)."""
    path = Path(path)
    target = path.with_name(path.name + QUARANTINE_SUFFIX)
    counter = 1
    while target.exists():
        target = path.with_name(f"{path.name}{QUARANTINE_SUFFIX}.{counter}")
        counter += 1
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target
