"""Resilience substrate: fault injection, deadlines, degradation
accounting, circuit breaking, and crash-safe persistent state.

The paper's tool is an *assistant*: it must always hand the programmer
**a** layout — an optimal one when the 0-1 ILPs finish, a well-labeled
heuristic one when they cannot.  This package provides the mechanisms
the rest of the repo uses to guarantee that posture:

- :mod:`repro.resilience.faults` — a seeded, deterministic
  fault-injection registry (no-op when no plan is armed) threaded
  through the cache, worker pool, service protocol, and ILP solvers;
- :mod:`repro.resilience.deadline` — a request deadline/budget carried
  in a context variable, consumed by the solvers to turn them *anytime*;
- :mod:`repro.resilience.degrade` — per-request degradation accounting:
  any fallback path notes itself here so the response, provenance, and
  metrics all carry an explicit ``degraded`` flag;
- :mod:`repro.resilience.breaker` — circuit breaker and
  exponential-backoff-with-jitter primitives;
- :mod:`repro.resilience.atomic` — atomic temp-file + ``os.replace``
  writes, checksum footers, and quarantine of corrupt files.

:mod:`repro.resilience.chaos` (imported explicitly, not re-exported
here, because it sits *above* the service layer) replays seeded fault
plans over the paper programs and asserts the pipeline invariant:
*correct result, labeled-degraded result, or clean typed error — never
a wrong answer, hang, or crash*.
"""

from .admission import (
    AdaptiveConcurrencyLimiter,
    AdmissionController,
    Ticket,
)
from .atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    checksum_unwrap,
    checksum_wrap,
    quarantine,
    stamp_json_integrity,
    verify_json_integrity,
)
from .breaker import Backoff, CircuitBreaker
from .deadline import (
    Deadline,
    current_deadline,
    deadline_scope,
    remaining_budget,
)
from .degrade import (
    DegradationEvent,
    collecting,
    note_degradation,
    noted_count,
)
from .errors import (
    CircuitOpenError,
    CorruptStateError,
    DeadlineExceeded,
    InjectedFault,
    OverloadedError,
    ResilienceError,
    ShuttingDownError,
)
from .faults import (
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    arm,
    armed,
    corrupt_point,
    disarm,
    fault_point,
)

__all__ = [
    "AdaptiveConcurrencyLimiter",
    "AdmissionController",
    "Backoff",
    "CircuitBreaker",
    "CircuitOpenError",
    "CorruptStateError",
    "Deadline",
    "DeadlineExceeded",
    "DegradationEvent",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "KNOWN_SITES",
    "OverloadedError",
    "ResilienceError",
    "ShuttingDownError",
    "Ticket",
    "arm",
    "armed",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "checksum_unwrap",
    "checksum_wrap",
    "collecting",
    "corrupt_point",
    "current_deadline",
    "deadline_scope",
    "disarm",
    "fault_point",
    "note_degradation",
    "noted_count",
    "quarantine",
    "remaining_budget",
    "stamp_json_integrity",
    "verify_json_integrity",
]
