"""Typed errors of the resilience layer.

Every class carries a ``kind`` attribute, the same convention as
:mod:`repro.service.errors`: the wire protocol reports ``error.kind``
so clients (and the chaos invariant checker) can distinguish a clean
typed failure from an unexpected internal crash without parsing text.
"""

from __future__ import annotations


class ResilienceError(Exception):
    """Base class for resilience-layer failures."""

    kind = "resilience"


class InjectedFault(ResilienceError):
    """A deterministically injected fault fired at a registered site."""

    kind = "injected-fault"

    def __init__(self, site: str, detail: str = ""):
        self.site = site
        self.detail = detail
        message = f"injected fault at {site!r}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class DeadlineExceeded(ResilienceError):
    """A request's time budget ran out before the work completed."""

    kind = "deadline"


class CircuitOpenError(ResilienceError):
    """A circuit breaker rejected the call while open."""

    kind = "circuit-open"


class CorruptStateError(ResilienceError):
    """A persisted artifact failed its checksum or structural check."""

    kind = "corrupt-state"


class OverloadedError(ResilienceError):
    """Admission control shed the request before any work started.

    Carries ``retry_after_s`` — the controller's prediction of when
    capacity frees up — which the wire protocol surfaces so well-behaved
    clients (and :class:`repro.service.protocol.RetryPolicy`) back off
    instead of hammering an overloaded server.
    """

    kind = "overloaded"

    def __init__(self, message: str, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = max(round(float(retry_after_s), 4), 0.0)


class ShuttingDownError(ResilienceError):
    """The service is draining: in-flight work finishes, new work is
    refused with this typed rejection."""

    kind = "shutting-down"
