"""Typed errors of the resilience layer.

Every class carries a ``kind`` attribute, the same convention as
:mod:`repro.service.errors`: the wire protocol reports ``error.kind``
so clients (and the chaos invariant checker) can distinguish a clean
typed failure from an unexpected internal crash without parsing text.
"""

from __future__ import annotations


class ResilienceError(Exception):
    """Base class for resilience-layer failures."""

    kind = "resilience"


class InjectedFault(ResilienceError):
    """A deterministically injected fault fired at a registered site."""

    kind = "injected-fault"

    def __init__(self, site: str, detail: str = ""):
        self.site = site
        self.detail = detail
        message = f"injected fault at {site!r}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class DeadlineExceeded(ResilienceError):
    """A request's time budget ran out before the work completed."""

    kind = "deadline"


class CircuitOpenError(ResilienceError):
    """A circuit breaker rejected the call while open."""

    kind = "circuit-open"


class CorruptStateError(ResilienceError):
    """A persisted artifact failed its checksum or structural check."""

    kind = "corrupt-state"
