"""Seeded, deterministic fault injection.

A :class:`FaultPlan` maps *sites* (stable string names of instrumented
code points) to fault specs: raise a typed error, sleep, corrupt a byte
payload, or fail flakily for the first N matches.  Every probabilistic
decision is driven by a :class:`random.Random` seeded from the plan, so
a campaign replays bit-identically from its seed.

Zero overhead when unarmed: every injection point starts with a single
module-global ``None`` check, so production code pays one attribute
load per site when no plan is armed.

The instrumented sites (grep for the literal strings)::

    cache.load       disk read of a stage-cache entry
    cache.store      disk write of a stage-cache entry
    pool.submit      handing a job batch to the executor
    pool.result      collecting one job result from the executor
    service.request  protocol dispatch of one decoded request
    server.reply     writing a response line back to the socket
    ilp.solve        entry of every 0-1 solve (both backends)

``cache.load`` and ``cache.store`` are also *corruption* points: a
``corrupt`` spec there mangles the byte payload instead of raising, to
exercise the checksum/quarantine path.
"""

from __future__ import annotations

import fnmatch
import json
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from ..obs import telemetry
from .errors import InjectedFault

#: every instrumented injection point in the codebase
KNOWN_SITES = (
    "cache.load",
    "cache.store",
    "pool.submit",
    "pool.result",
    "service.request",
    "server.reply",
    "ilp.solve",
)

#: sites whose faults flow through a byte payload (corruption-capable)
CORRUPTIBLE_SITES = ("cache.load", "cache.store")

MODES = ("error", "delay", "corrupt", "flaky")


@dataclass(frozen=True)
class FaultSpec:
    """One site → fault rule.

    ``site`` may be an ``fnmatch`` pattern (``cache.*``).  ``mode``:

    - ``error``  — raise :class:`InjectedFault` (subject to
      ``probability`` and, when set, at most ``times`` firings);
    - ``flaky``  — like ``error`` but *requires* ``times``: the site
      fails its first N matched calls, then behaves normally — the
      canonical transient fault that retries must absorb;
    - ``delay``  — sleep ``delay_s`` before proceeding;
    - ``corrupt``— mangle the byte payload at a corruption point
      (no-op at plain fault points).
    """

    site: str
    mode: str = "error"
    probability: float = 1.0
    times: Optional[int] = None
    delay_s: float = 0.01
    detail: str = ""

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"fault mode must be one of {MODES}, "
                             f"got {self.mode!r}")
        if self.mode == "flaky" and not self.times:
            raise ValueError("flaky faults require times >= 1")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"site": self.site, "mode": self.mode,
                               "probability": self.probability}
        if self.times is not None:
            out["times"] = self.times
        if self.mode == "delay":
            out["delay_s"] = self.delay_s
        if self.detail:
            out["detail"] = self.detail
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        return cls(
            site=str(data["site"]),
            mode=str(data.get("mode", "error")),
            probability=float(data.get("probability", 1.0)),
            times=(int(data["times"]) if data.get("times") is not None
                   else None),
            delay_s=float(data.get("delay_s", 0.01)),
            detail=str(data.get("detail", "")),
        )


@dataclass
class FaultPlan:
    """A seed plus the fault specs it drives — fully serializable so a
    failing chaos case can be committed and replayed verbatim."""

    seed: int = 0
    specs: List[FaultSpec] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            specs=[FaultSpec.from_dict(s) for s in data.get("specs", [])],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


class FaultInjector:
    """The armed runtime of one plan: per-spec seeded RNGs and firing
    counters behind one lock (the service is threaded)."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._rngs = [
            random.Random(f"{plan.seed}:{i}:{spec.site}:{spec.mode}")
            for i, spec in enumerate(plan.specs)
        ]
        self._matched = [0] * len(plan.specs)
        self._fired = [0] * len(plan.specs)
        #: every firing, for campaign reports: (site, mode, detail)
        self.log: List[Tuple[str, str, str]] = []

    def _due(self, index: int, spec: FaultSpec) -> bool:
        """Decide (under the lock) whether spec ``index`` fires now."""
        self._matched[index] += 1
        if spec.times is not None and self._fired[index] >= spec.times:
            return False
        if spec.probability < 1.0 and (
            self._rngs[index].random() >= spec.probability
        ):
            return False
        self._fired[index] += 1
        return True

    def fire(self, site: str) -> None:
        """Apply every matching error/flaky/delay spec; called from
        :func:`fault_point`."""
        delays = 0.0
        raised: Optional[FaultSpec] = None
        fired: List[Tuple[str, str, str]] = []
        with self._lock:
            for i, spec in enumerate(self.plan.specs):
                if spec.mode == "corrupt":
                    continue
                if not fnmatch.fnmatch(site, spec.site):
                    continue
                if not self._due(i, spec):
                    continue
                self.log.append((site, spec.mode, spec.detail))
                fired.append((site, spec.mode, spec.detail))
                if spec.mode == "delay":
                    delays += spec.delay_s
                elif raised is None:
                    raised = spec
        # Telemetry after the lock is released: sinks may take their
        # own locks (event log), and a sink must never deadlock or
        # suppress the injected fault itself.
        for f_site, f_mode, f_detail in fired:
            telemetry.emit(
                "fault.injected",
                site=f_site, mode=f_mode, detail=f_detail,
            )
        if delays > 0.0:
            time.sleep(delays)
        if raised is not None:
            raise InjectedFault(site, raised.detail or raised.mode)

    def transform(self, site: str, data: bytes) -> bytes:
        """Apply matching ``corrupt`` specs to a byte payload; called
        from :func:`corrupt_point`."""
        out = data
        fired: List[Tuple[str, str, str]] = []
        with self._lock:
            for i, spec in enumerate(self.plan.specs):
                if spec.mode != "corrupt":
                    continue
                if not fnmatch.fnmatch(site, spec.site):
                    continue
                if not self._due(i, spec):
                    continue
                self.log.append((site, "corrupt", spec.detail))
                fired.append((site, "corrupt", spec.detail))
                out = _mangle(out, self._rngs[i])
        for f_site, f_mode, f_detail in fired:
            telemetry.emit(
                "fault.injected",
                site=f_site, mode=f_mode, detail=f_detail,
            )
        return out

    def fired_count(self) -> int:
        with self._lock:
            return sum(self._fired)


def _mangle(data: bytes, rng: random.Random) -> bytes:
    """Deterministically damage a payload: truncate, bit-flip, or
    replace — all three are distinguishable failure shapes for the
    checksum/unpickle path."""
    if not data:
        return b"\xff"
    shape = rng.randrange(3)
    if shape == 0:  # truncation (torn write / short read)
        return data[: max(1, len(data) // 2)]
    if shape == 1:  # single bit flip (disk rot)
        index = rng.randrange(len(data))
        flipped = data[index] ^ (1 << rng.randrange(8))
        if flipped == data[index]:  # pragma: no cover - xor is nonzero
            flipped ^= 0x01
        return data[:index] + bytes([flipped]) + data[index + 1:]
    # wholesale garbage (foreign file)
    return bytes(rng.randrange(256) for _ in range(min(len(data), 64)))


# -- the global armed injector ------------------------------------------
#
# A module global (not a ContextVar): faults must reach worker threads
# spawned by the pool, which do not inherit request-local context.  Reads
# are single attribute loads, so unarmed overhead is negligible.

_injector: Optional[FaultInjector] = None


def arm(plan: FaultPlan) -> FaultInjector:
    """Arm a plan process-wide; returns the live injector."""
    global _injector
    _injector = FaultInjector(plan)
    return _injector


def disarm() -> None:
    global _injector
    _injector = None


def active() -> Optional[FaultInjector]:
    return _injector


@contextmanager
def armed(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Scope an armed plan: ``with faults.armed(plan): ...``"""
    injector = arm(plan)
    try:
        yield injector
    finally:
        disarm()


def fault_point(site: str) -> None:
    """An instrumented code point.  No-op unless a plan is armed."""
    injector = _injector
    if injector is None:
        return
    injector.fire(site)


def corrupt_point(site: str, data: bytes) -> bytes:
    """An instrumented byte-payload point.  Identity unless armed."""
    injector = _injector
    if injector is None:
        return data
    return injector.transform(site, data)
