"""Chaos campaigns: seeded fault plans replayed over the paper programs.

Each case arms a randomly generated (but seed-reproducible)
:class:`~repro.resilience.faults.FaultPlan` and pushes one of the
paper's four benchmark programs through a fresh
:class:`~repro.service.server.LayoutService` — twice, so both the
compute and the cache-load paths run under fire.  A seeded fraction of
cases are **overload cases** instead: no injected faults, just a burst
of concurrent arrivals against a deliberately tiny admission
controller, so shedding and brownout run under the same invariant as
fault injection.  The campaign asserts, on every case:

    *correct result, labeled-degraded result, clean typed error, or
    typed overload rejection — never a wrong answer, a hang, or an
    unhandled crash.*

"Correct" is judged against a fault-free reference pass over the same
request; "typed" means the response's ``error_kind`` names a known
error class rather than the catch-all ``internal``.  Violating cases
have their fault plans serialized to an artifact directory so they can
be replayed verbatim (``FaultPlan.from_json`` + ``faults.armed``).

This module sits *above* the service layer, so it is deliberately not
re-exported from :mod:`repro.resilience` — import it as
``repro.resilience.chaos``.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs import telemetry
from ..obs.telemetry import EventLog
from ..perf.bench.suite import BENCH_SIZES
from .atomic import atomic_write_json
from .faults import FaultPlan, FaultSpec, armed

#: the paper's four benchmark programs (Table 1)
DEFAULT_PROGRAMS = ("adi", "erlebacher", "shallow", "tomcatv")

#: sites a generated plan may target ("server.reply" is TCP-layer and
#: never fires in the in-process campaign, so plans skip it)
PLAN_SITES = (
    "cache.load", "cache.store", "pool.submit", "pool.result",
    "service.request", "ilp.solve",
)

#: error kinds accepted as "clean typed error" (the catch-all
#: "internal" is a violation: it means an exception escaped untyped)
TYPED_ERROR_KINDS = frozenset({
    "injected-fault", "deadline", "circuit-open", "corrupt-state",
    "resilience", "bad-request", "timeout", "worker-pool",
    "request-too-large", "overloaded", "shutting-down",
})

#: the typed rejections admission control may answer with under load;
#: an ``overloaded`` rejection must also carry ``retry_after_s``
OVERLOAD_REJECTION_KINDS = frozenset({"overloaded", "shutting-down"})

#: relative tolerance when comparing a faulted run's predicted cost
#: against the fault-free reference
_REL_TOL = 1e-6


def build_plan(seed: int) -> FaultPlan:
    """Generate the fault plan of one chaos case, deterministically
    from ``seed``: one to three specs over :data:`PLAN_SITES`, with
    modes, probabilities, and flaky counts drawn from the seeded RNG."""
    rng = random.Random(f"chaos-plan:{seed}")
    specs: List[FaultSpec] = []
    for _ in range(rng.randint(1, 3)):
        site = rng.choice(PLAN_SITES)
        roll = rng.random()
        if site in ("cache.load", "cache.store") and roll < 0.35:
            specs.append(FaultSpec(
                site=site, mode="corrupt",
                probability=rng.uniform(0.5, 1.0),
            ))
        elif roll < 0.55:
            specs.append(FaultSpec(
                site=site, mode="flaky",
                times=rng.randint(1, 2),
                probability=1.0,
            ))
        elif roll < 0.85:
            specs.append(FaultSpec(
                site=site, mode="error",
                probability=rng.uniform(0.2, 0.8),
            ))
        else:
            specs.append(FaultSpec(
                site=site, mode="delay",
                delay_s=rng.uniform(0.001, 0.01),
                probability=rng.uniform(0.5, 1.0),
            ))
    return FaultPlan(seed=seed, specs=specs)


@dataclass
class CaseResult:
    """One chaos case and its verdict."""

    index: int
    seed: int
    program: str
    plan: FaultPlan
    #: "ok" | "degraded" | "typed-error" | "overload-shed" | "violation"
    outcome: str
    detail: str = ""
    #: "faults" (seeded fault plan) or "overload" (burst arrivals)
    mode: str = "faults"
    faults_fired: int = 0
    #: ``fault.injected`` telemetry events observed during the case —
    #: must cover ``faults_fired`` (a shortfall is a *silent fault*)
    faults_observed: int = 0
    seconds: float = 0.0

    @property
    def violated(self) -> bool:
        return self.outcome == "violation"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "seed": self.seed,
            "program": self.program,
            "plan": self.plan.to_dict(),
            "outcome": self.outcome,
            "detail": self.detail,
            "mode": self.mode,
            "faults_fired": self.faults_fired,
            "faults_observed": self.faults_observed,
            "seconds": round(self.seconds, 4),
        }


@dataclass
class ChaosReport:
    """The verdicts of one campaign."""

    seed: int
    cases: List[CaseResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(c.violated for c in self.cases)

    def count(self, outcome: str) -> int:
        return sum(1 for c in self.cases if c.outcome == outcome)

    def violations(self) -> List[CaseResult]:
        return [c for c in self.cases if c.violated]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "total": len(self.cases),
            "ok": self.count("ok"),
            "degraded": self.count("degraded"),
            "typed_errors": self.count("typed-error"),
            "overload_shed": self.count("overload-shed"),
            "violations": [c.to_dict() for c in self.violations()],
        }

    def summary(self) -> str:
        lines = [
            f"chaos campaign: {len(self.cases)} cases (seed {self.seed})",
            f"  correct results:   {self.count('ok')}",
            f"  labeled degraded:  {self.count('degraded')}",
            f"  clean typed errors:{self.count('typed-error'):4d}",
            f"  overload cases shed cleanly: "
            f"{self.count('overload-shed')}",
            f"  INVARIANT VIOLATIONS: {len(self.violations())}",
        ]
        for case in self.violations():
            lines.append(
                f"    case {case.index} (seed {case.seed}, "
                f"{case.program}, {case.mode}): {case.detail}"
            )
        lines.append(
            "invariant held: every case returned a correct result, a "
            "labeled-degraded result, a clean typed error, or a typed "
            "overload rejection"
            if self.ok else
            "INVARIANT VIOLATED — see the fault-plan artifacts"
        )
        return "\n".join(lines)


def _analyze_twice(
    cache_dir: str, request: Dict[str, Any]
) -> Dict[str, Any]:
    """Run one request twice on a fresh service (second pass exercises
    the disk-cache load path); returns the final response dict."""
    from ..service.pool import WorkerPool
    from ..service.server import LayoutService

    with LayoutService(
        cache_dir=cache_dir,
        pool=WorkerPool(kind="thread", max_workers=2),
    ) as service:
        service.handle(dict(request))
        return service.handle(dict(request))


def _reference_response(
    program: str, procs: int, cache: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """The fault-free answer for one program (memoized per campaign)."""
    if program not in cache:
        tmp = tempfile.mkdtemp(prefix="chaos-ref-")
        try:
            cache[program] = _analyze_twice(tmp, _request(program, procs))
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        if not cache[program].get("ok"):
            raise RuntimeError(
                f"fault-free reference pass failed for {program!r}: "
                f"{cache[program].get('error')}"
            )
    return cache[program]


def _request(program: str, procs: int) -> Dict[str, Any]:
    return {
        "op": "analyze",
        "program": program,
        "size": BENCH_SIZES.get(program),
        "procs": procs,
        "request_id": f"chaos-{program}",
    }


#: fraction of cases that also run under a tight request deadline, so
#: campaigns exercise the anytime-ILP / labeled-degraded path under fire
DEADLINE_CASE_FRACTION = 0.3


def _case_request(seed: int, program: str, procs: int) -> Dict[str, Any]:
    """The (seed-deterministic) request of one case: the reference
    request, sometimes with a deadline tight enough to force the
    solvers onto their incumbent/greedy fallbacks."""
    request = _request(program, procs)
    rng = random.Random(f"chaos-request:{seed}")
    if rng.random() < DEADLINE_CASE_FRACTION:
        request["deadline_s"] = rng.uniform(0.0005, 0.05)
    return request


def _classify(
    response: Optional[Dict[str, Any]],
    reference: Dict[str, Any],
) -> Tuple[str, str]:
    """Apply the invariant to one faulted response."""
    if response is None:
        return "violation", "no response (worker crashed without reply)"
    if response.get("ok"):
        if response.get("degraded"):
            if not response.get("layouts"):
                return ("violation",
                        "degraded response carries no layouts")
            return "degraded", ""
        got = response.get("predicted_total_us")
        want = reference.get("predicted_total_us")
        if got is None or want is None:
            return "violation", "response missing predicted_total_us"
        if abs(got - want) > _REL_TOL * max(abs(want), 1.0):
            return (
                "violation",
                f"wrong answer: predicted {got} != reference {want} "
                "in a response not labeled degraded",
            )
        if response.get("layouts") != reference.get("layouts"):
            return (
                "violation",
                "wrong answer: layouts differ from the fault-free "
                "reference in a response not labeled degraded",
            )
        return "ok", ""
    kind = response.get("error_kind")
    if kind in TYPED_ERROR_KINDS:
        return "typed-error", str(kind)
    return (
        "violation",
        f"untyped failure (error_kind={kind!r}): "
        f"{response.get('error')}",
    )


def run_case(
    index: int,
    seed: int,
    program: str,
    reference: Dict[str, Any],
    case_timeout_s: float = 60.0,
) -> CaseResult:
    """Run one seeded case: arm the plan, analyze under fire (in a
    watchdog thread so a hang is a verdict, not a stuck campaign),
    classify the response."""
    plan = build_plan(seed)
    cache_dir = tempfile.mkdtemp(prefix="chaos-case-")
    box: Dict[str, Any] = {}

    request = _case_request(seed, program, procs=_procs(reference))

    def work() -> None:
        try:
            box["response"] = _analyze_twice(cache_dir, request)
        except BaseException as exc:  # noqa: BLE001 - verdict, not flow
            box["crash"] = exc

    # Count ``fault.injected`` telemetry during the case: every firing
    # the injector records must surface as an event — a shortfall is a
    # silent fault, itself an invariant violation.  (list.append is
    # atomic under the GIL, so the counter is thread-safe.)
    observed: List[int] = []

    def count_faults(type_: str, attrs: Dict[str, Any]) -> None:
        if type_ == "fault.injected":
            observed.append(1)

    start = perf_counter()
    fired = 0
    telemetry.install_sink(count_faults)
    try:
        with armed(plan) as injector:
            thread = threading.Thread(target=work, daemon=True)
            thread.start()
            thread.join(timeout=case_timeout_s)
            hung = thread.is_alive()
            fired = injector.fired_count()
        if hung:
            outcome, detail = (
                "violation",
                f"hang: case still running after {case_timeout_s}s",
            )
        elif "crash" in box:
            exc = box["crash"]
            outcome, detail = (
                "violation",
                f"unhandled crash: {type(exc).__name__}: {exc}",
            )
        else:
            outcome, detail = _classify(box.get("response"), reference)
        if len(observed) < fired:
            # Firing counters move under the injector lock while the
            # emit happens just after it; give a straggler thread one
            # beat before calling the fault silent.
            thread.join(timeout=0.1)
        if outcome != "violation" and not hung and len(observed) < fired:
            outcome, detail = (
                "violation",
                f"silent fault: {fired} injected but only "
                f"{len(observed)} fault.injected telemetry events",
            )
    finally:
        telemetry.remove_sink(count_faults)
        shutil.rmtree(cache_dir, ignore_errors=True)
    return CaseResult(
        index=index,
        seed=seed,
        program=program,
        plan=plan,
        outcome=outcome,
        detail=detail,
        faults_fired=fired,
        faults_observed=len(observed),
        seconds=perf_counter() - start,
    )


def _procs(reference: Dict[str, Any]) -> int:
    return int(reference.get("_procs", 4))


def run_overload_case(
    index: int,
    seed: int,
    program: str,
    reference: Dict[str, Any],
    case_timeout_s: float = 60.0,
) -> CaseResult:
    """One burst-arrival overload case: no injected faults — instead a
    seeded burst of concurrent requests hits a service whose admission
    controller is deliberately tiny (limit 1–2, queue 1, 50ms max
    wait), so shedding *must* happen.  Every reply must satisfy the
    extended invariant: correct, labeled-degraded, clean typed error,
    or a typed overload rejection (``overloaded`` rejections must
    carry ``retry_after_s``)."""
    from ..resilience.admission import (
        AdaptiveConcurrencyLimiter,
        AdmissionController,
    )
    from ..service.pool import WorkerPool
    from ..service.server import LayoutService

    rng = random.Random(f"chaos-overload:{seed}")
    burst = rng.randint(8, 16)
    # draw per-slot deadlines up front: the RNG is not shared across
    # the burst threads, keeping the case seed-deterministic
    deadlines = [rng.uniform(0.05, 0.5) for _ in range(burst)]
    request = _request(program, procs=_procs(reference))
    start = perf_counter()
    responses: List[Optional[Dict[str, Any]]] = [None] * burst

    admission = AdmissionController(
        limiter=AdaptiveConcurrencyLimiter(
            initial_limit=1, min_limit=1, max_limit=2,
        ),
        max_queue=1,
        max_queue_wait_s=0.05,
    )
    with LayoutService(
        pool=WorkerPool(kind="thread", max_workers=2),
        use_cache=False,
        admission=admission,
    ) as service:

        def fire(slot: int) -> None:
            payload = dict(request)
            payload["request_id"] = f"chaos-overload-{seed}-{slot}"
            payload["deadline_s"] = deadlines[slot]
            try:
                responses[slot] = service.handle(payload)
            except BaseException as exc:  # noqa: BLE001 - verdict
                responses[slot] = {
                    "ok": False, "error_kind": None,
                    "error": f"crash: {type(exc).__name__}: {exc}",
                }

        threads = [
            threading.Thread(target=fire, args=(slot,), daemon=True)
            for slot in range(burst)
        ]
        deadline_at = perf_counter() + case_timeout_s
        for thread in threads:
            thread.start()
        hung = False
        for thread in threads:
            thread.join(timeout=max(deadline_at - perf_counter(), 0.0))
            hung = hung or thread.is_alive()

    outcome, detail = "ok", ""
    shed = 0
    if hung:
        outcome, detail = (
            "violation",
            f"hang: overload burst still running after {case_timeout_s}s",
        )
    else:
        saw_degraded = False
        for slot, response in enumerate(responses):
            kind = (response or {}).get("error_kind")
            if kind in OVERLOAD_REJECTION_KINDS:
                shed += 1
                if (kind == "overloaded"
                        and response.get("retry_after_s") is None):
                    outcome, detail = (
                        "violation",
                        "overloaded rejection without retry_after_s",
                    )
                    break
                continue
            verdict, why = _classify(response, reference)
            if verdict == "violation":
                outcome, detail = "violation", f"burst slot {slot}: {why}"
                break
            saw_degraded = saw_degraded or verdict == "degraded"
        else:
            if shed:
                outcome = "overload-shed"
                detail = f"{shed}/{burst} burst requests shed cleanly"
            elif saw_degraded:
                outcome, detail = "degraded", ""
    return CaseResult(
        index=index,
        seed=seed,
        program=program,
        plan=FaultPlan(seed=seed, specs=[]),
        outcome=outcome,
        detail=detail,
        mode="overload",
        seconds=perf_counter() - start,
    )


def run_chaos(
    cases: int = 50,
    seed: int = 0,
    programs: Sequence[str] = DEFAULT_PROGRAMS,
    budget_s: Optional[float] = None,
    case_timeout_s: float = 60.0,
    procs: int = 4,
    artifact_dir: Optional[str] = None,
    events_dir: Optional[str] = None,
    progress=None,
    overload_fraction: float = 0.15,
) -> ChaosReport:
    """Run a campaign of up to ``cases`` seeded cases (stopping early
    when ``budget_s`` wall-clock seconds run out), cycling through
    ``programs``.  A seed-deterministic ``overload_fraction`` of cases
    run as burst-arrival overload cases (:func:`run_overload_case`)
    instead of fault-injection cases.  Violating cases write their
    fault plans under ``artifact_dir`` for verbatim replay; every
    case's verdict is also written through the structured event log
    (durable under ``events_dir``, in-memory otherwise)."""
    report = ChaosReport(seed=seed)
    references: Dict[str, Dict[str, Any]] = {}
    start = perf_counter()
    with EventLog(events_dir) as event_log:
        for index in range(cases):
            if budget_s is not None and perf_counter() - start >= budget_s:
                break
            program = programs[index % len(programs)]
            reference = dict(
                _reference_response(program, procs, references)
            )
            reference["_procs"] = procs
            case_seed = seed + index
            mode_roll = random.Random(
                f"chaos-mode:{case_seed}"
            ).random()
            run = (
                run_overload_case if mode_roll < overload_fraction
                else run_case
            )
            case = run(
                index=index,
                seed=case_seed,
                program=program,
                reference=reference,
                case_timeout_s=case_timeout_s,
            )
            report.cases.append(case)
            event_log.record("chaos.case", case.to_dict())
            if progress is not None:
                progress(case)
            if case.violated and artifact_dir:
                os.makedirs(artifact_dir, exist_ok=True)
                atomic_write_json(
                    os.path.join(
                        artifact_dir, f"violation-{case.index}.json"
                    ),
                    case.to_dict(),
                )
        event_log.record("chaos.campaign", report.to_dict())
    return report
