"""Top-level performance estimation over candidate-layout search spaces.

For every phase and every candidate layout in its search space, run the
compiler model and price the result with the execution model; the output
feeds the data layout graph of the selection step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.phases import Phase
from ..distribution.search_space import CandidateLayout, LayoutSearchSpaces
from ..frontend.symbols import SymbolTable
from ..machine.params import MachineParams
from ..obs import tracing
from .compiler_model import (
    CompilerOptions,
    FORTRAN_D_PROTOTYPE,
    model_phase,
)
from .execution_model import PhaseEstimate, price_phase
from .training import TrainingDatabase, cached_training_database


@dataclass
class EstimatedCandidate:
    """A candidate layout together with its estimated per-execution cost."""

    candidate: CandidateLayout
    estimate: PhaseEstimate

    @property
    def total(self) -> float:
        return self.estimate.total


@dataclass
class EstimationResult:
    """Estimates for every candidate of every phase."""

    per_phase: Dict[int, List[EstimatedCandidate]]
    db: TrainingDatabase
    nprocs: int
    options: CompilerOptions

    def best_candidate(self, phase_index: int) -> EstimatedCandidate:
        return min(self.per_phase[phase_index], key=lambda e: e.total)

    def candidate(self, phase_index: int, position: int) -> EstimatedCandidate:
        return self.per_phase[phase_index][position]


def estimate_phase_candidates(
    phase: Phase,
    candidates: Sequence[CandidateLayout],
    symbols: SymbolTable,
    params: MachineParams,
    db: TrainingDatabase,
    nprocs: int,
    options: CompilerOptions,
) -> List[EstimatedCandidate]:
    """Price every candidate of one phase.

    A pure function of its arguments — no global state, no mutation of
    inputs — so it is safe to ship to any worker (thread or process) and
    the combined result is deterministic regardless of scheduling.
    """
    with tracing.span(
        "estimate.phase", phase=phase.index, candidates=len(candidates)
    ):
        estimates = []
        for candidate in candidates:
            compiled = model_phase(
                phase, candidate.layout, symbols, params
            )
            estimate = price_phase(compiled, db, nprocs, options)
            if tracing.detail_active():
                tracing.add_event(
                    "estimate.candidate",
                    phase=phase.index,
                    position=candidate.position,
                    label=candidate.label,
                    total_us=estimate.total,
                )
            estimates.append(
                EstimatedCandidate(candidate=candidate, estimate=estimate)
            )
    return estimates


#: a job runner maps the pure job function over argument tuples and
#: returns the results *in submission order* (the service's worker pool
#: provides a parallel one; ``None`` means run serially in-process).
JobRunner = Callable[[Callable[..., object], Sequence[Tuple]], List]


#: estimation modes: "batched" prices each phase's candidates through the
#: vectorized cost tables (the default); "scalar" is the legacy
#: per-candidate loop, kept as the differential reference.
ESTIMATION_MODES = ("batched", "scalar")

#: upper bound on the number of worker jobs a batched fan-out submits;
#: phases are grouped into contiguous chunks so per-job fixed costs
#: amortize (the scalar mode keeps its one-job-per-phase shape).
_MAX_BATCH_JOBS = 8


def estimate_search_spaces(
    phases: Sequence[Phase],
    spaces: LayoutSearchSpaces,
    symbols: SymbolTable,
    params: MachineParams,
    db: Optional[TrainingDatabase] = None,
    options: CompilerOptions = FORTRAN_D_PROTOTYPE,
    job_runner: Optional[JobRunner] = None,
    mode: str = "batched",
) -> EstimationResult:
    """Price every candidate layout of every phase.

    With ``job_runner`` the pricing fans out as independent jobs —
    one per phase in ``scalar`` mode, one per contiguous phase chunk in
    ``batched`` mode; without it the same jobs run serially.  All four
    paths (mode x serial/parallel) produce bitwise-equal costs.
    """
    if mode not in ESTIMATION_MODES:
        raise ValueError(
            f"unknown estimation mode {mode!r}; "
            f"available: {list(ESTIMATION_MODES)}"
        )
    from .batch import estimate_phase_batch, estimate_phase_candidates_batched

    db = db or cached_training_database(params)
    nprocs = spaces.nprocs
    phase_by_index = {p.index: p for p in phases}
    items = sorted(spaces.per_phase.items())
    if mode == "batched":
        pairs = [
            (phase_by_index[idx], candidates) for idx, candidates in items
        ]
        if job_runner is None:
            with tracing.span(
                "estimation.fanout", jobs=len(pairs), parallel=False,
            ):
                results = [
                    estimate_phase_candidates_batched(
                        phase, candidates, symbols, params, db, nprocs,
                        options,
                    )
                    for phase, candidates in pairs
                ]
        else:
            chunk_size = -(-len(pairs) // _MAX_BATCH_JOBS) or 1
            chunks = [
                pairs[i:i + chunk_size]
                for i in range(0, len(pairs), chunk_size)
            ]
            argtuples = [
                (chunk, symbols, params, db, nprocs, options)
                for chunk in chunks
            ]
            with tracing.span(
                "estimation.fanout", jobs=len(chunks), parallel=True,
            ):
                chunked = job_runner(estimate_phase_batch, argtuples)
            results = [est for chunk in chunked for est in chunk]
    else:
        argtuples = [
            (phase_by_index[idx], candidates, symbols, params, db, nprocs,
             options)
            for idx, candidates in items
        ]
        with tracing.span(
            "estimation.fanout",
            jobs=len(argtuples),
            parallel=job_runner is not None,
        ):
            if job_runner is None:
                results = [
                    estimate_phase_candidates(*args) for args in argtuples
                ]
            else:
                results = job_runner(estimate_phase_candidates, argtuples)
    per_phase: Dict[int, List[EstimatedCandidate]] = {
        idx: estimates for (idx, _), estimates in zip(items, results)
    }
    return EstimationResult(
        per_phase=per_phase, db=db, nprocs=nprocs, options=options
    )
