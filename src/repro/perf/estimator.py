"""Top-level performance estimation over candidate-layout search spaces.

For every phase and every candidate layout in its search space, run the
compiler model and price the result with the execution model; the output
feeds the data layout graph of the selection step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.phases import Phase
from ..distribution.search_space import CandidateLayout, LayoutSearchSpaces
from ..frontend.symbols import SymbolTable
from ..machine.params import MachineParams
from .compiler_model import (
    CompilerOptions,
    FORTRAN_D_PROTOTYPE,
    model_phase,
)
from .execution_model import PhaseEstimate, price_phase
from .training import TrainingDatabase, cached_training_database


@dataclass
class EstimatedCandidate:
    """A candidate layout together with its estimated per-execution cost."""

    candidate: CandidateLayout
    estimate: PhaseEstimate

    @property
    def total(self) -> float:
        return self.estimate.total


@dataclass
class EstimationResult:
    """Estimates for every candidate of every phase."""

    per_phase: Dict[int, List[EstimatedCandidate]]
    db: TrainingDatabase
    nprocs: int
    options: CompilerOptions

    def best_candidate(self, phase_index: int) -> EstimatedCandidate:
        return min(self.per_phase[phase_index], key=lambda e: e.total)

    def candidate(self, phase_index: int, position: int) -> EstimatedCandidate:
        return self.per_phase[phase_index][position]


def estimate_search_spaces(
    phases: Sequence[Phase],
    spaces: LayoutSearchSpaces,
    symbols: SymbolTable,
    params: MachineParams,
    db: Optional[TrainingDatabase] = None,
    options: CompilerOptions = FORTRAN_D_PROTOTYPE,
) -> EstimationResult:
    """Price every candidate layout of every phase."""
    db = db or cached_training_database(params)
    nprocs = spaces.nprocs
    per_phase: Dict[int, List[EstimatedCandidate]] = {}
    phase_by_index = {p.index: p for p in phases}
    for phase_index, candidates in spaces.per_phase.items():
        phase = phase_by_index[phase_index]
        estimates = []
        for candidate in candidates:
            compiled = model_phase(phase, candidate.layout, symbols, params)
            estimate = price_phase(compiled, db, nprocs, options)
            estimates.append(
                EstimatedCandidate(candidate=candidate, estimate=estimate)
            )
        per_phase[phase_index] = estimates
    return EstimationResult(
        per_phase=per_phase, db=db, nprocs=nprocs, options=options
    )
