"""Remapping (dynamic redistribution) cost estimation.

Dynamic data layouts pay an all-to-all redistribution whenever an array's
layout changes between phases.  The estimator prices each changed array
with the *transpose* training sets (redistributions pack strided slices,
hence non-unit stride); moving *out of* a fully replicated layout is free
because every processor already holds the data.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..codegen.spmd import array_layout_signature
from ..distribution.layouts import DataLayout
from ..frontend.symbols import SymbolTable
from .training import TrainingDatabase


def arrays_needing_remap(
    from_layout: DataLayout,
    to_layout: DataLayout,
    arrays: Iterable[str],
) -> List[str]:
    """Arrays (among ``arrays``) whose distribution differs between the
    two layouts and whose source layout actually distributes data."""
    out = []
    for array in arrays:
        try:
            sig_from = array_layout_signature(from_layout, array)
            sig_to = array_layout_signature(to_layout, array)
        except KeyError:
            continue  # array not covered by one of the layouts
        if sig_from == sig_to:
            continue
        if not sig_from[0]:
            continue  # leaving a replicated layout is free
        out.append(array)
    return out


def remapping_cost(
    from_layout: DataLayout,
    to_layout: DataLayout,
    arrays: Iterable[str],
    symbols: SymbolTable,
    db: TrainingDatabase,
    nprocs: int,
) -> float:
    """Estimated time (us) to remap every changed array in ``arrays``."""
    total = 0.0
    for array in arrays_needing_remap(from_layout, to_layout, arrays):
        symbol = symbols.array(array)
        local_bytes = max(symbol.total_bytes // nprocs, 1)
        total += db.predict(
            "transpose", nprocs, local_bytes, stride="nonunit",
            latency="high",
        )
    return total
