"""The deterministic benchmark suite: what ``repro bench`` actually times.

Two benchmark kinds:

- **stage benchmarks** (``stage:<stage>/<program>``) time one pipeline
  stage in isolation, against inputs prepared once (untimed) by running
  the preceding stages.  The seven stages mirror the cost structure the
  paper reports on: parse, partition, CAG build, alignment ILP,
  distribution enumeration, per-candidate estimation, selection ILP.
  ``cag_build`` is deliberately a *sub*-measurement of ``alignment_ilp``
  (the search-space heuristic rebuilds per-phase CAGs internally);
  stage timings are comparable run-over-run, not disjoint.
- **end-to-end benchmarks** (``e2e/<program>``) time ``run_assistant``
  whole, plus ``e2e/qa-corpus``: a fixed-seed batch of generated fuzz
  programs, exercising the many-small-programs service shape.

Everything is deterministic by construction: bench sizes are pinned per
program (the smallest grid size from EXPERIMENTS.md, so a full run stays
interactive), QA programs come from fixed seeds, estimation runs serial
(no worker pool), and benchmarks are collected in sorted order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ...alignment.search_space import build_alignment_search_spaces
from ...alignment.weights import build_phase_cag
from ...machine.params import IPSC860, MachineParams
from ...obs import tracing
from ...obs.tracing import span as obs_span
from ...service.telemetry import TailSampler
from ...programs.registry import PROGRAMS
from ...qa.generator import GeneratorConfig, generate_program
from ...tool.assistant import (
    AssistantConfig,
    run_assistant,
    stage_alignment,
    stage_distribution,
    stage_estimation,
    stage_frontend,
    stage_partition,
    stage_selection,
)
from .timer import DEFAULT_REPEATS, DEFAULT_WARMUP, Measurement, measure

#: the seven benchmarked pipeline stages, in pipeline order
STAGE_NAMES = (
    "parse", "partition", "cag_build", "alignment_ilp", "distribution",
    "estimation", "selection_ilp",
)

#: pinned per-program bench problem sizes (smallest grid size each, so
#: the whole suite runs in seconds; changing these invalidates baselines)
BENCH_SIZES: Dict[str, int] = {
    "adi": 200,
    "erlebacher": 28,
    "tomcatv": 72,
    "shallow": 136,
}

#: pinned processor count for every benchmark
BENCH_NPROCS = 8

#: fixed seeds of the generated QA-corpus batch
QA_SEEDS = (0, 1, 2, 3)


def default_bench_config(
    machine: MachineParams = IPSC860, backend: str = "scipy"
) -> AssistantConfig:
    return AssistantConfig(
        nprocs=BENCH_NPROCS, machine=machine, ilp_backend=backend
    )


@dataclass(frozen=True)
class BenchCase:
    """One runnable benchmark: a stable ID plus a zero-arg thunk."""

    bench_id: str
    kind: str  # "stage" | "e2e"
    program: str
    stage: Optional[str]
    fn: Callable[[], Any]


class PreparedProgram:
    """One program's pipeline inputs, computed once and shared by all of
    its stage benchmarks (preparation is untimed)."""

    def __init__(self, name: str, source: str, config: AssistantConfig):
        self.name = name
        self.source = source
        self.config = config
        self.program, self.symbols = stage_frontend(source)
        self.partition, self.pcfg, self.template = stage_partition(
            self.program, self.symbols, config
        )
        self.alignment_spaces = stage_alignment(
            self.partition, self.pcfg, self.symbols, self.template, config
        )
        self.layout_spaces = stage_distribution(
            self.partition, self.alignment_spaces, self.template,
            self.symbols, config,
        )
        self.estimates, self.db = stage_estimation(
            self.partition, self.layout_spaces, self.symbols, config
        )


def bench_source(name: str, size: Optional[int] = None) -> str:
    """The pinned benchmark source text of one paper program."""
    spec = PROGRAMS[name]
    kwargs: Dict[str, Any] = {
        "n": size if size is not None else BENCH_SIZES[name],
        "dtype": spec.default_dtype,
    }
    if spec.has_time_loop:
        kwargs["maxiter"] = 3
    return spec.source_fn(**kwargs)


def _stage_cases(prep: PreparedProgram) -> List[BenchCase]:
    """The seven per-stage benchmarks of one prepared program."""
    config = prep.config

    def run_parse() -> None:
        stage_frontend(prep.source)

    def run_partition() -> None:
        stage_partition(prep.program, prep.symbols, config)

    def run_cag_build() -> None:
        for phase in prep.partition.phases:
            build_phase_cag(phase, prep.symbols)

    def run_alignment_ilp() -> None:
        build_alignment_search_spaces(
            prep.partition.phases, prep.pcfg, prep.symbols, prep.template,
            backend=config.ilp_backend,
        )

    def run_distribution() -> None:
        stage_distribution(
            prep.partition, prep.alignment_spaces, prep.template,
            prep.symbols, config,
        )

    def run_estimation() -> None:
        stage_estimation(
            prep.partition, prep.layout_spaces, prep.symbols, config
        )

    def run_selection_ilp() -> None:
        stage_selection(
            prep.partition, prep.pcfg, prep.estimates, prep.symbols,
            prep.db, config,
        )

    thunks = {
        "parse": run_parse,
        "partition": run_partition,
        "cag_build": run_cag_build,
        "alignment_ilp": run_alignment_ilp,
        "distribution": run_distribution,
        "estimation": run_estimation,
        "selection_ilp": run_selection_ilp,
    }
    return [
        BenchCase(
            bench_id=f"stage:{stage}/{prep.name}",
            kind="stage",
            program=prep.name,
            stage=stage,
            fn=thunks[stage],
        )
        for stage in STAGE_NAMES
    ]


#: one sampler shared by all e2e cases in a process, mirroring the
#: service: the 1-in-K healthy sample is a property of the stream, not
#: of one request
_BENCH_SAMPLER = TailSampler()


def _run_traced(fn: Callable[[], Any]) -> None:
    """One e2e repetition the way production serves it: a fresh tracer
    is always on, and the tail sampler decides *after* the request
    whether the span tree is worth serializing.  The timed region
    includes the tracing and sampling overhead — that is exactly the
    cost the <5% always-on budget bounds."""
    from time import perf_counter

    tracer = tracing.Tracer(detail=False)
    start = perf_counter()
    with tracing.activate(tracer):
        with obs_span("request"):
            fn()
    _BENCH_SAMPLER.offer(tracer, perf_counter() - start,
                         ok=True, degraded=False)


def _e2e_case(prep: PreparedProgram) -> BenchCase:
    def run_e2e() -> None:
        _run_traced(lambda: run_assistant(prep.source, prep.config))

    return BenchCase(
        bench_id=f"e2e/{prep.name}", kind="e2e", program=prep.name,
        stage=None, fn=run_e2e,
    )


def _qa_corpus_case(config: AssistantConfig,
                    seeds: Sequence[int]) -> BenchCase:
    """One benchmark that runs the whole pipeline over a fixed-seed batch
    of generated programs (the fuzzing / many-small-requests shape)."""
    gen_config = GeneratorConfig().small()
    sources = [
        generate_program(seed, gen_config).source for seed in seeds
    ]
    qa_config = AssistantConfig(
        nprocs=4, machine=config.machine, ilp_backend=config.ilp_backend
    )

    def run_batch() -> None:
        for source in sources:
            _run_traced(lambda s=source: run_assistant(s, qa_config))

    return BenchCase(
        bench_id="e2e/qa-corpus", kind="e2e", program="qa-corpus",
        stage=None, fn=run_batch,
    )


def build_suite(
    programs: Optional[Sequence[str]] = None,
    config: Optional[AssistantConfig] = None,
    stages: Optional[Sequence[str]] = None,
    include_e2e: bool = True,
    include_qa: bool = True,
    qa_seeds: Sequence[int] = QA_SEEDS,
    sizes: Optional[Mapping[str, int]] = None,
) -> List[BenchCase]:
    """Collect the benchmark suite (preparation runs here, untimed)."""
    config = config or default_bench_config()
    names = list(programs) if programs else sorted(BENCH_SIZES)
    wanted_stages = tuple(stages) if stages else STAGE_NAMES
    unknown = sorted(set(wanted_stages) - set(STAGE_NAMES))
    if unknown:
        raise ValueError(
            f"unknown stages {unknown}; known: {list(STAGE_NAMES)}"
        )
    cases: List[BenchCase] = []
    for name in names:
        if name not in PROGRAMS:
            raise ValueError(
                f"unknown program {name!r}; known: {sorted(PROGRAMS)}"
            )
        size = (sizes or {}).get(name, BENCH_SIZES.get(name))
        with obs_span("bench.prepare", program=name, size=size):
            prep = PreparedProgram(name, bench_source(name, size), config)
        cases.extend(
            c for c in _stage_cases(prep) if c.stage in wanted_stages
        )
        if include_e2e:
            cases.append(_e2e_case(prep))
    if include_e2e and include_qa:
        cases.append(_qa_corpus_case(config, qa_seeds))
    return sorted(cases, key=lambda c: c.bench_id)


def run_suite(
    cases: Sequence[BenchCase],
    repeats: int = DEFAULT_REPEATS,
    warmup: int = DEFAULT_WARMUP,
    memory: bool = True,
    progress: Optional[Callable[[BenchCase, Measurement], None]] = None,
) -> Dict[str, Measurement]:
    """Measure every case; returns ``{bench_id: Measurement}`` sorted."""
    results: Dict[str, Measurement] = {}
    for case in cases:
        with obs_span("bench.case", bench=case.bench_id, kind=case.kind):
            m = measure(case.bench_id, case.fn, repeats=repeats,
                        warmup=warmup, memory=memory)
        results[case.bench_id] = m
        if progress is not None:
            progress(case, m)
    return dict(sorted(results.items()))


__all__ = [
    "BENCH_NPROCS", "BENCH_SIZES", "BenchCase", "PreparedProgram",
    "QA_SEEDS", "STAGE_NAMES", "bench_source", "build_suite",
    "default_bench_config", "run_suite",
]
