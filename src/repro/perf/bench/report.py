"""Bench result rendering and metrics export.

Text tables for the terminal, plus the bridge into the observability
stack: every repetition of every benchmark is folded into the service's
:class:`~repro.service.metrics.Metrics` registry as a
``bench_seconds``-family histogram (the same shape as the request-path
``span_seconds`` aggregates), which then renders through the one
Prometheus exposition in :mod:`repro.obs.prometheus`.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Union

from ...obs.prometheus import render_prometheus
from ...service.metrics import Metrics
from .regress import RegressionReport
from .timer import Measurement

ResultLike = Union[Measurement, Mapping[str, Any]]


def _row(result: ResultLike) -> Mapping[str, Any]:
    return result.to_dict() if isinstance(result, Measurement) else result


def format_run(results: Mapping[str, ResultLike]) -> str:
    """Fixed-width table of one suite run."""
    lines = [
        f"{'benchmark':<32} {'min':>10} {'median':>10} {'mad':>9} "
        f"{'peak mem':>10} {'reps':>5}"
    ]
    for bench_id in sorted(results):
        row = _row(results[bench_id])
        lines.append(
            f"{bench_id:<32} {row['min_s'] * 1e3:>8.2f}ms "
            f"{row['median_s'] * 1e3:>8.2f}ms "
            f"{row['mad_s'] * 1e3:>7.2f}ms "
            f"{row.get('peak_bytes', 0) / 1024:>6.0f}KiB "
            f"{row['reps']:>5}"
        )
    return "\n".join(lines)


def format_compare(report: RegressionReport) -> str:
    """Comparison table plus a one-line gate verdict."""
    lines = [
        f"{'benchmark':<32} {'baseline':>10} {'current':>10} "
        f"{'ratio':>7}  status"
    ]
    for v in report.verdicts:
        base = f"{v.base_min_s * 1e3:.2f}ms" if v.base_min_s else "-"
        cur = f"{v.cur_min_s * 1e3:.2f}ms" if v.cur_min_s else "-"
        ratio = f"{v.ratio:.2f}x" if v.status not in (
            "new", "missing"
        ) else "-"
        lines.append(
            f"{v.bench_id:<32} {base:>10} {cur:>10} {ratio:>7}  {v.status}"
        )
    regressions = report.regressions
    if regressions:
        lines.append("")
        for v in regressions:
            lines.append(f"REGRESSION {v.bench_id}: {v.detail}")
        lines.append(
            f"gate: FAIL ({len(regressions)} regression"
            f"{'s' if len(regressions) != 1 else ''})"
        )
    else:
        lines.append(f"gate: ok ({len(report.verdicts)} benchmarks)")
    return "\n".join(lines)


def results_to_metrics(
    results: Mapping[str, ResultLike], metrics: Optional[Metrics] = None
) -> Metrics:
    """Fold every repetition into ``bench_seconds`` histograms."""
    metrics = metrics or Metrics()
    for bench_id in sorted(results):
        row = _row(results[bench_id])
        for seconds in row.get("times_s", []):
            metrics.observe_bench(bench_id, float(seconds))
    return metrics


def render_bench_prometheus(
    results: Mapping[str, ResultLike], namespace: str = "repro"
) -> str:
    """Bench results as Prometheus text exposition (histograms plus
    per-benchmark min/peak-memory gauges)."""
    metrics = results_to_metrics(results)
    snapshot = metrics.snapshot()
    # The bench registry has no service counters/uptime to report.
    stats = {"bench_seconds": snapshot["bench_seconds"]}
    text = render_prometheus(stats, namespace=namespace)
    extra = [
        f"# HELP {namespace}_bench_min_seconds Min-of-N benchmark time",
        f"# TYPE {namespace}_bench_min_seconds gauge",
    ]
    for bench_id in sorted(results):
        row = _row(results[bench_id])
        label = bench_id.replace("\\", "\\\\").replace('"', '\\"')
        extra.append(
            f'{namespace}_bench_min_seconds{{bench="{label}"}} '
            f"{row['min_s']!r}"
        )
    extra.extend([
        f"# HELP {namespace}_bench_peak_bytes "
        "Peak allocation delta of one repetition",
        f"# TYPE {namespace}_bench_peak_bytes gauge",
    ])
    for bench_id in sorted(results):
        row = _row(results[bench_id])
        label = bench_id.replace("\\", "\\\\").replace('"', '\\"')
        extra.append(
            f'{namespace}_bench_peak_bytes{{bench="{label}"}} '
            f"{int(row.get('peak_bytes', 0))}"
        )
    return text + "\n".join(extra) + "\n"


__all__ = [
    "format_compare", "format_run", "render_bench_prometheus",
    "results_to_metrics",
]
