"""Deterministic benchmark harness and regression observability.

The measurement substrate every performance PR is judged against:

- :mod:`timer` — warmup + min-of-N ``perf_counter`` repetitions with
  MAD noise estimates and ``tracemalloc`` peak-memory deltas;
- :mod:`suite` — the benchmark definitions: the seven pipeline stages
  and the end-to-end assistant on the four paper programs plus a
  fixed-seed batch of generated QA programs;
- :mod:`profiling` — cProfile hot-function summaries attached to obs
  spans;
- :mod:`baseline` — versioned ``BENCH_<label>.json`` trajectory files
  at the repo root;
- :mod:`regress` — the threshold-based regression detector behind
  ``repro bench gate``;
- :mod:`report` — terminal tables and the Prometheus/histogram export.

Driven by the ``repro bench`` CLI subcommand (``run`` / ``compare`` /
``gate`` / ``profile``).
"""

from .baseline import (
    BENCH_SCHEMA,
    BenchInputError,
    BenchValidationError,
    append_run,
    bench_path,
    discover,
    latest_results,
    load_bench_file,
    load_latest_results,
    new_run,
    run_meta,
    validate_bench_file,
    write_bench_file,
)
from .profiling import ProfileResult, format_profile, profile_call
from .regress import (
    RegressionReport,
    Thresholds,
    Verdict,
    compare_results,
    parse_threshold_overrides,
)
from .report import (
    format_compare,
    format_run,
    render_bench_prometheus,
    results_to_metrics,
)
from .suite import (
    BENCH_SIZES,
    QA_SEEDS,
    STAGE_NAMES,
    BenchCase,
    build_suite,
    default_bench_config,
    run_suite,
)
from .timer import Measurement, mad, measure, measure_memory, median

__all__ = [
    "BENCH_SCHEMA", "BENCH_SIZES", "BenchCase", "BenchInputError",
    "BenchValidationError", "Measurement", "ProfileResult", "QA_SEEDS",
    "RegressionReport", "STAGE_NAMES", "Thresholds", "Verdict",
    "append_run", "bench_path", "build_suite", "compare_results",
    "default_bench_config", "discover", "format_compare",
    "format_profile", "format_run", "latest_results", "load_bench_file",
    "load_latest_results", "mad", "measure", "measure_memory", "median",
    "new_run", "parse_threshold_overrides", "profile_call",
    "render_bench_prometheus", "results_to_metrics", "run_meta",
    "run_suite", "validate_bench_file", "write_bench_file",
]
