"""Profiling hooks: cProfile hot-function summaries and tracemalloc
peak-memory deltas, attached to the existing obs spans.

``profile_call`` runs one callable under :mod:`cProfile` (with
``tracemalloc`` tracking the peak-allocation delta), extracts the top
functions by cumulative time, and — when tracing is active — records a
``bench.profile`` span carrying the summary as a structured
``profile.hot`` event, so a ``--trace`` bench run lands the profile
next to the stage spans in the same trace file and chrome export.
"""

from __future__ import annotations

import cProfile
import pstats
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from ...obs.tracing import span as obs_span

#: how many hot functions a summary keeps by default
DEFAULT_LIMIT = 10


@dataclass(frozen=True)
class HotFunction:
    """One row of a hot-function summary."""

    func: str
    file: str
    line: int
    ncalls: int
    tottime_s: float
    cumtime_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "func": self.func,
            "file": self.file,
            "line": self.line,
            "ncalls": self.ncalls,
            "tottime_s": self.tottime_s,
            "cumtime_s": self.cumtime_s,
        }


@dataclass
class ProfileResult:
    """Everything one profiled call produced."""

    name: str
    value: Any
    hot: List[HotFunction]
    peak_bytes: int
    total_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "total_s": self.total_s,
            "peak_bytes": self.peak_bytes,
            "hot": [h.to_dict() for h in self.hot],
        }


def hot_functions(
    profile: cProfile.Profile, limit: int = DEFAULT_LIMIT
) -> Tuple[List[HotFunction], float]:
    """Top ``limit`` functions by cumulative time, plus total time."""
    stats = pstats.Stats(profile)
    rows: List[HotFunction] = []
    for (file, line, func), (cc, nc, tottime, cumtime, _callers) in (
            stats.stats.items()):  # type: ignore[attr-defined]
        rows.append(HotFunction(
            func=func, file=file, line=line, ncalls=int(nc),
            tottime_s=float(tottime), cumtime_s=float(cumtime),
        ))
    rows.sort(key=lambda r: (-r.cumtime_s, r.file, r.line, r.func))
    return rows[:limit], float(getattr(stats, "total_tt", 0.0))


def profile_call(
    name: str, fn: Callable[[], Any], limit: int = DEFAULT_LIMIT
) -> ProfileResult:
    """Run ``fn`` once under cProfile + tracemalloc; attach the summary
    to the active trace (no-op when tracing is off)."""
    with obs_span("bench.profile", bench=name) as sp:
        started_here = not tracemalloc.is_tracing()
        if started_here:
            tracemalloc.start()
        tracemalloc.reset_peak()
        before, _ = tracemalloc.get_traced_memory()
        profiler = cProfile.Profile()
        try:
            value = profiler.runcall(fn)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            if started_here:
                tracemalloc.stop()
        hot, total_s = hot_functions(profiler, limit=limit)
        peak_bytes = max(peak - before, 0)
        sp.set_attr("total_s", total_s)
        sp.set_attr("peak_bytes", peak_bytes)
        sp.add_event(
            "profile.hot",
            functions=[h.to_dict() for h in hot],
        )
    return ProfileResult(
        name=name, value=value, hot=hot, peak_bytes=peak_bytes,
        total_s=total_s,
    )


def format_profile(result: ProfileResult) -> str:
    """A fixed-width hot-function table for terminal output."""
    lines = [
        f"== {result.name} ==",
        f"total {result.total_s * 1e3:.2f}ms, "
        f"peak memory delta {result.peak_bytes / 1024:.1f} KiB",
        f"{'cumtime':>10} {'tottime':>10} {'ncalls':>8}  function",
    ]
    for h in result.hot:
        location = f"{h.file}:{h.line}" if h.line else h.file
        lines.append(
            f"{h.cumtime_s * 1e3:>8.2f}ms {h.tottime_s * 1e3:>8.2f}ms "
            f"{h.ncalls:>8}  {h.func} ({location})"
        )
    return "\n".join(lines)


__all__ = [
    "DEFAULT_LIMIT", "HotFunction", "ProfileResult", "format_profile",
    "hot_functions", "profile_call",
]
