"""The regression detector: current run vs. stored baseline.

A benchmark *regresses* when all three of these hold for its min-of-N
timing (the minimum is the noise-floor estimate; see ``timer.py``):

1. **ratio** — ``cur_min > base_min * max_ratio`` (default 1.5x; the
   acceptance target is catching an injected 2x slowdown);
2. **noise** — the slowdown exceeds ``mad_sigmas`` times the larger of
   the two runs' MADs (a run whose repetitions scatter widely cannot
   produce a confident verdict from the ratio alone);
3. **floor** — the absolute slowdown exceeds ``min_slowdown_s``
   (sub-100µs deltas are timer jitter, whatever the ratio says).

Per-benchmark ratio overrides let inherently noisy benchmarks carry a
looser threshold without loosening the whole gate.  Improvements,
new benchmarks, and missing benchmarks are reported but never fail the
gate — only regressions do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Union

from .timer import Measurement

ResultLike = Union[Measurement, Mapping[str, Any]]


@dataclass(frozen=True)
class Thresholds:
    """Significance knobs of the detector (see module docstring)."""

    max_ratio: float = 1.5
    mad_sigmas: float = 4.0
    min_slowdown_s: float = 1e-4
    per_bench: Mapping[str, float] = field(default_factory=dict)

    def ratio_for(self, bench_id: str) -> float:
        return float(self.per_bench.get(bench_id, self.max_ratio))


@dataclass
class Verdict:
    """One benchmark's comparison outcome."""

    bench_id: str
    status: str  # "ok" | "regression" | "improved" | "new" | "missing"
    base_min_s: float = 0.0
    cur_min_s: float = 0.0
    ratio: float = 1.0
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench_id": self.bench_id,
            "status": self.status,
            "base_min_s": self.base_min_s,
            "cur_min_s": self.cur_min_s,
            "ratio": self.ratio,
            "detail": self.detail,
        }


@dataclass
class RegressionReport:
    """All verdicts of one comparison, plus the gate decision."""

    verdicts: List[Verdict] = field(default_factory=list)
    thresholds: Thresholds = field(default_factory=Thresholds)

    @property
    def regressions(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def by_status(self, status: str) -> List[Verdict]:
        return [v for v in self.verdicts if v.status == status]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "regressions": len(self.regressions),
            "thresholds": {
                "max_ratio": self.thresholds.max_ratio,
                "mad_sigmas": self.thresholds.mad_sigmas,
                "min_slowdown_s": self.thresholds.min_slowdown_s,
                "per_bench": dict(self.thresholds.per_bench),
            },
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def _as_stats(result: ResultLike) -> Dict[str, float]:
    if isinstance(result, Measurement):
        return {"min_s": result.min_s, "mad_s": result.mad_s}
    return {
        "min_s": float(result["min_s"]),
        "mad_s": float(result.get("mad_s", 0.0)),
    }


def compare_results(
    base: Mapping[str, ResultLike],
    current: Mapping[str, ResultLike],
    thresholds: Thresholds = Thresholds(),
) -> RegressionReport:
    """Compare two result mappings benchmark-by-benchmark."""
    report = RegressionReport(thresholds=thresholds)
    for bench_id in sorted(set(base) | set(current)):
        if bench_id not in current:
            b = _as_stats(base[bench_id])
            report.verdicts.append(Verdict(
                bench_id=bench_id, status="missing",
                base_min_s=b["min_s"],
                detail="present in baseline, absent in current run",
            ))
            continue
        if bench_id not in base:
            c = _as_stats(current[bench_id])
            report.verdicts.append(Verdict(
                bench_id=bench_id, status="new", cur_min_s=c["min_s"],
                detail="absent in baseline",
            ))
            continue
        b = _as_stats(base[bench_id])
        c = _as_stats(current[bench_id])
        base_min, cur_min = b["min_s"], c["min_s"]
        ratio = cur_min / base_min if base_min > 0 else float(
            "inf" if cur_min > 0 else 1.0
        )
        max_ratio = thresholds.ratio_for(bench_id)
        slowdown = cur_min - base_min
        noise = thresholds.mad_sigmas * max(b["mad_s"], c["mad_s"])
        if (ratio > max_ratio and slowdown > noise
                and slowdown > thresholds.min_slowdown_s):
            status = "regression"
            detail = (
                f"{ratio:.2f}x > {max_ratio:.2f}x threshold; slowdown "
                f"{slowdown * 1e3:.3f}ms exceeds noise band "
                f"{noise * 1e3:.3f}ms"
            )
        elif ratio < 1.0 / max_ratio and -slowdown > noise:
            status = "improved"
            detail = f"{ratio:.2f}x (faster than baseline)"
        else:
            status = "ok"
            detail = f"{ratio:.2f}x within threshold {max_ratio:.2f}x"
        report.verdicts.append(Verdict(
            bench_id=bench_id, status=status, base_min_s=base_min,
            cur_min_s=cur_min, ratio=ratio, detail=detail,
        ))
    return report


def parse_threshold_overrides(specs: List[str]) -> Dict[str, float]:
    """Parse CLI ``--threshold bench=ratio`` overrides."""
    out: Dict[str, float] = {}
    for spec in specs:
        bench_id, sep, value = spec.partition("=")
        if not sep or not bench_id:
            raise ValueError(
                f"bad threshold {spec!r}: expected <bench_id>=<ratio>"
            )
        ratio = float(value)
        if ratio <= 1.0:
            raise ValueError(
                f"bad threshold {spec!r}: ratio must be > 1.0"
            )
        out[bench_id] = ratio
    return out


__all__ = [
    "RegressionReport", "Thresholds", "Verdict", "compare_results",
    "parse_threshold_overrides",
]
