"""The baseline store: versioned ``BENCH_<label>.json`` trajectory files.

One file per label at the repo root; each file is an append-only
*trajectory* — every ``repro bench run`` appends one run record, so the
performance history of a machine/configuration stays in one reviewable
JSON document::

    {
      "schema": "repro.perf/bench/v1",
      "label": "baseline",
      "runs": [
        {"run_id": 1,
         "created": "2026-08-06T12:00:00+00:00",
         "meta": {"python": "3.12.3", "platform": "...",
                  "repeats": 5, "warmup": 1, "programs": [...]},
         "results": {
           "stage:alignment_ilp/adi": {"min_s": ..., "median_s": ...,
             "mad_s": ..., "mean_s": ..., "reps": 5, "warmup": 1,
             "peak_bytes": ..., "times_s": [...]},
           ...}},
        ...
      ]
    }

:func:`validate_bench_file` is the schema gate used by tests, the CLI
(every write re-validates), and the CI bench-smoke job.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import re
import sys
from typing import Any, Dict, List, Mapping, Optional

from ...resilience.atomic import (
    atomic_write_text,
    quarantine,
    stamp_json_integrity,
    verify_json_integrity,
)
from ...resilience.errors import CorruptStateError
from .timer import Measurement

#: identifies the JSON bench-file format
BENCH_SCHEMA = "repro.perf/bench/v1"

#: filename shape of a baseline file at the repo root
BENCH_PREFIX = "BENCH_"

_LABEL_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_RESULT_NUMERIC = ("min_s", "median_s", "mad_s", "mean_s")


class BenchValidationError(ValueError):
    """A bench file does not conform to the v1 schema."""


class BenchInputError(RuntimeError):
    """A compare/gate input trajectory is unusable.

    Raised by :func:`load_latest_results` instead of the raw
    ``FileNotFoundError`` / ``json.JSONDecodeError`` /
    :class:`BenchValidationError` /
    :class:`~repro.resilience.errors.CorruptStateError` so CLI callers
    can turn any bad ``--baseline`` / ``--current`` into one clean
    diagnostic and a nonzero exit.  ``kind`` names the failure class:
    ``missing``, ``unreadable``, ``invalid-json``, ``schema`` or
    ``corrupt``.
    """

    def __init__(self, path: str, kind: str, detail: str):
        self.path = path
        self.kind = kind
        self.detail = detail
        super().__init__(f"bench file {path!r} ({kind}): {detail}")


def bench_path(label: str, root: str = ".") -> str:
    """The canonical path of one label's trajectory file."""
    if not _LABEL_RE.match(label):
        raise ValueError(
            f"bad bench label {label!r}: use letters, digits, . _ -"
        )
    return os.path.join(root, f"{BENCH_PREFIX}{label}.json")


def discover(root: str = ".") -> Dict[str, str]:
    """All ``BENCH_<label>.json`` files under ``root`` as label → path."""
    out: Dict[str, str] = {}
    try:
        entries = sorted(os.listdir(root))
    except OSError:
        return out
    for entry in entries:
        if entry.startswith(BENCH_PREFIX) and entry.endswith(".json"):
            label = entry[len(BENCH_PREFIX):-len(".json")]
            if _LABEL_RE.match(label):
                out[label] = os.path.join(root, entry)
    return out


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise BenchValidationError(message)


def _check_result(bench_id: str, result: Any, where: str) -> None:
    _check(isinstance(result, Mapping), f"{where}: result is not an object")
    for key in _RESULT_NUMERIC:
        value = result.get(key)
        _check(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            and value >= 0,
            f"{where}: {key} must be a non-negative number",
        )
    reps = result.get("reps")
    _check(
        isinstance(reps, int) and not isinstance(reps, bool) and reps >= 1,
        f"{where}: reps must be a positive integer",
    )
    times = result.get("times_s", [])
    _check(isinstance(times, list), f"{where}: times_s must be a list")
    _check(
        len(times) == reps,
        f"{where}: times_s has {len(times)} entries, reps says {reps}",
    )
    for t in times:
        _check(
            isinstance(t, (int, float)) and not isinstance(t, bool)
            and t >= 0,
            f"{where}: times_s entries must be non-negative numbers",
        )
    peak = result.get("peak_bytes", 0)
    _check(
        isinstance(peak, int) and not isinstance(peak, bool) and peak >= 0,
        f"{where}: peak_bytes must be a non-negative integer",
    )


def validate_bench_file(data: Mapping[str, Any]) -> None:
    """Raise :class:`BenchValidationError` unless ``data`` is a valid v1
    bench trajectory (schema tag, label, monotonically increasing run
    IDs, well-formed per-benchmark result records)."""
    _check(isinstance(data, Mapping), "bench file is not an object")
    _check(
        data.get("schema") == BENCH_SCHEMA,
        f"schema must be {BENCH_SCHEMA!r}, got {data.get('schema')!r}",
    )
    label = data.get("label")
    _check(
        isinstance(label, str) and bool(_LABEL_RE.match(label)),
        f"label must match {_LABEL_RE.pattern}, got {label!r}",
    )
    runs = data.get("runs")
    _check(isinstance(runs, list) and runs, "runs must be a non-empty list")
    last_id = 0
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        _check(isinstance(run, Mapping), f"{where}: not an object")
        run_id = run.get("run_id")
        _check(
            isinstance(run_id, int) and not isinstance(run_id, bool)
            and run_id > last_id,
            f"{where}: run_id must be an integer > {last_id}",
        )
        last_id = run_id
        _check(
            isinstance(run.get("created"), str) and run["created"],
            f"{where}: created must be a non-empty string",
        )
        meta = run.get("meta", {})
        _check(isinstance(meta, Mapping), f"{where}: meta not an object")
        results = run.get("results")
        _check(
            isinstance(results, Mapping) and results,
            f"{where}: results must be a non-empty object",
        )
        for bench_id, result in results.items():
            _check(
                isinstance(bench_id, str) and bench_id,
                f"{where}: bench ids must be non-empty strings",
            )
            _check_result(
                bench_id, result, f"{where}.results[{bench_id!r}]"
            )


def run_meta(repeats: int, warmup: int,
             programs: Optional[List[str]] = None) -> Dict[str, Any]:
    """The environment stamp attached to every run record."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "argv": list(sys.argv[1:]),
        "repeats": repeats,
        "warmup": warmup,
        "programs": sorted(programs or []),
    }


def new_run(
    results: Mapping[str, Measurement],
    meta: Optional[Mapping[str, Any]] = None,
    run_id: int = 1,
) -> Dict[str, Any]:
    """Build one run record from a suite's measurements."""
    return {
        "run_id": run_id,
        "created": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "meta": dict(meta or {}),
        "results": {
            bench_id: m.to_dict()
            for bench_id, m in sorted(results.items())
        },
    }


def load_bench_file(path: str) -> Dict[str, Any]:
    """Read and validate one trajectory file (integrity stamp included:
    a present-but-wrong ``integrity`` field raises
    :class:`~repro.resilience.errors.CorruptStateError`; files written
    before stamping existed pass on schema validation alone)."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        verify_json_integrity(data, label=path)
    validate_bench_file(data)
    return data


def write_bench_file(data: Mapping[str, Any], path: str) -> None:
    """Validate, stamp with an integrity digest, then write the
    trajectory file atomically (temp file + ``os.replace``) so a crash
    mid-write can never leave a torn baseline behind."""
    validate_bench_file(data)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    stamped = stamp_json_integrity(dict(data))
    atomic_write_text(
        path, json.dumps(stamped, indent=1, sort_keys=True) + "\n"
    )


def append_run(
    results: Mapping[str, Measurement],
    label: str,
    root: str = ".",
    meta: Optional[Mapping[str, Any]] = None,
    max_runs: int = 50,
) -> str:
    """Append one run to ``BENCH_<label>.json`` (creating it if absent);
    returns the file path.  Trajectories are capped at ``max_runs`` runs
    (oldest dropped) so the files stay reviewable.  A corrupt existing
    file is quarantined and the trajectory restarts, so one damaged
    baseline never blocks future runs."""
    path = bench_path(label, root)
    data: Optional[Dict[str, Any]] = None
    if os.path.exists(path):
        try:
            data = load_bench_file(path)
        except (BenchValidationError, CorruptStateError,
                json.JSONDecodeError, OSError):
            quarantine(path)
            data = None
    if data is None:
        data = {"schema": BENCH_SCHEMA, "label": label, "runs": []}
    next_id = (data["runs"][-1]["run_id"] + 1) if data["runs"] else 1
    data["runs"].append(new_run(results, meta=meta, run_id=next_id))
    if max_runs > 0 and len(data["runs"]) > max_runs:
        data["runs"] = data["runs"][-max_runs:]
    write_bench_file(data, path)
    return path


def load_latest_results(path: str, role: str = "baseline") -> Dict[str, Any]:
    """The newest run's results of the trajectory at ``path``, with
    every load failure normalised to :class:`BenchInputError`.

    ``role`` ("baseline" or "current") only flavours the message so the
    CLI diagnostic says which flag pointed at the bad file.
    """
    try:
        data = load_bench_file(path)
        return latest_results(data)
    except FileNotFoundError:
        raise BenchInputError(
            path, "missing",
            f"no such {role} file — run `repro bench run` to record one, "
            "or pass an existing label/path",
        ) from None
    except json.JSONDecodeError as exc:
        raise BenchInputError(
            path, "invalid-json", f"{role} is not valid JSON: {exc}"
        ) from exc
    except CorruptStateError as exc:
        raise BenchInputError(
            path, "corrupt", f"{role} failed its integrity check: {exc}"
        ) from exc
    except BenchValidationError as exc:
        raise BenchInputError(
            path, "schema",
            f"{role} does not match the {BENCH_SCHEMA!r} schema: {exc}",
        ) from exc
    except OSError as exc:
        raise BenchInputError(
            path, "unreadable", f"cannot read {role}: {exc}"
        ) from exc


def latest_results(data: Mapping[str, Any]) -> Dict[str, Any]:
    """The results mapping of the newest run in a trajectory."""
    runs = data.get("runs") or []
    if not runs:
        raise BenchValidationError("bench file has no runs")
    return dict(runs[-1]["results"])


__all__ = [
    "BENCH_PREFIX", "BENCH_SCHEMA", "BenchInputError",
    "BenchValidationError", "append_run", "bench_path", "discover",
    "latest_results", "load_bench_file", "load_latest_results",
    "new_run", "run_meta", "validate_bench_file", "write_bench_file",
]
