"""The measurement engine: warmup + min-of-N repetitions with robust
noise estimates.

The paper sells the layout assistant as an *interactive* tool — ILP
sizes and solve times are reported alongside the results — so the repo
needs timings it can trust across reruns.  The protocol here is the
standard micro-benchmarking one:

- a fixed number of **warmup** repetitions runs first (untimed), so
  lazy imports, allocator pools, and the process-wide training-database
  cache are all hot before the clock starts;
- each timed repetition is one ``perf_counter`` interval around the
  callable (monotonic, immune to wall-clock steps);
- the summary statistic is the **minimum** (the least-noise estimate of
  the true cost on an otherwise idle machine) with the **median** and
  the **MAD** (median absolute deviation) recorded alongside so the
  regression detector can tell a real slowdown from scheduler noise;
- peak memory is measured once, in a separate repetition under
  ``tracemalloc`` — tracing slows execution several-fold, so the memory
  repetition never contributes a timing sample.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Mapping, Optional

from ...obs.tracing import span as obs_span

#: defaults used by ``repro bench run``
DEFAULT_REPEATS = 5
DEFAULT_WARMUP = 1


def median(values: List[float]) -> float:
    """Plain median (no statistics import needed for a hot helper)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: List[float]) -> float:
    """Median absolute deviation around the median (raw, unscaled)."""
    center = median(values)
    return median([abs(v - center) for v in values])


@dataclass
class Measurement:
    """One benchmark's timing + memory summary (JSON round-trippable)."""

    name: str
    times_s: List[float] = field(default_factory=list)
    warmup: int = 0
    peak_bytes: int = 0

    @property
    def reps(self) -> int:
        return len(self.times_s)

    @property
    def min_s(self) -> float:
        return min(self.times_s) if self.times_s else 0.0

    @property
    def median_s(self) -> float:
        return median(self.times_s) if self.times_s else 0.0

    @property
    def mad_s(self) -> float:
        return mad(self.times_s) if self.times_s else 0.0

    @property
    def mean_s(self) -> float:
        return sum(self.times_s) / len(self.times_s) if self.times_s else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "min_s": self.min_s,
            "median_s": self.median_s,
            "mad_s": self.mad_s,
            "mean_s": self.mean_s,
            "reps": self.reps,
            "warmup": self.warmup,
            "peak_bytes": self.peak_bytes,
            "times_s": list(self.times_s),
        }

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Any]) -> "Measurement":
        return cls(
            name=name,
            times_s=[float(t) for t in data.get("times_s", [])],
            warmup=int(data.get("warmup", 0)),
            peak_bytes=int(data.get("peak_bytes", 0)),
        )


def measure_memory(fn: Callable[[], Any]) -> int:
    """Peak-allocation delta (bytes) of one call, via ``tracemalloc``.

    When tracing is already on (a caller's profiling session), the peak
    counter is reset instead of restarting the tracer, so nesting is
    safe.
    """
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    tracemalloc.reset_peak()
    before, _ = tracemalloc.get_traced_memory()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if started_here:
            tracemalloc.stop()
    return max(peak - before, 0)


def measure(
    name: str,
    fn: Callable[[], Any],
    repeats: int = DEFAULT_REPEATS,
    warmup: int = DEFAULT_WARMUP,
    memory: bool = True,
    timer: Callable[[], float] = perf_counter,
) -> Measurement:
    """Run the warmup + min-of-N protocol on ``fn``.

    Records a ``bench.measure`` span (with the summary statistics as
    attributes) when tracing is active; a no-op otherwise.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    with obs_span("bench.measure", bench=name, repeats=repeats,
                  warmup=warmup) as sp:
        for _ in range(warmup):
            fn()
        times: List[float] = []
        for _ in range(repeats):
            t0 = timer()
            fn()
            times.append(max(timer() - t0, 0.0))
        peak = measure_memory(fn) if memory else 0
        result = Measurement(
            name=name, times_s=times, warmup=warmup, peak_bytes=peak
        )
        sp.set_attr("min_s", result.min_s)
        sp.set_attr("median_s", result.median_s)
        sp.set_attr("mad_s", result.mad_s)
        sp.set_attr("peak_bytes", result.peak_bytes)
    return result


def measure_once(name: str, fn: Callable[[], Any]) -> Measurement:
    """Single-repetition convenience (used by ``bench profile``)."""
    return measure(name, fn, repeats=1, warmup=0, memory=True)


__all__ = [
    "DEFAULT_REPEATS", "DEFAULT_WARMUP", "Measurement", "mad", "measure",
    "measure_memory", "measure_once", "median",
]
