"""Batched (vectorized) candidate pricing for the execution model.

The scalar path (:func:`repro.perf.execution_model.price_phase`) prices
one candidate at a time, issuing one ``db.predict`` call — a dict lookup
plus a scalar interpolation — per communication event.  For a phase with
many candidates that is the estimator's hot loop.

The batched path prices **all candidates of a phase in one batch**:

1. *collect* — replay the execution-model walk over every compiled
   candidate with a recording predictor, producing the exact stream of
   prediction requests the scalar path would issue (the stream is a pure
   function of the compiled structure: even the coarse-grain pipeline
   blocking search issues one statically known request per block
   factor);
2. *price* — group the requests of the whole batch by training set
   (pattern, procs, stride, latency) into a :class:`CostTable` and
   evaluate each group with one vectorized
   :meth:`~repro.perf.training.TrainingSet.predict_many` call;
3. *assemble* — replay the same walk with the precomputed values.

Because ``predict_many`` matches ``predict`` bit for bit and the
assembly replays the scalar arithmetic in the scalar order, the batched
estimates are **exactly** equal to the scalar ones — the property the
equivalence suite (and the ``estimator-batch`` fuzz check) enforces.
The scalar path stays available behind ``AssistantConfig``'s
``estimation_mode="scalar"`` flag as the differential reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis.phases import Phase
from ..codegen.comm import (
    BroadcastComm,
    GatherComm,
    ReductionComm,
    ShiftComm,
)
from ..codegen.spmd import CompiledPhase
from ..distribution.search_space import CandidateLayout
from ..frontend.symbols import SymbolTable
from ..machine.params import MachineParams
from ..obs import tracing
from .compiler_model import CompilerOptions, model_phase
from .execution_model import (
    LOOSELY_SYNCHRONOUS,
    PIPELINED,
    REDUCTION,
    SEQUENTIALIZED,
    PhaseEstimate,
    _plan_compute,
    _stride_of,
)
from .training import TrainingDatabase

#: one prediction request: the exact arguments of a ``db.predict`` call
Request = Tuple[str, int, int, str, str]  # pattern, procs, nbytes, stride, latency


class _Collect:
    """Predictor that records requests and returns a placeholder."""

    __slots__ = ("requests",)

    def __init__(self) -> None:
        self.requests: List[Request] = []

    def predict(self, pattern: str, procs: int, nbytes: int,
                stride: str = "unit", latency: str = "high") -> float:
        self.requests.append((pattern, procs, nbytes, stride, latency))
        return 0.0


class _Replay:
    """Predictor that replays precomputed values in request order."""

    __slots__ = ("values", "pos")

    def __init__(self, values: Sequence[float], pos: int) -> None:
        self.values = values
        self.pos = pos

    def predict(self, pattern: str, procs: int, nbytes: int,
                stride: str = "unit", latency: str = "high") -> float:
        value = self.values[self.pos]
        self.pos += 1
        return value


def _pipeline_time_via(plan, predictor, nprocs: int,
                       options: CompilerOptions) -> Tuple[float, str]:
    """The execution model's pipeline closed form over a predictor.

    Identical arithmetic to ``execution_model._pipeline_time`` except the
    coarse-grain branch reuses the per-block-factor prediction for the
    chosen factor instead of re-predicting it (``db.predict`` is
    deterministic, so the value is the same double) — which makes the
    request stream independent of the predicted values.
    """
    pipe = plan.pipeline
    assert pipe is not None
    stages = max(pipe.stages, 1) * max(pipe.rounds, 1)
    iters = plan.total_iterations() * plan.guard_probability
    divisor = max(plan.partition_divisor(), 1)
    chain_procs = pipe.chain_procs or nprocs
    chunk = (iters / divisor / stages) * plan.per_iter_cost
    msg_bytes = pipe.msg_bytes
    if options.coarse_grain_pipelining and stages > 1:
        best = None
        b = 1
        while b <= stages:
            t = predictor.predict(
                "sendrecv", nprocs, msg_bytes * b,
                stride=_stride_of(pipe.buffered), latency="low",
            )
            total = (stages / b + chain_procs - 1) * (chunk * b + t)
            if best is None or total < best[0]:
                best = (total, b, t)
            b *= 2
        assert best is not None
        stages_eff = stages / best[1]
        chunk_eff = chunk * best[1]
        return (stages_eff + chain_procs - 1) * (chunk_eff + best[2]), \
            PIPELINED
    if stages == 1:
        t_msg = predictor.predict(
            "sendrecv", nprocs, msg_bytes,
            stride=_stride_of(pipe.buffered), latency="high",
        )
        return chain_procs * (chunk + t_msg), SEQUENTIALIZED
    t_msg = predictor.predict(
        "sendrecv", nprocs, msg_bytes,
        stride=_stride_of(pipe.buffered), latency="low",
    )
    return (stages + chain_procs - 1) * (chunk + t_msg), PIPELINED


def _price_phase_via(predictor, compiled: CompiledPhase, nprocs: int,
                     options: CompilerOptions) -> PhaseEstimate:
    """``execution_model.price_phase`` with predictions routed through
    ``predictor`` — the shared walk of the collect and assemble passes."""
    estimate = PhaseEstimate(
        phase_index=compiled.phase_index, exec_class=LOOSELY_SYNCHRONOUS
    )
    has_reduction = False

    events = []
    seen = set()
    for plan in compiled.plans:
        for event in plan.comms:
            if options.message_coalescing:
                if event in seen:
                    continue
                seen.add(event)
            events.append((event, plan))

    for event, plan in events:
        if isinstance(event, ShiftComm):
            procs = event.procs or nprocs
            if options.message_vectorization:
                estimate.communication += predictor.predict(
                    "shift", procs, event.nbytes,
                    stride=_stride_of(event.buffered), latency="high",
                )
            else:
                count = max(plan.other_iterations(), 1)
                elem = max(event.nbytes // max(plan.other_iterations(), 1), 1)
                estimate.communication += count * predictor.predict(
                    "shift", procs, elem, stride="unit", latency="high",
                )
        elif isinstance(event, BroadcastComm):
            estimate.communication += predictor.predict(
                "broadcast", event.procs or nprocs, event.nbytes,
                stride=_stride_of(event.buffered), latency="high",
            )
        elif isinstance(event, GatherComm):
            estimate.communication += predictor.predict(
                "transpose", event.procs or nprocs, event.local_bytes,
                stride=_stride_of(event.buffered), latency="high",
            )
        elif isinstance(event, ReductionComm):
            has_reduction = True
            estimate.communication += predictor.predict(
                "reduction", nprocs, event.nbytes, latency="high"
            ) + predictor.predict(
                "broadcast", nprocs, event.nbytes, latency="high"
            )

    for plan in compiled.plans:
        if plan.pipeline is not None:
            time, klass = _pipeline_time_via(
                plan, predictor, nprocs, options
            )
            estimate.pipeline += time
            if estimate.exec_class == LOOSELY_SYNCHRONOUS or (
                klass == SEQUENTIALIZED
            ):
                estimate.exec_class = klass
        else:
            estimate.compute += _plan_compute(plan, nprocs)

    if has_reduction and estimate.exec_class == LOOSELY_SYNCHRONOUS:
        estimate.exec_class = REDUCTION
    return estimate


@dataclass
class CostTable:
    """Vectorized predictions for one batch of requests.

    ``values[i]`` is exactly ``db.predict(*requests[i])``; the table is
    grouped by training set so each group costs one ``np.interp`` call
    regardless of how many candidates share it.
    """

    values: List[float]
    requests: int
    groups: int


def price_requests(
    db: TrainingDatabase, requests: Sequence[Request]
) -> CostTable:
    """Evaluate a request batch against the training database.

    Requests are grouped by (pattern, procs, stride, latency) — one
    resolved training set each — and each group is priced with a single
    vectorized ``predict_many`` call; single-processor requests are 0.0
    by definition (``TrainingDatabase.predict`` semantics).
    """
    values = [0.0] * len(requests)
    groups: Dict[Tuple[str, int, str, str],
                 Tuple[object, List[int], List[int]]] = {}
    for i, (pattern, procs, nbytes, stride, latency) in enumerate(requests):
        if procs <= 1:
            continue
        key = (pattern, procs, stride, latency)
        entry = groups.get(key)
        if entry is None:
            tset = db.lookup(pattern, procs, stride, latency)
            entry = groups[key] = (tset, [], [])
        entry[1].append(i)
        entry[2].append(nbytes)
    for tset, idxs, sizes in groups.values():
        out = tset.predict_many(np.array(sizes, dtype=np.float64))
        for i, value in zip(idxs, out.tolist()):
            values[i] = value
    return CostTable(
        values=values, requests=len(requests), groups=len(groups)
    )


def estimate_phase_candidates_batched(
    phase: Phase,
    candidates: Sequence[CandidateLayout],
    symbols: SymbolTable,
    params: MachineParams,
    db: TrainingDatabase,
    nprocs: int,
    options: CompilerOptions,
) -> List["object"]:
    """Price every candidate of one phase in a single batch.

    Pure like the scalar :func:`~repro.perf.estimator.
    estimate_phase_candidates` (safe to ship to any worker) and exactly
    equal to it on every cost component.
    """
    from .estimator import EstimatedCandidate

    with tracing.span(
        "estimate.batch", phase=phase.index, candidates=len(candidates)
    ) as sp:
        compiled = [
            model_phase(phase, candidate.layout, symbols, params)
            for candidate in candidates
        ]
        collector = _Collect()
        bounds: List[Tuple[int, int]] = []
        for comp in compiled:
            start = len(collector.requests)
            _price_phase_via(collector, comp, nprocs, options)
            bounds.append((start, len(collector.requests)))
        table = price_requests(db, collector.requests)
        sp.set_attr("requests", table.requests)
        sp.set_attr("tables", table.groups)
        estimates = []
        for candidate, comp, (start, end) in zip(
            candidates, compiled, bounds
        ):
            replay = _Replay(table.values, start)
            estimate = _price_phase_via(replay, comp, nprocs, options)
            assert replay.pos == end, "collect/assemble request mismatch"
            if tracing.detail_active():
                tracing.add_event(
                    "estimate.candidate",
                    phase=phase.index,
                    position=candidate.position,
                    label=candidate.label,
                    total_us=estimate.total,
                )
            estimates.append(
                EstimatedCandidate(candidate=candidate, estimate=estimate)
            )
    return estimates


def estimate_phase_batch(
    chunk: Sequence[Tuple[Phase, Sequence[CandidateLayout]]],
    symbols: SymbolTable,
    params: MachineParams,
    db: TrainingDatabase,
    nprocs: int,
    options: CompilerOptions,
) -> List[List["object"]]:
    """Pure batch job: price several phases in one worker job.

    The batched estimator replaces the scalar path's one-job-per-phase
    fan-out with fewer, larger jobs — the per-job fixed costs (pickling
    the training database, span bookkeeping) amortize over the chunk.
    """
    return [
        estimate_phase_candidates_batched(
            phase, candidates, symbols, params, db, nprocs, options
        )
        for phase, candidates in chunk
    ]
